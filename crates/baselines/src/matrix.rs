//! A small dense row-major matrix.
//!
//! The MLP baseline needs only a handful of kernels — matrix–matrix products
//! (plain, and with either operand transposed), element-wise maps and row
//! reductions — so a minimal purpose-built type keeps the crate dependency
//! free and the backpropagation code readable.

use crate::{BaselineError, Result};
use serde::{Deserialize, Serialize};

/// Dense row-major `f32` matrix.
///
/// # Example
///
/// ```
/// use baselines::Matrix;
///
/// # fn main() -> Result<(), baselines::BaselineError> {
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c.row(0), &[1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::ShapeMismatch`] if the rows differ in length
    /// or the input is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let first = rows
            .first()
            .ok_or_else(|| BaselineError::ShapeMismatch("matrix needs at least one row".into()))?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(BaselineError::ShapeMismatch(format!(
                    "row has {} columns, expected {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "matrix index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "matrix index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of range");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrows row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of range");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Borrows the whole backing buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the whole backing buffer (row-major).
    ///
    /// Used by the fault injector to flip bits of trained MLP weights.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self × other`.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::ShapeMismatch`] if the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(BaselineError::ShapeMismatch(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `selfᵀ × other`.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::ShapeMismatch`] if the row counts disagree.
    pub fn transpose_matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(BaselineError::ShapeMismatch(format!(
                "cannot multiply ({}x{})^T by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self × otherᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::ShapeMismatch`] if the column counts
    /// disagree.
    pub fn matmul_transpose(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(BaselineError::ShapeMismatch(format!(
                "cannot multiply {}x{} by ({}x{})^T",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Adds `other` scaled by `factor` in place (`self += factor · other`).
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled_in_place(&mut self, other: &Matrix, factor: f32) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(BaselineError::ShapeMismatch(format!(
                "cannot add {}x{} to {}x{}",
                other.rows, other.cols, self.rows, self.cols
            )));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += factor * b;
        }
        Ok(())
    }

    /// Sum of every column, returned as a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for a matrix with no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn from_fn_fills_by_index() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn set_and_row_mut_modify_elements() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m.as_slice(), &[0.0, 5.0, 7.0, 0.0]);
        m.as_mut_slice()[3] = 9.0;
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Matrix::zeros(1, 1).get(0, 1);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn transpose_products_match_explicit_transposition() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        // aᵀ b : 2x3 * 3x2 = 2x2.
        let atb = a.transpose_matmul(&b).unwrap();
        assert_eq!(atb.as_slice(), &[89.0, 98.0, 116.0, 128.0]);
        // a bᵀ : 3x2 * 2x3 = 3x3.
        let abt = a.matmul_transpose(&b).unwrap();
        assert_eq!(abt.get(0, 0), 1.0 * 7.0 + 2.0 * 8.0);
        assert_eq!(abt.get(2, 1), 5.0 * 9.0 + 6.0 * 10.0);
        assert!(a.transpose_matmul(&Matrix::zeros(2, 2)).is_err());
        assert!(a.matmul_transpose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn map_add_and_column_sums() {
        let mut m = Matrix::from_rows(&[vec![1.0, -2.0], vec![-3.0, 4.0]]).unwrap();
        m.map_in_place(|v| v.max(0.0));
        assert_eq!(m.as_slice(), &[1.0, 0.0, 0.0, 4.0]);
        let other = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        m.add_scaled_in_place(&other, 2.0).unwrap();
        assert_eq!(m.as_slice(), &[3.0, 2.0, 2.0, 6.0]);
        assert_eq!(m.column_sums(), vec![5.0, 8.0]);
        assert!(m.add_scaled_in_place(&Matrix::zeros(1, 2), 1.0).is_err());
    }
}

//! # `baselines` — the non-HDC comparison models
//!
//! Fig. 3 and Fig. 4 of the CyberHD paper compare against a state-of-the-art
//! DNN (a multilayer perceptron, per the paper's reference 8) and an SVM
//! (reference 9).  This crate implements both from scratch so the whole
//! evaluation is
//! self-contained:
//!
//! * [`matrix::Matrix`] — a small dense row-major matrix with the handful of
//!   BLAS-like kernels backpropagation needs,
//! * [`mlp::Mlp`] — a multilayer perceptron with ReLU hidden layers, a
//!   softmax/cross-entropy head and Adam optimization; its raw weights are
//!   accessible for the bit-flip robustness study (Fig. 5),
//! * [`svm::LinearSvm`] — a one-vs-rest linear SVM trained by SGD on the
//!   L2-regularized hinge loss.
//!
//! Both models share the [`Classifier`] trait so the experiment harnesses can
//! treat every baseline uniformly.
//!
//! # Example
//!
//! ```
//! use baselines::{Classifier, mlp::{Mlp, MlpConfig}};
//!
//! # fn main() -> Result<(), baselines::BaselineError> {
//! let features = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
//! let labels = vec![0, 1, 1, 0]; // XOR
//! let config = MlpConfig::new(2, 2).hidden_layers(vec![16]).epochs(400).seed(1);
//! let mut mlp = Mlp::new(config)?;
//! mlp.fit(&features, &labels)?;
//! assert_eq!(mlp.predict(&[0.0, 1.0])?, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod mlp;
pub mod svm;

pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};
pub use svm::{LinearSvm, SvmConfig};

use std::error::Error;
use std::fmt;

/// Errors produced by the `baselines` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// Training or inference data was inconsistent with the model.
    InvalidData(String),
    /// A matrix operation was applied to incompatible shapes.
    ShapeMismatch(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            BaselineError::InvalidData(what) => write!(f, "invalid data: {what}"),
            BaselineError::ShapeMismatch(what) => write!(f, "shape mismatch: {what}"),
        }
    }
}

impl Error for BaselineError {}

/// Crate-local result alias.
pub type Result<T, E = BaselineError> = std::result::Result<T, E>;

/// A trainable multi-class classifier over dense feature vectors.
///
/// Implemented by [`mlp::Mlp`] and [`svm::LinearSvm`]; the experiment
/// harnesses use it to time training and inference uniformly across models.
/// Batch entry points come in two forms: the legacy row-per-`Vec` slices
/// and the zero-copy [`hdc::BatchView`] twins (`*_view`), which accept the
/// same contiguous matrices the HDC engines consume.
pub trait Classifier {
    /// Trains the classifier on parallel feature/label slices.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidData`] for empty or inconsistent data.
    fn fit(&mut self, features: &[Vec<f32>], labels: &[usize]) -> Result<()>;

    /// Trains the classifier on a zero-copy row-major batch view.
    ///
    /// The default implementation copies the rows into the legacy
    /// [`Classifier::fit`] form; implementations with a contiguous training
    /// core may override it.
    ///
    /// # Errors
    ///
    /// Same as [`Classifier::fit`].
    fn fit_view(&mut self, features: hdc::BatchView<'_>, labels: &[usize]) -> Result<()> {
        let rows: Vec<Vec<f32>> = features.iter_rows().map(<[f32]>::to_vec).collect();
        self.fit(&rows, labels)
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidData`] if the feature arity is wrong.
    fn predict(&self, features: &[f32]) -> Result<usize>;

    /// Predicts a batch of feature vectors.
    ///
    /// # Errors
    ///
    /// Returns the first prediction error encountered.
    fn predict_batch(&self, batch: &[Vec<f32>]) -> Result<Vec<usize>> {
        batch.iter().map(|f| self.predict(f)).collect()
    }

    /// Predicts every row of a zero-copy row-major batch view.
    ///
    /// # Errors
    ///
    /// Returns the first prediction error encountered.
    fn predict_batch_view(&self, batch: hdc::BatchView<'_>) -> Result<Vec<usize>> {
        batch.iter_rows().map(|row| self.predict(row)).collect()
    }

    /// Accuracy against ground-truth labels.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidData`] for mismatched lengths.
    fn accuracy(&self, features: &[Vec<f32>], labels: &[usize]) -> Result<f64> {
        if features.len() != labels.len() {
            return Err(BaselineError::InvalidData(format!(
                "{} feature vectors but {} labels",
                features.len(),
                labels.len()
            )));
        }
        if features.is_empty() {
            return Err(BaselineError::InvalidData("cannot score zero samples".into()));
        }
        let predictions = self.predict_batch(features)?;
        let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len() as f64)
    }

    /// Accuracy against ground-truth labels over a zero-copy batch view.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidData`] for mismatched lengths.
    fn accuracy_view(&self, features: hdc::BatchView<'_>, labels: &[usize]) -> Result<f64> {
        if features.rows() != labels.len() {
            return Err(BaselineError::InvalidData(format!(
                "{} feature rows but {} labels",
                features.rows(),
                labels.len()
            )));
        }
        if features.is_empty() {
            return Err(BaselineError::InvalidData("cannot score zero samples".into()));
        }
        let predictions = self.predict_batch_view(features)?;
        let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / labels.len() as f64)
    }
}

/// Validates that a dataset is non-empty and internally consistent.
pub(crate) fn validate_dataset(
    features: &[Vec<f32>],
    labels: &[usize],
    input_features: usize,
    num_classes: usize,
) -> Result<()> {
    if features.is_empty() {
        return Err(BaselineError::InvalidData("training set is empty".into()));
    }
    if features.len() != labels.len() {
        return Err(BaselineError::InvalidData(format!(
            "{} feature vectors but {} labels",
            features.len(),
            labels.len()
        )));
    }
    if let Some((i, bad)) = features.iter().enumerate().find(|(_, f)| f.len() != input_features) {
        return Err(BaselineError::InvalidData(format!(
            "sample {i} has {} features, expected {input_features}",
            bad.len()
        )));
    }
    if let Some((i, &bad)) = labels.iter().enumerate().find(|&(_, &l)| l >= num_classes) {
        return Err(BaselineError::InvalidData(format!(
            "sample {i} has label {bad}, but the model expects {num_classes} classes"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(BaselineError::InvalidConfig("x".into()).to_string().contains("configuration"));
        assert!(BaselineError::InvalidData("y".into()).to_string().contains("data"));
        assert!(BaselineError::ShapeMismatch("z".into()).to_string().contains("shape"));
    }

    #[test]
    fn dataset_validation_catches_problems() {
        let xs = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let ys = vec![0, 1];
        assert!(validate_dataset(&xs, &ys, 2, 2).is_ok());
        assert!(validate_dataset(&[], &[], 2, 2).is_err());
        assert!(validate_dataset(&xs, &ys[..1], 2, 2).is_err());
        assert!(validate_dataset(&xs, &ys, 3, 2).is_err());
        assert!(validate_dataset(&xs, &[0, 9], 2, 2).is_err());
    }

    #[test]
    fn view_entry_points_mirror_the_row_forms() {
        use crate::svm::{LinearSvm, SvmConfig};

        let xs = vec![vec![0.0f32, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = vec![0, 0, 1, 1];
        let buffer = hdc::BatchBuffer::from_rows(&xs, 2).unwrap();

        let config = SvmConfig::new(2, 2).epochs(120).seed(3);
        let mut by_rows = LinearSvm::new(config.clone()).unwrap();
        by_rows.fit(&xs, &ys).unwrap();
        let mut by_view = LinearSvm::new(config).unwrap();
        by_view.fit_view(buffer.view(), &ys).unwrap();

        assert_eq!(
            by_view.predict_batch_view(buffer.view()).unwrap(),
            by_rows.predict_batch(&xs).unwrap()
        );
        assert_eq!(
            by_view.accuracy_view(buffer.view(), &ys).unwrap(),
            by_rows.accuracy(&xs, &ys).unwrap()
        );
        assert!(by_view.accuracy_view(buffer.view(), &ys[..1]).is_err());
        assert!(by_view.accuracy_view(hdc::BatchView::new(&[], 2).unwrap(), &[]).is_err());
    }
}

//! Multilayer perceptron (the paper's "DNN" baseline).
//!
//! A standard fully connected network: ReLU hidden layers, a softmax /
//! cross-entropy head and mini-batch Adam.  The architecture defaults to two
//! hidden layers of 256 units, which is representative of the MLP-class
//! models the paper's reference 8 covers for tabular NIDS data.
//!
//! The trained weights are reachable through [`Mlp::layers_mut`] so the
//! fault-injection study (Fig. 5) can flip bits of the deployed model
//! in place.

use crate::matrix::Matrix;
use crate::{validate_dataset, BaselineError, Classifier, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fully connected layer (`weights` is `inputs × outputs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight matrix, `inputs × outputs`.
    pub weights: Matrix,
    /// Bias vector, one entry per output unit.
    pub bias: Vec<f32>,
}

impl DenseLayer {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU networks.
        let scale = (2.0 / inputs as f64).sqrt();
        let weights = Matrix::from_fn(inputs, outputs, |_, _| {
            // Box–Muller standard normal.
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (z * scale) as f32
        });
        Self { weights, bias: vec![0.0; outputs] }
    }

    /// Number of trainable parameters in this layer.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// Configuration of the MLP baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Number of input features.
    pub input_features: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Hidden layer widths (empty = softmax regression).
    pub hidden_layers: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl MlpConfig {
    /// Creates a configuration with the default architecture (2 × 256 ReLU
    /// hidden layers, Adam at 1e-3, 30 epochs, batch size 64).
    pub fn new(input_features: usize, num_classes: usize) -> Self {
        Self {
            input_features,
            num_classes,
            hidden_layers: vec![256, 256],
            learning_rate: 1e-3,
            epochs: 30,
            batch_size: 64,
            weight_decay: 1e-5,
            seed: 0xD1CE,
        }
    }

    /// Sets the hidden layer widths (builder style).
    pub fn hidden_layers(mut self, hidden_layers: Vec<usize>) -> Self {
        self.hidden_layers = hidden_layers;
        self
    }

    /// Sets the number of epochs (builder style).
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the learning rate (builder style).
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.learning_rate = learning_rate;
        self
    }

    /// Sets the mini-batch size (builder style).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.input_features == 0 {
            return Err(BaselineError::InvalidConfig("input_features must be non-zero".into()));
        }
        if self.num_classes < 2 {
            return Err(BaselineError::InvalidConfig("num_classes must be at least 2".into()));
        }
        if self.hidden_layers.contains(&0) {
            return Err(BaselineError::InvalidConfig(
                "hidden layer widths must be non-zero".into(),
            ));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(BaselineError::InvalidConfig(format!(
                "learning_rate must be positive, got {}",
                self.learning_rate
            )));
        }
        if self.batch_size == 0 {
            return Err(BaselineError::InvalidConfig("batch_size must be non-zero".into()));
        }
        if !(self.weight_decay.is_finite() && self.weight_decay >= 0.0) {
            return Err(BaselineError::InvalidConfig(format!(
                "weight_decay must be non-negative, got {}",
                self.weight_decay
            )));
        }
        Ok(())
    }
}

/// Adam state for one parameter tensor.
#[derive(Debug, Clone)]
struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamState {
    fn new(len: usize) -> Self {
        Self { m: vec![0.0; len], v: vec![0.0; len] }
    }

    fn update(&mut self, params: &mut [f32], grads: &[f32], lr: f32, step: usize) {
        const BETA1: f32 = 0.9;
        const BETA2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        let t = step as i32;
        let bias1 = 1.0 - BETA1.powi(t);
        let bias2 = 1.0 - BETA2.powi(t);
        for ((p, &g), (m, v)) in
            params.iter_mut().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = BETA1 * *m + (1.0 - BETA1) * g;
            *v = BETA2 * *v + (1.0 - BETA2) * g * g;
            let m_hat = *m / bias1;
            let v_hat = *v / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

/// The multilayer-perceptron baseline.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<DenseLayer>,
    adam_weights: Vec<AdamState>,
    adam_bias: Vec<AdamState>,
    step: usize,
    trained: bool,
}

impl Mlp {
    /// Creates an untrained MLP with randomly initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: MlpConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sizes = vec![config.input_features];
        sizes.extend_from_slice(&config.hidden_layers);
        sizes.push(config.num_classes);
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for window in sizes.windows(2) {
            layers.push(DenseLayer::new(window[0], window[1], &mut rng));
        }
        let adam_weights = layers.iter().map(|l| AdamState::new(l.weights.len())).collect();
        let adam_bias = layers.iter().map(|l| AdamState::new(l.bias.len())).collect();
        Ok(Self { config, layers, adam_weights, adam_bias, step: 0, trained: false })
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::parameter_count).sum()
    }

    /// Shared access to the layers.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the fault injector).
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Whether [`Classifier::fit`] has completed at least once.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Forward pass for a batch; returns pre-softmax activations of every
    /// layer (`activations[0]` is the input batch itself).
    fn forward(&self, batch: &Matrix) -> Result<Vec<Matrix>> {
        let mut activations = vec![batch.clone()];
        for (i, layer) in self.layers.iter().enumerate() {
            let mut z = activations.last().expect("non-empty").matmul(&layer.weights)?;
            for r in 0..z.rows() {
                for (value, bias) in z.row_mut(r).iter_mut().zip(&layer.bias) {
                    *value += bias;
                }
            }
            if i + 1 < self.layers.len() {
                z.map_in_place(|v| v.max(0.0));
            }
            activations.push(z);
        }
        Ok(activations)
    }

    /// Softmax over the rows of `logits`, in place.
    fn softmax_rows(logits: &mut Matrix) {
        for r in 0..logits.rows() {
            let row = logits.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }

    /// Class probabilities for one sample.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidData`] if the feature arity is wrong.
    pub fn predict_proba(&self, features: &[f32]) -> Result<Vec<f32>> {
        if features.len() != self.config.input_features {
            return Err(BaselineError::InvalidData(format!(
                "expected {} features, got {}",
                self.config.input_features,
                features.len()
            )));
        }
        let batch = Matrix::from_rows(&[features.to_vec()])?;
        let mut logits = self.forward(&batch)?.pop().expect("at least the input activation");
        Self::softmax_rows(&mut logits);
        Ok(logits.row(0).to_vec())
    }
}

impl Classifier for Mlp {
    fn fit(&mut self, features: &[Vec<f32>], labels: &[usize]) -> Result<()> {
        let config = self.config.clone();
        validate_dataset(features, labels, config.input_features, config.num_classes)?;
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x00C0_FFEE);
        let n = features.len();
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..config.epochs {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(config.batch_size) {
                let batch_rows: Vec<Vec<f32>> =
                    chunk.iter().map(|&i| features[i].clone()).collect();
                let batch = Matrix::from_rows(&batch_rows)?;
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                self.train_batch(&batch, &batch_labels)?;
            }
        }
        self.trained = true;
        Ok(())
    }

    fn predict(&self, features: &[f32]) -> Result<usize> {
        let probabilities = self.predict_proba(features)?;
        Ok(probabilities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }
}

impl Mlp {
    /// One Adam step on a mini-batch.
    fn train_batch(&mut self, batch: &Matrix, labels: &[usize]) -> Result<()> {
        let activations = self.forward(batch)?;
        let batch_size = batch.rows() as f32;

        // Softmax + cross-entropy gradient at the output: p - one_hot(y).
        let mut delta = activations.last().expect("output activation").clone();
        Self::softmax_rows(&mut delta);
        for (r, &label) in labels.iter().enumerate() {
            let row = delta.row_mut(r);
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v /= batch_size;
            }
        }

        self.step += 1;
        // Backpropagate layer by layer (from last to first).
        for layer_index in (0..self.layers.len()).rev() {
            let input_activation = &activations[layer_index];
            // Gradients for this layer.
            let weight_grad = input_activation.transpose_matmul(&delta)?;
            let bias_grad = delta.column_sums();

            // Propagate delta to the previous layer before updating weights.
            let next_delta = if layer_index > 0 {
                let mut upstream = delta.matmul_transpose(&self.layers[layer_index].weights)?;
                // ReLU derivative of the previous activation.
                let previous = &activations[layer_index];
                for r in 0..upstream.rows() {
                    let act_row = previous.row(r).to_vec();
                    for (value, act) in upstream.row_mut(r).iter_mut().zip(act_row) {
                        if act <= 0.0 {
                            *value = 0.0;
                        }
                    }
                }
                Some(upstream)
            } else {
                None
            };

            // Weight decay.
            let mut weight_grad = weight_grad;
            if self.config.weight_decay > 0.0 {
                weight_grad.add_scaled_in_place(
                    &self.layers[layer_index].weights,
                    self.config.weight_decay,
                )?;
            }

            let layer = &mut self.layers[layer_index];
            self.adam_weights[layer_index].update(
                layer.weights.as_mut_slice(),
                weight_grad.as_slice(),
                self.config.learning_rate,
                self.step,
            );
            self.adam_bias[layer_index].update(
                &mut layer.bias,
                &bias_grad,
                self.config.learning_rate,
                self.step,
            );

            if let Some(d) = next_delta {
                delta = d;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(classes: usize, per_class: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..classes {
            for _ in 0..per_class {
                let base = c as f32;
                xs.push(vec![
                    base + rng.gen::<f32>() * 0.2,
                    1.0 - base * 0.5 + rng.gen::<f32>() * 0.2,
                    base * 0.3 + rng.gen::<f32>() * 0.2,
                ]);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(Mlp::new(MlpConfig::new(0, 2)).is_err());
        assert!(Mlp::new(MlpConfig::new(4, 1)).is_err());
        assert!(Mlp::new(MlpConfig::new(4, 2).hidden_layers(vec![0])).is_err());
        assert!(Mlp::new(MlpConfig::new(4, 2).learning_rate(0.0)).is_err());
        assert!(Mlp::new(MlpConfig::new(4, 2).batch_size(0)).is_err());
        assert!(Mlp::new(MlpConfig::new(4, 2)).is_ok());
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let mlp = Mlp::new(MlpConfig::new(10, 3).hidden_layers(vec![8])).unwrap();
        // 10*8 + 8 + 8*3 + 3
        assert_eq!(mlp.parameter_count(), 80 + 8 + 24 + 3);
        assert_eq!(mlp.layers().len(), 2);
        assert!(!mlp.is_trained());
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (xs, ys) = blobs(3, 60, 1);
        let config = MlpConfig::new(3, 3).hidden_layers(vec![32]).epochs(60).seed(2);
        let mut mlp = Mlp::new(config).unwrap();
        mlp.fit(&xs, &ys).unwrap();
        assert!(mlp.is_trained());
        let accuracy = mlp.accuracy(&xs, &ys).unwrap();
        assert!(accuracy > 0.95, "accuracy {accuracy}");
    }

    #[test]
    fn learns_xor_with_a_hidden_layer() {
        let xs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = vec![0, 1, 1, 0];
        let config = MlpConfig::new(2, 2).hidden_layers(vec![16]).epochs(500).batch_size(4).seed(3);
        let mut mlp = Mlp::new(config).unwrap();
        mlp.fit(&xs, &ys).unwrap();
        assert_eq!(mlp.predict_batch(&xs).unwrap(), ys);
    }

    #[test]
    fn predict_proba_is_a_distribution() {
        let (xs, ys) = blobs(2, 30, 4);
        let config = MlpConfig::new(3, 2).hidden_layers(vec![8]).epochs(20).seed(5);
        let mut mlp = Mlp::new(config).unwrap();
        mlp.fit(&xs, &ys).unwrap();
        let p = mlp.predict_proba(&xs[0]).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn prediction_validates_arity_and_fit_validates_data() {
        let mut mlp = Mlp::new(MlpConfig::new(3, 2)).unwrap();
        assert!(mlp.predict(&[1.0]).is_err());
        assert!(mlp.fit(&[], &[]).is_err());
        assert!(mlp.fit(&[vec![0.0; 3]], &[5]).is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (xs, ys) = blobs(2, 20, 6);
        let make = || {
            let config = MlpConfig::new(3, 2).hidden_layers(vec![8]).epochs(5).seed(9);
            let mut mlp = Mlp::new(config).unwrap();
            mlp.fit(&xs, &ys).unwrap();
            mlp
        };
        let a = make();
        let b = make();
        assert_eq!(a.layers()[0].weights, b.layers()[0].weights);
    }

    #[test]
    fn layers_mut_exposes_weights_for_fault_injection() {
        let (xs, ys) = blobs(2, 30, 7);
        let config = MlpConfig::new(3, 2).hidden_layers(vec![8]).epochs(30).seed(11);
        let mut mlp = Mlp::new(config).unwrap();
        mlp.fit(&xs, &ys).unwrap();
        let clean = mlp.accuracy(&xs, &ys).unwrap();
        // Zero out the first layer entirely: accuracy should collapse.
        for layer in mlp.layers_mut().iter_mut().take(1) {
            layer.weights.map_in_place(|_| 0.0);
        }
        let corrupted = mlp.accuracy(&xs, &ys).unwrap();
        assert!(corrupted <= clean);
    }
}

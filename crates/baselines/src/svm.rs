//! Linear one-vs-rest SVM (the paper's "SVM" baseline).
//!
//! A multi-class linear SVM trained with stochastic sub-gradient descent on
//! the L2-regularized hinge loss (Pegasos-style step-size schedule).  One
//! binary separator is trained per class; prediction picks the class with the
//! highest margin.  Linear SVMs trained by SGD are the standard way to make
//! SVM baselines tractable on million-flow NIDS corpora — and their training
//! cost still scales with `epochs × samples × features`, which is exactly the
//! behaviour the paper's Fig. 4 relies on (SVM is the slowest model).

use crate::{validate_dataset, BaselineError, Classifier, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the linear SVM baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Number of input features.
    pub input_features: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// L2 regularization strength `λ` (the Pegasos step size is `1/(λ·t)`).
    pub lambda: f32,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl SvmConfig {
    /// Creates a configuration with 20 epochs and `λ = 1e-4`.
    pub fn new(input_features: usize, num_classes: usize) -> Self {
        Self { input_features, num_classes, epochs: 20, lambda: 1e-4, seed: 0x5EAF00D }
    }

    /// Sets the number of epochs (builder style).
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the regularization strength (builder style).
    pub fn lambda(mut self, lambda: f32) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.input_features == 0 {
            return Err(BaselineError::InvalidConfig("input_features must be non-zero".into()));
        }
        if self.num_classes < 2 {
            return Err(BaselineError::InvalidConfig("num_classes must be at least 2".into()));
        }
        if self.epochs == 0 {
            return Err(BaselineError::InvalidConfig("epochs must be non-zero".into()));
        }
        if !(self.lambda.is_finite() && self.lambda > 0.0) {
            return Err(BaselineError::InvalidConfig(format!(
                "lambda must be positive, got {}",
                self.lambda
            )));
        }
        Ok(())
    }
}

/// One-vs-rest linear SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    config: SvmConfig,
    /// One weight vector per class, each of length `input_features`.
    weights: Vec<Vec<f32>>,
    /// One bias per class.
    biases: Vec<f32>,
    trained: bool,
}

impl LinearSvm {
    /// Creates an untrained SVM with zero weights.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidConfig`] for an invalid configuration.
    pub fn new(config: SvmConfig) -> Result<Self> {
        config.validate()?;
        let weights = vec![vec![0.0; config.input_features]; config.num_classes];
        let biases = vec![0.0; config.num_classes];
        Ok(Self { config, weights, biases, trained: false })
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &SvmConfig {
        &self.config
    }

    /// Whether [`Classifier::fit`] has completed at least once.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Per-class decision values `w_k · x + b_k`.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::InvalidData`] if the feature arity is wrong.
    pub fn decision_values(&self, features: &[f32]) -> Result<Vec<f32>> {
        if features.len() != self.config.input_features {
            return Err(BaselineError::InvalidData(format!(
                "expected {} features, got {}",
                self.config.input_features,
                features.len()
            )));
        }
        Ok(self
            .weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| w.iter().zip(features).map(|(wi, xi)| wi * xi).sum::<f32>() + b)
            .collect())
    }

    /// Shared access to the per-class weight vectors.
    pub fn weights(&self) -> &[Vec<f32>] {
        &self.weights
    }

    /// Mutable access to the per-class weight vectors (fault injection).
    pub fn weights_mut(&mut self) -> &mut [Vec<f32>] {
        &mut self.weights
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, features: &[Vec<f32>], labels: &[usize]) -> Result<()> {
        let config = self.config.clone();
        validate_dataset(features, labels, config.input_features, config.num_classes)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = features.len();
        let mut order: Vec<usize> = (0..n).collect();
        let lambda = config.lambda;
        let mut t = 0usize;

        for _epoch in 0..config.epochs {
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &i in &order {
                t += 1;
                // Pegasos schedule, capped so the first steps (and the
                // unregularized bias) stay numerically sane for small λ.
                let eta = (1.0 / (lambda * t as f32)).min(1.0);
                let x = &features[i];
                let y = labels[i];
                for class in 0..config.num_classes {
                    let target: f32 = if class == y { 1.0 } else { -1.0 };
                    let margin: f32 =
                        self.weights[class].iter().zip(x).map(|(w, xi)| w * xi).sum::<f32>()
                            + self.biases[class];
                    let w = &mut self.weights[class];
                    // Pegasos: shrink, then step on violations.
                    let shrink = 1.0 - eta * lambda;
                    for wi in w.iter_mut() {
                        *wi *= shrink;
                    }
                    if target * margin < 1.0 {
                        for (wi, &xi) in w.iter_mut().zip(x) {
                            *wi += eta * target * xi;
                        }
                        self.biases[class] += eta * target;
                    }
                }
            }
        }
        self.trained = true;
        Ok(())
    }

    fn predict(&self, features: &[f32]) -> Result<usize> {
        let scores = self.decision_values(features)?;
        Ok(scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-vs-rest linear SVMs need every class to be linearly separable from
    /// the union of the others, so the test blobs use (noisy) one-hot class
    /// centres rather than collinear ones.
    fn blobs(classes: usize, per_class: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..classes {
            for _ in 0..per_class {
                let sample: Vec<f32> = (0..4)
                    .map(|j| {
                        let center = if j == c % 4 { 2.0 } else { 0.0 };
                        center + rng.gen::<f32>() * 0.3
                    })
                    .collect();
                xs.push(sample);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(LinearSvm::new(SvmConfig::new(0, 2)).is_err());
        assert!(LinearSvm::new(SvmConfig::new(3, 1)).is_err());
        assert!(LinearSvm::new(SvmConfig::new(3, 2).epochs(0)).is_err());
        assert!(LinearSvm::new(SvmConfig::new(3, 2).lambda(0.0)).is_err());
        assert!(LinearSvm::new(SvmConfig::new(3, 2)).is_ok());
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (xs, ys) = blobs(4, 50, 1);
        let mut svm = LinearSvm::new(SvmConfig::new(4, 4).epochs(30).seed(2)).unwrap();
        svm.fit(&xs, &ys).unwrap();
        assert!(svm.is_trained());
        let accuracy = svm.accuracy(&xs, &ys).unwrap();
        assert!(accuracy > 0.9, "accuracy {accuracy}");
    }

    #[test]
    fn decision_values_have_one_entry_per_class() {
        let svm = LinearSvm::new(SvmConfig::new(3, 5)).unwrap();
        let scores = svm.decision_values(&[0.0, 1.0, 2.0]).unwrap();
        assert_eq!(scores.len(), 5);
        assert!(svm.decision_values(&[1.0]).is_err());
    }

    #[test]
    fn fit_validates_the_dataset() {
        let mut svm = LinearSvm::new(SvmConfig::new(3, 2)).unwrap();
        assert!(svm.fit(&[], &[]).is_err());
        assert!(svm.fit(&[vec![0.0; 3]], &[0, 1]).is_err());
        assert!(svm.fit(&[vec![0.0; 2]], &[0]).is_err());
        assert!(svm.fit(&[vec![0.0; 3]], &[4]).is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (xs, ys) = blobs(3, 30, 3);
        let train = |seed| {
            let mut svm = LinearSvm::new(SvmConfig::new(4, 3).epochs(10).seed(seed)).unwrap();
            svm.fit(&xs, &ys).unwrap();
            svm
        };
        assert_eq!(train(7), train(7));
        assert_ne!(train(7).weights(), train(8).weights());
    }

    #[test]
    fn weights_mut_allows_perturbation() {
        let (xs, ys) = blobs(2, 40, 5);
        let mut svm = LinearSvm::new(SvmConfig::new(4, 2).epochs(20).seed(6)).unwrap();
        svm.fit(&xs, &ys).unwrap();
        let clean = svm.accuracy(&xs, &ys).unwrap();
        for w in svm.weights_mut() {
            for v in w.iter_mut() {
                *v = -*v;
            }
        }
        let flipped = svm.accuracy(&xs, &ys).unwrap();
        assert!(flipped < clean, "sign-flipping every weight must hurt accuracy");
    }

    #[test]
    fn predict_batch_and_accuracy_helpers_work() {
        let (xs, ys) = blobs(2, 25, 9);
        let mut svm = LinearSvm::new(SvmConfig::new(4, 2).epochs(15).seed(10)).unwrap();
        svm.fit(&xs, &ys).unwrap();
        let predictions = svm.predict_batch(&xs).unwrap();
        assert_eq!(predictions.len(), xs.len());
        assert!(svm.accuracy(&xs, &ys[..10]).is_err());
        assert!(svm.accuracy(&[], &[]).is_err());
    }
}

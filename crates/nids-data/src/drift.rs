//! Concept-drift stream generation.
//!
//! Real network traffic is non-stationary: the benign mix shifts with usage
//! patterns and attack campaigns come and go.  The paper motivates HDC for
//! NIDS precisely because edge detectors must keep adapting; this module
//! provides the workload for studying that adaptation.  A [`DriftStream`]
//! concatenates *phases*, each phase sampling from its own class-prevalence
//! mix (and optionally a different difficulty), so a streaming learner sees
//! abrupt or gradual distribution shifts at known time steps.

use crate::dataset::Dataset;
use crate::schema::Schema;
use crate::synth::{generate, ClassProfile, SyntheticConfig};
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};

/// One phase of a drifting traffic stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftPhase {
    /// Number of flows emitted during this phase.
    pub samples: usize,
    /// Per-class prevalence multipliers applied on top of the base profiles'
    /// weights (one entry per class; `1.0` keeps the base prevalence, `0.0`
    /// removes the class from this phase, larger values make it surge).
    pub class_weight_multipliers: Vec<f64>,
    /// Class-overlap multiplier for this phase (see
    /// [`SyntheticConfig::difficulty`]).
    pub difficulty: f64,
}

impl DriftPhase {
    /// A phase with the base class mix and unit difficulty.
    pub fn stationary(samples: usize, num_classes: usize) -> Self {
        Self { samples, class_weight_multipliers: vec![1.0; num_classes], difficulty: 1.0 }
    }

    /// A phase in which one class surges by `factor` (an attack campaign).
    pub fn surge(samples: usize, num_classes: usize, class: usize, factor: f64) -> Self {
        let mut multipliers = vec![1.0; num_classes];
        if class < num_classes {
            multipliers[class] = factor;
        }
        Self { samples, class_weight_multipliers: multipliers, difficulty: 1.0 }
    }

    /// A phase from which one class is entirely **absent** (multiplier
    /// zero) — the "before" side of a zero-day scenario: train and serve
    /// without the class, then let a later phase introduce it.
    pub fn absent(samples: usize, num_classes: usize, class: usize) -> Self {
        let mut multipliers = vec![1.0; num_classes];
        if class < num_classes {
            multipliers[class] = 0.0;
        }
        Self { samples, class_weight_multipliers: multipliers, difficulty: 1.0 }
    }

    /// Sets the difficulty of this phase (builder style).
    pub fn difficulty(mut self, difficulty: f64) -> Self {
        self.difficulty = difficulty;
        self
    }

    /// Scales one class's prevalence multiplier (builder style; out-of-range
    /// classes are ignored).
    pub fn scale_class(mut self, class: usize, multiplier: f64) -> Self {
        if class < self.class_weight_multipliers.len() {
            self.class_weight_multipliers[class] = multiplier;
        }
        self
    }
}

/// A multi-phase drifting stream of labelled flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftStream {
    /// The flows of every phase, concatenated in phase order.
    dataset: Dataset,
    /// Index of the first flow of each phase.
    phase_starts: Vec<usize>,
}

impl DriftStream {
    /// Generates a drifting stream over `phases` using the dataset's base
    /// profiles.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] if no phase is given, a phase
    /// has the wrong number of multipliers / a non-positive total weight, or
    /// generation fails.
    pub fn generate(
        schema: &Schema,
        base_profiles: &[ClassProfile],
        phases: &[DriftPhase],
        seed: u64,
    ) -> Result<Self> {
        if phases.is_empty() {
            return Err(DataError::InvalidArgument(
                "a drift stream needs at least one phase".into(),
            ));
        }
        let mut dataset = Dataset::empty(schema.clone());
        let mut phase_starts = Vec::with_capacity(phases.len());
        for (index, phase) in phases.iter().enumerate() {
            if phase.class_weight_multipliers.len() != base_profiles.len() {
                return Err(DataError::InvalidArgument(format!(
                    "phase {index} has {} weight multipliers for {} classes",
                    phase.class_weight_multipliers.len(),
                    base_profiles.len()
                )));
            }
            let mut profiles = base_profiles.to_vec();
            for (profile, &multiplier) in profiles.iter_mut().zip(&phase.class_weight_multipliers) {
                if !(multiplier.is_finite() && multiplier >= 0.0) {
                    return Err(DataError::InvalidArgument(format!(
                        "phase {index} has an invalid weight multiplier {multiplier}"
                    )));
                }
                // A zero multiplier removes the class from this phase
                // outright: the generator structurally never samples a
                // zero-weight profile (no "infinitesimal weight" escape
                // hatch — an absent class is *guaranteed* absent).
                profile.weight *= multiplier;
            }
            let config =
                SyntheticConfig::new(phase.samples, seed.wrapping_add(index as u64 * 7919))
                    .difficulty(phase.difficulty);
            let phase_data = generate(schema, &profiles, &config)?;
            phase_starts.push(dataset.len());
            dataset.extend_from(&phase_data)?;
        }
        Ok(Self { dataset, phase_starts })
    }

    /// Builds a drift stream from pre-generated per-phase datasets (one
    /// dataset per phase, concatenated in order).  This is the entry point
    /// for workloads whose records do not come from the Gaussian
    /// [`ClassProfile`] sampler — e.g. the symbolic sequence corpora, where
    /// each phase is produced by a Markov-chain generator — while keeping
    /// the phase-window replay machinery identical.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] if no phase is given or the
    /// phases disagree on the schema.
    pub fn from_phase_datasets(phases: &[Dataset]) -> Result<Self> {
        let first = phases.first().ok_or_else(|| {
            DataError::InvalidArgument("a drift stream needs at least one phase".into())
        })?;
        let mut dataset = Dataset::empty(first.schema().clone());
        let mut phase_starts = Vec::with_capacity(phases.len());
        for phase_data in phases {
            phase_starts.push(dataset.len());
            dataset.extend_from(phase_data)?;
        }
        Ok(Self { dataset, phase_starts })
    }

    /// The concatenated flows of the whole stream.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Total number of flows.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// Returns `true` if the stream has no flows.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phase_starts.len()
    }

    /// The flow index at which phase `phase` starts.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] for an unknown phase.
    pub fn phase_start(&self, phase: usize) -> Result<usize> {
        self.phase_starts.get(phase).copied().ok_or_else(|| {
            DataError::InvalidArgument(format!(
                "phase {phase} out of range for {} phases",
                self.phase_starts.len()
            ))
        })
    }

    /// The half-open flow-index range `start..end` of phase `phase` — the
    /// windowing primitive of the scenario-replay harness (per-phase
    /// accuracy is always computed over exactly these flows).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] for an unknown phase.
    pub fn phase_range(&self, phase: usize) -> Result<std::ops::Range<usize>> {
        let start = self.phase_start(phase)?;
        let end = self.phase_starts.get(phase + 1).copied().unwrap_or(self.dataset.len());
        Ok(start..end)
    }

    /// The phase that flow `index` belongs to.
    pub fn phase_of(&self, index: usize) -> usize {
        match self.phase_starts.binary_search(&index) {
            Ok(position) => position,
            Err(position) => position.saturating_sub(1),
        }
    }

    /// Iterates over `(record, label, phase)` triples in stream order.
    pub fn iter(&self) -> impl Iterator<Item = (&[f32], usize, usize)> + '_ {
        self.dataset
            .records()
            .iter()
            .zip(self.dataset.labels())
            .enumerate()
            .map(|(i, (record, &label))| (record.as_slice(), label, self.phase_of(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    fn base() -> (Schema, Vec<ClassProfile>) {
        let kind = DatasetKind::NslKdd;
        (kind.schema(), kind.profiles())
    }

    #[test]
    fn phases_concatenate_in_order() {
        let (schema, profiles) = base();
        let phases = vec![
            DriftPhase::stationary(300, profiles.len()),
            DriftPhase::surge(200, profiles.len(), 1, 10.0),
            DriftPhase::stationary(100, profiles.len()).difficulty(2.0),
        ];
        let stream = DriftStream::generate(&schema, &profiles, &phases, 3).unwrap();
        assert_eq!(stream.len(), 600);
        assert!(!stream.is_empty());
        assert_eq!(stream.num_phases(), 3);
        assert_eq!(stream.phase_start(0).unwrap(), 0);
        assert_eq!(stream.phase_start(1).unwrap(), 300);
        assert_eq!(stream.phase_start(2).unwrap(), 500);
        assert!(stream.phase_start(3).is_err());
        assert_eq!(stream.phase_of(0), 0);
        assert_eq!(stream.phase_of(299), 0);
        assert_eq!(stream.phase_of(300), 1);
        assert_eq!(stream.phase_of(599), 2);
    }

    #[test]
    fn surging_a_class_raises_its_prevalence_in_that_phase_only() {
        let (schema, profiles) = base();
        let phases = vec![
            DriftPhase::stationary(1500, profiles.len()),
            DriftPhase::surge(1500, profiles.len(), 1, 30.0), // DoS campaign
        ];
        let stream = DriftStream::generate(&schema, &profiles, &phases, 11).unwrap();
        let count_dos = |from: usize, to: usize| {
            stream.dataset().labels()[from..to].iter().filter(|&&l| l == 1).count()
        };
        let before = count_dos(0, 1500);
        let during = count_dos(1500, 3000);
        assert!(
            during > before + 200,
            "the DoS surge phase ({during}) should contain far more DoS flows than the \
             stationary phase ({before})"
        );
    }

    #[test]
    fn zeroing_a_class_effectively_removes_it() {
        let (schema, profiles) = base();
        let mut multipliers = vec![1.0; profiles.len()];
        multipliers[0] = 0.0; // no benign traffic at all
        let phase =
            DriftPhase { samples: 800, class_weight_multipliers: multipliers, difficulty: 1.0 };
        let stream = DriftStream::generate(&schema, &profiles, &[phase], 5).unwrap();
        let benign = stream.dataset().labels().iter().filter(|&&l| l == 0).count();
        assert_eq!(benign, 0);
    }

    #[test]
    fn invalid_streams_are_rejected() {
        let (schema, profiles) = base();
        assert!(DriftStream::generate(&schema, &profiles, &[], 0).is_err());
        let wrong_arity =
            DriftPhase { samples: 10, class_weight_multipliers: vec![1.0; 2], difficulty: 1.0 };
        assert!(DriftStream::generate(&schema, &profiles, &[wrong_arity], 0).is_err());
        let negative = DriftPhase {
            samples: 10,
            class_weight_multipliers: vec![-1.0; profiles.len()],
            difficulty: 1.0,
        };
        assert!(DriftStream::generate(&schema, &profiles, &[negative], 0).is_err());
    }

    #[test]
    fn streams_are_bit_identical_per_seed_with_exact_phase_boundaries() {
        let (schema, profiles) = base();
        let phases = vec![
            DriftPhase::stationary(400, profiles.len()),
            DriftPhase::surge(250, profiles.len(), 2, 12.0).difficulty(1.5),
            DriftPhase::absent(150, profiles.len(), 0),
        ];
        let a = DriftStream::generate(&schema, &profiles, &phases, 77).unwrap();
        let b = DriftStream::generate(&schema, &profiles, &phases, 77).unwrap();
        // Same seed + phases => the *entire* flow sequence is bit-identical
        // (records as IEEE-754 bit patterns, labels, phase boundaries).
        assert_eq!(a.dataset().labels(), b.dataset().labels());
        assert_eq!(a.dataset().records().len(), b.dataset().records().len());
        for (ra, rb) in a.dataset().records().iter().zip(b.dataset().records()) {
            let bits_a: Vec<u32> = ra.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u32> = rb.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
        }
        // Phase boundary sample counts are exact, not approximate.
        assert_eq!(a.phase_range(0).unwrap(), 0..400);
        assert_eq!(a.phase_range(1).unwrap(), 400..650);
        assert_eq!(a.phase_range(2).unwrap(), 650..800);
        assert!(a.phase_range(3).is_err());
        assert_eq!(a.len(), 800);
        // A different seed produces a different stream.
        let c = DriftStream::generate(&schema, &profiles, &phases, 78).unwrap();
        assert_ne!(a.dataset().labels(), c.dataset().labels());
    }

    #[test]
    fn absent_classes_are_structurally_never_emitted() {
        let (schema, profiles) = base();
        // A long absent phase: the guarantee is structural (zero-weight
        // profiles are excluded from the sampler), not probabilistic.
        let phases = vec![
            DriftPhase::absent(4000, profiles.len(), 1),
            DriftPhase::stationary(500, profiles.len()).scale_class(2, 0.0),
        ];
        let stream = DriftStream::generate(&schema, &profiles, &phases, 13).unwrap();
        let range = stream.phase_range(0).unwrap();
        assert_eq!(
            stream.dataset().labels()[range].iter().filter(|&&l| l == 1).count(),
            0,
            "a zero-weight class must never be emitted in its absent phase"
        );
        let range = stream.phase_range(1).unwrap();
        assert_eq!(stream.dataset().labels()[range].iter().filter(|&&l| l == 2).count(), 0);
        // The class reappears nowhere else either (phase 1 kept class 1).
        assert!(stream.dataset().labels().iter().any(|&l| l == 1));
    }

    #[test]
    fn from_phase_datasets_concatenates_with_exact_boundaries() {
        let (schema, profiles) = base();
        let a = crate::synth::generate(&schema, &profiles, &crate::SyntheticConfig::new(120, 1))
            .unwrap();
        let b = crate::synth::generate(&schema, &profiles, &crate::SyntheticConfig::new(80, 2))
            .unwrap();
        let stream = DriftStream::from_phase_datasets(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(stream.len(), 200);
        assert_eq!(stream.num_phases(), 2);
        assert_eq!(stream.phase_range(0).unwrap(), 0..120);
        assert_eq!(stream.phase_range(1).unwrap(), 120..200);
        assert_eq!(&stream.dataset().labels()[..120], a.labels());
        assert_eq!(&stream.dataset().labels()[120..], b.labels());
        assert!(DriftStream::from_phase_datasets(&[]).is_err());
        // Mismatched schemas are rejected.
        let other = Dataset::empty(DatasetKind::UnswNb15.schema());
        assert!(DriftStream::from_phase_datasets(&[a, other]).is_err());
    }

    #[test]
    fn iter_yields_every_flow_with_its_phase() {
        let (schema, profiles) = base();
        let phases = vec![
            DriftPhase::stationary(50, profiles.len()),
            DriftPhase::stationary(70, profiles.len()),
        ];
        let stream = DriftStream::generate(&schema, &profiles, &phases, 9).unwrap();
        let collected: Vec<_> = stream.iter().collect();
        assert_eq!(collected.len(), 120);
        assert!(collected[..50].iter().all(|&(_, _, phase)| phase == 0));
        assert!(collected[50..].iter().all(|&(_, _, phase)| phase == 1));
        assert!(collected.iter().all(|&(record, label, _)| {
            schema.validate_record(record).is_ok() && label < schema.num_classes()
        }));
    }
}

//! CSV loading for the real corpora.
//!
//! The synthetic generators make the repository self-contained, but anyone
//! holding the real NSL-KDD / UNSW-NB15 / CIC-IDS CSV files can load them
//! through this module and run the exact same experiment harnesses.  The
//! loader is schema-driven: each CSV column is parsed according to the
//! corresponding [`FeatureKind`] (numbers for numeric columns, category names
//! for categorical columns) and the final column is interpreted as the class
//! label.
//!
//! Unknown category values and unknown labels are reported with their line
//! number rather than silently skipped, because silently dropping attack rows
//! is exactly the kind of preprocessing bug that invalidates NIDS studies.

use crate::dataset::Dataset;
use crate::schema::{FeatureKind, Schema};
use crate::{DataError, Result};

/// Options controlling CSV parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsvOptions {
    /// Skip the first line (header row).
    pub has_header: bool,
    /// Field delimiter (the corpora all use `,`).
    pub delimiter: char,
    /// Treat non-finite / unparsable numeric fields (`Infinity`, `NaN`, empty)
    /// as `0.0` instead of failing — the CIC corpora contain a handful of
    /// such rows.
    pub lenient_numeric: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self { has_header: true, delimiter: ',', lenient_numeric: true }
    }
}

/// Parses CSV text into a [`Dataset`] according to `schema`.
///
/// Each row must contain `schema.num_features() + 1` fields: the features in
/// schema order followed by the class label (matched case-insensitively
/// against the schema's class names).
///
/// # Errors
///
/// Returns [`DataError::Parse`] with the 1-based line number for any
/// malformed row, unknown category value or unknown class label.
pub fn parse_csv(schema: &Schema, text: &str, options: CsvOptions) -> Result<Dataset> {
    let mut dataset = Dataset::empty(schema.clone());
    for (line_index, line) in text.lines().enumerate() {
        let line_number = line_index + 1;
        if line_index == 0 && options.has_header {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(options.delimiter).map(str::trim).collect();
        let expected = schema.num_features() + 1;
        if fields.len() != expected {
            return Err(DataError::Parse {
                line: line_number,
                message: format!("expected {expected} fields, found {}", fields.len()),
            });
        }
        let mut record = Vec::with_capacity(schema.num_features());
        for (field, feature) in fields.iter().zip(schema.features()) {
            match &feature.kind {
                FeatureKind::Numeric { .. } => {
                    let value = match field.parse::<f64>() {
                        Ok(v) if v.is_finite() => v,
                        Ok(_) | Err(_) if options.lenient_numeric => 0.0,
                        Ok(v) => {
                            return Err(DataError::Parse {
                                line: line_number,
                                message: format!(
                                    "non-finite value {v} for numeric feature {:?}",
                                    feature.name
                                ),
                            })
                        }
                        Err(_) => {
                            return Err(DataError::Parse {
                                line: line_number,
                                message: format!(
                                    "cannot parse {field:?} as numeric feature {:?}",
                                    feature.name
                                ),
                            })
                        }
                    };
                    record.push(value as f32);
                }
                FeatureKind::Categorical { values } => {
                    let index = values
                        .iter()
                        .position(|v| v.eq_ignore_ascii_case(field))
                        .ok_or_else(|| DataError::Parse {
                            line: line_number,
                            message: format!(
                                "unknown category {field:?} for feature {:?}",
                                feature.name
                            ),
                        })?;
                    record.push(index as f32);
                }
            }
        }
        let label_field = fields[schema.num_features()];
        let label =
            schema.classes().iter().position(|c| c.eq_ignore_ascii_case(label_field)).ok_or_else(
                || DataError::Parse {
                    line: line_number,
                    message: format!("unknown class label {label_field:?}"),
                },
            )?;
        dataset
            .push(record, label)
            .map_err(|e| DataError::Parse { line: line_number, message: e.to_string() })?;
    }
    Ok(dataset)
}

/// Reads and parses a CSV file from disk.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] if the file cannot be read, or any
/// error from [`parse_csv`].
pub fn load_csv_file(
    schema: &Schema,
    path: &std::path::Path,
    options: CsvOptions,
) -> Result<Dataset> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DataError::InvalidArgument(format!("cannot read {}: {e}", path.display())))?;
    parse_csv(schema, &text, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FeatureKind, FeatureSpec};

    fn schema() -> Schema {
        Schema::new(
            "toy",
            vec![
                FeatureSpec::new("duration", FeatureKind::numeric(0.0, 100.0)),
                FeatureSpec::new("protocol", FeatureKind::categorical(["tcp", "udp"])),
                FeatureSpec::new("bytes", FeatureKind::numeric(0.0, 1e6)),
            ],
            vec!["normal".into(), "attack".into()],
        )
        .unwrap()
    }

    #[test]
    fn parses_a_well_formed_csv() {
        let text = "duration,protocol,bytes,label\n\
                    1.5,tcp,100,normal\n\
                    0.1,udp,9000,attack\n\
                    \n\
                    3.0,TCP,42,NORMAL\n";
        let d = parse_csv(&schema(), text, CsvOptions::default()).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.labels(), &[0, 1, 0]);
        assert_eq!(d.records()[1], vec![0.1, 1.0, 9000.0]);
        // Case-insensitive category and label matching.
        assert_eq!(d.records()[2][1], 0.0);
    }

    #[test]
    fn no_header_mode_parses_the_first_line() {
        let text = "1.0,tcp,5,normal\n";
        let options = CsvOptions { has_header: false, ..CsvOptions::default() };
        let d = parse_csv(&schema(), text, options).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn field_count_mismatch_reports_the_line() {
        let text = "h\n1.0,tcp,normal\n";
        let err = parse_csv(&schema(), text, CsvOptions::default()).unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_category_and_label_are_rejected() {
        let bad_category = "h\n1.0,icmp,5,normal\n";
        assert!(matches!(
            parse_csv(&schema(), bad_category, CsvOptions::default()),
            Err(DataError::Parse { line: 2, .. })
        ));
        let bad_label = "h\n1.0,tcp,5,weird\n";
        assert!(matches!(
            parse_csv(&schema(), bad_label, CsvOptions::default()),
            Err(DataError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn lenient_numeric_mode_maps_garbage_to_zero() {
        let text = "h\nInfinity,tcp,NaN,normal\n";
        let d = parse_csv(&schema(), text, CsvOptions::default()).unwrap();
        assert_eq!(d.records()[0][0], 0.0);
        assert_eq!(d.records()[0][2], 0.0);

        let strict = CsvOptions { lenient_numeric: false, ..CsvOptions::default() };
        assert!(parse_csv(&schema(), text, strict).is_err());
    }

    #[test]
    fn round_trips_through_a_temporary_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("cyberhd_loader_test.csv");
        std::fs::write(&path, "h\n2.0,udp,77,attack\n").unwrap();
        let d = load_csv_file(&schema(), &path, CsvOptions::default()).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.labels(), &[1]);
        std::fs::remove_file(&path).ok();
        assert!(load_csv_file(&schema(), &path, CsvOptions::default()).is_err());
    }
}

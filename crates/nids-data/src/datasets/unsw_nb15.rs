//! UNSW-NB15 (Moustafa & Slay, MilCIS 2015).
//!
//! 42 flow features (after dropping the record id and the label columns):
//! 3 categorical (protocol, service, TCP state) and 39 numeric flow
//! statistics, with ten traffic categories — benign plus nine attack
//! families.  The attack families map directly onto the behaviour templates
//! in [`crate::traffic`].

use crate::schema::{FeatureKind, FeatureSpec, Schema};
use crate::traffic::AttackKind;

/// Protocols observed in the corpus (top of the long tail).
const PROTOCOLS: [&str; 8] = ["tcp", "udp", "arp", "ospf", "icmp", "igmp", "rtp", "sctp"];

/// Application services (the `-` entry stands for "no service resolved").
const SERVICES: [&str; 13] = [
    "-", "http", "ftp", "ftp-data", "smtp", "pop3", "dns", "snmp", "ssl", "ssh", "irc", "radius",
    "dhcp",
];

/// TCP connection states.
const STATES: [&str; 9] = ["FIN", "INT", "CON", "ECO", "REQ", "RST", "PAR", "URN", "no"];

/// The 42-feature UNSW-NB15 schema with its ten traffic categories.
pub fn schema() -> Schema {
    let rate = || FeatureKind::numeric(0.0, 1.0);
    let count = || FeatureKind::numeric(0.0, 100.0);
    let bytes = || FeatureKind::numeric(0.0, 1.0e6);
    let load = || FeatureKind::numeric(0.0, 1.0e8);
    let ms = || FeatureKind::numeric(0.0, 1.0e4);

    let features = vec![
        FeatureSpec::new("dur", FeatureKind::numeric(0.0, 60.0)),
        FeatureSpec::new("proto", FeatureKind::categorical(PROTOCOLS)),
        FeatureSpec::new("service", FeatureKind::categorical(SERVICES)),
        FeatureSpec::new("state", FeatureKind::categorical(STATES)),
        FeatureSpec::new("spkts", FeatureKind::numeric(0.0, 1.0e4)),
        FeatureSpec::new("dpkts", FeatureKind::numeric(0.0, 1.0e4)),
        FeatureSpec::new("sbytes", bytes()),
        FeatureSpec::new("dbytes", bytes()),
        FeatureSpec::new("rate", FeatureKind::numeric(0.0, 1.0e6)),
        FeatureSpec::new("sttl", FeatureKind::numeric(0.0, 255.0)),
        FeatureSpec::new("dttl", FeatureKind::numeric(0.0, 255.0)),
        FeatureSpec::new("sload", load()),
        FeatureSpec::new("dload", load()),
        FeatureSpec::new("sloss", count()),
        FeatureSpec::new("dloss", count()),
        FeatureSpec::new("sinpkt", ms()),
        FeatureSpec::new("dinpkt", ms()),
        FeatureSpec::new("sjit", ms()),
        FeatureSpec::new("djit", ms()),
        FeatureSpec::new("swin", FeatureKind::numeric(0.0, 65535.0)),
        FeatureSpec::new("stcpb", FeatureKind::numeric(0.0, 4.3e9)),
        FeatureSpec::new("dtcpb", FeatureKind::numeric(0.0, 4.3e9)),
        FeatureSpec::new("dwin", FeatureKind::numeric(0.0, 65535.0)),
        FeatureSpec::new("tcprtt", FeatureKind::numeric(0.0, 10.0)),
        FeatureSpec::new("synack", FeatureKind::numeric(0.0, 10.0)),
        FeatureSpec::new("ackdat", FeatureKind::numeric(0.0, 10.0)),
        FeatureSpec::new("smean", FeatureKind::numeric(0.0, 1500.0)),
        FeatureSpec::new("dmean", FeatureKind::numeric(0.0, 1500.0)),
        FeatureSpec::new("trans_depth", FeatureKind::numeric(0.0, 10.0)),
        FeatureSpec::new("response_body_len", bytes()),
        FeatureSpec::new("ct_srv_src", FeatureKind::numeric(0.0, 63.0)),
        FeatureSpec::new("ct_state_ttl", FeatureKind::numeric(0.0, 6.0)),
        FeatureSpec::new("ct_dst_ltm", FeatureKind::numeric(0.0, 63.0)),
        FeatureSpec::new("ct_src_dport_ltm", FeatureKind::numeric(0.0, 63.0)),
        FeatureSpec::new("ct_dst_sport_ltm", FeatureKind::numeric(0.0, 63.0)),
        FeatureSpec::new("ct_dst_src_ltm", FeatureKind::numeric(0.0, 63.0)),
        FeatureSpec::new("is_ftp_login", rate()),
        FeatureSpec::new("ct_ftp_cmd", FeatureKind::numeric(0.0, 10.0)),
        FeatureSpec::new("ct_flw_http_mthd", FeatureKind::numeric(0.0, 30.0)),
        FeatureSpec::new("ct_src_ltm", FeatureKind::numeric(0.0, 63.0)),
        FeatureSpec::new("ct_srv_dst", FeatureKind::numeric(0.0, 63.0)),
        FeatureSpec::new("is_sm_ips_ports", rate()),
    ];

    let classes = vec![
        "Normal".to_string(),
        "Generic".to_string(),
        "Exploits".to_string(),
        "Fuzzers".to_string(),
        "DoS".to_string(),
        "Reconnaissance".to_string(),
        "Analysis".to_string(),
        "Backdoor".to_string(),
        "Shellcode".to_string(),
        "Worms".to_string(),
    ];

    Schema::new("UNSW-NB15", features, classes).expect("UNSW-NB15 schema is statically valid")
}

/// Class taxonomy: `(name, behaviour template, prevalence weight)`.
///
/// Weights approximate the real corpus' heavy imbalance (benign and Generic
/// dominate; Shellcode and Worms are rare).
pub fn class_specs() -> Vec<(&'static str, AttackKind, f64)> {
    vec![
        ("Normal", AttackKind::Normal, 45.0),
        ("Generic", AttackKind::Generic, 27.0),
        ("Exploits", AttackKind::Exploits, 15.0),
        ("Fuzzers", AttackKind::Fuzzers, 8.0),
        ("DoS", AttackKind::Dos, 5.5),
        ("Reconnaissance", AttackKind::Reconnaissance, 4.7),
        ("Analysis", AttackKind::Analysis, 1.0),
        ("Backdoor", AttackKind::Backdoor, 0.9),
        ("Shellcode", AttackKind::Shellcode, 0.6),
        ("Worms", AttackKind::Worms, 0.4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_42_features_and_10_classes() {
        let s = schema();
        assert_eq!(s.num_features(), 42);
        assert_eq!(s.num_classes(), 10);
        assert_eq!(s.encoded_width(), 39 + 8 + 13 + 9);
    }

    #[test]
    fn canonical_features_are_present() {
        let s = schema();
        for name in ["dur", "sbytes", "ct_state_ttl", "is_sm_ips_ports"] {
            assert!(s.feature_index(name).is_some(), "missing feature {name}");
        }
        assert_eq!(s.class_index("Worms"), Some(9));
    }

    #[test]
    fn class_specs_follow_schema_order() {
        let specs = class_specs();
        let s = schema();
        assert_eq!(specs.len(), 10);
        for (spec, class) in specs.iter().zip(s.classes()) {
            assert_eq!(spec.0, class);
        }
        assert!(specs[0].2 > specs[9].2, "benign far outweighs worms");
    }
}

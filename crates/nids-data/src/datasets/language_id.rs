//! Synthetic multi-language character corpus for the language-ID workload.
//!
//! This is the first symbolic member of the workload zoo: sequences of
//! character symbols, not numeric flow measurements.  Each "language" is a
//! seeded first-order Markov chain over a 27-symbol alphabet (`a`–`z` plus
//! word space) with its own sparse preferred-successor structure, so the
//! languages have genuinely distinct bigram/trigram statistics — exactly
//! the signal the n-gram encoder keys on — while remaining fully
//! deterministic per seed, like [`crate::synth`] is for flows.
//!
//! The schema carries [`NUM_LANGUAGES`] classes but only the first
//! [`NUM_SEEN`] are meant to appear in training corpora; the last class
//! ([`NOVEL_LANGUAGE`]) is a held-out language for zero-day experiments —
//! it only ever shows up in drift phases built with explicit weights.
//! Vocabulary drift is modelled by [`generate_shifted`]: each language's
//! transition structure interpolates toward an alternative seeded variant,
//! which gradually reshapes its n-gram statistics without changing labels.

use crate::dataset::Dataset;
use crate::schema::{FeatureKind, FeatureSpec, Schema};
use crate::synth::Sampler;
use crate::{DataError, Result};

/// Symbols per position: `a`–`z` plus the word space `_`.
pub const ALPHABET: usize = 27;

/// Characters per sequence (one record = one fixed-length text snippet).
pub const SEQUENCE_LEN: usize = 64;

/// Languages present in training corpora.
pub const NUM_SEEN: usize = 8;

/// Total languages in the schema, including the held-out zero-day one.
pub const NUM_LANGUAGES: usize = 9;

/// Class index of the held-out language (never in [`generate`] output).
pub const NOVEL_LANGUAGE: usize = NUM_SEEN;

/// Salt decorrelating the language chains from the flow generators.
const SALT: u64 = 0x4C41_4E47;

/// Salt for the drifted variant of each language's transition structure.
const DRIFT_SALT: u64 = 0x4452_4654;

/// Preferred successors per symbol; the sparsity that gives each language
/// its recognizable n-gram signature.
const PREFERRED: usize = 3;

/// Weight of a preferred successor relative to the background mass.
const PREFERRED_WEIGHT: f64 = 6.0;

/// Background weight of a non-preferred successor.
const BACKGROUND_WEIGHT: f64 = 0.25;

/// The corpus schema: [`SEQUENCE_LEN`] categorical character positions over
/// the shared alphabet, one class per language.
pub fn schema() -> Schema {
    let letters: Vec<String> = (0..ALPHABET)
        .map(|s| if s < 26 { ((b'a' + s as u8) as char).to_string() } else { "_".into() })
        .collect();
    let features = (0..SEQUENCE_LEN)
        .map(|i| {
            FeatureSpec::new(format!("char_{i:02}"), FeatureKind::categorical(letters.clone()))
        })
        .collect();
    let classes = (0..NUM_LANGUAGES)
        .map(|l| if l == NOVEL_LANGUAGE { "lang-zeta".into() } else { format!("lang-{l:02}") })
        .collect();
    Schema::new("zoo-language-id", features, classes).expect("static schema is valid")
}

/// The unnormalized first-order transition weights of one language,
/// `weights[s * ALPHABET + t]` being the weight of successor `t` after
/// symbol `s`.  Pure in `(language, salt)`.
fn transition_weights(language: usize, salt: u64) -> Vec<f64> {
    let mut sampler = Sampler::new(salt ^ SALT.wrapping_add((language as u64 + 1) * 0x9E37));
    let mut weights = vec![BACKGROUND_WEIGHT; ALPHABET * ALPHABET];
    for s in 0..ALPHABET {
        let row = &mut weights[s * ALPHABET..(s + 1) * ALPHABET];
        let mut strength = PREFERRED_WEIGHT;
        for _ in 0..PREFERRED {
            row[sampler.index(ALPHABET)] += strength;
            strength *= 0.6;
        }
    }
    weights
}

/// The effective transition weights of `language` at drift position
/// `shift` ∈ `[0, 1]`: a linear blend between the base structure and a
/// drifted variant with independently chosen preferred successors.
fn blended_weights(language: usize, shift: f64) -> Vec<f64> {
    let base = transition_weights(language, 0);
    if shift <= 0.0 {
        return base;
    }
    let drifted = transition_weights(language, DRIFT_SALT);
    base.iter().zip(&drifted).map(|(&b, &d)| (1.0 - shift) * b + shift * d).collect()
}

/// Generates `samples` sequences mixing languages by `weights` (one weight
/// per schema class; zero removes a language), with the per-language
/// transition structures drifted by `shift` ∈ `[0, 1]`.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] for zero samples, a weight
/// vector of the wrong arity or with non-positive total, or a `shift`
/// outside `[0, 1]`.
pub fn generate_mix(samples: usize, weights: &[f64], shift: f64, seed: u64) -> Result<Dataset> {
    if samples == 0 {
        return Err(DataError::InvalidArgument("samples must be non-zero".into()));
    }
    if weights.len() != NUM_LANGUAGES {
        return Err(DataError::InvalidArgument(format!(
            "{} language weights supplied for {NUM_LANGUAGES} languages",
            weights.len()
        )));
    }
    if weights.iter().any(|&w| !(w.is_finite() && w >= 0.0)) || weights.iter().sum::<f64>() <= 0.0 {
        return Err(DataError::InvalidArgument(
            "language weights must be non-negative with a positive total".into(),
        ));
    }
    if !(0.0..=1.0).contains(&shift) {
        return Err(DataError::InvalidArgument(format!(
            "vocabulary shift must lie in [0, 1], got {shift}"
        )));
    }
    let chains: Vec<Vec<f64>> =
        (0..NUM_LANGUAGES).map(|language| blended_weights(language, shift)).collect();
    let mut sampler = Sampler::new(seed ^ SALT);
    let mut dataset = Dataset::empty(schema());
    for _ in 0..samples {
        let language = sampler.categorical(weights);
        let chain = &chains[language];
        let mut record = Vec::with_capacity(SEQUENCE_LEN);
        let mut symbol = sampler.index(ALPHABET);
        record.push(symbol as f32);
        for _ in 1..SEQUENCE_LEN {
            symbol = sampler.categorical(&chain[symbol * ALPHABET..(symbol + 1) * ALPHABET]);
            record.push(symbol as f32);
        }
        dataset.push(record, language)?;
    }
    Ok(dataset)
}

/// Generates a balanced corpus over the [`NUM_SEEN`] training languages
/// (the held-out language never appears).
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] for zero samples.
pub fn generate(samples: usize, seed: u64) -> Result<Dataset> {
    generate_mix(samples, &seen_weights(), 0.0, seed)
}

/// [`generate`] with the transition structures drifted by `shift` — the
/// gradual "vocabulary shift" side of the zoo drift scenarios.
///
/// # Errors
///
/// Same as [`generate_mix`].
pub fn generate_shifted(samples: usize, shift: f64, seed: u64) -> Result<Dataset> {
    generate_mix(samples, &seen_weights(), shift, seed)
}

/// Uniform weights over the seen languages, zero for the held-out one.
pub fn seen_weights() -> Vec<f64> {
    let mut weights = vec![1.0; NUM_LANGUAGES];
    weights[NOVEL_LANGUAGE] = 0.0;
    weights
}

/// Weights for a zero-day phase: the seen mix plus the held-out language
/// surging to `novel_weight` of a seen language's share.
pub fn zero_day_weights(novel_weight: f64) -> Vec<f64> {
    let mut weights = vec![1.0; NUM_LANGUAGES];
    weights[NOVEL_LANGUAGE] = novel_weight;
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_the_advertised_shape() {
        let s = schema();
        assert_eq!(s.num_features(), SEQUENCE_LEN);
        assert_eq!(s.num_classes(), NUM_LANGUAGES);
        assert!(s.features().iter().all(
            |f| matches!(&f.kind, FeatureKind::Categorical { values } if values.len() == ALPHABET)
        ));
        assert_eq!(s.classes()[NOVEL_LANGUAGE], "lang-zeta");
    }

    #[test]
    fn corpora_are_deterministic_per_seed() {
        let a = generate(200, 7).unwrap();
        let b = generate(200, 7).unwrap();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.labels(), b.labels());
        let c = generate(200, 8).unwrap();
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn training_corpora_exclude_the_held_out_language_but_cover_the_rest() {
        let corpus = generate(4000, 3).unwrap();
        let counts = corpus.class_counts();
        assert_eq!(counts[NOVEL_LANGUAGE], 0, "zero-day language must stay held out");
        assert!(
            counts[..NUM_SEEN].iter().all(|&c| c > 200),
            "all seen languages represented: {counts:?}"
        );
        for record in corpus.records() {
            assert!(corpus.schema().validate_record(record).is_ok());
        }
    }

    #[test]
    fn zero_day_weights_admit_the_held_out_language() {
        let mix = generate_mix(2000, &zero_day_weights(2.0), 0.0, 5).unwrap();
        assert!(mix.class_counts()[NOVEL_LANGUAGE] > 100);
    }

    #[test]
    fn languages_have_distinct_bigram_statistics() {
        // Count bigram histograms per language; distinct chains should give
        // clearly different top-bigram sets.
        let corpus = generate(2400, 11).unwrap();
        let mut histograms = vec![vec![0u32; ALPHABET * ALPHABET]; NUM_SEEN];
        for (record, &label) in corpus.records().iter().zip(corpus.labels()) {
            for pair in record.windows(2) {
                histograms[label][pair[0] as usize * ALPHABET + pair[1] as usize] += 1;
            }
        }
        for a in 0..NUM_SEEN {
            for b in (a + 1)..NUM_SEEN {
                let (ha, hb) = (&histograms[a], &histograms[b]);
                let (norm_a, norm_b) =
                    (ha.iter().sum::<u32>() as f64, hb.iter().sum::<u32>() as f64);
                let overlap: f64 = ha
                    .iter()
                    .zip(hb)
                    .map(|(&x, &y)| (x as f64 / norm_a).min(y as f64 / norm_b))
                    .sum();
                assert!(
                    overlap < 0.75,
                    "languages {a}/{b} share {overlap:.2} of their bigram mass"
                );
            }
        }
    }

    #[test]
    fn vocabulary_shift_changes_the_statistics_gradually() {
        let bigrams = |d: &Dataset| {
            let mut h = vec![0u64; ALPHABET * ALPHABET];
            for record in d.records() {
                for pair in record.windows(2) {
                    h[pair[0] as usize * ALPHABET + pair[1] as usize] += 1;
                }
            }
            h
        };
        let distance = |x: &[u64], y: &[u64]| {
            let (nx, ny) = (x.iter().sum::<u64>() as f64, y.iter().sum::<u64>() as f64);
            x.iter().zip(y).map(|(&a, &b)| (a as f64 / nx - b as f64 / ny).abs()).sum::<f64>()
        };
        let base = bigrams(&generate_shifted(1500, 0.0, 2).unwrap());
        let mild = bigrams(&generate_shifted(1500, 0.3, 2).unwrap());
        let strong = bigrams(&generate_shifted(1500, 1.0, 2).unwrap());
        let d_mild = distance(&base, &mild);
        let d_strong = distance(&base, &strong);
        assert!(
            d_strong > d_mild,
            "a full shift ({d_strong:.3}) must move further than a mild one ({d_mild:.3})"
        );
        assert!(d_strong > 0.1, "a full shift must visibly reshape the statistics");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(generate(0, 0).is_err());
        assert!(generate_mix(10, &[1.0; 3], 0.0, 0).is_err(), "wrong arity");
        assert!(generate_mix(10, &[0.0; NUM_LANGUAGES], 0.0, 0).is_err(), "zero total");
        assert!(generate_mix(10, &[-1.0; NUM_LANGUAGES], 0.0, 0).is_err(), "negative");
        assert!(generate_mix(10, &seen_weights(), 1.5, 0).is_err(), "shift out of range");
    }
}

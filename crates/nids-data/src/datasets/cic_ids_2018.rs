//! CSE-CIC-IDS-2018 (Communications Security Establishment & Canadian
//! Institute for Cybersecurity, 2018; surveyed by Leevy et al., 2020).
//!
//! The 2018 capture uses the same CICFlowMeter feature extraction as
//! CIC-IDS-2017 (78 numeric flow features) but was collected on a much larger
//! AWS-hosted topology, with seven commonly used traffic categories.  The
//! feature schema is shared with [`super::cic_ids_2017`]; only the class
//! taxonomy and prevalences differ.

use crate::schema::Schema;
use crate::traffic::AttackKind;

/// The 78-feature CSE-CIC-IDS-2018 schema with its seven traffic categories.
pub fn schema() -> Schema {
    let classes = vec![
        "Benign".to_string(),
        "DDoS".to_string(),
        "DoS".to_string(),
        "Brute Force".to_string(),
        "Bot".to_string(),
        "Infilteration".to_string(),
        "Web Attack".to_string(),
    ];
    Schema::new("CIC-IDS-2018", super::cic_ids_2017::flow_feature_specs(), classes)
        .expect("CIC-IDS-2018 schema is statically valid")
}

/// Class taxonomy: `(name, behaviour template, prevalence weight)`.
///
/// Note: "Infilteration" (sic) follows the official label spelling of the
/// published CSVs so real data loads without a label-mapping shim.
pub fn class_specs() -> Vec<(&'static str, AttackKind, f64)> {
    vec![
        ("Benign", AttackKind::Normal, 60.0),
        ("DDoS", AttackKind::Ddos, 12.0),
        ("DoS", AttackKind::Dos, 10.0),
        ("Brute Force", AttackKind::BruteForce, 8.0),
        ("Bot", AttackKind::Botnet, 5.0),
        ("Infilteration", AttackKind::Infiltration, 3.5),
        ("Web Attack", AttackKind::WebAttack, 1.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_78_features_and_7_classes() {
        let s = schema();
        assert_eq!(s.num_features(), 78);
        assert_eq!(s.num_classes(), 7);
        assert_eq!(s.name(), "CIC-IDS-2018");
    }

    #[test]
    fn feature_schema_is_shared_with_2017() {
        let s17 = super::super::cic_ids_2017::schema();
        let s18 = schema();
        assert_eq!(s17.num_features(), s18.num_features());
        for (a, b) in s17.features().iter().zip(s18.features()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn class_specs_follow_schema_order() {
        let specs = class_specs();
        let s = schema();
        assert_eq!(specs.len(), 7);
        for (spec, class) in specs.iter().zip(s.classes()) {
            assert_eq!(spec.0, class);
        }
        assert_eq!(specs[0].1, AttackKind::Normal);
        assert!(specs[0].2 > specs[6].2);
    }
}

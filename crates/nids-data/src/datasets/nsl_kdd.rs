//! NSL-KDD (Tavallaee et al., CISDA 2009) — the refined KDD Cup '99 corpus.
//!
//! 41 features per connection record: 3 categorical (protocol, service, TCP
//! flag) and 38 numeric (content, time-based and host-based traffic
//! statistics).  Attack labels are grouped into the four standard categories
//! (DoS, Probe, R2L, U2R) plus benign traffic, which is how the paper (and
//! virtually all NIDS literature) evaluates on this corpus.

use crate::schema::{FeatureKind, FeatureSpec, Schema};
use crate::traffic::AttackKind;

/// Subset of the KDD service names used for the categorical `service`
/// feature.  The full corpus has ~70 services; the most common ones are kept
/// so one-hot expansion stays manageable while preserving the categorical
/// structure.
const SERVICES: [&str; 20] = [
    "http", "smtp", "ftp", "ftp_data", "telnet", "ssh", "dns", "domain_u", "pop_3", "imap4",
    "finger", "auth", "whois", "eco_i", "ecr_i", "private", "other", "irc", "x11", "time",
];

/// TCP connection status flags.
const FLAGS: [&str; 11] =
    ["SF", "S0", "S1", "S2", "S3", "REJ", "RSTO", "RSTR", "RSTOS0", "OTH", "SH"];

/// The 41-feature NSL-KDD schema with the five traffic categories.
pub fn schema() -> Schema {
    let rate = || FeatureKind::numeric(0.0, 1.0);
    let small_count = || FeatureKind::numeric(0.0, 100.0);
    let big_count = || FeatureKind::numeric(0.0, 511.0);
    let bytes = || FeatureKind::numeric(0.0, 1.0e6);
    let flag01 = || FeatureKind::numeric(0.0, 1.0);

    let features = vec![
        FeatureSpec::new("duration", FeatureKind::numeric(0.0, 3600.0)),
        FeatureSpec::new("protocol_type", FeatureKind::categorical(["tcp", "udp", "icmp"])),
        FeatureSpec::new("service", FeatureKind::categorical(SERVICES)),
        FeatureSpec::new("flag", FeatureKind::categorical(FLAGS)),
        FeatureSpec::new("src_bytes", bytes()),
        FeatureSpec::new("dst_bytes", bytes()),
        FeatureSpec::new("land", flag01()),
        FeatureSpec::new("wrong_fragment", FeatureKind::numeric(0.0, 3.0)),
        FeatureSpec::new("urgent", FeatureKind::numeric(0.0, 3.0)),
        FeatureSpec::new("hot", small_count()),
        FeatureSpec::new("num_failed_logins", FeatureKind::numeric(0.0, 5.0)),
        FeatureSpec::new("logged_in", flag01()),
        FeatureSpec::new("num_compromised", small_count()),
        FeatureSpec::new("root_shell", flag01()),
        FeatureSpec::new("su_attempted", FeatureKind::numeric(0.0, 2.0)),
        FeatureSpec::new("num_root", small_count()),
        FeatureSpec::new("num_file_creations", small_count()),
        FeatureSpec::new("num_shells", FeatureKind::numeric(0.0, 5.0)),
        FeatureSpec::new("num_access_files", FeatureKind::numeric(0.0, 10.0)),
        FeatureSpec::new("num_outbound_cmds", FeatureKind::numeric(0.0, 10.0)),
        FeatureSpec::new("is_host_login", flag01()),
        FeatureSpec::new("is_guest_login", flag01()),
        FeatureSpec::new("count", big_count()),
        FeatureSpec::new("srv_count", big_count()),
        FeatureSpec::new("serror_rate", rate()),
        FeatureSpec::new("srv_serror_rate", rate()),
        FeatureSpec::new("rerror_rate", rate()),
        FeatureSpec::new("srv_rerror_rate", rate()),
        FeatureSpec::new("same_srv_rate", rate()),
        FeatureSpec::new("diff_srv_rate", rate()),
        FeatureSpec::new("srv_diff_host_rate", rate()),
        FeatureSpec::new("dst_host_count", FeatureKind::numeric(0.0, 255.0)),
        FeatureSpec::new("dst_host_srv_count", FeatureKind::numeric(0.0, 255.0)),
        FeatureSpec::new("dst_host_same_srv_rate", rate()),
        FeatureSpec::new("dst_host_diff_srv_rate", rate()),
        FeatureSpec::new("dst_host_same_src_port_rate", rate()),
        FeatureSpec::new("dst_host_srv_diff_host_rate", rate()),
        FeatureSpec::new("dst_host_serror_rate", rate()),
        FeatureSpec::new("dst_host_srv_serror_rate", rate()),
        FeatureSpec::new("dst_host_rerror_rate", rate()),
        FeatureSpec::new("dst_host_srv_rerror_rate", rate()),
    ];

    let classes = vec![
        "normal".to_string(),
        "dos".to_string(),
        "probe".to_string(),
        "r2l".to_string(),
        "u2r".to_string(),
    ];

    Schema::new("NSL-KDD", features, classes).expect("NSL-KDD schema is statically valid")
}

/// Class taxonomy: `(name, behaviour template, prevalence weight)`.
///
/// The weights approximate the training-split class balance of the real
/// corpus (benign and DoS dominate; R2L and U2R are rare).
pub fn class_specs() -> Vec<(&'static str, AttackKind, f64)> {
    vec![
        ("normal", AttackKind::Normal, 50.0),
        ("dos", AttackKind::Dos, 35.0),
        ("probe", AttackKind::Probe, 10.0),
        ("r2l", AttackKind::RemoteToLocal, 4.0),
        ("u2r", AttackKind::UserToRoot, 1.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_41_features_and_5_classes() {
        let s = schema();
        assert_eq!(s.num_features(), 41);
        assert_eq!(s.num_classes(), 5);
        // 38 numeric + protocol(3) + service(20) + flag(11) one-hot columns.
        assert_eq!(s.encoded_width(), 38 + 3 + 20 + 11);
    }

    #[test]
    fn canonical_features_are_present() {
        let s = schema();
        for name in ["duration", "src_bytes", "serror_rate", "dst_host_srv_rerror_rate"] {
            assert!(s.feature_index(name).is_some(), "missing feature {name}");
        }
        assert!(s.features()[1].kind.is_categorical());
        assert!(s.features()[2].kind.is_categorical());
        assert!(s.features()[3].kind.is_categorical());
    }

    #[test]
    fn class_specs_follow_schema_order_and_imbalance() {
        let specs = class_specs();
        let s = schema();
        for (spec, class) in specs.iter().zip(s.classes()) {
            assert_eq!(spec.0, class);
        }
        // normal > dos > probe > r2l > u2r.
        for pair in specs.windows(2) {
            assert!(pair[0].2 > pair[1].2);
        }
    }
}

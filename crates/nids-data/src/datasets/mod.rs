//! The four intrusion-detection datasets used by the CyberHD evaluation,
//! plus the multi-domain workload zoo.
//!
//! Each NIDS submodule describes one corpus: its full feature schema
//! (matching the official documentation), its attack-class taxonomy mapped
//! onto the behaviour templates of [`crate::traffic`], and the class
//! prevalences used when generating synthetic stand-ins.  [`DatasetKind`]
//! is the uniform entry point the experiment harnesses use; it
//! intentionally stays the four paper corpora.  The zoo workloads —
//! [`language_id`] (symbolic character sequences) and [`tabular_zoo`]
//! (census-shaped mixed tabular) — live beside them as standalone
//! generators proving the stack is domain-generic.

pub mod cic_ids_2017;
pub mod cic_ids_2018;
pub mod language_id;
pub mod nsl_kdd;
pub mod tabular_zoo;
pub mod unsw_nb15;

use crate::dataset::Dataset;
use crate::schema::Schema;
use crate::synth::{generate, ClassProfile, SyntheticConfig};
use crate::traffic::{profiles_for, AttackKind};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// NSL-KDD (refined KDD Cup '99): 41 features, 5 traffic categories.
    NslKdd,
    /// UNSW-NB15: 42 features, 10 traffic categories.
    UnswNb15,
    /// CIC-IDS-2017: 78 flow features, 8 traffic categories.
    CicIds2017,
    /// CSE-CIC-IDS-2018: 78 flow features, 7 traffic categories.
    CicIds2018,
}

impl DatasetKind {
    /// All four datasets, in the order the paper's figures list them
    /// (left to right: CIC-IDS-2018, CIC-IDS-2017, UNSW-NB15, NSL-KDD — we
    /// keep chronological order instead; the harnesses label rows by name).
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::NslKdd,
        DatasetKind::UnswNb15,
        DatasetKind::CicIds2017,
        DatasetKind::CicIds2018,
    ];

    /// Human-readable dataset name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::NslKdd => "NSL-KDD",
            DatasetKind::UnswNb15 => "UNSW-NB15",
            DatasetKind::CicIds2017 => "CIC-IDS-2017",
            DatasetKind::CicIds2018 => "CIC-IDS-2018",
        }
    }

    /// The dataset's feature/class schema.
    pub fn schema(self) -> Schema {
        match self {
            DatasetKind::NslKdd => nsl_kdd::schema(),
            DatasetKind::UnswNb15 => unsw_nb15::schema(),
            DatasetKind::CicIds2017 => cic_ids_2017::schema(),
            DatasetKind::CicIds2018 => cic_ids_2018::schema(),
        }
    }

    /// `(class name, behaviour template, prevalence weight)` per class, in
    /// schema class order.
    pub fn class_specs(self) -> Vec<(&'static str, AttackKind, f64)> {
        match self {
            DatasetKind::NslKdd => nsl_kdd::class_specs(),
            DatasetKind::UnswNb15 => unsw_nb15::class_specs(),
            DatasetKind::CicIds2017 => cic_ids_2017::class_specs(),
            DatasetKind::CicIds2018 => cic_ids_2018::class_specs(),
        }
    }

    /// Dataset-specific salt decorrelating synthetic profiles across
    /// datasets that share feature names.
    fn salt(self) -> u64 {
        match self {
            DatasetKind::NslKdd => 0x4E53_4C4B,
            DatasetKind::UnswNb15 => 0x554E_5357,
            DatasetKind::CicIds2017 => 0x4349_4337,
            DatasetKind::CicIds2018 => 0x4349_4338,
        }
    }

    /// Synthetic class profiles for this dataset.
    pub fn profiles(self) -> Vec<ClassProfile> {
        let schema = self.schema();
        profiles_for(&schema, &self.class_specs(), self.salt())
    }

    /// Generates a synthetic stand-in corpus with this dataset's schema,
    /// class taxonomy and imbalance.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DataError::InvalidArgument`] for an invalid
    /// configuration.
    pub fn generate(self, config: &SyntheticConfig) -> Result<Dataset> {
        generate(&self.schema(), &self.profiles(), config)
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_have_consistent_specs() {
        for kind in DatasetKind::ALL {
            let schema = kind.schema();
            let specs = kind.class_specs();
            assert_eq!(
                specs.len(),
                schema.num_classes(),
                "{kind}: one class spec per schema class"
            );
            for ((name, _, weight), class) in specs.iter().zip(schema.classes()) {
                assert_eq!(name, class, "{kind}: spec order must match schema order");
                assert!(*weight > 0.0);
            }
            // Profiles must validate against their schema.
            for profile in kind.profiles() {
                profile.validate(&schema).unwrap();
            }
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    #[test]
    fn paper_dimensionalities_match() {
        assert_eq!(DatasetKind::NslKdd.schema().num_features(), 41);
        assert_eq!(DatasetKind::NslKdd.schema().num_classes(), 5);
        assert_eq!(DatasetKind::UnswNb15.schema().num_features(), 42);
        assert_eq!(DatasetKind::UnswNb15.schema().num_classes(), 10);
        assert_eq!(DatasetKind::CicIds2017.schema().num_features(), 78);
        assert_eq!(DatasetKind::CicIds2017.schema().num_classes(), 8);
        assert_eq!(DatasetKind::CicIds2018.schema().num_features(), 78);
        assert_eq!(DatasetKind::CicIds2018.schema().num_classes(), 7);
    }

    #[test]
    fn generation_produces_every_class() {
        for kind in DatasetKind::ALL {
            let dataset = kind.generate(&SyntheticConfig::new(3000, 42)).unwrap();
            assert_eq!(dataset.len(), 3000);
            let counts = dataset.class_counts();
            let represented = counts.iter().filter(|&&c| c > 0).count();
            assert!(
                represented >= counts.len() - 1,
                "{kind}: at most one (rare) class may be missing at 3000 samples, counts {counts:?}"
            );
            // The benign class is the most common one in every corpus.
            let benign = counts[0];
            assert!(counts.iter().skip(1).all(|&c| c <= benign), "{kind}: benign dominates");
        }
    }

    #[test]
    fn normal_class_is_first_everywhere() {
        for kind in DatasetKind::ALL {
            let specs = kind.class_specs();
            assert_eq!(specs[0].1, AttackKind::Normal, "{kind}: first class is benign");
        }
    }
}

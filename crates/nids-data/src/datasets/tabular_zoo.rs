//! Census-shaped mixed categorical/numeric tabular workload.
//!
//! The second member of the workload zoo: an adult/wine-shaped tabular
//! classification task whose schema mixes numeric measurements with
//! genuinely symbolic columns (occupation, region, …).  Unlike the
//! language corpus this workload reuses the class-conditional Gaussian +
//! categorical sampler of [`crate::synth`] end to end — the point is not a
//! new generator but a schema that exercises `hdc::SymbolRecordEncoder`'s
//! mixed binding (random item vectors for category symbols, level ladders
//! for numerics) against the same training/serving stack the NIDS
//! datasets run on.
//!
//! Class profiles are derived deterministically from a salt: each income
//! band shifts every numeric mean along the feature range and concentrates
//! every categorical distribution on a band-specific preferred symbol, so
//! the four bands are well separable yet overlapping enough to be
//! non-trivial.

use crate::dataset::Dataset;
use crate::schema::{FeatureKind, FeatureSpec, Schema};
use crate::synth::{generate as synth_generate, ClassProfile, Sampler, SyntheticConfig};
use crate::Result;

/// Salt decorrelating the zoo profiles from the NIDS datasets.
const SALT: u64 = 0x5A4F_4F54;

/// Relative prevalence of the four income bands.
const BAND_WEIGHTS: [f64; 4] = [0.40, 0.30, 0.20, 0.10];

/// The census-shaped schema: 10 features, 6 of them categorical.
pub fn schema() -> Schema {
    let features = vec![
        FeatureSpec::new("age", FeatureKind::numeric(17.0, 90.0)),
        FeatureSpec::new(
            "workclass",
            FeatureKind::categorical([
                "private", "self-emp", "federal", "state", "local", "unpaid", "never",
            ]),
        ),
        FeatureSpec::new(
            "education",
            FeatureKind::categorical([
                "primary",
                "secondary",
                "highschool",
                "college",
                "bachelors",
                "masters",
                "doctorate",
                "vocational",
            ]),
        ),
        FeatureSpec::new(
            "marital_status",
            FeatureKind::categorical(["single", "married", "divorced", "separated", "widowed"]),
        ),
        FeatureSpec::new(
            "occupation",
            FeatureKind::categorical([
                "tech",
                "craft",
                "sales",
                "exec",
                "clerical",
                "service",
                "machine",
                "transport",
                "farming",
                "protective",
            ]),
        ),
        FeatureSpec::new(
            "relationship",
            FeatureKind::categorical([
                "husband",
                "wife",
                "own-child",
                "unmarried",
                "other-relative",
                "not-in-family",
            ]),
        ),
        FeatureSpec::new("capital_gain", FeatureKind::numeric(0.0, 10_000.0)),
        FeatureSpec::new("hours_per_week", FeatureKind::numeric(1.0, 99.0)),
        FeatureSpec::new(
            "native_region",
            FeatureKind::categorical(["north", "south", "east", "west", "central", "overseas"]),
        ),
        FeatureSpec::new("dependents", FeatureKind::numeric(0.0, 8.0)),
    ];
    let classes = vec!["low".into(), "lower-middle".into(), "upper-middle".into(), "high".into()];
    Schema::new("zoo-census", features, classes).expect("static schema is valid")
}

/// Deterministic class profiles for the four income bands.
pub fn profiles() -> Vec<ClassProfile> {
    let schema = schema();
    let n = schema.num_features();
    let num_classes = schema.num_classes();
    schema
        .classes()
        .iter()
        .enumerate()
        .map(|(class, name)| {
            let mut sampler = Sampler::new(SALT.wrapping_add((class as u64 + 1) * 0x6B43));
            // Where along each numeric range this band sits, 0 → low end.
            let band = (class as f64 + 0.5) / num_classes as f64;
            let mut numeric_means = vec![0.0; n];
            let mut numeric_stds = vec![0.0; n];
            let mut categorical_probs = vec![Vec::new(); n];
            for (i, feature) in schema.features().iter().enumerate() {
                match &feature.kind {
                    FeatureKind::Numeric { min, max } => {
                        let range = max - min;
                        // Band centre plus a small per-class wobble keeps
                        // the numeric columns informative but overlapping.
                        let wobble = 0.08 * (sampler.standard_normal()).clamp(-1.5, 1.5);
                        numeric_means[i] =
                            min + range * (0.12 + 0.76 * band + wobble).clamp(0.05, 0.95);
                        numeric_stds[i] = range * 0.11;
                    }
                    FeatureKind::Categorical { values } => {
                        let k = values.len();
                        // Concentrate ~70% of the mass on a band-specific
                        // preferred symbol and a runner-up, uniform rest.
                        let mut probs = vec![0.3 / k as f64; k];
                        let preferred = sampler.index(k);
                        probs[preferred] += 0.5;
                        probs[sampler.index(k)] += 0.2;
                        categorical_probs[i] = probs;
                    }
                }
            }
            ClassProfile {
                name: name.clone(),
                weight: BAND_WEIGHTS[class],
                numeric_means,
                numeric_stds,
                categorical_probs,
            }
        })
        .collect()
}

/// Generates a synthetic census corpus.
///
/// # Errors
///
/// Returns [`crate::DataError::InvalidArgument`] for an invalid
/// configuration.
pub fn generate(config: &SyntheticConfig) -> Result<Dataset> {
    synth_generate(&schema(), &profiles(), config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_mixes_numeric_and_categorical_columns() {
        let s = schema();
        assert_eq!(s.num_features(), 10);
        assert_eq!(s.num_classes(), 4);
        let categorical = s.features().iter().filter(|f| f.kind.is_categorical()).count();
        assert_eq!(categorical, 6);
        // One-hot width differs from the raw width — the schema genuinely
        // has symbolic structure.
        assert!(s.encoded_width() > s.num_features());
    }

    #[test]
    fn profiles_validate_and_cover_every_band() {
        let s = schema();
        let p = profiles();
        assert_eq!(p.len(), s.num_classes());
        for (profile, class) in p.iter().zip(s.classes()) {
            assert_eq!(&profile.name, class);
            profile.validate(&s).unwrap();
        }
        // Profiles are deterministic.
        assert_eq!(profiles(), p);
    }

    #[test]
    fn generation_is_deterministic_and_imbalanced() {
        let a = generate(&SyntheticConfig::new(2000, 9)).unwrap();
        let b = generate(&SyntheticConfig::new(2000, 9)).unwrap();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.labels(), b.labels());
        let counts = a.class_counts();
        assert!(counts.iter().all(|&c| c > 0), "every band appears: {counts:?}");
        assert!(counts[0] > counts[3], "the low band dominates the high band: {counts:?}");
        for record in a.records().iter().take(50) {
            assert!(a.schema().validate_record(record).is_ok());
        }
    }

    #[test]
    fn bands_are_separable_on_numeric_columns() {
        let corpus = generate(&SyntheticConfig::new(4000, 21)).unwrap();
        // Mean age should increase monotonically with the band.
        let mut sums = [0.0f64; 4];
        let mut counts = vec![0usize; 4];
        for (record, &label) in corpus.records().iter().zip(corpus.labels()) {
            sums[label] += record[0] as f64;
            counts[label] += 1;
        }
        let means: Vec<f64> =
            sums.iter().zip(&counts).map(|(&s, &c)| s / c.max(1) as f64).collect();
        for band in 1..4 {
            assert!(
                means[band] > means[band - 1],
                "band {band} mean age {means:?} must increase with income"
            );
        }
    }
}

//! CIC-IDS-2017 (Sharafaldin et al., ICISSP 2018).
//!
//! The corpus consists of CICFlowMeter flow statistics: 78 numeric features
//! per bidirectional flow (packet/byte counters, inter-arrival-time
//! statistics, TCP flag counts, bulk/subflow statistics and active/idle
//! times).  The 2017 capture contains benign traffic plus seven attack
//! campaigns (DoS variants, DDoS, port scan, brute force, web attacks,
//! botnet, infiltration), which most of the literature — and the paper —
//! groups into the eight classes used here.

use crate::schema::{FeatureKind, FeatureSpec, Schema};
use crate::traffic::AttackKind;

/// The 78 CICFlowMeter feature names shared by CIC-IDS-2017 and
/// CSE-CIC-IDS-2018 (column naming follows the published CSVs, with spaces
/// normalized to snake_case).
pub(crate) fn flow_feature_specs() -> Vec<FeatureSpec> {
    let duration = || FeatureKind::numeric(0.0, 1.2e8);
    let count = || FeatureKind::numeric(0.0, 2.0e5);
    let bytes = || FeatureKind::numeric(0.0, 1.0e8);
    let length = || FeatureKind::numeric(0.0, 65535.0);
    let rate = || FeatureKind::numeric(0.0, 1.0e7);
    let time = || FeatureKind::numeric(0.0, 1.2e8);
    let flag = || FeatureKind::numeric(0.0, 100.0);
    let ratio = || FeatureKind::numeric(0.0, 1000.0);
    let window = || FeatureKind::numeric(0.0, 65535.0);

    let spec: [(&str, FeatureKind); 78] = [
        ("destination_port", FeatureKind::numeric(0.0, 65535.0)),
        ("flow_duration", duration()),
        ("total_fwd_packets", count()),
        ("total_backward_packets", count()),
        ("total_length_of_fwd_packets", bytes()),
        ("total_length_of_bwd_packets", bytes()),
        ("fwd_packet_length_max", length()),
        ("fwd_packet_length_min", length()),
        ("fwd_packet_length_mean", length()),
        ("fwd_packet_length_std", length()),
        ("bwd_packet_length_max", length()),
        ("bwd_packet_length_min", length()),
        ("bwd_packet_length_mean", length()),
        ("bwd_packet_length_std", length()),
        ("flow_bytes_per_s", rate()),
        ("flow_packets_per_s", rate()),
        ("flow_iat_mean", time()),
        ("flow_iat_std", time()),
        ("flow_iat_max", time()),
        ("flow_iat_min", time()),
        ("fwd_iat_total", time()),
        ("fwd_iat_mean", time()),
        ("fwd_iat_std", time()),
        ("fwd_iat_max", time()),
        ("fwd_iat_min", time()),
        ("bwd_iat_total", time()),
        ("bwd_iat_mean", time()),
        ("bwd_iat_std", time()),
        ("bwd_iat_max", time()),
        ("bwd_iat_min", time()),
        ("fwd_psh_flags", flag()),
        ("bwd_psh_flags", flag()),
        ("fwd_urg_flags", flag()),
        ("bwd_urg_flags", flag()),
        ("fwd_header_length", bytes()),
        ("bwd_header_length", bytes()),
        ("fwd_packets_per_s", rate()),
        ("bwd_packets_per_s", rate()),
        ("min_packet_length", length()),
        ("max_packet_length", length()),
        ("packet_length_mean", length()),
        ("packet_length_std", length()),
        ("packet_length_variance", FeatureKind::numeric(0.0, 4.3e9)),
        ("fin_flag_count", flag()),
        ("syn_flag_count", flag()),
        ("rst_flag_count", flag()),
        ("psh_flag_count", flag()),
        ("ack_flag_count", flag()),
        ("urg_flag_count", flag()),
        ("cwe_flag_count", flag()),
        ("ece_flag_count", flag()),
        ("down_up_ratio", ratio()),
        ("average_packet_size", length()),
        ("avg_fwd_segment_size", length()),
        ("avg_bwd_segment_size", length()),
        ("fwd_avg_bytes_per_bulk", bytes()),
        ("fwd_avg_packets_per_bulk", count()),
        ("fwd_avg_bulk_rate", rate()),
        ("bwd_avg_bytes_per_bulk", bytes()),
        ("bwd_avg_packets_per_bulk", count()),
        ("bwd_avg_bulk_rate", rate()),
        ("subflow_fwd_packets", count()),
        ("subflow_fwd_bytes", bytes()),
        ("subflow_bwd_packets", count()),
        ("subflow_bwd_bytes", bytes()),
        ("init_win_bytes_forward", window()),
        ("init_win_bytes_backward", window()),
        ("act_data_pkt_fwd", count()),
        ("min_seg_size_forward", length()),
        ("active_mean", time()),
        ("active_std", time()),
        ("active_max", time()),
        ("active_min", time()),
        ("idle_mean", time()),
        ("idle_std", time()),
        ("idle_max", time()),
        ("idle_min", time()),
        ("fwd_act_data_packets", count()),
    ];

    spec.into_iter().map(|(name, kind)| FeatureSpec::new(name, kind)).collect()
}

/// The 78-feature CIC-IDS-2017 schema with its eight traffic categories.
pub fn schema() -> Schema {
    let classes = vec![
        "BENIGN".to_string(),
        "DoS".to_string(),
        "PortScan".to_string(),
        "DDoS".to_string(),
        "Brute Force".to_string(),
        "Web Attack".to_string(),
        "Bot".to_string(),
        "Infiltration".to_string(),
    ];
    Schema::new("CIC-IDS-2017", flow_feature_specs(), classes)
        .expect("CIC-IDS-2017 schema is statically valid")
}

/// Class taxonomy: `(name, behaviour template, prevalence weight)`.
pub fn class_specs() -> Vec<(&'static str, AttackKind, f64)> {
    vec![
        ("BENIGN", AttackKind::Normal, 55.0),
        ("DoS", AttackKind::Dos, 14.0),
        ("PortScan", AttackKind::PortScan, 11.0),
        ("DDoS", AttackKind::Ddos, 9.0),
        ("Brute Force", AttackKind::BruteForce, 5.0),
        ("Web Attack", AttackKind::WebAttack, 2.5),
        ("Bot", AttackKind::Botnet, 2.0),
        ("Infiltration", AttackKind::Infiltration, 1.5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_78_numeric_features_and_8_classes() {
        let s = schema();
        assert_eq!(s.num_features(), 78);
        assert_eq!(s.num_classes(), 8);
        // All features are numeric -> encoded width equals the feature count.
        assert_eq!(s.encoded_width(), 78);
        assert!(s.features().iter().all(|f| !f.kind.is_categorical()));
    }

    #[test]
    fn canonical_features_are_present() {
        let s = schema();
        for name in ["flow_duration", "syn_flag_count", "idle_min", "destination_port"] {
            assert!(s.feature_index(name).is_some(), "missing feature {name}");
        }
    }

    #[test]
    fn class_specs_follow_schema_order() {
        let specs = class_specs();
        let s = schema();
        for (spec, class) in specs.iter().zip(s.classes()) {
            assert_eq!(spec.0, class);
        }
        assert_eq!(specs[0].1, AttackKind::Normal);
    }
}

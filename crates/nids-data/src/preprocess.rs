//! Preprocessing: one-hot expansion and feature scaling.
//!
//! Classifiers (HDC, MLP and SVM alike) consume dense `f32` vectors.  A
//! [`Preprocessor`] is **fit on the training split only** (so no information
//! from the test split leaks into the scaler) and then applied to any split
//! with the same schema:
//!
//! * numeric features are scaled either to `[0, 1]` (min–max) or to zero
//!   mean / unit variance (z-score),
//! * categorical features are expanded into one-hot indicator columns.

use crate::dataset::Dataset;
use crate::schema::{FeatureKind, Schema};
use crate::{DataError, Result};
use hdc::codec::{CodecError, CodecResult, Reader, Writer};
use serde::{Deserialize, Serialize};

/// Scaling strategy for numeric features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Normalization {
    /// Scale each numeric feature to `[0, 1]` using the training split's
    /// minimum and maximum (constant columns map to `0.0`).
    MinMax,
    /// Standardize each numeric feature to zero mean and unit variance
    /// (constant columns map to `0.0`).
    ZScore,
    /// Symbolic passthrough: numeric features are min–max scaled to
    /// `[0, 1]` as in [`Normalization::MinMax`], but categorical features
    /// stay **raw category indices** instead of expanding into one-hot
    /// columns.  This is the input convention of the symbolic encoders
    /// (`hdc::NGramEncoder`, `hdc::SymbolRecordEncoder`), which map each
    /// index onto an item-memory hypervector themselves; one-hot expansion
    /// would destroy the symbol identity they key on.  The output width is
    /// the raw feature count, not the one-hot expanded width.
    Symbolic,
}

/// Per-numeric-feature statistics gathered from the training split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FeatureStats {
    min: f64,
    max: f64,
    mean: f64,
    std: f64,
}

/// A fitted preprocessing pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preprocessor {
    schema: Schema,
    normalization: Normalization,
    /// Statistics per raw feature index; `None` for categorical features.
    stats: Vec<Option<FeatureStats>>,
}

impl Preprocessor {
    /// Fits scaling statistics on (the numeric features of) `train`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] if `train` is empty.
    pub fn fit(train: &Dataset, normalization: Normalization) -> Result<Self> {
        if train.is_empty() {
            return Err(DataError::InvalidArgument(
                "cannot fit a preprocessor on an empty dataset".into(),
            ));
        }
        let schema = train.schema().clone();
        let n = schema.num_features();
        let mut stats = vec![None; n];
        for (i, feature) in schema.features().iter().enumerate() {
            if feature.kind.is_categorical() {
                continue;
            }
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            for record in train.records() {
                let v = record[i] as f64;
                min = min.min(v);
                max = max.max(v);
                sum += v;
                sum_sq += v * v;
            }
            let count = train.len() as f64;
            let mean = sum / count;
            let variance = (sum_sq / count - mean * mean).max(0.0);
            stats[i] = Some(FeatureStats { min, max, mean, std: variance.sqrt() });
        }
        Ok(Self { schema, normalization, stats })
    }

    /// The schema this preprocessor was fitted for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The normalization strategy in use.
    pub fn normalization(&self) -> Normalization {
        self.normalization
    }

    /// Width of the produced dense vectors (one-hot expanded, except under
    /// [`Normalization::Symbolic`] where categorical features keep one raw
    /// index column each).
    pub fn output_width(&self) -> usize {
        match self.normalization {
            Normalization::Symbolic => self.schema.num_features(),
            _ => self.schema.encoded_width(),
        }
    }

    /// Transforms a single raw record into a dense feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRecord`] if the record does not conform to
    /// the schema.
    pub fn transform_record(&self, record: &[f32]) -> Result<Vec<f32>> {
        let mut out = vec![0.0f32; self.output_width()];
        self.transform_record_into(record, &mut out)?;
        Ok(out)
    }

    /// Transforms a single raw record into the caller-provided dense buffer
    /// `out` (length [`Preprocessor::output_width`]), allocating nothing —
    /// the hot path of a deployed detector serving raw flows.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRecord`] if the record does not conform
    /// to the schema and [`DataError::InvalidArgument`] if `out` has the
    /// wrong length.
    pub fn transform_record_into(&self, record: &[f32], out: &mut [f32]) -> Result<()> {
        self.schema.validate_record(record)?;
        if out.len() != self.output_width() {
            return Err(DataError::InvalidArgument(format!(
                "output buffer holds {} values but the preprocessor produces {}",
                out.len(),
                self.output_width()
            )));
        }
        let mut cursor = 0usize;
        for (i, feature) in self.schema.features().iter().enumerate() {
            match &feature.kind {
                FeatureKind::Numeric { .. } => {
                    let stats = self.stats[i]
                        .as_ref()
                        .expect("numeric features always have fitted statistics");
                    let v = record[i] as f64;
                    let scaled = match self.normalization {
                        Normalization::MinMax | Normalization::Symbolic => {
                            let range = stats.max - stats.min;
                            if range <= 0.0 {
                                0.0
                            } else {
                                ((v - stats.min) / range).clamp(0.0, 1.0)
                            }
                        }
                        Normalization::ZScore => {
                            if stats.std <= 0.0 {
                                0.0
                            } else {
                                (v - stats.mean) / stats.std
                            }
                        }
                    };
                    out[cursor] = scaled as f32;
                    cursor += 1;
                }
                FeatureKind::Categorical { values } => {
                    if self.normalization == Normalization::Symbolic {
                        out[cursor] = record[i];
                        cursor += 1;
                    } else {
                        let index = record[i] as usize;
                        let slots = &mut out[cursor..cursor + values.len()];
                        slots.fill(0.0);
                        slots[index] = 1.0;
                        cursor += values.len();
                    }
                }
            }
        }
        Ok(())
    }

    /// Transforms every record of `dataset` into dense feature vectors.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] if the dataset's schema differs
    /// from the fitted schema, or [`DataError::InvalidRecord`] for a
    /// malformed record.
    pub fn transform(&self, dataset: &Dataset) -> Result<Vec<Vec<f32>>> {
        if dataset.schema() != &self.schema {
            return Err(DataError::InvalidArgument(
                "dataset schema does not match the fitted preprocessor".into(),
            ));
        }
        dataset.records().iter().map(|r| self.transform_record(r)).collect()
    }

    /// Convenience: transforms the dataset and returns `(features, labels)`.
    ///
    /// # Errors
    ///
    /// Same as [`Preprocessor::transform`].
    pub fn transform_with_labels(&self, dataset: &Dataset) -> Result<(Vec<Vec<f32>>, Vec<usize>)> {
        Ok((self.transform(dataset)?, dataset.labels().to_vec()))
    }

    /// Transforms every record of `dataset` into one contiguous row-major
    /// matrix of width [`Preprocessor::output_width`] — the form the
    /// zero-copy `hdc::BatchView` engines consume directly, with one
    /// allocation for the whole dataset instead of one per record.
    ///
    /// # Errors
    ///
    /// Same as [`Preprocessor::transform`].
    pub fn transform_matrix(&self, dataset: &Dataset) -> Result<Vec<f32>> {
        if dataset.schema() != &self.schema {
            return Err(DataError::InvalidArgument(
                "dataset schema does not match the fitted preprocessor".into(),
            ));
        }
        self.transform_records_matrix(dataset.records())
    }

    /// [`Preprocessor::transform_matrix`] for a plain slice of raw records
    /// (no surrounding [`Dataset`]) — the batched serve path of a deployed
    /// detector.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRecord`] on the first record that does
    /// not conform to the fitted schema.
    pub fn transform_records_matrix(&self, records: &[Vec<f32>]) -> Result<Vec<f32>> {
        let width = self.output_width();
        let mut matrix = vec![0.0f32; records.len() * width];
        for (record, row) in records.iter().zip(matrix.chunks_exact_mut(width)) {
            self.transform_record_into(record, row)?;
        }
        Ok(matrix)
    }

    /// Persists the fitted pipeline through the artifact codec, bit-exact
    /// (statistics travel as IEEE-754 bit patterns).
    pub fn write_to(&self, w: &mut Writer) {
        self.schema.write_to(w);
        w.u8(match self.normalization {
            Normalization::MinMax => 0,
            Normalization::ZScore => 1,
            Normalization::Symbolic => 2,
        });
        w.usize(self.stats.len());
        for stat in &self.stats {
            match stat {
                None => w.bool(false),
                Some(s) => {
                    w.bool(true);
                    w.f64(s.min);
                    w.f64(s.max);
                    w.f64(s.mean);
                    w.f64(s.std);
                }
            }
        }
    }

    /// Reads a pipeline persisted by [`Preprocessor::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream, an unknown
    /// normalization tag, or statistics inconsistent with the schema.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        let schema = Schema::read_from(r)?;
        let normalization = match r.u8()? {
            0 => Normalization::MinMax,
            1 => Normalization::ZScore,
            2 => Normalization::Symbolic,
            tag => return Err(CodecError::Invalid(format!("normalization tag {tag}"))),
        };
        let n = r.usize()?;
        if n != schema.num_features() {
            return Err(CodecError::Invalid(format!(
                "{n} feature statistics for a schema with {} features",
                schema.num_features()
            )));
        }
        let mut stats = Vec::with_capacity(n);
        for i in 0..n {
            let present = r.bool()?;
            if present != !schema.features()[i].kind.is_categorical() {
                return Err(CodecError::Invalid(format!(
                    "feature {i} statistics presence does not match its kind"
                )));
            }
            stats.push(if present {
                Some(FeatureStats { min: r.f64()?, max: r.f64()?, mean: r.f64()?, std: r.f64()? })
            } else {
                None
            });
        }
        Ok(Self { schema, normalization, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FeatureKind, FeatureSpec};

    fn dataset() -> Dataset {
        let schema = Schema::new(
            "toy",
            vec![
                FeatureSpec::new("x", FeatureKind::numeric(0.0, 100.0)),
                FeatureSpec::new("proto", FeatureKind::categorical(["tcp", "udp", "icmp"])),
                FeatureSpec::new("constant", FeatureKind::numeric(0.0, 1.0)),
            ],
            vec!["normal".into(), "attack".into()],
        )
        .unwrap();
        Dataset::new(
            schema,
            vec![
                vec![0.0, 0.0, 0.5],
                vec![50.0, 1.0, 0.5],
                vec![100.0, 2.0, 0.5],
                vec![25.0, 0.0, 0.5],
            ],
            vec![0, 1, 1, 0],
        )
        .unwrap()
    }

    #[test]
    fn fit_rejects_empty_datasets() {
        let empty = Dataset::empty(dataset().schema().clone());
        assert!(Preprocessor::fit(&empty, Normalization::MinMax).is_err());
    }

    #[test]
    fn minmax_scales_into_unit_interval_and_one_hot_expands() {
        let d = dataset();
        let p = Preprocessor::fit(&d, Normalization::MinMax).unwrap();
        assert_eq!(p.output_width(), 1 + 3 + 1);
        assert_eq!(p.normalization(), Normalization::MinMax);
        let x = p.transform(&d).unwrap();
        assert_eq!(x.len(), 4);
        for row in &x {
            assert_eq!(row.len(), 5);
            assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        // First record: x = 0 -> 0.0; proto tcp -> [1,0,0]; constant -> 0.
        assert_eq!(x[0], vec![0.0, 1.0, 0.0, 0.0, 0.0]);
        // Third record: x = 100 -> 1.0; proto icmp -> [0,0,1].
        assert_eq!(x[2], vec![1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn zscore_standardizes_numeric_features() {
        let d = dataset();
        let p = Preprocessor::fit(&d, Normalization::ZScore).unwrap();
        let x = p.transform(&d).unwrap();
        let column: Vec<f64> = x.iter().map(|r| r[0] as f64).collect();
        let mean: f64 = column.iter().sum::<f64>() / column.len() as f64;
        let var: f64 = column.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / column.len() as f64;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
        // Constant column maps to exactly zero.
        assert!(x.iter().all(|r| r[4] == 0.0));
    }

    #[test]
    fn symbolic_keeps_raw_category_indices_and_scales_numerics() {
        let d = dataset();
        let p = Preprocessor::fit(&d, Normalization::Symbolic).unwrap();
        // Raw feature count, not one-hot expanded width.
        assert_eq!(p.output_width(), 3);
        let x = p.transform(&d).unwrap();
        // Record 2: x = 100 -> 1.0 (min-max); proto icmp stays index 2.
        assert_eq!(x[2], vec![1.0, 2.0, 0.0]);
        // Record 1: x = 50 -> 0.5; proto udp stays index 1.
        assert_eq!(x[1], vec![0.5, 1.0, 0.0]);
        // Invalid category indices are still rejected by schema validation.
        assert!(p.transform_record(&[1.0, 9.0, 0.5]).is_err());
    }

    #[test]
    fn transform_clamps_out_of_range_test_values() {
        let d = dataset();
        let p = Preprocessor::fit(&d, Normalization::MinMax).unwrap();
        let out = p.transform_record(&[1000.0, 0.0, 0.5]).unwrap();
        assert_eq!(out[0], 1.0, "values beyond the training max are clamped");
    }

    #[test]
    fn transform_checks_schema_and_record_validity() {
        let d = dataset();
        let p = Preprocessor::fit(&d, Normalization::MinMax).unwrap();
        assert!(p.transform_record(&[1.0, 9.0, 0.5]).is_err());

        let other_schema = Schema::new(
            "other",
            vec![FeatureSpec::new("x", FeatureKind::numeric(0.0, 1.0))],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        let other = Dataset::empty(other_schema);
        assert!(p.transform(&other).is_err());
    }

    #[test]
    fn transform_with_labels_round_trips_labels() {
        let d = dataset();
        let p = Preprocessor::fit(&d, Normalization::MinMax).unwrap();
        let (x, y) = p.transform_with_labels(&d).unwrap();
        assert_eq!(x.len(), y.len());
        assert_eq!(y, vec![0, 1, 1, 0]);
    }

    #[test]
    fn transform_record_into_matches_transform_record_and_validates_buffer() {
        let d = dataset();
        let p = Preprocessor::fit(&d, Normalization::MinMax).unwrap();
        let record = [25.0f32, 2.0, 0.5];
        let fresh = p.transform_record(&record).unwrap();
        let mut buf = vec![f32::NAN; p.output_width()];
        p.transform_record_into(&record, &mut buf).unwrap();
        assert_eq!(buf, fresh);
        // The one-hot slots are fully rewritten even when the buffer is
        // reused across records of different categories.
        p.transform_record_into(&[0.0, 0.0, 0.5], &mut buf).unwrap();
        assert_eq!(buf, p.transform_record(&[0.0, 0.0, 0.5]).unwrap());
        let mut short = vec![0.0f32; p.output_width() - 1];
        assert!(p.transform_record_into(&record, &mut short).is_err());
        assert!(p.transform_record_into(&[1.0, 9.0, 0.5], &mut buf).is_err());
    }

    #[test]
    fn transform_matrix_is_the_flattened_transform() {
        let d = dataset();
        let p = Preprocessor::fit(&d, Normalization::ZScore).unwrap();
        let rows = p.transform(&d).unwrap();
        let matrix = p.transform_matrix(&d).unwrap();
        assert_eq!(matrix.len(), d.len() * p.output_width());
        for (row, flat) in rows.iter().zip(matrix.chunks_exact(p.output_width())) {
            assert_eq!(row.as_slice(), flat);
        }
        let other_schema = Schema::new(
            "other",
            vec![FeatureSpec::new("x", FeatureKind::numeric(0.0, 1.0))],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        assert!(p.transform_matrix(&Dataset::empty(other_schema)).is_err());
    }

    #[test]
    fn preprocessor_persistence_round_trips_bit_exactly() {
        let d = dataset();
        for normalization in [Normalization::MinMax, Normalization::ZScore, Normalization::Symbolic]
        {
            let p = Preprocessor::fit(&d, normalization).unwrap();
            let mut w = Writer::new();
            p.write_to(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = Preprocessor::read_from(&mut r).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(back, p);
            // Transforms are bit-identical, not just approximately equal.
            let record = [33.0f32, 1.0, 0.5];
            assert_eq!(
                back.transform_record(&record).unwrap(),
                p.transform_record(&record).unwrap()
            );
            assert!(Preprocessor::read_from(&mut Reader::new(&bytes[..bytes.len() - 4])).is_err());
        }
    }
}

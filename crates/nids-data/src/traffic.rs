//! Attack-behaviour templates.
//!
//! The synthetic generator needs one [`ClassProfile`] per class; this module
//! derives those profiles from *attack-behaviour templates*.  Every attack
//! family (DoS, probe/port-scan, brute force, botnet, web attack, …) is
//! described by three coarse knobs:
//!
//! * how large a fraction of the flow features carries its signature
//!   (a volumetric DoS perturbs most counters, a stealthy infiltration only a
//!   few),
//! * how strongly those signature features deviate from benign traffic,
//! * how bursty (high-variance) the attack traffic is.
//!
//! Which features form the signature and in which direction they deviate is
//! chosen deterministically by hashing the feature name together with the
//! attack family, so a given dataset schema always produces the same class
//! geometry — experiments stay reproducible while different datasets /
//! attacks end up with distinct, partially overlapping signatures, which is
//! what makes the classification task non-trivial in the same way the real
//! corpora are.

use crate::schema::{FeatureKind, Schema};
use crate::synth::ClassProfile;
use serde::{Deserialize, Serialize};

/// Families of traffic behaviour used to build class profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackKind {
    /// Benign traffic.
    Normal,
    /// Classic denial of service (SYN flood, smurf, back, …).
    Dos,
    /// Distributed denial of service (volumetric, botnet-driven).
    Ddos,
    /// Network probing / reconnaissance (nmap, ipsweep, satan).
    Probe,
    /// Port scanning.
    PortScan,
    /// Remote-to-local exploitation (guessing passwords, warezmaster).
    RemoteToLocal,
    /// User-to-root privilege escalation (buffer overflows, rootkits).
    UserToRoot,
    /// Credential brute force (FTP/SSH password guessing).
    BruteForce,
    /// Botnet command-and-control traffic.
    Botnet,
    /// Web application attacks (SQL injection, XSS).
    WebAttack,
    /// Slow infiltration / data exfiltration.
    Infiltration,
    /// Exploit payload delivery (UNSW-NB15 "Exploits").
    Exploits,
    /// Protocol fuzzing traffic (UNSW-NB15 "Fuzzers").
    Fuzzers,
    /// Miscellaneous generic attacks (UNSW-NB15 "Generic").
    Generic,
    /// Passive reconnaissance (UNSW-NB15 "Reconnaissance").
    Reconnaissance,
    /// Shellcode delivery.
    Shellcode,
    /// Self-propagating worms.
    Worms,
    /// Backdoor traffic.
    Backdoor,
    /// Traffic analysis / misc. suspicious activity (UNSW-NB15 "Analysis").
    Analysis,
    /// Heartbleed-style protocol abuse (CIC-IDS-2017).
    Heartbleed,
}

impl AttackKind {
    /// Fraction of the feature space that carries this attack's signature.
    fn signature_fraction(self) -> f64 {
        match self {
            AttackKind::Normal => 0.0,
            AttackKind::Dos | AttackKind::Ddos => 0.55,
            AttackKind::Probe | AttackKind::PortScan | AttackKind::Reconnaissance => 0.40,
            AttackKind::BruteForce => 0.30,
            AttackKind::Botnet => 0.28,
            AttackKind::WebAttack => 0.22,
            AttackKind::Infiltration => 0.12,
            AttackKind::RemoteToLocal => 0.18,
            AttackKind::UserToRoot => 0.10,
            AttackKind::Exploits => 0.35,
            AttackKind::Fuzzers => 0.45,
            AttackKind::Generic => 0.50,
            AttackKind::Shellcode => 0.15,
            AttackKind::Worms => 0.25,
            AttackKind::Backdoor => 0.20,
            AttackKind::Analysis => 0.18,
            AttackKind::Heartbleed => 0.33,
        }
    }

    /// How far (as a fraction of the feature range) signature features shift
    /// away from benign traffic.
    fn shift_strength(self) -> f64 {
        match self {
            AttackKind::Normal => 0.0,
            AttackKind::Dos | AttackKind::Ddos | AttackKind::Generic => 0.45,
            AttackKind::Probe | AttackKind::PortScan | AttackKind::Fuzzers => 0.35,
            AttackKind::BruteForce | AttackKind::Botnet | AttackKind::Exploits => 0.30,
            AttackKind::WebAttack
            | AttackKind::Reconnaissance
            | AttackKind::Worms
            | AttackKind::Heartbleed => 0.25,
            AttackKind::RemoteToLocal | AttackKind::Backdoor | AttackKind::Analysis => 0.20,
            AttackKind::Infiltration | AttackKind::UserToRoot | AttackKind::Shellcode => 0.15,
        }
    }

    /// Traffic burstiness: multiplier on the benign standard deviation.
    fn burstiness(self) -> f64 {
        match self {
            AttackKind::Normal => 1.0,
            AttackKind::Dos | AttackKind::Ddos => 1.6,
            AttackKind::Fuzzers | AttackKind::Generic => 1.4,
            AttackKind::Probe | AttackKind::PortScan => 0.7,
            AttackKind::BruteForce | AttackKind::Reconnaissance => 0.8,
            _ => 1.1,
        }
    }

    /// Stable discriminant used for hashing.
    fn tag(self) -> u64 {
        match self {
            AttackKind::Normal => 0,
            AttackKind::Dos => 1,
            AttackKind::Ddos => 2,
            AttackKind::Probe => 3,
            AttackKind::PortScan => 4,
            AttackKind::RemoteToLocal => 5,
            AttackKind::UserToRoot => 6,
            AttackKind::BruteForce => 7,
            AttackKind::Botnet => 8,
            AttackKind::WebAttack => 9,
            AttackKind::Infiltration => 10,
            AttackKind::Exploits => 11,
            AttackKind::Fuzzers => 12,
            AttackKind::Generic => 13,
            AttackKind::Reconnaissance => 14,
            AttackKind::Shellcode => 15,
            AttackKind::Worms => 16,
            AttackKind::Backdoor => 17,
            AttackKind::Analysis => 18,
            AttackKind::Heartbleed => 19,
        }
    }
}

/// FNV-1a hash of a byte string mixed with a numeric salt; used to make all
/// profile choices deterministic functions of (feature name, attack, salt).
fn stable_hash(text: &str, salt: u64) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325 ^ salt.wrapping_mul(0x1000_0000_01B3);
    for byte in text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    // Final avalanche (splitmix64 tail).
    let mut h = hash;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// Maps a hash to a fraction in `[0, 1)`.
fn unit_fraction(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Builds the benign-traffic mean for one numeric feature.
fn benign_mean(name: &str, min: f64, max: f64, dataset_salt: u64) -> f64 {
    let fraction = 0.15 + 0.30 * unit_fraction(stable_hash(name, dataset_salt));
    min + fraction * (max - min)
}

/// Builds the benign-traffic standard deviation for one numeric feature.
fn benign_std(name: &str, min: f64, max: f64, dataset_salt: u64) -> f64 {
    let fraction = 0.04 + 0.06 * unit_fraction(stable_hash(name, dataset_salt ^ 0xABCD));
    fraction * (max - min)
}

/// Derives the [`ClassProfile`] of one class from its attack behaviour.
///
/// `dataset_salt` decorrelates profiles across datasets that share feature
/// names; `weight` is the class prevalence used by the generator.
pub fn profile_for(
    schema: &Schema,
    class_name: &str,
    attack: AttackKind,
    weight: f64,
    dataset_salt: u64,
) -> ClassProfile {
    let n = schema.num_features();
    let mut numeric_means = vec![0.0f64; n];
    let mut numeric_stds = vec![0.0f64; n];
    let mut categorical_probs = vec![Vec::new(); n];

    for (i, feature) in schema.features().iter().enumerate() {
        match &feature.kind {
            FeatureKind::Numeric { min, max } => {
                let mut mean = benign_mean(&feature.name, *min, *max, dataset_salt);
                let mut std = benign_std(&feature.name, *min, *max, dataset_salt);
                if attack != AttackKind::Normal {
                    let selector = stable_hash(&feature.name, dataset_salt ^ (attack.tag() << 32));
                    let is_signature = unit_fraction(selector) < attack.signature_fraction();
                    if is_signature {
                        let direction = if selector & 1 == 0 { 1.0 } else { -1.0 };
                        mean += direction * attack.shift_strength() * (max - min);
                        mean = mean.clamp(*min, *max);
                        std *= attack.burstiness();
                    }
                }
                numeric_means[i] = mean;
                numeric_stds[i] = std;
            }
            FeatureKind::Categorical { values } => {
                let k = values.len();
                let salt = dataset_salt ^ (attack.tag() << 16);
                let favoured = (stable_hash(&feature.name, salt) as usize) % k;
                let concentration = if attack == AttackKind::Normal { 0.70 } else { 0.75 };
                let rest = (1.0 - concentration) / k as f64;
                let mut probs = vec![rest; k];
                probs[favoured] += concentration;
                categorical_probs[i] = probs;
            }
        }
    }

    ClassProfile {
        name: class_name.to_string(),
        weight,
        numeric_means,
        numeric_stds,
        categorical_probs,
    }
}

/// Builds one profile per `(class, attack, weight)` tuple, in order.
///
/// The tuples must follow the schema's class order; [`crate::synth::generate`]
/// re-validates this before sampling.
pub fn profiles_for(
    schema: &Schema,
    classes: &[(&str, AttackKind, f64)],
    dataset_salt: u64,
) -> Vec<ClassProfile> {
    classes
        .iter()
        .map(|(name, attack, weight)| profile_for(schema, name, *attack, *weight, dataset_salt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FeatureKind, FeatureSpec, Schema};

    fn schema() -> Schema {
        let mut features = vec![
            FeatureSpec::new("duration", FeatureKind::numeric(0.0, 100.0)),
            FeatureSpec::new("protocol_type", FeatureKind::categorical(["tcp", "udp", "icmp"])),
        ];
        for i in 0..20 {
            features
                .push(FeatureSpec::new(format!("counter_{i}"), FeatureKind::numeric(0.0, 1000.0)));
        }
        Schema::new("toy", features, vec!["normal".into(), "dos".into(), "probe".into()]).unwrap()
    }

    #[test]
    fn profiles_validate_against_their_schema() {
        let s = schema();
        let profiles = profiles_for(
            &s,
            &[
                ("normal", AttackKind::Normal, 4.0),
                ("dos", AttackKind::Dos, 2.0),
                ("probe", AttackKind::Probe, 1.0),
            ],
            11,
        );
        assert_eq!(profiles.len(), 3);
        for p in &profiles {
            p.validate(&s).unwrap();
        }
    }

    #[test]
    fn attacks_deviate_from_normal_traffic() {
        let s = schema();
        let normal = profile_for(&s, "normal", AttackKind::Normal, 1.0, 11);
        let dos = profile_for(&s, "dos", AttackKind::Dos, 1.0, 11);
        let deviating = normal
            .numeric_means
            .iter()
            .zip(&dos.numeric_means)
            .filter(|(a, b)| (*a - *b).abs() > 1e-9)
            .count();
        assert!(deviating >= 5, "a DoS should perturb many counters, got {deviating}");
    }

    #[test]
    fn stealthy_attacks_perturb_fewer_features_than_volumetric_ones() {
        let s = schema();
        let normal = profile_for(&s, "normal", AttackKind::Normal, 1.0, 3);
        let count_deviations = |attack: AttackKind| {
            let p = profile_for(&s, "x", attack, 1.0, 3);
            normal
                .numeric_means
                .iter()
                .zip(&p.numeric_means)
                .filter(|(a, b)| (*a - *b).abs() > 1e-9)
                .count()
        };
        let dos = count_deviations(AttackKind::Dos);
        let u2r = count_deviations(AttackKind::UserToRoot);
        assert!(dos > u2r, "DoS ({dos}) should touch more features than U2R ({u2r})");
    }

    #[test]
    fn different_attacks_have_different_signatures() {
        let s = schema();
        let dos = profile_for(&s, "dos", AttackKind::Dos, 1.0, 5);
        let probe = profile_for(&s, "probe", AttackKind::Probe, 1.0, 5);
        assert_ne!(dos.numeric_means, probe.numeric_means);
    }

    #[test]
    fn profiles_are_deterministic_per_salt() {
        let s = schema();
        let a = profile_for(&s, "dos", AttackKind::Dos, 1.0, 7);
        let b = profile_for(&s, "dos", AttackKind::Dos, 1.0, 7);
        let c = profile_for(&s, "dos", AttackKind::Dos, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a.numeric_means, c.numeric_means);
    }

    #[test]
    fn categorical_distributions_are_valid_and_concentrated() {
        let s = schema();
        let p = profile_for(&s, "dos", AttackKind::Dos, 1.0, 9);
        let probs = &p.categorical_probs[1];
        assert_eq!(probs.len(), 3);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(probs.iter().cloned().fold(0.0, f64::max) > 0.7);
    }

    #[test]
    fn stable_hash_is_stable_and_salt_sensitive() {
        assert_eq!(stable_hash("src_bytes", 1), stable_hash("src_bytes", 1));
        assert_ne!(stable_hash("src_bytes", 1), stable_hash("src_bytes", 2));
        assert_ne!(stable_hash("src_bytes", 1), stable_hash("dst_bytes", 1));
        let f = unit_fraction(stable_hash("anything", 42));
        assert!((0.0..1.0).contains(&f));
    }
}

//! Stratified dataset splitting.
//!
//! Intrusion-detection corpora are heavily imbalanced (U2R is ~0.04% of
//! NSL-KDD), so naive random splits can easily end up with zero test samples
//! for a rare class.  [`train_test_split`] and [`stratified_k_fold`] shuffle
//! *within each class* and distribute each class proportionally, keeping every
//! split's class mixture as close to the full corpus as integer counts allow.

use crate::dataset::Dataset;
use crate::{DataError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shuffles `indices` in place with a seeded Fisher–Yates pass.
fn shuffle(indices: &mut [usize], rng: &mut StdRng) {
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
}

/// Groups record indices by class label.
fn indices_by_class(dataset: &Dataset) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); dataset.num_classes()];
    for (i, &label) in dataset.labels().iter().enumerate() {
        groups[label].push(i);
    }
    groups
}

/// Splits a dataset into a training and a test part, stratified by class.
///
/// `test_fraction` is the fraction of *each class* that goes to the test
/// split (rounded; classes with a single sample keep it in the training
/// split).
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] if the dataset is empty or
/// `test_fraction` is not strictly between 0 and 1.
pub fn train_test_split(
    dataset: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if dataset.is_empty() {
        return Err(DataError::InvalidArgument("cannot split an empty dataset".into()));
    }
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(DataError::InvalidArgument(format!(
            "test_fraction must lie strictly between 0 and 1, got {test_fraction}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train_indices = Vec::new();
    let mut test_indices = Vec::new();
    for mut group in indices_by_class(dataset) {
        shuffle(&mut group, &mut rng);
        let test_count = if group.len() <= 1 {
            0
        } else {
            ((group.len() as f64 * test_fraction).round() as usize).clamp(1, group.len() - 1)
        };
        test_indices.extend_from_slice(&group[..test_count]);
        train_indices.extend_from_slice(&group[test_count..]);
    }
    // Re-shuffle so the splits are not ordered by class.
    shuffle(&mut train_indices, &mut rng);
    shuffle(&mut test_indices, &mut rng);
    Ok((dataset.subset(&train_indices)?, dataset.subset(&test_indices)?))
}

/// Produces `k` stratified folds; fold `i` is the tuple
/// `(train_without_fold_i, fold_i)`.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] if the dataset is empty or
/// `k < 2`.
pub fn stratified_k_fold(
    dataset: &Dataset,
    k: usize,
    seed: u64,
) -> Result<Vec<(Dataset, Dataset)>> {
    if dataset.is_empty() {
        return Err(DataError::InvalidArgument("cannot fold an empty dataset".into()));
    }
    if k < 2 {
        return Err(DataError::InvalidArgument(format!("k must be at least 2, got {k}")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Assign each record to a fold, round-robin within its class.
    let mut fold_of = vec![0usize; dataset.len()];
    for mut group in indices_by_class(dataset) {
        shuffle(&mut group, &mut rng);
        for (position, index) in group.into_iter().enumerate() {
            fold_of[index] = position % k;
        }
    }
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (index, &assigned) in fold_of.iter().enumerate() {
            if assigned == fold {
                test.push(index);
            } else {
                train.push(index);
            }
        }
        folds.push((dataset.subset(&train)?, dataset.subset(&test)?));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FeatureKind, FeatureSpec, Schema};

    fn dataset(per_class: &[usize]) -> Dataset {
        let schema = Schema::new(
            "toy",
            vec![FeatureSpec::new("x", FeatureKind::numeric(0.0, 1.0))],
            (0..per_class.len()).map(|c| format!("class{c}")).collect(),
        )
        .unwrap();
        let mut d = Dataset::empty(schema);
        for (class, &count) in per_class.iter().enumerate() {
            for i in 0..count {
                d.push(vec![(i % 10) as f32 / 10.0], class).unwrap();
            }
        }
        d
    }

    #[test]
    fn split_validates_arguments() {
        let d = dataset(&[10, 10]);
        assert!(train_test_split(&d, 0.0, 0).is_err());
        assert!(train_test_split(&d, 1.0, 0).is_err());
        let empty = Dataset::empty(d.schema().clone());
        assert!(train_test_split(&empty, 0.3, 0).is_err());
    }

    #[test]
    fn split_preserves_all_records_and_stratifies() {
        let d = dataset(&[100, 40, 10]);
        let (train, test) = train_test_split(&d, 0.25, 7).unwrap();
        assert_eq!(train.len() + test.len(), d.len());
        let train_counts = train.class_counts();
        let test_counts = test.class_counts();
        assert_eq!(test_counts[0], 25);
        assert_eq!(test_counts[1], 10);
        assert_eq!(test_counts[2], 3, "rounded 25% of 10");
        assert_eq!(train_counts[0], 75);
        assert!(test_counts.iter().all(|&c| c > 0), "every class appears in the test split");
    }

    #[test]
    fn singleton_classes_stay_in_training() {
        let d = dataset(&[20, 1]);
        let (train, test) = train_test_split(&d, 0.5, 3).unwrap();
        assert_eq!(train.class_counts()[1], 1);
        assert_eq!(test.class_counts()[1], 0);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = dataset(&[30, 30]);
        let a = train_test_split(&d, 0.3, 11).unwrap();
        let b = train_test_split(&d, 0.3, 11).unwrap();
        let c = train_test_split(&d, 0.3, 12).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn k_fold_covers_every_record_exactly_once() {
        let d = dataset(&[30, 20, 10]);
        let folds = stratified_k_fold(&d, 5, 2).unwrap();
        assert_eq!(folds.len(), 5);
        let mut total_test = 0;
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), d.len());
            total_test += test.len();
            // Each fold's test split keeps all classes (counts allow it here).
            assert!(test.class_counts().iter().all(|&c| c > 0));
        }
        assert_eq!(total_test, d.len(), "every record is in exactly one test fold");
    }

    #[test]
    fn k_fold_validates_arguments() {
        let d = dataset(&[10, 10]);
        assert!(stratified_k_fold(&d, 1, 0).is_err());
        let empty = Dataset::empty(d.schema().clone());
        assert!(stratified_k_fold(&empty, 3, 0).is_err());
    }
}

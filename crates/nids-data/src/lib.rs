//! # `nids-data` — intrusion-detection datasets for the CyberHD evaluation
//!
//! The paper evaluates CyberHD on four public intrusion-detection corpora:
//! NSL-KDD, UNSW-NB15, CIC-IDS-2017 and CIC-IDS-2018.  Those corpora cannot
//! be redistributed with this repository, so this crate provides
//!
//! * the exact **feature schemas** of all four datasets
//!   ([`datasets`]) — feature names, numeric vs. categorical kinds and the
//!   attack-class taxonomies,
//! * **synthetic class-conditional traffic generators** ([`synth`],
//!   [`traffic`]) that produce labelled flow records with the same schema,
//!   class imbalance and controllable class overlap, so every experiment in
//!   the paper can be reproduced end-to-end on a laptop,
//! * **CSV loaders** ([`loader`]) so the real corpora can be dropped in
//!   without code changes,
//! * **preprocessing** ([`preprocess`]) — one-hot expansion of categorical
//!   features and min-max / z-score normalization — and **stratified
//!   splitting** ([`split`]), which together turn raw records into the dense
//!   feature vectors consumed by the classifiers.
//!
//! # Quick start
//!
//! ```
//! use nids_data::datasets::DatasetKind;
//! use nids_data::synth::SyntheticConfig;
//! use nids_data::preprocess::{Normalization, Preprocessor};
//! use nids_data::split::train_test_split;
//!
//! # fn main() -> Result<(), nids_data::DataError> {
//! // 1. Generate a small NSL-KDD-shaped corpus.
//! let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(600, 7))?;
//! assert_eq!(dataset.num_classes(), 5);
//!
//! // 2. Split and preprocess.
//! let (train, test) = train_test_split(&dataset, 0.25, 42)?;
//! let preprocessor = Preprocessor::fit(&train, Normalization::MinMax)?;
//! let train_x = preprocessor.transform(&train)?;
//! assert_eq!(train_x.len(), train.len());
//! assert!(!test.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod datasets;
pub mod drift;
pub mod loader;
pub mod preprocess;
pub mod schema;
pub mod split;
pub mod synth;
pub mod traffic;

pub use dataset::Dataset;
pub use datasets::DatasetKind;
pub use drift::{DriftPhase, DriftStream};
pub use preprocess::{Normalization, Preprocessor};
pub use schema::{FeatureKind, FeatureSpec, Schema};
pub use synth::SyntheticConfig;

use std::error::Error;
use std::fmt;

/// Errors produced by the `nids-data` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A schema was structurally invalid (no features, a categorical feature
    /// with no values, duplicate feature names, …).
    InvalidSchema(String),
    /// A record did not conform to its schema (wrong arity, categorical
    /// index out of range, non-finite numeric value).
    InvalidRecord(String),
    /// A generator or splitter argument was invalid.
    InvalidArgument(String),
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidSchema(what) => write!(f, "invalid schema: {what}"),
            DataError::InvalidRecord(what) => write!(f, "invalid record: {what}"),
            DataError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for DataError {}

/// Crate-local result alias.
pub type Result<T, E = DataError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(DataError::InvalidSchema("x".into()).to_string().contains("schema"));
        assert!(DataError::InvalidRecord("y".into()).to_string().contains("record"));
        assert!(DataError::InvalidArgument("z".into()).to_string().contains("argument"));
        let e = DataError::Parse { line: 12, message: "bad float".into() };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}

//! Class-conditional synthetic record generation.
//!
//! The real NSL-KDD / UNSW-NB15 / CIC-IDS corpora cannot be shipped with this
//! repository, so experiments run on synthetic data that preserves the
//! properties the CyberHD evaluation actually depends on: the feature schema
//! (dimensionality and categorical structure), the number of classes, class
//! imbalance, and a controllable amount of class overlap.
//!
//! Each class is described by a [`ClassProfile`] — per-feature Gaussian
//! parameters for numeric columns and a categorical distribution for discrete
//! columns.  [`generate`] samples records class-by-class according to the
//! profile weights.  Profiles for the four paper datasets are constructed by
//! [`crate::traffic`] from attack-behaviour templates; custom profiles can be
//! built directly for new datasets.

use crate::dataset::Dataset;
use crate::schema::{FeatureKind, Schema};
use crate::{DataError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-class generative description of one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassProfile {
    /// Class name (must match the schema's class list).
    pub name: String,
    /// Relative sampling weight (prevalence). Does not need to sum to one
    /// across profiles; weights are normalized by the generator.
    pub weight: f64,
    /// Mean of every *numeric* feature, in schema feature order (categorical
    /// positions hold the index of the most likely category as a float and
    /// are ignored by the numeric sampler).
    pub numeric_means: Vec<f64>,
    /// Standard deviation of every numeric feature (same layout as
    /// `numeric_means`).
    pub numeric_stds: Vec<f64>,
    /// For every feature index that is categorical, the probability of each
    /// category value. Numeric positions hold an empty vector.
    pub categorical_probs: Vec<Vec<f64>>,
}

impl ClassProfile {
    /// Validates the profile against a schema.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] when the layout does not match
    /// the schema (wrong lengths, missing categorical distributions, negative
    /// weight or standard deviation).
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        let n = schema.num_features();
        if self.numeric_means.len() != n
            || self.numeric_stds.len() != n
            || self.categorical_probs.len() != n
        {
            return Err(DataError::InvalidArgument(format!(
                "profile {:?} has wrong feature arity (expected {n})",
                self.name
            )));
        }
        // A weight of exactly zero is legal: it removes the class from the
        // sampled mix (the drift streams use this for absent/zero-day
        // classes).  The generator separately requires the *total* weight
        // to be positive.
        if !(self.weight.is_finite() && self.weight >= 0.0) {
            return Err(DataError::InvalidArgument(format!(
                "profile {:?} has a negative or non-finite weight {}",
                self.name, self.weight
            )));
        }
        for (i, feature) in schema.features().iter().enumerate() {
            match &feature.kind {
                FeatureKind::Numeric { .. } => {
                    if !(self.numeric_stds[i].is_finite() && self.numeric_stds[i] >= 0.0) {
                        return Err(DataError::InvalidArgument(format!(
                            "profile {:?} feature {:?} has invalid std {}",
                            self.name, feature.name, self.numeric_stds[i]
                        )));
                    }
                }
                FeatureKind::Categorical { values } => {
                    let probs = &self.categorical_probs[i];
                    if probs.len() != values.len() {
                        return Err(DataError::InvalidArgument(format!(
                            "profile {:?} feature {:?} has {} category probabilities, expected {}",
                            self.name,
                            feature.name,
                            probs.len(),
                            values.len()
                        )));
                    }
                    let sum: f64 = probs.iter().sum();
                    if probs.iter().any(|&p| p < 0.0) || sum <= 0.0 {
                        return Err(DataError::InvalidArgument(format!(
                            "profile {:?} feature {:?} has an invalid categorical distribution",
                            self.name, feature.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Configuration of a synthetic generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Total number of records to generate.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Class-overlap multiplier applied to every numeric standard deviation.
    /// `1.0` reproduces the profile as-is; larger values make the classes
    /// harder to separate.
    pub difficulty: f64,
    /// Probability of replacing a record's label with a uniformly random
    /// class (simulates labelling noise in the real corpora).
    pub label_noise: f64,
}

impl SyntheticConfig {
    /// Creates a configuration with `samples` records, unit difficulty and no
    /// label noise.
    pub fn new(samples: usize, seed: u64) -> Self {
        Self { samples, seed, difficulty: 1.0, label_noise: 0.0 }
    }

    /// Sets the class-overlap multiplier (builder style).
    pub fn difficulty(mut self, difficulty: f64) -> Self {
        self.difficulty = difficulty;
        self
    }

    /// Sets the label-noise probability (builder style).
    pub fn label_noise(mut self, label_noise: f64) -> Self {
        self.label_noise = label_noise;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.samples == 0 {
            return Err(DataError::InvalidArgument("samples must be non-zero".into()));
        }
        if !(self.difficulty.is_finite() && self.difficulty >= 0.0) {
            return Err(DataError::InvalidArgument(format!(
                "difficulty must be non-negative, got {}",
                self.difficulty
            )));
        }
        if !(0.0..=1.0).contains(&self.label_noise) {
            return Err(DataError::InvalidArgument(format!(
                "label_noise must lie in [0, 1], got {}",
                self.label_noise
            )));
        }
        Ok(())
    }
}

/// A seedable sampler with the handful of distributions the generator needs.
#[derive(Debug, Clone)]
pub(crate) struct Sampler {
    rng: StdRng,
    spare_normal: Option<f64>,
}

impl Sampler {
    pub(crate) fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    pub(crate) fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let mut u1: f64 = self.rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    pub(crate) fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    pub(crate) fn bernoulli(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    pub(crate) fn index(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }

    /// Samples an index from an unnormalized discrete distribution.
    ///
    /// Indices with a non-positive weight are **never** returned: they are
    /// skipped during the scan, and the rounding fallback (a `target` left
    /// marginally positive after every subtraction) lands on the last
    /// positive-weight index instead of blindly on the last index.  This is
    /// the guarantee the drift streams' zero-weight (absent/zero-day)
    /// classes rely on — without the skip, a draw of exactly `0.0` from the
    /// RNG could emit a zero-weight class.
    pub(crate) fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut target = self.rng.gen::<f64>() * total;
        let mut last_positive = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            last_positive = i;
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        last_positive
    }
}

/// Generates a labelled dataset from class profiles.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when the configuration is invalid,
/// the profiles do not match the schema, or the profile names do not cover
/// exactly the schema's classes (in order).
pub fn generate(
    schema: &Schema,
    profiles: &[ClassProfile],
    config: &SyntheticConfig,
) -> Result<Dataset> {
    config.validate()?;
    if profiles.len() != schema.num_classes() {
        return Err(DataError::InvalidArgument(format!(
            "{} profiles supplied for {} classes",
            profiles.len(),
            schema.num_classes()
        )));
    }
    for (profile, class) in profiles.iter().zip(schema.classes()) {
        if &profile.name != class {
            return Err(DataError::InvalidArgument(format!(
                "profile {:?} does not match schema class {:?} (profiles must follow class order)",
                profile.name, class
            )));
        }
        profile.validate(schema)?;
    }

    let weights: Vec<f64> = profiles.iter().map(|p| p.weight).collect();
    if weights.iter().sum::<f64>() <= 0.0 {
        return Err(DataError::InvalidArgument(
            "at least one class profile must have a positive weight".into(),
        ));
    }
    let mut sampler = Sampler::new(config.seed);
    let mut records = Vec::with_capacity(config.samples);
    let mut labels = Vec::with_capacity(config.samples);

    for _ in 0..config.samples {
        let class = sampler.categorical(&weights);
        let profile = &profiles[class];
        let mut record = Vec::with_capacity(schema.num_features());
        for (i, feature) in schema.features().iter().enumerate() {
            match &feature.kind {
                FeatureKind::Numeric { min, max } => {
                    let std = profile.numeric_stds[i] * config.difficulty;
                    let value = sampler.normal(profile.numeric_means[i], std);
                    record.push(value.clamp(*min, *max) as f32);
                }
                FeatureKind::Categorical { .. } => {
                    let idx = sampler.categorical(&profile.categorical_probs[i]);
                    record.push(idx as f32);
                }
            }
        }
        let label = if config.label_noise > 0.0 && sampler.bernoulli(config.label_noise) {
            sampler.index(schema.num_classes())
        } else {
            class
        };
        records.push(record);
        labels.push(label);
    }

    Dataset::new(schema.clone(), records, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FeatureKind, FeatureSpec};

    fn schema() -> Schema {
        Schema::new(
            "toy",
            vec![
                FeatureSpec::new("x", FeatureKind::numeric(-10.0, 10.0)),
                FeatureSpec::new("proto", FeatureKind::categorical(["tcp", "udp", "icmp"])),
                FeatureSpec::new("y", FeatureKind::numeric(0.0, 100.0)),
            ],
            vec!["normal".into(), "attack".into()],
        )
        .unwrap()
    }

    fn profiles() -> Vec<ClassProfile> {
        vec![
            ClassProfile {
                name: "normal".into(),
                weight: 3.0,
                numeric_means: vec![-2.0, 0.0, 20.0],
                numeric_stds: vec![0.5, 0.0, 3.0],
                categorical_probs: vec![vec![], vec![0.8, 0.15, 0.05], vec![]],
            },
            ClassProfile {
                name: "attack".into(),
                weight: 1.0,
                numeric_means: vec![2.0, 0.0, 70.0],
                numeric_stds: vec![0.5, 0.0, 3.0],
                categorical_probs: vec![vec![], vec![0.1, 0.1, 0.8], vec![]],
            },
        ]
    }

    #[test]
    fn generation_respects_sample_count_and_schema() {
        let d = generate(&schema(), &profiles(), &SyntheticConfig::new(500, 1)).unwrap();
        assert_eq!(d.len(), 500);
        for record in d.records() {
            assert!(d.schema().validate_record(record).is_ok());
        }
    }

    #[test]
    fn class_weights_control_prevalence() {
        let d = generate(&schema(), &profiles(), &SyntheticConfig::new(4000, 2)).unwrap();
        let counts = d.class_counts();
        // Expected ratio 3:1 -> normal around 3000.
        assert!(counts[0] > 2 * counts[1], "counts {counts:?}");
    }

    #[test]
    fn classes_are_separable_at_low_difficulty() {
        let d = generate(&schema(), &profiles(), &SyntheticConfig::new(1000, 3)).unwrap();
        // A trivial threshold on feature 0 should separate nearly perfectly.
        let mut correct = 0;
        for (record, &label) in d.records().iter().zip(d.labels()) {
            let predicted = usize::from(record[0] > 0.0);
            if predicted == label {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.95);
    }

    #[test]
    fn difficulty_increases_class_overlap() {
        let easy = generate(&schema(), &profiles(), &SyntheticConfig::new(2000, 4)).unwrap();
        let hard = generate(&schema(), &profiles(), &SyntheticConfig::new(2000, 4).difficulty(8.0))
            .unwrap();
        let error_rate = |d: &Dataset| {
            d.records()
                .iter()
                .zip(d.labels())
                .filter(|(r, &l)| usize::from(r[0] > 0.0) != l)
                .count() as f64
                / d.len() as f64
        };
        assert!(error_rate(&hard) > error_rate(&easy));
    }

    #[test]
    fn label_noise_flips_labels() {
        let clean = generate(&schema(), &profiles(), &SyntheticConfig::new(2000, 5)).unwrap();
        let noisy =
            generate(&schema(), &profiles(), &SyntheticConfig::new(2000, 5).label_noise(0.4))
                .unwrap();
        // With 40% label noise the simple threshold rule gets noticeably worse.
        let error_rate = |d: &Dataset| {
            d.records()
                .iter()
                .zip(d.labels())
                .filter(|(r, &l)| usize::from(r[0] > 0.0) != l)
                .count() as f64
                / d.len() as f64
        };
        assert!(error_rate(&noisy) > error_rate(&clean) + 0.1);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&schema(), &profiles(), &SyntheticConfig::new(100, 9)).unwrap();
        let b = generate(&schema(), &profiles(), &SyntheticConfig::new(100, 9)).unwrap();
        let c = generate(&schema(), &profiles(), &SyntheticConfig::new(100, 10)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let s = schema();
        let p = profiles();
        assert!(generate(&s, &p[..1], &SyntheticConfig::new(10, 0)).is_err());
        assert!(generate(&s, &p, &SyntheticConfig::new(0, 0)).is_err());
        assert!(generate(&s, &p, &SyntheticConfig::new(10, 0).difficulty(-1.0)).is_err());
        assert!(generate(&s, &p, &SyntheticConfig::new(10, 0).label_noise(2.0)).is_err());

        let mut swapped = profiles();
        swapped.swap(0, 1);
        assert!(generate(&s, &swapped, &SyntheticConfig::new(10, 0)).is_err());

        let mut bad = profiles();
        bad[0].numeric_stds[0] = -1.0;
        assert!(generate(&s, &bad, &SyntheticConfig::new(10, 0)).is_err());

        let mut bad = profiles();
        bad[0].categorical_probs[1] = vec![0.5, 0.5];
        assert!(generate(&s, &bad, &SyntheticConfig::new(10, 0)).is_err());

        // Negative weights are rejected; an all-zero mix has nothing to
        // sample from.
        let mut bad = profiles();
        bad[0].weight = -1.0;
        assert!(generate(&s, &bad, &SyntheticConfig::new(10, 0)).is_err());
        let mut empty_mix = profiles();
        for profile in &mut empty_mix {
            profile.weight = 0.0;
        }
        assert!(generate(&s, &empty_mix, &SyntheticConfig::new(10, 0)).is_err());
    }

    #[test]
    fn zero_weight_classes_are_never_sampled() {
        // A single zero-weight class is legal and is structurally excluded
        // from the mix — not just "astronomically unlikely".
        let mut zeroed = profiles();
        zeroed[1].weight = 0.0;
        let d = generate(&schema(), &zeroed, &SyntheticConfig::new(3000, 17)).unwrap();
        assert_eq!(d.len(), 3000);
        assert_eq!(d.labels().iter().filter(|&&l| l == 1).count(), 0);
        assert_eq!(d.class_counts()[0], 3000);
    }

    #[test]
    fn sampler_categorical_respects_weights() {
        let mut sampler = Sampler::new(7);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sampler.categorical(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 2 * counts[0]);
    }

    #[test]
    fn sampler_categorical_never_lands_on_zero_weight_edges() {
        // Zero weight in the leading position (the `target == 0.0` edge)
        // and in the trailing position (the rounding-fallback edge) must
        // both be unreachable.
        let mut sampler = Sampler::new(11);
        for _ in 0..5000 {
            assert_eq!(sampler.categorical(&[0.0, 1.0]), 1);
            assert_eq!(sampler.categorical(&[1.0, 0.0]), 0);
            let middle = sampler.categorical(&[0.0, 0.5, 0.5, 0.0]);
            assert!(middle == 1 || middle == 2, "zero-weight edge emitted index {middle}");
        }
    }
}

//! Labelled datasets: records + labels + schema.
//!
//! A [`Dataset`] is the in-memory form every other module works with.  Rows
//! are *raw* records (numeric features as values, categorical features as
//! category indices); converting them into the dense, normalized, one-hot
//! expanded vectors consumed by the classifiers is the job of
//! [`crate::preprocess::Preprocessor`].

use crate::schema::Schema;
use crate::{DataError, Result};
use serde::{Deserialize, Serialize};

/// A labelled set of raw records conforming to a [`Schema`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    records: Vec<Vec<f32>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset for a schema.
    pub fn empty(schema: Schema) -> Self {
        Self { schema, records: Vec::new(), labels: Vec::new() }
    }

    /// Creates a dataset from pre-validated parts.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRecord`] if the records and labels differ
    /// in length, any record fails schema validation, or any label is out of
    /// range.
    pub fn new(schema: Schema, records: Vec<Vec<f32>>, labels: Vec<usize>) -> Result<Self> {
        if records.len() != labels.len() {
            return Err(DataError::InvalidRecord(format!(
                "{} records but {} labels",
                records.len(),
                labels.len()
            )));
        }
        for record in &records {
            schema.validate_record(record)?;
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= schema.num_classes()) {
            return Err(DataError::InvalidRecord(format!(
                "label {bad} out of range for {} classes",
                schema.num_classes()
            )));
        }
        Ok(Self { schema, records, labels })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRecord`] if the record does not conform to
    /// the schema or the label is out of range.
    pub fn push(&mut self, record: Vec<f32>, label: usize) -> Result<()> {
        self.schema.validate_record(&record)?;
        if label >= self.schema.num_classes() {
            return Err(DataError::InvalidRecord(format!(
                "label {label} out of range for {} classes",
                self.schema.num_classes()
            )));
        }
        self.records.push(record);
        self.labels.push(label);
        Ok(())
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of classes (from the schema).
    pub fn num_classes(&self) -> usize {
        self.schema.num_classes()
    }

    /// Raw records (numeric values / categorical indices).
    pub fn records(&self) -> &[Vec<f32>] {
        &self.records
    }

    /// Labels, parallel to [`Dataset::records`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One record and its label.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] if `index` is out of range.
    pub fn get(&self, index: usize) -> Result<(&[f32], usize)> {
        if index >= self.records.len() {
            return Err(DataError::InvalidArgument(format!(
                "index {index} out of range for {} records",
                self.records.len()
            )));
        }
        Ok((&self.records[index], self.labels[index]))
    }

    /// Number of records per class, indexed by class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.schema.num_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Builds a new dataset containing the records at `indices`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<Self> {
        let mut records = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let (record, label) = self.get(i)?;
            records.push(record.to_vec());
            labels.push(label);
        }
        Ok(Self { schema: self.schema.clone(), records, labels })
    }

    /// Merges another dataset with the same schema into this one.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] if the schemas differ.
    pub fn extend_from(&mut self, other: &Dataset) -> Result<()> {
        if self.schema != other.schema {
            return Err(DataError::InvalidArgument(
                "cannot merge datasets with different schemas".into(),
            ));
        }
        self.records.extend(other.records.iter().cloned());
        self.labels.extend_from_slice(&other.labels);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FeatureKind, FeatureSpec};

    fn schema() -> Schema {
        Schema::new(
            "toy",
            vec![
                FeatureSpec::new("a", FeatureKind::numeric(0.0, 1.0)),
                FeatureSpec::new("proto", FeatureKind::categorical(["tcp", "udp"])),
            ],
            vec!["normal".into(), "attack".into()],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_records_and_labels() {
        let s = schema();
        let ok = Dataset::new(s.clone(), vec![vec![0.5, 1.0]], vec![1]).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(!ok.is_empty());
        assert_eq!(ok.num_classes(), 2);

        assert!(Dataset::new(s.clone(), vec![vec![0.5, 1.0]], vec![]).is_err());
        assert!(Dataset::new(s.clone(), vec![vec![0.5, 5.0]], vec![0]).is_err());
        assert!(Dataset::new(s, vec![vec![0.5, 1.0]], vec![2]).is_err());
    }

    #[test]
    fn push_and_get_round_trip() {
        let mut d = Dataset::empty(schema());
        assert!(d.is_empty());
        d.push(vec![0.25, 0.0], 0).unwrap();
        d.push(vec![0.75, 1.0], 1).unwrap();
        assert_eq!(d.len(), 2);
        let (record, label) = d.get(1).unwrap();
        assert_eq!(record, &[0.75, 1.0]);
        assert_eq!(label, 1);
        assert!(d.get(2).is_err());
        assert!(d.push(vec![0.1], 0).is_err());
        assert!(d.push(vec![0.1, 0.0], 7).is_err());
    }

    #[test]
    fn class_counts_tally_labels() {
        let mut d = Dataset::empty(schema());
        d.push(vec![0.1, 0.0], 0).unwrap();
        d.push(vec![0.2, 1.0], 0).unwrap();
        d.push(vec![0.9, 1.0], 1).unwrap();
        assert_eq!(d.class_counts(), vec![2, 1]);
    }

    #[test]
    fn subset_preserves_order_and_checks_bounds() {
        let mut d = Dataset::empty(schema());
        for i in 0..5 {
            d.push(vec![i as f32 / 10.0, (i % 2) as f32], i % 2).unwrap();
        }
        let s = d.subset(&[4, 0, 2]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[0, 0, 0]);
        assert_eq!(s.records()[0][0], 0.4);
        assert!(d.subset(&[5]).is_err());
    }

    #[test]
    fn extend_from_requires_matching_schema() {
        let mut a = Dataset::empty(schema());
        a.push(vec![0.1, 0.0], 0).unwrap();
        let mut b = Dataset::empty(schema());
        b.push(vec![0.9, 1.0], 1).unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 2);

        let other_schema = Schema::new(
            "other",
            vec![FeatureSpec::new("x", FeatureKind::numeric(0.0, 1.0))],
            vec!["n".into(), "a".into()],
        )
        .unwrap();
        let c = Dataset::empty(other_schema);
        assert!(a.extend_from(&c).is_err());
    }
}

//! Dataset schemas: feature names, kinds and class taxonomies.
//!
//! A [`Schema`] describes the columns of an intrusion-detection dataset —
//! which features are numeric, which are categorical (and what values those
//! categories take) — plus the ordered list of class names.  Schemas are what
//! tie the synthetic generators, the CSV loaders and the preprocessing
//! pipeline together: every [`crate::Dataset`] carries its schema and every
//! record is validated against it.

use crate::{DataError, Result};
use hdc::codec::{CodecError, CodecResult, Reader, Writer};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The kind of a feature column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// A real-valued feature with an expected (not enforced) range, used by
    /// the synthetic generators and by min-max normalization as a fallback
    /// when a split contains a constant column.
    Numeric {
        /// Typical minimum value.
        min: f64,
        /// Typical maximum value.
        max: f64,
    },
    /// A categorical feature taking one of a fixed set of string values
    /// (protocol, service, TCP flag, …).  Stored in records as the index into
    /// `values`.
    Categorical {
        /// The admissible category names, in index order.
        values: Vec<String>,
    },
}

impl FeatureKind {
    /// Convenience constructor for a numeric feature.
    pub fn numeric(min: f64, max: f64) -> Self {
        FeatureKind::Numeric { min, max }
    }

    /// Convenience constructor for a categorical feature.
    pub fn categorical<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        FeatureKind::Categorical { values: values.into_iter().map(Into::into).collect() }
    }

    /// Number of dense columns this feature expands to after one-hot
    /// encoding: 1 for numeric, `values.len()` for categorical.
    pub fn encoded_width(&self) -> usize {
        match self {
            FeatureKind::Numeric { .. } => 1,
            FeatureKind::Categorical { values } => values.len(),
        }
    }

    /// Returns `true` for categorical features.
    pub fn is_categorical(&self) -> bool {
        matches!(self, FeatureKind::Categorical { .. })
    }

    /// Persists the kind through the artifact codec.
    pub fn write_to(&self, w: &mut Writer) {
        match self {
            FeatureKind::Numeric { min, max } => {
                w.u8(0);
                w.f64(*min);
                w.f64(*max);
            }
            FeatureKind::Categorical { values } => {
                w.u8(1);
                w.usize(values.len());
                for v in values {
                    w.str(v);
                }
            }
        }
    }

    /// Reads a kind persisted by [`FeatureKind::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream or an unknown tag.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        match r.u8()? {
            0 => Ok(FeatureKind::Numeric { min: r.f64()?, max: r.f64()? }),
            1 => {
                let n = r.usize()?;
                let values = (0..n).map(|_| r.str()).collect::<CodecResult<Vec<_>>>()?;
                Ok(FeatureKind::Categorical { values })
            }
            tag => Err(CodecError::Invalid(format!("feature-kind tag {tag}"))),
        }
    }
}

/// A named feature column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Column name (matches the official dataset documentation).
    pub name: String,
    /// Kind of the column.
    pub kind: FeatureKind,
}

impl FeatureSpec {
    /// Creates a feature spec.
    pub fn new(name: impl Into<String>, kind: FeatureKind) -> Self {
        Self { name: name.into(), kind }
    }
}

/// A dataset schema: ordered features plus ordered class names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    name: String,
    features: Vec<FeatureSpec>,
    classes: Vec<String>,
}

impl Schema {
    /// Creates and validates a schema.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSchema`] if there are no features, no
    /// classes, duplicate feature names, duplicate class names, a categorical
    /// feature without values, or a numeric feature with a non-increasing /
    /// non-finite range.
    pub fn new(
        name: impl Into<String>,
        features: Vec<FeatureSpec>,
        classes: Vec<String>,
    ) -> Result<Self> {
        let name = name.into();
        if features.is_empty() {
            return Err(DataError::InvalidSchema(format!("schema {name} has no features")));
        }
        if classes.len() < 2 {
            return Err(DataError::InvalidSchema(format!(
                "schema {name} needs at least 2 classes, got {}",
                classes.len()
            )));
        }
        let mut seen = HashSet::new();
        for f in &features {
            if !seen.insert(f.name.as_str()) {
                return Err(DataError::InvalidSchema(format!(
                    "schema {name} has duplicate feature name {:?}",
                    f.name
                )));
            }
            match &f.kind {
                FeatureKind::Numeric { min, max } => {
                    if !(min.is_finite() && max.is_finite() && min < max) {
                        return Err(DataError::InvalidSchema(format!(
                            "feature {:?} has an invalid numeric range [{min}, {max}]",
                            f.name
                        )));
                    }
                }
                FeatureKind::Categorical { values } => {
                    if values.is_empty() {
                        return Err(DataError::InvalidSchema(format!(
                            "categorical feature {:?} has no values",
                            f.name
                        )));
                    }
                }
            }
        }
        let mut seen_classes = HashSet::new();
        for c in &classes {
            if !seen_classes.insert(c.as_str()) {
                return Err(DataError::InvalidSchema(format!(
                    "schema {name} has duplicate class name {c:?}"
                )));
            }
        }
        Ok(Self { name, features, classes })
    }

    /// Dataset name (e.g. `"NSL-KDD"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered feature specifications.
    pub fn features(&self) -> &[FeatureSpec] {
        &self.features
    }

    /// Number of raw feature columns.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// Ordered class names.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Index of a class name, if present.
    pub fn class_index(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c == name)
    }

    /// Index of a feature name, if present.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.features.iter().position(|f| f.name == name)
    }

    /// Total number of dense columns after one-hot expansion of the
    /// categorical features.
    pub fn encoded_width(&self) -> usize {
        self.features.iter().map(|f| f.kind.encoded_width()).sum()
    }

    /// Validates a raw record against the schema.
    ///
    /// Records store numeric features as their value and categorical features
    /// as the (integer) index of the category, both as `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidRecord`] on arity mismatch, non-finite
    /// numeric values, or out-of-range / non-integral categorical indices.
    pub fn validate_record(&self, record: &[f32]) -> Result<()> {
        if record.len() != self.features.len() {
            return Err(DataError::InvalidRecord(format!(
                "record has {} values but schema {} has {} features",
                record.len(),
                self.name,
                self.features.len()
            )));
        }
        for (value, feature) in record.iter().zip(&self.features) {
            match &feature.kind {
                FeatureKind::Numeric { .. } => {
                    if !value.is_finite() {
                        return Err(DataError::InvalidRecord(format!(
                            "numeric feature {:?} has non-finite value {value}",
                            feature.name
                        )));
                    }
                }
                FeatureKind::Categorical { values } => {
                    if value.fract() != 0.0 || *value < 0.0 || (*value as usize) >= values.len() {
                        return Err(DataError::InvalidRecord(format!(
                            "categorical feature {:?} has invalid index {value} \
                             (must be an integer in [0, {}))",
                            feature.name,
                            values.len()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Persists the schema through the artifact codec.
    pub fn write_to(&self, w: &mut Writer) {
        w.str(&self.name);
        w.usize(self.features.len());
        for f in &self.features {
            w.str(&f.name);
            f.kind.write_to(w);
        }
        w.usize(self.classes.len());
        for c in &self.classes {
            w.str(c);
        }
    }

    /// Reads a schema persisted by [`Schema::write_to`], re-running the
    /// constructor's validation.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream or a schema that fails
    /// validation.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        let name = r.str()?;
        let num_features = r.usize()?;
        let mut features = Vec::with_capacity(num_features.min(r.remaining()));
        for _ in 0..num_features {
            let feature_name = r.str()?;
            features.push(FeatureSpec::new(feature_name, FeatureKind::read_from(r)?));
        }
        let num_classes = r.usize()?;
        let classes = (0..num_classes).map(|_| r.str()).collect::<CodecResult<Vec<_>>>()?;
        Schema::new(name, features, classes)
            .map_err(|e| CodecError::Invalid(format!("schema: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> Schema {
        Schema::new(
            "toy",
            vec![
                FeatureSpec::new("duration", FeatureKind::numeric(0.0, 100.0)),
                FeatureSpec::new("protocol", FeatureKind::categorical(["tcp", "udp", "icmp"])),
                FeatureSpec::new("bytes", FeatureKind::numeric(0.0, 1e6)),
            ],
            vec!["normal".into(), "attack".into()],
        )
        .unwrap()
    }

    #[test]
    fn schema_reports_sizes_and_lookups() {
        let s = toy_schema();
        assert_eq!(s.name(), "toy");
        assert_eq!(s.num_features(), 3);
        assert_eq!(s.num_classes(), 2);
        assert_eq!(s.encoded_width(), 1 + 3 + 1);
        assert_eq!(s.class_index("attack"), Some(1));
        assert_eq!(s.class_index("nope"), None);
        assert_eq!(s.feature_index("protocol"), Some(1));
        assert_eq!(s.feature_index("nope"), None);
    }

    #[test]
    fn invalid_schemas_are_rejected() {
        assert!(Schema::new("x", vec![], vec!["a".into(), "b".into()]).is_err());
        assert!(Schema::new(
            "x",
            vec![FeatureSpec::new("f", FeatureKind::numeric(0.0, 1.0))],
            vec!["only".into()]
        )
        .is_err());
        // Duplicate feature name.
        assert!(Schema::new(
            "x",
            vec![
                FeatureSpec::new("f", FeatureKind::numeric(0.0, 1.0)),
                FeatureSpec::new("f", FeatureKind::numeric(0.0, 1.0)),
            ],
            vec!["a".into(), "b".into()]
        )
        .is_err());
        // Duplicate class name.
        assert!(Schema::new(
            "x",
            vec![FeatureSpec::new("f", FeatureKind::numeric(0.0, 1.0))],
            vec!["a".into(), "a".into()]
        )
        .is_err());
        // Empty categorical.
        assert!(Schema::new(
            "x",
            vec![FeatureSpec::new("c", FeatureKind::Categorical { values: vec![] })],
            vec!["a".into(), "b".into()]
        )
        .is_err());
        // Bad numeric range.
        assert!(Schema::new(
            "x",
            vec![FeatureSpec::new("f", FeatureKind::numeric(1.0, 1.0))],
            vec!["a".into(), "b".into()]
        )
        .is_err());
    }

    #[test]
    fn record_validation_checks_arity_and_kinds() {
        let s = toy_schema();
        assert!(s.validate_record(&[1.0, 2.0, 3.0]).is_ok());
        assert!(s.validate_record(&[1.0, 2.0]).is_err());
        assert!(s.validate_record(&[f32::NAN, 0.0, 3.0]).is_err());
        assert!(s.validate_record(&[1.0, 3.0, 3.0]).is_err(), "categorical index out of range");
        assert!(s.validate_record(&[1.0, 0.5, 3.0]).is_err(), "categorical index must be integral");
    }

    #[test]
    fn encoded_width_counts_one_hot_columns() {
        assert_eq!(FeatureKind::numeric(0.0, 1.0).encoded_width(), 1);
        assert_eq!(FeatureKind::categorical(["a", "b", "c", "d"]).encoded_width(), 4);
        assert!(FeatureKind::categorical(["a"]).is_categorical());
        assert!(!FeatureKind::numeric(0.0, 1.0).is_categorical());
    }

    #[test]
    fn schema_persistence_round_trips() {
        let s = toy_schema();
        let mut w = Writer::new();
        s.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Schema::read_from(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back, s);
        // Truncated streams and invalid schemas are rejected.
        assert!(Schema::read_from(&mut Reader::new(&bytes[..10])).is_err());
    }
}

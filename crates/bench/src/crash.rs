//! Kill-at-random-offset crash/recovery driver for durable lanes.
//!
//! The companion of [`crate::scenario`] for the durability stack
//! ([`cyberhd::DurableLane`]): where `scenario::replay` proves the
//! adaptive lane's *live* contracts, this module proves the *crash*
//! contract — a lane killed at an arbitrary event boundary, with seeded
//! storage faults layered on top of the kill
//! ([`fault_inject::DiskFaultInjector`] torn appends and
//! random-offset truncation of the WAL, bit flips in checkpoints),
//! recovers and finishes its stream **bit-identical** to the lane that
//! never crashed.
//!
//! One matrix cell is:
//!
//! 1. [`build_cell`] — a trained artifact, a drifting live stream
//!    ([`CrashSchedule`] picks the shape) and a seeded event schedule of
//!    labelled/unlabelled submits plus late feedback,
//! 2. [`run_uncrashed`] — the whole schedule through one durable lane:
//!    the oracle timeline,
//! 3. [`run_crashed`] — the same schedule cut at a kill point, the
//!    process "dies" (unflushed events vanish), the on-disk bytes are
//!    mangled, the lane recovers and the schedule continues from the
//!    durable horizon the [`RecoveryReport`] names.
//!
//! `tests/scenario.rs` asserts the two timelines agree bit for bit across
//! kill points × dataset kinds × drift schedules; the recovery bench
//! reuses the same driver for timing.

use cyberhd::{
    AdaptiveConfig, AdaptiveStats, Detector, DriftMonitorConfig, DurableConfig, DurableLane,
    RecoveryReport, Ticket, Verdict,
};
use fault_inject::DiskFaultInjector;
use hdc::rng::HdcRng;
use hdc::wal;
use nids_data::drift::{DriftPhase, DriftStream};
use nids_data::DatasetKind;
use std::path::{Path, PathBuf};

/// Drift-schedule shapes of the crash matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSchedule {
    /// One hard distribution break, with rotated label semantics after it
    /// (guaranteed monitor trips — the crash lands amid real adaptations).
    Abrupt,
    /// Difficulty ramps over three phases; labels rotate in the last.
    Gradual,
    /// A class absent from training erupts, with almost no labels; the
    /// artifact carries open-set thresholds so novelty drives the trips.
    ZeroDay,
}

impl CrashSchedule {
    /// All schedule shapes, in matrix order.
    pub const ALL: [CrashSchedule; 3] =
        [CrashSchedule::Abrupt, CrashSchedule::Gradual, CrashSchedule::ZeroDay];
}

/// One scheduled event of a crash-matrix replay: what arrives, in what
/// order — the only thing either timeline's outcome may depend on.
#[derive(Debug, Clone)]
pub enum CrashEvent {
    /// Serve a flow; `label` attaches ground truth at submit time.
    Submit {
        /// Index into the live stream's records (== the flow's sequence
        /// number: every flow is submitted exactly once, in order).
        flow: usize,
        /// Ground truth attached at submit time, when present.
        label: Option<usize>,
    },
    /// Late ground truth for the `ticket`-th submission.
    Feedback {
        /// Submission-order index of the flow the label belongs to.
        ticket: usize,
        /// The ground-truth label.
        label: usize,
    },
}

/// One crash-matrix cell: the sealed artifact both timelines start from,
/// the drifting live stream, and the event schedule they replay.
#[derive(Debug)]
pub struct CrashCell {
    /// The live drifting stream the schedule draws flows from.
    pub live: DriftStream,
    /// The event schedule (submits + late feedback), in arrival order.
    pub events: Vec<CrashEvent>,
    /// The trained artifact each timeline's lane is created from.
    pub detector: Detector,
}

impl CrashCell {
    /// Flows in the schedule (== distinct sequence numbers issued).
    pub fn flow_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, CrashEvent::Submit { .. })).count()
    }
}

/// Builds one crash-matrix cell: trains a 96-dimensional artifact on a
/// pre-drift mix, generates the schedule's live stream and lays out a
/// seeded mix of labelled/unlabelled submits and late feedback.
///
/// # Panics
///
/// Panics if stream generation or training fails (seeded synthetic data —
/// a failure is a bug, not an input condition).
pub fn build_cell(kind: DatasetKind, schedule: CrashSchedule, seed: u64) -> CrashCell {
    let (schema, profiles) = (kind.schema(), kind.profiles());
    let classes = profiles.len();
    let unseen = classes - 1;
    let (train_phases, live_phases, labelled_p, feedback_p, rotate_from) = match schedule {
        CrashSchedule::Abrupt => (
            vec![DriftPhase::stationary(300, classes)],
            vec![
                DriftPhase::stationary(90, classes),
                DriftPhase::stationary(110, classes).difficulty(1.5),
            ],
            0.65,
            0.7,
            90usize,
        ),
        CrashSchedule::Gradual => (
            vec![DriftPhase::stationary(300, classes)],
            vec![
                DriftPhase::stationary(70, classes),
                DriftPhase::stationary(70, classes).difficulty(1.25),
                DriftPhase::stationary(60, classes).difficulty(1.6),
            ],
            0.5,
            0.6,
            140,
        ),
        CrashSchedule::ZeroDay => (
            vec![DriftPhase::absent(300, classes, unseen)],
            vec![
                DriftPhase::absent(90, classes, unseen),
                DriftPhase::stationary(110, classes).scale_class(unseen, 60.0),
            ],
            0.3,
            0.6,
            usize::MAX,
        ),
    };
    let train = DriftStream::generate(&schema, &profiles, &train_phases, seed ^ 0x7A1)
        .expect("seeded training stream");
    let mut builder = Detector::builder()
        .dimension(96)
        .retrain_epochs(1)
        .regeneration_rate(0.1)
        .seed(seed ^ 0x3D);
    if schedule == CrashSchedule::ZeroDay {
        // The zero-day trip has to come from open-set novelty.
        builder = builder.open_set(0.05);
    }
    let detector = builder.train(train.dataset()).expect("training succeeds");
    let live =
        DriftStream::generate(&schema, &profiles, &live_phases, seed).expect("seeded live stream");

    let mut rng = HdcRng::seed_from(seed ^ 0xC4A54);
    let mut events = Vec::new();
    let mut pending_feedback: Vec<(usize, usize, usize)> = Vec::new(); // (due, ticket, label)
    for i in 0..live.len() {
        // Past the rotation point ground truth rotates, so the labelled
        // error rate surges and the monitor trips mid-schedule.
        let truth = live.dataset().labels()[i];
        let label = if i < rotate_from { truth } else { (truth + 1) % classes };
        if rng.bernoulli(labelled_p) {
            events.push(CrashEvent::Submit { flow: i, label: Some(label) });
        } else {
            events.push(CrashEvent::Submit { flow: i, label: None });
            if rng.bernoulli(feedback_p) {
                let due = events.len() + 1 + rng.index(15);
                pending_feedback.push((due, i, label));
            }
        }
        pending_feedback.sort_by_key(|&(due, _, _)| due);
        while pending_feedback.first().is_some_and(|&(due, _, _)| due <= events.len()) {
            let (_, ticket, label) = pending_feedback.remove(0);
            events.push(CrashEvent::Feedback { ticket, label });
        }
    }
    for (_, ticket, label) in pending_feedback {
        events.push(CrashEvent::Feedback { ticket, label });
    }
    CrashCell { live, events, detector }
}

/// A durability policy tight enough that every cell crosses several
/// checkpoints, prunes old ones and compacts the WAL mid-stream.
///
/// `batched` opts the lane into batched-feedback flushing: the recovered
/// timeline then replays the WAL's batch-boundary markers instead of the
/// serial event cadence, and the matrix exercises kills both mid-batch
/// and exactly on flush boundaries (multiples of `max_batch` — the
/// driver never flushes mid-schedule, so the wrapper's auto-flush at
/// `max_batch` queued events is the only boundary source).
pub fn crash_config(events: usize, monitor: DriftMonitorConfig, batched: bool) -> DurableConfig {
    DurableConfig {
        adaptive: AdaptiveConfig {
            max_batch: 7,
            queue_capacity: events + 64,
            monitor,
            retention: events,
            batched_feedback: batched,
            ..AdaptiveConfig::default()
        },
        checkpoint_every: 48,
        keep_checkpoints: 2,
    }
}

/// What one timeline (crashed or not) observed, for bit-for-bit comparison.
#[derive(Debug)]
pub struct TimelineOutcome {
    /// Verdicts by flow sequence number; `None` where the timeline never
    /// observed one (pre-checkpoint flows whose tickets died in the crash).
    pub verdicts: Vec<Option<Verdict>>,
    /// The final sealed model bytes.
    pub sealed: Vec<u8>,
    /// The lane's final open-set thresholds (`None` for closed-set cells).
    pub thresholds: Option<Vec<f32>>,
    /// The recalibration reservoir: entries and candidate counter.
    pub reservoir: (Vec<(Vec<f32>, usize)>, u64),
    /// The lane's cumulative prequential accuracy.
    pub prequential: f64,
    /// The lane's final serving statistics.
    pub stats: AdaptiveStats,
}

/// Feeds a slice of the schedule into a durable lane, collecting the
/// tickets of the flows it submitted.  Feedback goes through
/// [`DurableLane::reissue_ticket`], so the same driver serves both the
/// first run and the post-recovery continuation (where the original
/// tickets died with the process).
fn drive(lane: &DurableLane, live: &DriftStream, events: &[CrashEvent], tickets: &mut Vec<Ticket>) {
    for event in events {
        match event {
            CrashEvent::Submit { flow, label } => {
                let record = live.dataset().records()[*flow].as_slice();
                let ticket = match label {
                    Some(label) => lane.submit_labelled(record, *label),
                    None => lane.submit(record),
                }
                .expect("capacity sized to the schedule");
                assert_eq!(
                    ticket.seq() as usize,
                    *flow,
                    "sequence numbering must be stable across recovery"
                );
                tickets.push(ticket);
            }
            CrashEvent::Feedback { ticket, label } => {
                lane.submit_feedback(&lane.reissue_ticket(*ticket as u64), *label)
                    .expect("retention sized to the schedule");
            }
        }
    }
}

/// The uncrashed oracle: the whole schedule through one durable lane in
/// `dir`, every verdict collected.
///
/// # Panics
///
/// Panics if the lane cannot be created in `dir` or any event is refused
/// (both are bugs at the driver's fixed scale).
pub fn run_uncrashed(dir: &Path, cell: &CrashCell, config: &DurableConfig) -> TimelineOutcome {
    let lane = DurableLane::create(dir, "durable", cell.detector.clone(), config.clone(), None)
        .expect("fresh directory");
    let mut tickets = Vec::new();
    drive(&lane, &cell.live, &cell.events, &mut tickets);
    lane.flush().expect("flush succeeds");
    let mut verdicts = vec![None; cell.flow_count()];
    for ticket in &tickets {
        verdicts[ticket.seq() as usize] = Some(lane.take(ticket).expect("flushed verdict"));
    }
    TimelineOutcome {
        verdicts,
        sealed: lane.seal_snapshot().to_bytes(),
        thresholds: lane.thresholds_snapshot(),
        reservoir: lane.reservoir_snapshot(),
        prequential: lane.prequential_accuracy(),
        stats: lane.stats(),
    }
}

fn newest_checkpoint(dir: &Path) -> PathBuf {
    let mut checkpoints: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("lane directory exists")
        .filter_map(|entry| {
            let path = entry.expect("readable directory entry").path();
            path.extension().is_some_and(|ext| ext == "ckpt").then_some(path)
        })
        .collect();
    checkpoints.sort();
    checkpoints.pop().expect("a durable lane always has a checkpoint")
}

/// The crashed timeline: run to `kill_event`, die without flushing, mangle
/// the on-disk state with seeded storage faults, recover, and finish the
/// schedule from the durable horizon the recovery reports.
///
/// The faults layered on the kill: a torn WAL append, then the log cut at
/// a random offset past the header (the cut can land mid-record or even
/// below a checkpoint), and — when `damage_checkpoint` is set — one
/// flipped bit in the newest checkpoint, which recovery must reject and
/// fall back past.
///
/// # Panics
///
/// Panics if recovery fails or any replayed/continued event is refused —
/// the matrix asserts recovery always *succeeds* under these faults; the
/// error paths (byte soup, no valid checkpoint) are pinned separately in
/// the `cyberhd::durable` unit tests.
pub fn run_crashed(
    dir: &Path,
    cell: &CrashCell,
    config: &DurableConfig,
    kill_event: usize,
    fault_seed: u64,
    damage_checkpoint: bool,
) -> (TimelineOutcome, RecoveryReport) {
    {
        let lane = DurableLane::create(dir, "durable", cell.detector.clone(), config.clone(), None)
            .expect("fresh directory");
        let mut tickets = Vec::new();
        drive(&lane, &cell.live, &cell.events[..kill_event], &mut tickets);
        // The process dies here: no flush — queued events and buffered WAL
        // records vanish, every live ticket is lost.
    }
    let mut injector = DiskFaultInjector::new(fault_seed);
    let wal_path = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal_path).expect("WAL exists");
    injector.torn_write(&mut bytes, &wal::frame(&[0xA5; 33]));
    injector.truncate_after(&mut bytes, wal::HEADER_LEN);
    std::fs::write(&wal_path, &bytes).expect("WAL writable");
    if damage_checkpoint {
        let newest = newest_checkpoint(dir);
        let mut checkpoint = std::fs::read(&newest).expect("checkpoint exists");
        injector.flip_byte(&mut checkpoint);
        std::fs::write(&newest, &checkpoint).expect("checkpoint writable");
    }

    let (lane, report) = DurableLane::recover(dir, None).expect("recovery succeeds");
    let mut verdicts = vec![None; cell.flow_count()];
    for &(seq, verdict) in &report.verdicts {
        verdicts[seq as usize] = Some(verdict);
    }
    // Continue the stream from the durable horizon: every event at or past
    // `next_event` re-enters exactly as the uncrashed timeline had it.
    let mut tickets = Vec::new();
    drive(&lane, &cell.live, &cell.events[report.next_event as usize..], &mut tickets);
    lane.flush().expect("flush succeeds");
    for ticket in &tickets {
        verdicts[ticket.seq() as usize] = Some(lane.take(ticket).expect("flushed verdict"));
    }
    let outcome = TimelineOutcome {
        verdicts,
        sealed: lane.seal_snapshot().to_bytes(),
        thresholds: lane.thresholds_snapshot(),
        reservoir: lane.reservoir_snapshot(),
        prequential: lane.prequential_accuracy(),
        stats: lane.stats(),
    };
    (outcome, report)
}

//! # `bench` — experiment harness for every table and figure of the paper
//!
//! Each binary in `src/bin` regenerates one result of the CyberHD paper on
//! the synthetic dataset stand-ins:
//!
//! | target | paper result | what it prints |
//! |--------|--------------|----------------|
//! | `fig3` | Fig. 3 (accuracy) | accuracy of DNN, SVM, baselineHD (0.5k and 4k) and CyberHD on all four datasets |
//! | `fig4` | Fig. 4 (efficiency) | training time and inference latency of DNN, SVM, baselineHD (4k) and CyberHD (0.5k) |
//! | `table1` | Table I (bitwidth) | accuracy-matched effective dimensionality per bitwidth plus modelled CPU/FPGA energy efficiency |
//! | `fig5` | Fig. 5 (robustness) | accuracy loss of the DNN and of CyberHD (1/2/4/8-bit) under random bit flips |
//! | `ablation` | (supporting) | regeneration-rate sweep and variance-guided vs. random dimension dropping |
//!
//! The library part of the crate holds the shared plumbing: dataset
//! preparation (generate → split → preprocess) and uniformly timed
//! train/evaluate wrappers for every model.  Experiment scale is controlled
//! by [`ExperimentScale`] so the default `cargo run -p bench --bin figN
//! --release` finishes in minutes on a laptop; set `CYBERHD_SCALE=paper` for
//! larger corpora.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod scenario;
pub mod zipf;

use baselines::mlp::{Mlp, MlpConfig};
use baselines::svm::{LinearSvm, SvmConfig};
use baselines::Classifier;
use cyberhd::{BaselineHd, CyberHdConfig, CyberHdModel, CyberHdTrainer};
use eval::timing::ThroughputReport;
use nids_data::preprocess::{Normalization, Preprocessor};
use nids_data::split::train_test_split;
use nids_data::synth::SyntheticConfig;
use nids_data::DatasetKind;

/// How large the experiment corpora are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// A few thousand flows per dataset — finishes in minutes, shapes hold.
    Quick,
    /// Tens of thousands of flows per dataset — closer to the paper's
    /// relative numbers, correspondingly slower.
    Paper,
}

impl ExperimentScale {
    /// Reads the scale from the `CYBERHD_SCALE` environment variable
    /// (`quick` default, `paper` for the large runs).
    pub fn from_env() -> Self {
        match std::env::var("CYBERHD_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") | Ok("full") => ExperimentScale::Paper,
            _ => ExperimentScale::Quick,
        }
    }

    /// Number of synthetic flows generated per dataset.
    pub fn samples(self) -> usize {
        match self {
            ExperimentScale::Quick => 6_000,
            ExperimentScale::Paper => 40_000,
        }
    }

    /// Retraining epochs used by the HDC models.
    pub fn hdc_epochs(self) -> usize {
        match self {
            ExperimentScale::Quick => 10,
            ExperimentScale::Paper => 20,
        }
    }

    /// Training epochs used by the MLP baseline.
    pub fn mlp_epochs(self) -> usize {
        match self {
            ExperimentScale::Quick => 15,
            ExperimentScale::Paper => 30,
        }
    }

    /// Training epochs used by the SVM baseline.
    pub fn svm_epochs(self) -> usize {
        match self {
            ExperimentScale::Quick => 15,
            ExperimentScale::Paper => 30,
        }
    }
}

/// Machine-readable benchmark snapshots (`BENCH_*.json` at the workspace
/// root), emitted by the criterion bench binaries so the perf trajectory of
/// the engine survives across PRs without scraping stdout.
///
/// The vendored `serde` is an API-subset stub, so the JSON is formatted by
/// hand; every field is a flat string-keyed number and arm names are plain
/// ASCII identifiers.
pub mod snapshot {
    use eval::ThroughputReport;
    use std::fmt::Write as _;
    use std::path::{Path, PathBuf};

    /// One measured arm of a benchmark: a label plus its throughput report.
    #[derive(Debug, Clone)]
    pub struct Arm {
        /// Arm label (plain ASCII, no quotes).
        pub name: String,
        /// Wall-clock + sample count of the arm's best pass.
        pub report: ThroughputReport,
    }

    impl Arm {
        /// Convenience constructor.
        pub fn new(name: &str, report: ThroughputReport) -> Self {
            Self { name: name.to_string(), report }
        }
    }

    /// Workspace-root path for a snapshot file.
    pub fn workspace_path(file_name: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join(file_name)
    }

    /// Renders one snapshot as pretty-printed JSON.
    ///
    /// `labels` are flat string-valued fields (plain ASCII, no quotes in
    /// either key or value — e.g. the selected `kernel_isa`), emitted right
    /// after the bench name; `params` are the numeric fields.
    pub fn render(
        bench: &str,
        labels: &[(&str, &str)],
        params: &[(&str, f64)],
        arms: &[Arm],
        speedups: &[(&str, f64)],
    ) -> String {
        fn number(value: f64) -> String {
            if value.is_finite() {
                format!("{value}")
            } else {
                // JSON has no Infinity/NaN; degenerate timings become null.
                "null".to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"{bench}\",");
        for (key, value) in labels {
            let _ = writeln!(out, "  \"{key}\": \"{value}\",");
        }
        for (key, value) in params {
            let _ = writeln!(out, "  \"{key}\": {},", number(*value));
        }
        let _ = writeln!(out, "  \"arms\": [");
        for (i, arm) in arms.iter().enumerate() {
            let comma = if i + 1 < arms.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"seconds\": {}, \"samples\": {}, \
                 \"samples_per_second\": {}}}{comma}",
                arm.name,
                number(arm.report.seconds),
                arm.report.samples,
                number(arm.report.samples_per_second()),
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"speedups\": {{");
        for (i, (key, value)) in speedups.iter().enumerate() {
            let comma = if i + 1 < speedups.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{key}\": {}{comma}", number(*value));
        }
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes a snapshot to the workspace root and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn write(
        file_name: &str,
        bench: &str,
        labels: &[(&str, &str)],
        params: &[(&str, f64)],
        arms: &[Arm],
        speedups: &[(&str, f64)],
    ) -> std::io::Result<PathBuf> {
        let path = workspace_path(file_name);
        std::fs::write(&path, render(bench, labels, params, arms, speedups))?;
        Ok(path)
    }
}

/// Reference reconstructions of superseded engine pipelines, kept runnable
/// so benches can measure against them and parity suites can use them as
/// oracles — one copy, shared by both.
pub mod reference {
    use cyberhd::model::AnyEncoder;
    use cyberhd::QuantizedModel;
    use hdc::binary::{pack_f32_signs_into, words_for_dim, BinaryHypervector};
    use hdc::encoder::Encoder;
    use hdc::parallel::{engine_threads, for_each_chunk};
    use hdc::{AssociativeMemory, BatchView};

    /// The dense batched scoring loop `predict_batch` ran before the
    /// interleaved multi-class dot kernel: batched f32 encode into a chunk
    /// matrix, then **one full query pass per class** (`cosine_with_norm`
    /// per class, class norms cached per batch).  Predictions are
    /// bit-identical to the interleaved kernel — the kernel replicates this
    /// loop's per-class accumulation order exactly — so benches assert
    /// equality and measure only the memory-traffic difference.
    ///
    /// # Panics
    ///
    /// Panics if the view's row width does not match the encoder's feature
    /// arity or the memory's dimensionality differs from the encoder output
    /// (callers validate).
    pub fn predict_dense_per_class_scoring(
        encoder: &AnyEncoder,
        memory: &AssociativeMemory,
        batch: BatchView<'_>,
    ) -> Vec<usize> {
        let dim = memory.dim();
        let norms = memory.class_norms();
        let mut predictions = vec![0usize; batch.rows()];
        for_each_chunk(batch.rows(), 64, &mut predictions, 1, engine_threads(), |chunk, out| {
            let rows = batch.rows_range(chunk.start, chunk.end);
            let mut matrix = vec![0.0f32; rows.rows() * dim];
            encoder.encode_batch_into(rows, &mut matrix).expect("shapes validated by the caller");
            let mut scores = vec![0.0f32; memory.num_classes()];
            for (local, slot) in out.iter_mut().enumerate() {
                let query = &matrix[local * dim..(local + 1) * dim];
                let qn = hdc::similarity::norm(query);
                for ((score, class), &cn) in scores.iter_mut().zip(memory.classes()).zip(&norms) {
                    *score = hdc::similarity::cosine_with_norm(query, qn, class.as_slice(), cn);
                }
                *slot = hdc::argmax(&scores).expect("at least one class").0;
            }
        });
        predictions
    }

    /// The 1-bit encode-then-quantize pipeline `predict_batch` ran before
    /// the fused sign-encode kernel: batched f32 encode into a chunk
    /// matrix, per-row sign packing, packed-word Hamming scoring with the
    /// engine's cosine convention.
    ///
    /// # Panics
    ///
    /// Panics if the view's row width does not match the encoder's feature
    /// arity or the deployed model is not 1-bit-compatible (callers
    /// validate).
    pub fn predict_b1_encode_then_quantize(
        encoder: &AnyEncoder,
        deployed: &QuantizedModel,
        batch: BatchView<'_>,
    ) -> Vec<usize> {
        let dim = deployed.dimension();
        let packed: Vec<BinaryHypervector> = deployed
            .classes()
            .iter()
            .map(|c| BinaryHypervector::from_level_signs(c.levels()))
            .collect();
        let class_norms: Vec<f64> = deployed
            .classes()
            .iter()
            .map(|c| c.levels().iter().map(|&l| (l as f64) * (l as f64)).sum::<f64>().sqrt())
            .collect();
        let mut predictions = vec![0usize; batch.rows()];
        for_each_chunk(batch.rows(), 64, &mut predictions, 1, engine_threads(), |chunk, out| {
            let rows = batch.rows_range(chunk.start, chunk.end);
            let mut matrix = vec![0.0f32; rows.rows() * dim];
            encoder.encode_batch_into(rows, &mut matrix).expect("shapes validated by the caller");
            let mut words = vec![0u64; words_for_dim(dim)];
            let mut scores = vec![0.0f32; packed.len()];
            let qn = (dim as f64).sqrt();
            for (local, slot) in out.iter_mut().enumerate() {
                let query = &matrix[local * dim..(local + 1) * dim];
                if query.iter().all(|&v| v == 0.0) {
                    scores.fill(0.0);
                } else {
                    pack_f32_signs_into(query, &mut words);
                    for ((score, class), cn) in scores.iter_mut().zip(&packed).zip(&class_norms) {
                        let h = hdc::hamming_distance(&words, class.as_words());
                        let dot = dim as f64 - 2.0 * h as f64;
                        *score = if qn == 0.0 || *cn == 0.0 {
                            0.0
                        } else {
                            (dot / (qn * *cn)).clamp(-1.0, 1.0) as f32
                        };
                    }
                }
                *slot = hdc::argmax(&scores).expect("at least one class").0;
            }
        });
        predictions
    }
}

/// The paper's headline hyper-parameters.
pub mod paper {
    /// CyberHD physical dimensionality ("D = 0.5k").
    pub const CYBERHD_DIMENSION: usize = 512;
    /// BaselineHD effective dimensionality ("D* = 4k").
    pub const BASELINE_LARGE_DIMENSION: usize = 4096;
    /// CyberHD regeneration rate per retraining epoch.
    pub const REGENERATION_RATE: f32 = 0.2;
    /// Bit-flip rates of the robustness study (Fig. 5).
    pub const ERROR_RATES: [f64; 5] = [0.01, 0.02, 0.05, 0.10, 0.15];
    /// Bitwidths of Table I, in paper column order.
    pub const BITWIDTHS: [u32; 6] = [32, 16, 8, 4, 2, 1];
}

/// A dataset that has been generated, split and preprocessed into the dense
/// vectors every classifier consumes.
#[derive(Debug, Clone)]
pub struct PreparedData {
    /// Dataset display name (as used in the paper's figures).
    pub name: String,
    /// Dense training features.
    pub train_x: Vec<Vec<f32>>,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Dense test features.
    pub test_x: Vec<Vec<f32>>,
    /// Test labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Width of the dense feature vectors.
    pub input_width: usize,
}

/// Generates, splits (75/25) and min–max preprocesses one dataset.
///
/// # Errors
///
/// Propagates generation/preprocessing errors as a boxed error so the
/// experiment binaries can simply `?` them from `main`.
pub fn prepare_dataset(
    kind: DatasetKind,
    samples: usize,
    seed: u64,
) -> Result<PreparedData, Box<dyn std::error::Error>> {
    // difficulty > 1 widens the class-conditional distributions so the
    // synthetic stand-ins are not trivially separable; 2.4 puts the models in
    // the low/mid-90s accuracy band where dimensionality and encoder quality
    // matter, which is the regime the paper's comparisons live in.
    let dataset =
        kind.generate(&SyntheticConfig::new(samples, seed).difficulty(2.4).label_noise(0.01))?;
    let (train, test) = train_test_split(&dataset, 0.25, seed ^ 0x51EE7)?;
    let preprocessor = Preprocessor::fit(&train, Normalization::MinMax)?;
    let (train_x, train_y) = preprocessor.transform_with_labels(&train)?;
    let (test_x, test_y) = preprocessor.transform_with_labels(&test)?;
    let input_width = preprocessor.output_width();
    Ok(PreparedData {
        name: kind.name().to_string(),
        train_x,
        train_y,
        test_x,
        test_y,
        num_classes: dataset.num_classes(),
        input_width,
    })
}

/// Reads a `usize` scale knob from the environment, falling back to
/// `default` on absent or unparseable values — the shared convention of
/// every `CYBERHD_*` bench knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Best-of-`reps` wall-clock throughput of one full pass over `samples`,
/// plus the last pass's result (so callers can assert on the output
/// without paying for an extra untimed pass) — the timing convention all
/// heavy bench arms share.
pub fn timed_pass<T>(
    samples: usize,
    reps: usize,
    mut f: impl FnMut() -> T,
) -> (ThroughputReport, T) {
    let mut best: Option<ThroughputReport> = None;
    let mut last: Option<T> = None;
    for _ in 0..reps.max(1) {
        let (result, report) = ThroughputReport::measure(samples, &mut f);
        last = Some(std::hint::black_box(result));
        if best.is_none_or(|b| report.seconds < b.seconds) {
            best = Some(report);
        }
    }
    (best.expect("at least one rep"), last.expect("at least one rep"))
}

/// Generates a raw dataset restricted to its first `classes` classes —
/// the serve bench's reference configuration (the `Detector` pipeline
/// derives its label space from the schema, so the schema itself is
/// narrowed, not just the flows filtered).
///
/// # Errors
///
/// Propagates generation errors, and schema/dataset construction errors
/// for a `classes` the kind cannot satisfy.
pub fn limited_class_dataset(
    kind: DatasetKind,
    classes: usize,
    samples: usize,
    seed: u64,
) -> Result<nids_data::Dataset, Box<dyn std::error::Error>> {
    let full = kind.generate(&SyntheticConfig::new(samples, seed).difficulty(2.4))?;
    let schema = nids_data::Schema::new(
        full.schema().name(),
        full.schema().features().to_vec(),
        full.schema().classes()[..classes.min(full.num_classes())].to_vec(),
    )?;
    let mut narrowed = nids_data::Dataset::empty(schema);
    for (record, &label) in full.records().iter().zip(full.labels()) {
        if label < classes {
            narrowed.push(record.clone(), label)?;
        }
    }
    Ok(narrowed)
}

/// Accuracy plus timed training/inference of one model on one dataset.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Model display name.
    pub model: String,
    /// Test-set accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Training wall-clock / sample count.
    pub training: ThroughputReport,
    /// Inference wall-clock / sample count on the test split.
    pub inference: ThroughputReport,
}

/// Builds the CyberHD configuration used throughout the experiments.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn cyberhd_config(
    data: &PreparedData,
    dimension: usize,
    regeneration_rate: f32,
    epochs: usize,
    seed: u64,
) -> Result<CyberHdConfig, cyberhd::CyberHdError> {
    CyberHdConfig::builder(data.input_width, data.num_classes)
        .dimension(dimension)
        .retrain_epochs(epochs)
        .regeneration_rate(regeneration_rate)
        .learning_rate(0.05)
        .encode_threads(4)
        .seed(seed)
        .build()
}

/// Trains and evaluates CyberHD (or, with `regeneration_rate == 0`, the
/// baselineHD configuration) and returns the run plus the trained model.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_cyberhd(
    data: &PreparedData,
    dimension: usize,
    regeneration_rate: f32,
    epochs: usize,
    label: &str,
    seed: u64,
) -> Result<(ModelRun, CyberHdModel), Box<dyn std::error::Error>> {
    let config = cyberhd_config(data, dimension, regeneration_rate, epochs, seed)?;
    let trainer = CyberHdTrainer::new(config)?;
    let (model, training) =
        ThroughputReport::measure(data.train_x.len(), || trainer.fit(&data.train_x, &data.train_y));
    let model = model?;
    let (predictions, inference) =
        ThroughputReport::measure(data.test_x.len(), || model.predict_batch(&data.test_x));
    let predictions = predictions?;
    let accuracy = eval::metrics::accuracy(&predictions, &data.test_y)?;
    Ok((ModelRun { model: label.to_string(), accuracy, training, inference }, model))
}

/// Trains and evaluates the static baselineHD at `dimension`.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_baseline_hd(
    data: &PreparedData,
    dimension: usize,
    epochs: usize,
    label: &str,
    seed: u64,
) -> Result<(ModelRun, CyberHdModel), Box<dyn std::error::Error>> {
    let baseline = BaselineHd::new(data.input_width, data.num_classes, dimension, seed)?
        .retrain_epochs(epochs)
        .learning_rate(0.05);
    let (model, training) = ThroughputReport::measure(data.train_x.len(), || {
        baseline.fit(&data.train_x, &data.train_y)
    });
    let model = model?;
    let (predictions, inference) =
        ThroughputReport::measure(data.test_x.len(), || model.predict_batch(&data.test_x));
    let predictions = predictions?;
    let accuracy = eval::metrics::accuracy(&predictions, &data.test_y)?;
    Ok((ModelRun { model: label.to_string(), accuracy, training, inference }, model))
}

/// Trains and evaluates the MLP (DNN) baseline, returning the run and model.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_mlp(
    data: &PreparedData,
    epochs: usize,
    seed: u64,
) -> Result<(ModelRun, Mlp), Box<dyn std::error::Error>> {
    let config = MlpConfig::new(data.input_width, data.num_classes)
        .hidden_layers(vec![256, 256])
        .epochs(epochs)
        .seed(seed);
    let mut mlp = Mlp::new(config)?;
    let (fit, training) =
        ThroughputReport::measure(data.train_x.len(), || mlp.fit(&data.train_x, &data.train_y));
    fit?;
    let (predictions, inference) =
        ThroughputReport::measure(data.test_x.len(), || mlp.predict_batch(&data.test_x));
    let predictions = predictions?;
    let accuracy = eval::metrics::accuracy(&predictions, &data.test_y)?;
    Ok((ModelRun { model: "DNN (MLP 2x256)".to_string(), accuracy, training, inference }, mlp))
}

/// Trains and evaluates the linear SVM baseline, returning the run and model.
///
/// # Errors
///
/// Propagates training/evaluation errors.
pub fn run_svm(
    data: &PreparedData,
    epochs: usize,
    seed: u64,
) -> Result<(ModelRun, LinearSvm), Box<dyn std::error::Error>> {
    let config = SvmConfig::new(data.input_width, data.num_classes).epochs(epochs).seed(seed);
    let mut svm = LinearSvm::new(config)?;
    let (fit, training) =
        ThroughputReport::measure(data.train_x.len(), || svm.fit(&data.train_x, &data.train_y));
    fit?;
    let (predictions, inference) =
        ThroughputReport::measure(data.test_x.len(), || svm.predict_batch(&data.test_x));
    let predictions = predictions?;
    let accuracy = eval::metrics::accuracy(&predictions, &data.test_y)?;
    Ok((ModelRun { model: "SVM (linear, OvR)".to_string(), accuracy, training, inference }, svm))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_from_env_convention() {
        // Default (unset or unknown) is Quick.
        assert_eq!(ExperimentScale::Quick.samples(), 6_000);
        assert!(ExperimentScale::Paper.samples() > ExperimentScale::Quick.samples());
        assert!(ExperimentScale::Paper.hdc_epochs() >= ExperimentScale::Quick.hdc_epochs());
        assert!(ExperimentScale::Paper.mlp_epochs() >= ExperimentScale::Quick.mlp_epochs());
        assert!(ExperimentScale::Paper.svm_epochs() >= ExperimentScale::Quick.svm_epochs());
    }

    #[test]
    fn snapshot_render_produces_structurally_sound_json() {
        let arms = vec![
            snapshot::Arm::new("serial", ThroughputReport { seconds: 2.0, samples: 1000 }),
            snapshot::Arm::new("batched", ThroughputReport { seconds: 0.5, samples: 1000 }),
        ];
        let json = snapshot::render(
            "inference",
            &[("kernel_isa", "avx2")],
            &[("dim", 10_000.0), ("samples", 1000.0)],
            &arms,
            &[("batched_vs_serial", 4.0), ("degenerate", f64::INFINITY)],
        );
        // Balanced braces/brackets, all fields present, non-finite speedups
        // mapped to null.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"bench\": \"inference\"",
            "\"kernel_isa\": \"avx2\"",
            "\"dim\": 10000",
            "\"name\": \"serial\"",
            "\"samples_per_second\": 2000",
            "\"batched_vs_serial\": 4",
            "\"degenerate\": null",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(snapshot::workspace_path("BENCH_infer.json").ends_with("BENCH_infer.json"));
    }

    #[test]
    fn prepare_dataset_produces_consistent_splits() {
        let data = prepare_dataset(DatasetKind::NslKdd, 1200, 7).unwrap();
        assert_eq!(data.name, "NSL-KDD");
        assert_eq!(data.train_x.len(), data.train_y.len());
        assert_eq!(data.test_x.len(), data.test_y.len());
        assert_eq!(data.train_x.len() + data.test_x.len(), 1200);
        assert!(data.train_x.iter().all(|x| x.len() == data.input_width));
        assert_eq!(data.num_classes, 5);
        // Min-max preprocessing keeps features in [0, 1].
        assert!(data.train_x.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn small_end_to_end_runs_produce_sane_model_runs() {
        let data = prepare_dataset(DatasetKind::NslKdd, 900, 3).unwrap();
        let (cyber, model) = run_cyberhd(&data, 128, 0.2, 3, "CyberHD", 1).unwrap();
        assert!(cyber.accuracy > 0.5, "CyberHD accuracy {}", cyber.accuracy);
        assert!(model.effective_dimension() >= 128);
        assert!(cyber.training.seconds > 0.0);
        assert!(cyber.inference.seconds > 0.0);

        let (baseline, _) = run_baseline_hd(&data, 128, 3, "BaselineHD", 1).unwrap();
        assert!(baseline.accuracy > 0.4);

        let (svm, _) = run_svm(&data, 5, 1).unwrap();
        assert!(svm.accuracy > 0.4);

        let (mlp, _) = run_mlp(&data, 3, 1).unwrap();
        assert!(mlp.accuracy > 0.4);
    }
}

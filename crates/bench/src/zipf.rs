//! Seeded, bit-reproducible Zipf sampling for skewed-tenant traffic.
//!
//! Real many-tenant traffic is heavy-tailed: a handful of tenants send
//! most of the flows while the long tail trickles.  The sharded serve
//! bench models that with a Zipf(`exponent`) distribution over tenant
//! ranks — rank `k` (0-based) is drawn with probability proportional to
//! `1 / (k + 1)^exponent`.
//!
//! Determinism is the whole point: the sampler precomputes a fixed CDF
//! (pure `f64` arithmetic, no platform-dependent libm calls beyond
//! `powf`, evaluated once in a fixed order) and draws through the
//! repo-wide deterministic [`hdc::rng::HdcRng`], so the same seed always
//! produces the same traffic schedule — on every run, platform, and
//! thread count.  The bench asserts this before trusting any
//! shard-scaling numbers.

use hdc::rng::HdcRng;

/// A Zipf-distributed sampler over `0..n` ranks (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[k]` = P(rank <= k); strictly increasing, last entry 1.0.
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler over ranks `0..n` with skew `exponent`
    /// (`0.0` = uniform; ~1.0 = classic Zipf; larger = more skew).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is negative or non-finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "a Zipf sampler needs at least one rank");
        assert!(exponent >= 0.0 && exponent.is_finite(), "exponent must be finite and >= 0");
        let weights: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard the top against accumulated rounding so a uniform draw of
        // ~1.0 can never fall past the last rank.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { cdf, exponent }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// The sampler's skew exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of drawing `rank`.
    pub fn probability(&self, rank: usize) -> f64 {
        let lower = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lower
    }

    /// Draws one rank through `rng` (binary search over the CDF).
    pub fn sample(&self, rng: &mut HdcRng) -> usize {
        let u = rng.uniform(0.0, 1.0);
        // First rank whose CDF strictly exceeds the draw; the guarded
        // last entry (1.0) makes the fallback unreachable.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }

    /// A full traffic schedule: `len` ranks drawn from a fresh
    /// [`HdcRng`] seeded with `seed` — the bit-reproducible form the
    /// bench uses so a schedule can be regenerated (and verified equal)
    /// without storing it.
    pub fn schedule(&self, len: usize, seed: u64) -> Vec<usize> {
        let mut rng = HdcRng::seed_from(seed);
        (0..len).map(|_| self.sample(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_schedule_bit_for_bit() {
        let zipf = ZipfSampler::new(256, 1.1);
        let a = zipf.schedule(10_000, 91);
        let b = zipf.schedule(10_000, 91);
        assert_eq!(a, b, "identical seeds must reproduce the schedule exactly");
        let c = zipf.schedule(10_000, 92);
        assert_ne!(a, c, "different seeds should diverge");
        // A fresh sampler with the same parameters rebuilds the same CDF.
        let again = ZipfSampler::new(256, 1.1).schedule(10_000, 91);
        assert_eq!(a, again);
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let zipf = ZipfSampler::new(64, 1.2);
        let schedule = zipf.schedule(20_000, 7);
        let mut counts = vec![0usize; 64];
        for &rank in &schedule {
            counts[rank] += 1;
        }
        assert!(counts[0] > counts[32] && counts[0] > counts[63], "head outdraws the tail");
        // The head rank's empirical share tracks its true probability.
        let p0 = zipf.probability(0);
        let observed = counts[0] as f64 / schedule.len() as f64;
        assert!((observed - p0).abs() < 0.02, "observed {observed:.3} vs true {p0:.3}");
        // Probabilities form a distribution.
        let total: f64 = (0..64).map(|k| zipf.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let zipf = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((zipf.probability(k) - 0.1).abs() < 1e-12, "rank {k}");
        }
        let schedule = zipf.schedule(10_000, 3);
        let mut counts = vec![0usize; 10];
        for &rank in &schedule {
            counts[rank] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "roughly uniform, got {counts:?}");
    }

    #[test]
    fn every_rank_is_reachable_and_in_bounds() {
        let zipf = ZipfSampler::new(5, 2.0);
        let schedule = zipf.schedule(50_000, 11);
        let mut seen = [false; 5];
        for &rank in &schedule {
            assert!(rank < 5);
            seen[rank] = true;
        }
        assert!(seen.iter().all(|&s| s), "even the deepest tail rank appears eventually");
    }
}

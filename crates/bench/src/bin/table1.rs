//! Table I reproduction — bitwidth vs. effective dimensionality and
//! CPU/FPGA energy efficiency.
//!
//! Two parts:
//!
//! 1. **Accuracy-matched effective dimensionality.** For every element
//!    bitwidth (32 → 1), the harness grows the HDC dimensionality along a
//!    ladder until the *quantized* model matches the full-precision reference
//!    accuracy, reproducing the paper's "Effective D" row (narrower elements
//!    need more dimensions).
//! 2. **Energy efficiency.** The measured (and, for comparison, the paper's
//!    published) effective dimensionalities are fed into the analytical CPU
//!    and FPGA models of `hw-model`; all numbers are normalized to the 1-bit
//!    CPU configuration, exactly like Table I.
//!
//! Run with `cargo run -p bench --bin table1 --release`.

use bench::{paper, prepare_dataset, ExperimentScale};
use cyberhd::{CyberHdConfig, CyberHdTrainer};
use eval::Table;
use hdc::BitWidth;
use hw_model::{CpuModel, FpgaModel, HdcWorkload};
use nids_data::DatasetKind;

/// Dimension ladder searched for each bitwidth.
const DIMENSION_LADDER: [usize; 10] = [256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    // The accuracy-matching sweep retrains many models, so it uses a reduced
    // corpus regardless of scale; the energy model uses the paper's workload
    // sizes.
    let sweep_samples = match scale {
        ExperimentScale::Quick => 3_000,
        ExperimentScale::Paper => 8_000,
    };
    println!("== Table I: impact of bitwidth on effective dimensionality and energy efficiency ==");
    println!("sweep corpus: UNSW-NB15 stand-in, {sweep_samples} flows\n");

    let data = prepare_dataset(DatasetKind::UnswNb15, sweep_samples, 321)?;
    let epochs = 6;

    // Full-precision reference: CyberHD at the paper's physical dimension.
    let reference_accuracy = {
        let config = bench::cyberhd_config(
            &data,
            paper::CYBERHD_DIMENSION,
            paper::REGENERATION_RATE,
            epochs,
            99,
        )?;
        let model = CyberHdTrainer::new(config)?.fit(&data.train_x, &data.train_y)?;
        model.accuracy(&data.test_x, &data.test_y)?
    };
    println!(
        "full-precision reference accuracy (CyberHD, D=0.5k): {:.2}%\n",
        reference_accuracy * 100.0
    );
    // Allow a small slack below the reference when accuracy-matching.
    let target = reference_accuracy - 0.005;

    let mut measured_effective = Vec::new();
    for &bits in &paper::BITWIDTHS {
        let width = BitWidth::from_bits(bits)?;
        let mut chosen = *DIMENSION_LADDER.last().expect("ladder is non-empty");
        let mut chosen_accuracy = 0.0;
        for &dimension in &DIMENSION_LADDER {
            let config: CyberHdConfig =
                bench::cyberhd_config(&data, dimension, 0.0, epochs, 1_000 + dimension as u64)?;
            let model = CyberHdTrainer::new(config)?.fit(&data.train_x, &data.train_y)?;
            let quantized = model.quantize(width);
            let accuracy = quantized.accuracy(&data.test_x, &data.test_y)?;
            if accuracy >= target {
                chosen = dimension;
                chosen_accuracy = accuracy;
                break;
            }
            chosen = dimension;
            chosen_accuracy = accuracy;
        }
        eprintln!(
            "[table1] {bits:>2}-bit: effective D = {chosen} (quantized accuracy {:.2}%)",
            chosen_accuracy * 100.0
        );
        measured_effective.push((bits, chosen));
    }

    // Energy-efficiency table from the measured effective dimensionalities.
    let cpu = CpuModel::default();
    let fpga = FpgaModel::default();
    let workload_for = |dimension: usize, bits: u32| {
        HdcWorkload::new(dimension, bits, data.num_classes, data.input_width, 1_000_000, 20)
            .expect("workload parameters are valid")
    };

    let print_table = |title: &str, effective: &[(u32, usize)]| {
        let reference_dim = effective
            .iter()
            .find(|(bits, _)| *bits == 1)
            .map(|&(_, d)| d)
            .unwrap_or(paper::CYBERHD_DIMENSION);
        let reference_cost = cpu.training_cost(&workload_for(reference_dim, 1));
        let mut table = Table::new(vec![
            "metric".into(),
            "32 bits".into(),
            "16 bits".into(),
            "8 bits".into(),
            "4 bits".into(),
            "2 bits".into(),
            "1 bit".into(),
        ]);
        let mut effective_row = vec!["Effective D".to_string()];
        let mut cpu_row = vec!["CPU (normalized energy efficiency)".to_string()];
        let mut fpga_row = vec!["FPGA (normalized energy efficiency)".to_string()];
        for &(bits, dimension) in effective {
            let workload = workload_for(dimension, bits);
            effective_row.push(format!("{:.1}k", dimension as f64 / 1000.0));
            cpu_row.push(format!(
                "{:.1}x",
                cpu.training_cost(&workload).efficiency_over(&reference_cost)
            ));
            fpga_row.push(format!(
                "{:.0}x",
                fpga.training_cost(&workload).efficiency_over(&reference_cost)
            ));
        }
        table.add_row(effective_row);
        table.add_row(cpu_row);
        table.add_row(fpga_row);
        println!("-- {title} --");
        println!("{table}");
    };

    print_table("Table I from the MEASURED effective dimensionalities", &measured_effective);
    let paper_effective: Vec<(u32, usize)> =
        vec![(32, 1200), (16, 2100), (8, 3600), (4, 5600), (2, 7500), (1, 8800)];
    print_table(
        "Table I from the PAPER's published effective dimensionalities (hardware model only)",
        &paper_effective,
    );
    println!(
        "paper reference row:     Effective D 1.2k/2.1k/3.6k/5.6k/7.5k/8.8k,\n\
         CPU 6.6/4.0/2.4/1.5/1.2/1.0x, FPGA 16/24/34/31/28/26x (normalized to 1-bit CPU)."
    );
    println!(
        "\nFPGA accelerator model: 200 MHz, {:.0} W busy power (paper: < 20 W at 200 MHz).",
        fpga.busy_power_w
    );
    Ok(())
}

//! Fig. 5 reproduction — robustness against random bit flips.
//!
//! Trains the DNN and CyberHD on an NSL-KDD stand-in, deploys CyberHD at
//! 1/2/4/8-bit precision, then flips a fraction of the stored model bits
//! (1%, 2%, 5%, 10%, 15%) and reports the resulting *accuracy loss* relative
//! to the clean model — the exact quantity of Fig. 5.  Every cell is averaged
//! over several independent injection seeds.
//!
//! Run with `cargo run -p bench --bin fig5 --release`.

use baselines::Classifier;
use bench::{paper, prepare_dataset, run_cyberhd, run_mlp, ExperimentScale};
use eval::Table;
use fault_inject::BitFlipInjector;
use hdc::BitWidth;
use nids_data::DatasetKind;

const TRIALS: u64 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!("== Fig. 5: robustness of CyberHD vs. the DNN under random bit flips ==");
    println!(
        "dataset: NSL-KDD stand-in, {} flows, {TRIALS} injection trials per cell\n",
        scale.samples()
    );

    let data = prepare_dataset(DatasetKind::NslKdd, scale.samples(), 555)?;

    eprintln!("[fig5] training DNN ...");
    let (mlp_run, mlp) = run_mlp(&data, scale.mlp_epochs(), 1)?;
    eprintln!("[fig5] training CyberHD ...");
    let (cyber_run, cyber) = run_cyberhd(
        &data,
        paper::CYBERHD_DIMENSION,
        paper::REGENERATION_RATE,
        scale.hdc_epochs(),
        "CyberHD",
        1,
    )?;
    println!(
        "clean accuracy: DNN {:.2}%, CyberHD (full precision) {:.2}%\n",
        mlp_run.accuracy * 100.0,
        cyber_run.accuracy * 100.0
    );

    let mut table = Table::new(vec![
        "model / precision".into(),
        "1.0%".into(),
        "2.0%".into(),
        "5.0%".into(),
        "10.0%".into(),
        "15.0%".into(),
    ]);

    // DNN row: flip bits of the trained f32 weights.
    let mut dnn_row = vec!["DNN (f32 weights)".to_string()];
    for &rate in &paper::ERROR_RATES {
        let mut losses = Vec::new();
        for trial in 0..TRIALS {
            let mut corrupted = mlp.clone();
            let mut injector = BitFlipInjector::new(rate, 7_000 + trial)?;
            injector.flip_mlp(&mut corrupted);
            let predictions = corrupted.predict_batch(&data.test_x)?;
            let accuracy = eval::metrics::accuracy(&predictions, &data.test_y)?;
            losses.push((mlp_run.accuracy - accuracy).max(0.0) * 100.0);
        }
        dnn_row.push(format!("{:.1}%", losses.iter().sum::<f64>() / losses.len() as f64));
    }
    table.add_row(dnn_row);

    // CyberHD rows: flip bits of the quantized class hypervectors.
    for width in [BitWidth::B1, BitWidth::B2, BitWidth::B4, BitWidth::B8] {
        let deployed = cyber.quantize(width);
        let clean_accuracy = deployed.accuracy(&data.test_x, &data.test_y)?;
        let mut row = vec![format!("CyberHD ({width})")];
        for &rate in &paper::ERROR_RATES {
            let mut losses = Vec::new();
            for trial in 0..TRIALS {
                let mut corrupted = deployed.clone();
                let mut injector =
                    BitFlipInjector::new(rate, 9_000 + trial * 31 + u64::from(width.bits()))?;
                injector.flip_quantized_set(corrupted.classes_mut());
                let accuracy = corrupted.accuracy(&data.test_x, &data.test_y)?;
                losses.push((clean_accuracy - accuracy).max(0.0) * 100.0);
            }
            row.push(format!("{:.1}%", losses.iter().sum::<f64>() / losses.len() as f64));
        }
        table.add_row(row);
        eprintln!(
            "[fig5] CyberHD at {width}: clean quantized accuracy {:.2}%",
            clean_accuracy * 100.0
        );
    }

    println!("-- accuracy LOSS under random bit flips (lower is better) --");
    println!("{table}");
    println!(
        "paper reference: DNN loses 3.9/10.7/17.8/32.1/41.2%; CyberHD at 1 bit loses\n\
         0.0/0.0/1.0/3.1/4.1%, and the loss grows with precision (8-bit worst among HDC rows)."
    );
    Ok(())
}

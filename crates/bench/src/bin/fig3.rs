//! Fig. 3 reproduction — accuracy comparison.
//!
//! Trains the DNN (MLP), the linear SVM, baselineHD at the CyberHD physical
//! dimensionality (0.5k) and at the CyberHD effective dimensionality (4k),
//! and CyberHD itself (0.5k physical + regeneration) on synthetic stand-ins
//! of all four datasets, then prints the accuracy table and the aggregate
//! gaps the paper reports (CyberHD vs. SVM, vs. baselineHD(0.5k), vs.
//! baselineHD(4k)).
//!
//! Run with `cargo run -p bench --bin fig3 --release`
//! (set `CYBERHD_SCALE=paper` for the larger corpora).

use bench::{
    paper, prepare_dataset, run_baseline_hd, run_cyberhd, run_mlp, run_svm, ExperimentScale,
};
use eval::report::{series_table, Series};
use nids_data::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!("== Fig. 3: accuracy of CyberHD vs. state-of-the-art ==");
    println!("scale: {scale:?} ({} synthetic flows per dataset)\n", scale.samples());

    let mut dnn = Series::new("DNN");
    let mut svm = Series::new("SVM");
    let mut baseline_small = Series::new("Baseline HDC (D=0.5k)");
    let mut baseline_large = Series::new("Baseline HDC (D=4k)");
    let mut cyberhd = Series::new("CyberHD (this work)");
    let mut effective_dims = Series::new("CyberHD effective D*");

    for (i, kind) in DatasetKind::ALL.iter().enumerate() {
        let seed = 100 + i as u64;
        eprintln!("[fig3] preparing {kind} ...");
        let data = prepare_dataset(*kind, scale.samples(), seed)?;

        eprintln!("[fig3] {kind}: training DNN ...");
        let (mlp_run, _) = run_mlp(&data, scale.mlp_epochs(), seed)?;
        eprintln!("[fig3] {kind}: training SVM ...");
        let (svm_run, _) = run_svm(&data, scale.svm_epochs(), seed)?;
        eprintln!("[fig3] {kind}: training baselineHD (0.5k) ...");
        let (bh_small, _) = run_baseline_hd(
            &data,
            paper::CYBERHD_DIMENSION,
            scale.hdc_epochs(),
            "Baseline HDC (D=0.5k)",
            seed,
        )?;
        eprintln!("[fig3] {kind}: training baselineHD (4k) ...");
        let (bh_large, _) = run_baseline_hd(
            &data,
            paper::BASELINE_LARGE_DIMENSION,
            scale.hdc_epochs(),
            "Baseline HDC (D=4k)",
            seed,
        )?;
        eprintln!("[fig3] {kind}: training CyberHD ...");
        let (cyber, cyber_model) = run_cyberhd(
            &data,
            paper::CYBERHD_DIMENSION,
            paper::REGENERATION_RATE,
            scale.hdc_epochs(),
            "CyberHD",
            seed,
        )?;

        let name = kind.name();
        dnn.push(name, mlp_run.accuracy * 100.0);
        svm.push(name, svm_run.accuracy * 100.0);
        baseline_small.push(name, bh_small.accuracy * 100.0);
        baseline_large.push(name, bh_large.accuracy * 100.0);
        cyberhd.push(name, cyber.accuracy * 100.0);
        effective_dims.push(name, cyber_model.effective_dimension() as f64);
    }

    let labels: Vec<String> = DatasetKind::ALL.iter().map(|k| k.name().to_string()).collect();
    let series =
        [dnn.clone(), svm.clone(), baseline_small.clone(), baseline_large.clone(), cyberhd.clone()];
    println!("{}", series_table("accuracy (%)", &labels, &series));
    println!("{}", series_table("effective dimensionality", &labels, &[effective_dims]));

    println!("-- aggregate comparison (averages over the four datasets) --");
    println!("CyberHD mean accuracy:            {:6.2}%", cyberhd.mean());
    println!("DNN mean accuracy:                {:6.2}%", dnn.mean());
    println!(
        "CyberHD - SVM:                    {:+6.2}%  (paper: +1.63%)",
        cyberhd.mean() - svm.mean()
    );
    println!(
        "CyberHD - baselineHD(0.5k):       {:+6.2}%  (paper: +4.28%)",
        cyberhd.mean() - baseline_small.mean()
    );
    println!(
        "CyberHD - baselineHD(4k):         {:+6.2}%  (paper: comparable, CyberHD uses 8x lower physical D)",
        cyberhd.mean() - baseline_large.mean()
    );
    Ok(())
}

//! Fig. 4 reproduction — training time and inference latency.
//!
//! The paper compares the efficiency of the models that reach comparable
//! accuracy in Fig. 3: the DNN, the SVM, baselineHD at its effective
//! dimensionality (4k) and CyberHD at its physical dimensionality (0.5k).
//! This binary measures wall-clock training time and inference latency for
//! the same four models on all four (synthetic) datasets and prints both the
//! per-dataset numbers and the aggregate speed-ups.
//!
//! Run with `cargo run -p bench --bin fig4 --release`.

use bench::{
    paper, prepare_dataset, run_baseline_hd, run_cyberhd, run_mlp, run_svm, ExperimentScale,
};
use eval::report::{series_table, Series};
use eval::timing::geometric_mean;
use nids_data::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    println!("== Fig. 4: training time and inference latency (log-scale in the paper) ==");
    println!("scale: {scale:?} ({} synthetic flows per dataset)\n", scale.samples());

    let model_names = ["DNN", "SVM", "Baseline HDC (D=4k)", "CyberHD (this work)"];
    let mut train_series: Vec<Series> = model_names.iter().map(|n| Series::new(*n)).collect();
    let mut infer_series: Vec<Series> = model_names.iter().map(|n| Series::new(*n)).collect();
    let mut train_speedup_vs_dnn = Vec::new();
    let mut train_speedup_vs_baseline = Vec::new();
    let mut infer_speedup_vs_baseline = Vec::new();

    for (i, kind) in DatasetKind::ALL.iter().enumerate() {
        let seed = 200 + i as u64;
        eprintln!("[fig4] preparing {kind} ...");
        let data = prepare_dataset(*kind, scale.samples(), seed)?;

        eprintln!("[fig4] {kind}: DNN ...");
        let (mlp_run, _) = run_mlp(&data, scale.mlp_epochs(), seed)?;
        eprintln!("[fig4] {kind}: SVM ...");
        let (svm_run, _) = run_svm(&data, scale.svm_epochs(), seed)?;
        eprintln!("[fig4] {kind}: baselineHD (4k) ...");
        let (bh_large, _) = run_baseline_hd(
            &data,
            paper::BASELINE_LARGE_DIMENSION,
            scale.hdc_epochs(),
            "Baseline HDC (D=4k)",
            seed,
        )?;
        eprintln!("[fig4] {kind}: CyberHD (0.5k) ...");
        let (cyber, _) = run_cyberhd(
            &data,
            paper::CYBERHD_DIMENSION,
            paper::REGENERATION_RATE,
            scale.hdc_epochs(),
            "CyberHD",
            seed,
        )?;

        let name = kind.name();
        let runs = [&mlp_run, &svm_run, &bh_large, &cyber];
        for (series, run) in train_series.iter_mut().zip(&runs) {
            series.push(name, run.training.seconds);
        }
        for (series, run) in infer_series.iter_mut().zip(&runs) {
            series.push(name, run.inference.seconds);
        }
        train_speedup_vs_dnn.push(cyber.training.speedup_over(&mlp_run.training));
        train_speedup_vs_baseline.push(cyber.training.speedup_over(&bh_large.training));
        infer_speedup_vs_baseline.push(cyber.inference.speedup_over(&bh_large.inference));
    }

    let labels: Vec<String> = DatasetKind::ALL.iter().map(|k| k.name().to_string()).collect();
    println!("-- training time (seconds) --");
    println!("{}", series_table("model", &labels, &train_series));
    println!("-- inference latency on the test split (seconds) --");
    println!("{}", series_table("model", &labels, &infer_series));

    println!("-- aggregate speed-ups (geometric mean over datasets) --");
    println!(
        "CyberHD training vs. DNN:             {:5.2}x  (paper: 2.47x)",
        geometric_mean(&train_speedup_vs_dnn).unwrap_or(0.0)
    );
    println!(
        "CyberHD training vs. baselineHD(4k):  {:5.2}x  (paper: 1.85x)",
        geometric_mean(&train_speedup_vs_baseline).unwrap_or(0.0)
    );
    println!(
        "CyberHD inference vs. baselineHD(4k): {:5.2}x  (paper: 15.29x)",
        geometric_mean(&infer_speedup_vs_baseline).unwrap_or(0.0)
    );
    println!(
        "\nNote: the paper's SVM numbers come from kernel SVMs on million-sample corpora,\n\
         where training and inference are orders of magnitude slower than every other model;\n\
         the linear-SGD SVM used here keeps the ordering but compresses that gap."
    );
    Ok(())
}

//! Supporting ablations (not a paper figure).
//!
//! Three studies that isolate CyberHD's design choices:
//!
//! 1. **Regeneration-rate sweep** — accuracy and effective dimensionality as
//!    the per-epoch drop rate R varies (R = 0 is baselineHD).
//! 2. **Encoder comparison** — the nonlinear RBF encoder vs. the static
//!    ID–level and record (linear projection) encoders at the same
//!    dimensionality.
//! 3. **Dimensionality sweep** — baselineHD accuracy as a function of its
//!    physical dimensionality, against CyberHD fixed at 0.5k, illustrating
//!    the "8x lower physical dimensionality" claim.
//!
//! Run with `cargo run -p bench --bin ablation --release`.

use bench::{paper, prepare_dataset, run_baseline_hd, run_cyberhd, ExperimentScale};
use cyberhd::{CyberHdConfig, CyberHdTrainer, EncoderKind};
use eval::Table;
use nids_data::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = ExperimentScale::from_env();
    let samples = scale.samples().min(8_000);
    let epochs = scale.hdc_epochs();
    println!("== Ablation studies (supporting; not a paper figure) ==");
    println!("dataset: CIC-IDS-2017 stand-in, {samples} flows\n");
    let data = prepare_dataset(DatasetKind::CicIds2017, samples, 777)?;

    // 1. Regeneration-rate sweep.
    let mut sweep = Table::new(vec![
        "regeneration rate".into(),
        "test accuracy (%)".into(),
        "effective D*".into(),
        "regenerated dims".into(),
    ]);
    for &rate in &[0.0f32, 0.05, 0.1, 0.2, 0.3, 0.4] {
        let (run, model) =
            run_cyberhd(&data, paper::CYBERHD_DIMENSION, rate, epochs, "CyberHD", 42)?;
        sweep.add_row(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.2}", run.accuracy * 100.0),
            format!("{}", model.effective_dimension()),
            format!("{}", model.report().regeneration.total_regenerated),
        ]);
    }
    println!("-- 1. regeneration-rate sweep (CyberHD, D = 0.5k) --");
    println!("{sweep}");

    // 2. Encoder comparison at the same dimensionality (no regeneration so
    //    the static encoders are comparable).
    let mut encoders = Table::new(vec!["encoder".into(), "test accuracy (%)".into()]);
    for (label, kind) in [
        ("RBF (nonlinear random features)", EncoderKind::Rbf),
        ("ID-level (static)", EncoderKind::IdLevel),
        ("Record / linear projection (static)", EncoderKind::Record),
    ] {
        let config = CyberHdConfig::builder(data.input_width, data.num_classes)
            .dimension(paper::CYBERHD_DIMENSION)
            .encoder(kind)
            .regeneration_rate(0.0)
            .retrain_epochs(epochs)
            .learning_rate(0.05)
            .encode_threads(4)
            .seed(43)
            .build()?;
        let model = CyberHdTrainer::new(config)?.fit(&data.train_x, &data.train_y)?;
        let accuracy = model.accuracy(&data.test_x, &data.test_y)?;
        encoders.add_row(vec![label.to_string(), format!("{:.2}", accuracy * 100.0)]);
    }
    println!("-- 2. encoder comparison (D = 0.5k, no regeneration) --");
    println!("{encoders}");

    // 3. BaselineHD dimensionality sweep vs. CyberHD at 0.5k.
    let (cyber_run, cyber_model) = run_cyberhd(
        &data,
        paper::CYBERHD_DIMENSION,
        paper::REGENERATION_RATE,
        epochs,
        "CyberHD",
        44,
    )?;
    let mut dims =
        Table::new(vec!["model".into(), "physical D".into(), "test accuracy (%)".into()]);
    for &dimension in &[256usize, 512, 1024, 2048, 4096] {
        let (run, _) = run_baseline_hd(&data, dimension, epochs, "baselineHD", 44)?;
        dims.add_row(vec![
            "Baseline HDC".into(),
            format!("{dimension}"),
            format!("{:.2}", run.accuracy * 100.0),
        ]);
    }
    dims.add_row(vec![
        "CyberHD".into(),
        format!("{} (D* = {})", paper::CYBERHD_DIMENSION, cyber_model.effective_dimension()),
        format!("{:.2}", cyber_run.accuracy * 100.0),
    ]);
    println!("-- 3. baselineHD dimensionality sweep vs. CyberHD at 0.5k --");
    println!("{dims}");
    Ok(())
}

//! Deterministic drift-scenario replay: the shared driver behind
//! `tests/scenario.rs` and the serve bench's `adaptive_recovery` arm.
//!
//! A [`ScenarioSpec`] names a training mix and a phased live stream
//! ([`nids_data::drift::DriftStream`]); [`replay`] runs the full serving
//! stack over it **twice in lock-step**:
//!
//! * a **frozen** tenant served through the PR-4 [`ServeEngine`] path
//!   (micro-batching over an immutable artifact), and
//! * an **adaptive** tenant served through an
//!   [`cyberhd::serve::AdaptiveLane`] that receives ground truth, tracks
//!   windowed prequential accuracy, and regenerates + republishes through
//!   the shared [`DetectorRegistry`] when its drift monitor trips.
//!
//! Everything is seeded: the stream, the detector, the flush cadence.
//! Two calls with the same spec and config produce bit-identical verdict
//! sequences on both lanes, which is what lets the scenario tests pin
//! drift *recovery* (an accuracy delta over a fixed window) rather than a
//! flaky trend.

use cyberhd::serve::{AdaptiveConfig, AdaptiveLane, AdaptiveStats, ServeConfig, ServeEngine};
use cyberhd::{
    Detector, DetectorBuilder, DetectorRegistry, DriftMonitorConfig, EncoderKind, Verdict,
};
use nids_data::datasets::language_id;
use nids_data::drift::{DriftPhase, DriftStream};
use nids_data::{Dataset, DatasetKind};
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

/// Tenant id of the frozen (never-swapped) serving lane.
pub const FROZEN_TENANT: &str = "frozen";
/// Tenant id the adaptive lane serves and republishes under.
pub const ADAPTIVE_TENANT: &str = "adaptive";

/// One named drift scenario: a training mix plus a phased live stream.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (used in reports and snapshot arms).
    pub name: String,
    /// Dataset schema/profiles the traffic is shaped like.
    pub kind: DatasetKind,
    /// Class mix the training corpus is drawn from (its `samples` field is
    /// overridden by [`ReplayConfig::train_samples`]).
    pub train_mix: DriftPhase,
    /// The live stream's phases, in order.
    pub phases: Vec<DriftPhase>,
    /// Index of the phase whose tail is the drift-recovery window.
    pub post_drift_phase: usize,
    /// Calibrate open-set thresholds on the trained detector, so the
    /// adaptive lane's drift monitor sees novelty flags (the label-free
    /// zero-day signal).
    pub open_set: bool,
}

/// Abrupt shift: a training-time-rare attack class erupts to dominance
/// while the benign mix collapses and the traffic gets noisier — the
/// "new campaign" regime the paper motivates online adaptation with.
pub fn abrupt_shift(kind: DatasetKind) -> ScenarioSpec {
    let classes = kind.profiles().len();
    let attack = classes - 1;
    ScenarioSpec {
        name: "abrupt_shift".into(),
        kind,
        train_mix: DriftPhase::stationary(0, classes).scale_class(attack, 0.02),
        phases: vec![
            DriftPhase::stationary(350, classes).scale_class(attack, 0.02),
            DriftPhase::stationary(850, classes)
                .scale_class(attack, 30.0)
                .scale_class(0, 0.3)
                .difficulty(1.6),
        ],
        post_drift_phase: 1,
        open_set: false,
    }
}

/// Gradual drift: the class mix and overlap ramp over several phases
/// instead of jumping.
pub fn gradual_drift(kind: DatasetKind) -> ScenarioSpec {
    let classes = kind.profiles().len();
    let attack = classes - 1;
    let phases = (0..5u32)
        .map(|step| {
            DriftPhase::stationary(240, classes)
                .scale_class(attack, 0.05 * 4.0f64.powi(step as i32))
                .difficulty(1.0 + 0.3 * step as f64)
        })
        .collect();
    ScenarioSpec {
        name: "gradual_drift".into(),
        kind,
        train_mix: DriftPhase::stationary(0, classes).scale_class(attack, 0.05),
        phases,
        post_drift_phase: 4,
        open_set: false,
    }
}

/// Class surge: a known attack class spikes 25× (a campaign of a family
/// the model has seen) without any change to the class-conditional
/// distributions.
pub fn class_surge(kind: DatasetKind) -> ScenarioSpec {
    let classes = kind.profiles().len();
    let attack = 1.min(classes - 1);
    ScenarioSpec {
        name: "class_surge".into(),
        kind,
        train_mix: DriftPhase::stationary(0, classes),
        phases: vec![
            DriftPhase::stationary(350, classes),
            DriftPhase::surge(850, classes, attack, 25.0),
        ],
        post_drift_phase: 1,
        open_set: false,
    }
}

/// Zero-day appearance: one class is **structurally absent** from both
/// the training corpus and the calm phase, then appears — open-set
/// thresholds give the drift monitor its label-free novelty signal.
pub fn zero_day(kind: DatasetKind) -> ScenarioSpec {
    let classes = kind.profiles().len();
    let unseen = classes - 1;
    ScenarioSpec {
        name: "zero_day".into(),
        kind,
        train_mix: DriftPhase::absent(0, classes, unseen),
        phases: vec![
            DriftPhase::absent(300, classes, unseen),
            // The unseen class erupts to roughly half the traffic (class
            // base weights are imbalanced, so the multiplier is large).
            DriftPhase::stationary(900, classes).scale_class(unseen, 100.0),
        ],
        post_drift_phase: 1,
        open_set: true,
    }
}

/// The four canonical scenarios over one dataset kind.
pub fn canonical_scenarios(kind: DatasetKind) -> Vec<ScenarioSpec> {
    vec![abrupt_shift(kind), gradual_drift(kind), class_surge(kind), zero_day(kind)]
}

/// A scenario whose corpora are already materialized: a named training
/// dataset, a phased live stream and a fully configured detector builder.
///
/// [`replay`] materializes one of these from a [`ScenarioSpec`] (the
/// `DatasetKind` class-profile path); workloads whose traffic does not
/// come from the NIDS generators — e.g. the symbolic workload zoo — build
/// one directly ([`zoo_vocab_shift`], [`zoo_unseen_language`]) and hand it
/// to [`replay_prepared`].
#[derive(Debug, Clone)]
pub struct PreparedScenario {
    /// Scenario name (used in reports and snapshot arms).
    pub name: String,
    /// Training corpus the sealed artifact is built from.
    pub train: Dataset,
    /// The phased live stream replayed through both lanes.
    pub live: DriftStream,
    /// Detector shape (encoder, dimensionality, open-set calibration,
    /// seed, ...), ready to train on `train`.
    pub builder: DetectorBuilder,
    /// Index of the phase whose tail is the drift-recovery window.
    pub post_drift_phase: usize,
}

/// Vocabulary shift on the language-ID zoo workload: five phases ramp
/// every language's character-transition statistics from the training
/// chains toward an independently seeded drifted set — gradual
/// *distribution* drift (the class mix never changes), the regime where a
/// frozen n-gram profile quietly rots while prequential feedback lets the
/// adaptive lane track the moving vocabulary.
///
/// # Errors
///
/// Propagates corpus generation and stream assembly errors.
pub fn zoo_vocab_shift(
    train_samples: usize,
    dimension: usize,
    seed: u64,
) -> Result<PreparedScenario, Box<dyn std::error::Error>> {
    let train = language_id::generate(train_samples, seed ^ 0xA11CE)?;
    let phases: Vec<Dataset> = [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .enumerate()
        .map(|(i, &shift)| language_id::generate_shifted(240, shift, seed.wrapping_add(i as u64)))
        .collect::<Result<_, _>>()?;
    Ok(PreparedScenario {
        name: "zoo_vocab_shift".into(),
        train,
        live: DriftStream::from_phase_datasets(&phases)?,
        builder: zoo_language_builder(dimension, seed),
        post_drift_phase: 4,
    })
}

/// Unseen-language zero-day on the language-ID zoo workload: the held-out
/// ninth language is structurally absent from training and the calm
/// phase, then erupts to roughly half the traffic.  Open-set thresholds
/// give the drift monitor its label-free novelty signal; the n-gram
/// encoder cannot regenerate, so recovery must come from the adaptive
/// lane's online rule alone.
///
/// # Errors
///
/// Propagates corpus generation and stream assembly errors.
pub fn zoo_unseen_language(
    train_samples: usize,
    dimension: usize,
    seed: u64,
) -> Result<PreparedScenario, Box<dyn std::error::Error>> {
    let train = language_id::generate(train_samples, seed ^ 0xA11CE)?;
    let calm = language_id::generate(300, seed.wrapping_add(1))?;
    // Eight seen languages at weight 1.0 each + the novel one at 8.0 ≈
    // half the surge-phase traffic.
    let surge = language_id::generate_mix(
        900,
        &language_id::zero_day_weights(8.0),
        0.0,
        seed.wrapping_add(2),
    )?;
    Ok(PreparedScenario {
        name: "zoo_unseen_language".into(),
        train,
        live: DriftStream::from_phase_datasets(&[calm, surge])?,
        builder: zoo_language_builder(dimension, seed).open_set(0.05),
        post_drift_phase: 1,
    })
}

/// The zoo language-ID detector shape: trigram bind-permute-bundle
/// encoding, no regeneration (symbolic item memories are not
/// variance-droppable).
fn zoo_language_builder(dimension: usize, seed: u64) -> DetectorBuilder {
    Detector::builder()
        .encoder(EncoderKind::NGram)
        .ngram_order(3)
        .dimension(dimension)
        .retrain_epochs(2)
        .regeneration_rate(0.0)
        .seed(seed)
}

/// Knobs of one replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Hypervector dimensionality of the trained detector.
    pub dimension: usize,
    /// Retraining epochs of the initial (sealed) artifact.
    pub retrain_epochs: usize,
    /// Regeneration rate baked into the artifact (used by the adaptive
    /// lane's trips).
    pub regeneration_rate: f32,
    /// Training-corpus size drawn from [`ScenarioSpec::train_mix`].
    pub train_samples: usize,
    /// Drift-monitor thresholds of the adaptive lane.
    pub monitor: DriftMonitorConfig,
    /// Deterministic flush cadence: both lanes flush every this many
    /// submissions (plus once at the end).
    pub flush_every: usize,
    /// Every `feedback_every`-th flow carries ground truth into the
    /// adaptive lane (`1` = full feedback, `0` = no ground truth at all);
    /// the rest are served unlabelled.
    pub feedback_every: usize,
    /// How many flows later ground truth arrives.  `0` attaches it at
    /// submit time ([`AdaptiveLane::submit_labelled`]); a positive delay
    /// serves the flow unlabelled and delivers the label through
    /// [`AdaptiveLane::submit_feedback`] `feedback_delay` submissions
    /// later — the analyst-in-the-loop regime where a zero-day surge must
    /// trip on open-set novelty *before* any label exists.
    pub feedback_delay: usize,
    /// Fraction of the post-drift phase (its tail) measured as the
    /// recovery window, e.g. `0.5` = the last half.
    pub recovery_tail: f64,
    /// Open-set calibration quantile (when the spec asks for thresholds);
    /// also the quantile the adaptive lane's reservoir recalibration uses
    /// when a drift trip republishes, so recalibrated thresholds are on
    /// the same scale as the initial calibration.
    pub open_set_quantile: f64,
    /// Serve the adaptive lane in batched-feedback mode
    /// ([`AdaptiveConfig::batched_feedback`]): flushes apply as
    /// frozen-snapshot mini-batches instead of the serial streaming rule.
    pub batched_feedback: bool,
    /// Seed for the stream, detector and split.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            dimension: 256,
            retrain_epochs: 2,
            regeneration_rate: 0.1,
            train_samples: 1200,
            monitor: DriftMonitorConfig {
                window: 96,
                min_observations: 48,
                error_delta: 0.12,
                unknown_surge: 0.30,
                cooldown: 96,
            },
            flush_every: 24,
            feedback_every: 1,
            feedback_delay: 0,
            recovery_tail: 0.5,
            open_set_quantile: 0.10,
            batched_feedback: false,
            seed: 29,
        }
    }
}

/// Everything one replay produced, ready for assertions and snapshots.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Flows replayed through both lanes.
    pub flows: usize,
    /// Ground-truth labels of the stream, in order.
    pub labels: Vec<usize>,
    /// The frozen lane's verdicts, in submission order.
    pub frozen_verdicts: Vec<Verdict>,
    /// The adaptive lane's verdicts, in submission order.
    pub adaptive_verdicts: Vec<Verdict>,
    /// Flow-index range of every phase.
    pub phase_ranges: Vec<Range<usize>>,
    /// The measured recovery window (tail of the post-drift phase).
    pub recovery_window: Range<usize>,
    /// Frozen-lane accuracy over the recovery window.
    pub frozen_recovery_accuracy: f64,
    /// Adaptive-lane (prequential) accuracy over the recovery window.
    pub adaptive_recovery_accuracy: f64,
    /// Whether the frozen lane's verdicts were bit-identical to one
    /// `detect_batch` oracle call over the whole stream (the PR-4
    /// contract, re-checked under every scenario).
    pub frozen_bit_identical: bool,
    /// Registry version of the adaptive tenant when the replay ended
    /// (`1` = never republished).
    pub final_registry_version: u64,
    /// Full adaptive-lane counters at the end of the replay.
    pub adaptive: AdaptiveStats,
    /// The registry the replay served through, in its end state — the
    /// frozen tenant still at version 1, the adaptive tenant at its last
    /// published artifact.  Harnesses probe it to verify the republish →
    /// hot-swap → frozen-serving handoff.
    pub registry: Arc<DetectorRegistry>,
}

impl ScenarioOutcome {
    /// Accuracy delta of the adaptive lane over the frozen artifact in the
    /// recovery window — the headline drift-recovery number.
    pub fn recovery_delta(&self) -> f64 {
        self.adaptive_recovery_accuracy - self.frozen_recovery_accuracy
    }

    /// Accuracy of `verdicts` against the stream labels over `window`.
    pub fn window_accuracy(verdicts: &[Verdict], labels: &[usize], window: Range<usize>) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        let correct = window.clone().filter(|&i| verdicts[i].class == labels[i]).count();
        correct as f64 / window.len() as f64
    }
}

/// Replays one [`ScenarioSpec`] through the frozen and adaptive serving
/// stacks in lock-step (see the [module docs](self)): materializes the
/// training corpus, detector builder and live stream from the spec's
/// `DatasetKind` generators, then defers to [`replay_prepared`].
///
/// # Errors
///
/// Propagates stream generation, training and serving errors as a boxed
/// error so harnesses can `?` them.
pub fn replay(
    spec: &ScenarioSpec,
    config: &ReplayConfig,
) -> Result<ScenarioOutcome, Box<dyn std::error::Error>> {
    let schema = spec.kind.schema();
    let profiles = spec.kind.profiles();

    // Training corpus from the scenario's training mix.
    let mut train_mix = spec.train_mix.clone();
    train_mix.samples = config.train_samples;
    let train = DriftStream::generate(&schema, &profiles, &[train_mix], config.seed ^ 0xA11CE)?;
    let mut builder = Detector::builder()
        .dimension(config.dimension)
        .retrain_epochs(config.retrain_epochs)
        .regeneration_rate(config.regeneration_rate)
        .seed(config.seed);
    if spec.open_set {
        builder = builder.open_set(config.open_set_quantile);
    }
    let live = DriftStream::generate(&schema, &profiles, &spec.phases, config.seed)?;
    replay_prepared(
        &PreparedScenario {
            name: spec.name.clone(),
            train: train.dataset().clone(),
            live,
            builder,
            post_drift_phase: spec.post_drift_phase,
        },
        config,
    )
}

/// The replay core: trains the prepared builder on the prepared corpus
/// and drives both serving lanes over the prepared stream.  Only the
/// serving-side knobs of [`ReplayConfig`] apply here (`monitor`,
/// `flush_every`, `feedback_every`, `feedback_delay`, `recovery_tail`);
/// the corpus/builder fields were consumed when the scenario was
/// materialized.
///
/// # Errors
///
/// Propagates training and serving errors as a boxed error so harnesses
/// can `?` them.
pub fn replay_prepared(
    scenario: &PreparedScenario,
    config: &ReplayConfig,
) -> Result<ScenarioOutcome, Box<dyn std::error::Error>> {
    let detector = scenario.builder.train(&scenario.train)?;
    let live = &scenario.live;
    let flows = live.len();
    let labels: Vec<usize> = live.dataset().labels().to_vec();
    let phase_ranges: Vec<Range<usize>> =
        (0..live.num_phases()).map(|p| live.phase_range(p).expect("phase in range")).collect();

    // Frozen path: PR-4 micro-batching engine over the shared registry.
    let registry = Arc::new(DetectorRegistry::new());
    registry.register(FROZEN_TENANT, detector.clone())?;
    registry.register(ADAPTIVE_TENANT, detector.clone())?;
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(5),
            queue_capacity: flows + 64,
        },
    )?;

    // Adaptive path: the drift-adaptive lane republishing into the same
    // registry under its own tenant.
    let lane = AdaptiveLane::with_registry(
        ADAPTIVE_TENANT,
        detector.clone(),
        AdaptiveConfig {
            max_batch: config.flush_every.max(1),
            max_delay: Duration::from_millis(5),
            // Verdicts are collected only at the end, and late feedback
            // queues alongside flows: size for the whole stream.
            queue_capacity: 2 * flows + 64,
            monitor: config.monitor,
            retention: flows, // late feedback may arrive arbitrarily later
            regeneration_rate: None,
            regeneration_rounds: 1,
            auto_publish: true,
            recalibration_quantile: config.open_set_quantile,
            batched_feedback: config.batched_feedback,
            ..AdaptiveConfig::default()
        },
        Arc::clone(&registry),
    )?;

    let mut frozen_tickets = Vec::with_capacity(flows);
    let mut adaptive_tickets: Vec<cyberhd::Ticket> = Vec::with_capacity(flows);
    // Ground truth scheduled to arrive late: (due flow index, ticket
    // index, label), kept in submission order.
    let mut due_feedback: std::collections::VecDeque<(usize, usize, usize)> =
        std::collections::VecDeque::new();
    for (i, (record, label, _phase)) in live.iter().enumerate() {
        frozen_tickets.push(engine.submit(FROZEN_TENANT, record)?);
        let labelled = config.feedback_every > 0 && i % config.feedback_every == 0;
        let ticket = if labelled && config.feedback_delay == 0 {
            lane.submit_labelled(record, label)?
        } else {
            let ticket = lane.submit(record)?;
            if labelled {
                due_feedback.push_back((i + config.feedback_delay, i, label));
            }
            ticket
        };
        adaptive_tickets.push(ticket);
        while due_feedback.front().is_some_and(|&(due, _, _)| due <= i) {
            let (_, ticket_index, label) = due_feedback.pop_front().expect("checked non-empty");
            lane.submit_feedback(&adaptive_tickets[ticket_index], label)?;
        }
        if config.flush_every > 0 && (i + 1) % config.flush_every == 0 {
            engine.flush(FROZEN_TENANT)?;
            lane.flush()?;
        }
    }
    // Stragglers: ground truth still in flight when the stream ended.
    for (_, ticket_index, label) in due_feedback {
        lane.submit_feedback(&adaptive_tickets[ticket_index], label)?;
    }
    engine.flush(FROZEN_TENANT)?;
    lane.flush()?;

    let frozen_verdicts: Vec<Verdict> =
        frozen_tickets.iter().map(|t| engine.take(t)).collect::<Result<_, _>>()?;
    let adaptive_verdicts: Vec<Verdict> =
        adaptive_tickets.iter().map(|t| lane.take(t)).collect::<Result<_, _>>()?;

    // Re-check the PR-4 contract under this scenario: the frozen lane is
    // bit-identical to one detect_batch call over the whole stream.
    let oracle = detector.detect_batch(live.dataset().records())?;
    let frozen_bit_identical = frozen_verdicts.len() == oracle.len()
        && frozen_verdicts.iter().zip(&oracle).all(|(got, want)| {
            got.class == want.class
                && got.similarity.to_bits() == want.similarity.to_bits()
                && got.novel == want.novel
        });

    // Recovery window: the tail of the post-drift phase.
    let post = phase_ranges[scenario.post_drift_phase.min(phase_ranges.len() - 1)].clone();
    let tail = ((post.len() as f64) * config.recovery_tail.clamp(0.0, 1.0)).round() as usize;
    let recovery_window = post.end - tail.max(1).min(post.len())..post.end;
    let frozen_recovery_accuracy =
        ScenarioOutcome::window_accuracy(&frozen_verdicts, &labels, recovery_window.clone());
    let adaptive_recovery_accuracy =
        ScenarioOutcome::window_accuracy(&adaptive_verdicts, &labels, recovery_window.clone());

    Ok(ScenarioOutcome {
        name: scenario.name.clone(),
        flows,
        labels,
        frozen_verdicts,
        adaptive_verdicts,
        phase_ranges,
        recovery_window,
        frozen_recovery_accuracy,
        adaptive_recovery_accuracy,
        frozen_bit_identical,
        final_registry_version: registry.version(ADAPTIVE_TENANT).unwrap_or(0),
        adaptive: lane.stats(),
        registry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_scenarios_are_well_formed() {
        for kind in DatasetKind::ALL {
            let classes = kind.profiles().len();
            for spec in canonical_scenarios(kind) {
                assert!(!spec.phases.is_empty(), "{}", spec.name);
                assert!(spec.post_drift_phase < spec.phases.len(), "{}", spec.name);
                for phase in &spec.phases {
                    assert_eq!(phase.class_weight_multipliers.len(), classes);
                    assert!(phase.samples > 0);
                }
                assert_eq!(spec.train_mix.class_weight_multipliers.len(), classes);
            }
        }
    }

    #[test]
    fn zoo_scenarios_are_well_formed() {
        let vocab = zoo_vocab_shift(200, 128, 9).unwrap();
        assert_eq!(vocab.live.num_phases(), 5);
        assert_eq!(vocab.live.len(), 5 * 240);
        assert_eq!(vocab.post_drift_phase, 4);
        assert_eq!(vocab.train.schema().name(), vocab.live.dataset().schema().name());

        let zero = zoo_unseen_language(200, 128, 9).unwrap();
        assert_eq!(zero.live.num_phases(), 2);
        let labels = zero.live.dataset().labels();
        // The held-out language is structurally absent before the surge…
        let calm = zero.live.phase_range(0).unwrap();
        assert!(calm.clone().all(|i| labels[i] != language_id::NOVEL_LANGUAGE));
        // …and roughly half the traffic afterwards.
        let surge = zero.live.phase_range(1).unwrap();
        let novel = surge.clone().filter(|&i| labels[i] == language_id::NOVEL_LANGUAGE).count();
        assert!(novel * 3 >= surge.len(), "novel language must dominate the surge: {novel}");
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let spec = class_surge(DatasetKind::NslKdd);
        let config = ReplayConfig {
            dimension: 96,
            train_samples: 400,
            flush_every: 16,
            ..ReplayConfig::default()
        };
        let a = replay(&spec, &config).unwrap();
        let b = replay(&spec, &config).unwrap();
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.labels, b.labels);
        for (va, vb) in a.adaptive_verdicts.iter().zip(&b.adaptive_verdicts) {
            assert_eq!(va.class, vb.class);
            assert_eq!(va.similarity.to_bits(), vb.similarity.to_bits());
        }
        assert_eq!(a.frozen_recovery_accuracy, b.frozen_recovery_accuracy);
        assert_eq!(a.adaptive_recovery_accuracy, b.adaptive_recovery_accuracy);
        assert_eq!(a.adaptive.monitor_trips, b.adaptive.monitor_trips);
        assert!(a.frozen_bit_identical);
        assert_eq!(a.recovery_window, b.recovery_window);
        assert_eq!(a.phase_ranges.last().unwrap().end, a.flows);
    }
}

//! Durability benchmarks: what the WAL + checkpoint stack costs on the
//! serving path, and how fast a crashed lane comes back.
//!
//! Three measurements (scale via `CYBERHD_RECOVER_DIM` /
//! `CYBERHD_RECOVER_EVENTS` / `CYBERHD_RECOVER_REPS`):
//!
//! 1. **Durable overhead** — the same labelled stream through a plain
//!    [`AdaptiveLane`] and through a [`DurableLane`] (every event framed,
//!    checksummed and fsynced per micro-batch), reporting both throughputs
//!    and the slowdown factor the durability guarantee costs.
//! 2. **Replay throughput vs log length** — a lane is built, run for a
//!    fixed number of events with checkpoints disabled, flushed and
//!    dropped (a crash right after the last fsync); recovery then replays
//!    the whole tail.  Reported at three log lengths as events/s plus the
//!    p50 recovery latency across reps.
//! 3. **Checkpoint bound** — the same full-length log but with the
//!    checkpoint cadence enabled: recovery loads the newest checkpoint and
//!    replays only the short tail, demonstrating that recovery time is
//!    bounded by `checkpoint_every`, not by stream length.
//! 4. **Adaptive-subsystem arms** — `batched_feedback` recovers a lane
//!    whose WAL carries batch-boundary markers (boundary-driven replay),
//!    and `recalibrated_publish` recovers an open-set lane whose
//!    mid-stream label rotation tripped the monitor and recalibrated
//!    thresholds from the reservoir (v2 checkpoint: reservoir entries +
//!    thresholds recovered and asserted bit-identical).
//!
//! Emits the `BENCH_recover.json` snapshot at the workspace root.  Every
//! recovery is asserted bit-identical to the lane that was dropped (the
//! sealed model bytes must match), so the numbers only ever describe
//! correct recoveries.

use bench::{env_usize, limited_class_dataset, snapshot, timed_pass};
use criterion::{criterion_group, criterion_main, Criterion};
use cyberhd::{
    AdaptiveConfig, AdaptiveLane, Detector, DriftMonitorConfig, DurableConfig, DurableLane,
};
use eval::ThroughputReport;
use nids_data::DatasetKind;
use std::path::PathBuf;
use std::time::Instant;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cyberhd_recovery_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn bench_recovery(c: &mut Criterion) {
    // Heavy passes are timed directly, as in the serve bench; criterion's
    // calibrated micro-sampling cannot hold a full recovery pass.
    let _ = c;
    let dim = env_usize("CYBERHD_RECOVER_DIM", 2_048);
    let events = env_usize("CYBERHD_RECOVER_EVENTS", 4_096);
    let reps = env_usize("CYBERHD_RECOVER_REPS", 3);

    let dataset =
        limited_class_dataset(DatasetKind::NslKdd, 4, 1_000, 31).expect("dataset generation");
    let detector = Detector::builder()
        .dimension(dim)
        .retrain_epochs(1)
        .regeneration_rate(0.1)
        .seed(23)
        .train(&dataset)
        .expect("training succeeds");
    let flows: Vec<(Vec<f32>, usize)> = dataset
        .records()
        .iter()
        .zip(dataset.labels())
        .cycle()
        .take(events)
        .map(|(record, &label)| (record.clone(), label))
        .collect();

    let adaptive =
        AdaptiveConfig { max_batch: 32, queue_capacity: events + 64, ..AdaptiveConfig::default() };

    println!(
        "\nrecovery: dim={dim}, classes={}, events={events}, reps={reps}",
        detector.num_classes()
    );

    // 1. Durable overhead: identical labelled stream, with and without the
    // write-ahead stack underneath.
    let (plain, _) = timed_pass(events, reps, || {
        let lane = AdaptiveLane::new("bench", detector.clone(), adaptive).expect("valid lane");
        for (record, label) in &flows {
            let _ = lane.submit_labelled(record, *label).expect("capacity sized to stream");
        }
        lane.flush().expect("flush succeeds");
        lane.stats().flows_served
    });
    let durable_dir = fresh_dir("overhead");
    let (durable, _) = timed_pass(events, reps, || {
        std::fs::remove_dir_all(&durable_dir).ok();
        let config = DurableConfig { adaptive, checkpoint_every: 1_024, keep_checkpoints: 2 };
        let lane = DurableLane::create(&durable_dir, "bench", detector.clone(), config, None)
            .expect("fresh directory");
        for (record, label) in &flows {
            let _ = lane.submit_labelled(record, *label).expect("capacity sized to stream");
        }
        lane.flush().expect("flush succeeds");
        lane.stats().flows_served
    });
    std::fs::remove_dir_all(&durable_dir).ok();
    println!("  plain adaptive lane   : {plain}");
    println!("  durable lane (WAL+ckpt): {durable}");
    println!("  durability overhead    : {:.2}x slower", plain.speedup_over(&durable));

    let mut arms = vec![
        snapshot::Arm::new("adaptive_plain", plain),
        snapshot::Arm::new("adaptive_durable", durable),
    ];
    let mut extra_params: Vec<(String, f64)> = Vec::new();

    // 2 & 3. Recovery latency: replay-bound (checkpoints out of reach) at
    // three log lengths, then checkpoint-bound at full length.
    println!("\nrecovery latency (p50 of {reps} recoveries per configuration):");
    let full = events.max(4);
    for (label, tail, checkpoint_every) in [
        ("replay_quarter_log", full / 4, 10 * full as u64),
        ("replay_half_log", full / 2, 10 * full as u64),
        ("replay_full_log", full, 10 * full as u64),
        ("checkpoint_bounded", full, 256),
    ] {
        let dir = fresh_dir(label);
        let config = DurableConfig { adaptive, checkpoint_every, keep_checkpoints: 2 };
        let sealed = {
            let lane = DurableLane::create(&dir, "bench", detector.clone(), config, None)
                .expect("fresh directory");
            for (record, label) in &flows[..tail] {
                let _ = lane.submit_labelled(record, *label).expect("capacity sized to stream");
            }
            lane.flush().expect("flush succeeds");
            lane.seal_snapshot().to_bytes()
            // The process dies here: everything flushed is on disk, the
            // lane object and its tickets are gone.
        };
        let mut durations = Vec::with_capacity(reps.max(1));
        let mut replayed = 0u64;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let (lane, report) = DurableLane::recover(&dir, None).expect("recoverable directory");
            durations.push(start.elapsed());
            replayed = report.events_replayed;
            assert_eq!(
                lane.seal_snapshot().to_bytes(),
                sealed,
                "{label}: recovery must rebuild the crashed lane bit for bit"
            );
        }
        durations.sort();
        let p50 = durations[durations.len() / 2];
        let best = *durations.first().expect("at least one rep");
        let report = ThroughputReport::new(best, replayed as usize);
        println!(
            "  {label:<20}: {tail} events logged, {replayed} replayed, p50 {:.2} ms, {:.0} \
             events/s",
            p50.as_secs_f64() * 1e3,
            report.samples_per_second(),
        );
        extra_params.push((format!("p50_ms_{label}"), p50.as_secs_f64() * 1e3));
        extra_params.push((format!("events_replayed_{label}"), replayed as f64));
        arms.push(snapshot::Arm::new(&format!("recover_{label}"), report));
        std::fs::remove_dir_all(&dir).ok();
    }

    // The checkpoint must actually bound the replay: the bounded arm saw
    // the same full-length stream but replays only the post-checkpoint
    // tail.
    let bounded_replayed = extra_params
        .iter()
        .find(|(key, _)| key == "events_replayed_checkpoint_bounded")
        .map_or(0.0, |(_, v)| *v);
    assert!(
        bounded_replayed <= 256.0,
        "a checkpoint every 256 events must bound replay to one cadence, got {bounded_replayed}"
    );

    // 4. Adaptive-subsystem arms: a batched-feedback lane (boundary-driven
    // replay) and an open-set lane whose mid-stream label rotation trips
    // the monitor and recalibrates thresholds from the reservoir.  Both
    // recover with sealed bytes and thresholds asserted bit-identical.
    let open_detector = Detector::builder()
        .dimension(dim)
        .retrain_epochs(1)
        .regeneration_rate(0.1)
        .open_set(0.05)
        .seed(23)
        .train(&dataset)
        .expect("training succeeds");
    let trip_monitor = DriftMonitorConfig {
        window: 24,
        min_observations: 12,
        error_delta: 0.2,
        unknown_surge: 0.4,
        cooldown: 16,
    };
    println!("\nadaptive-subsystem recovery (p50 of {reps} recoveries per arm):");
    for (label, batched, recalibrating) in
        [("batched_feedback", true, false), ("recalibrated_publish", false, true)]
    {
        let dir = fresh_dir(label);
        let lane_detector = if recalibrating { open_detector.clone() } else { detector.clone() };
        let classes = lane_detector.num_classes();
        let config = DurableConfig {
            adaptive: AdaptiveConfig {
                batched_feedback: batched,
                monitor: trip_monitor,
                ..adaptive
            },
            // Off the power-of-two event counts on purpose: the stream
            // length never divides the cadence, so every recovery replays
            // a real WAL tail (batch-boundary-driven on the batched arm).
            checkpoint_every: 192,
            keep_checkpoints: 2,
        };
        let (sealed, thresholds, recalibrations) = {
            let lane = DurableLane::create(&dir, "bench", lane_detector, config, None)
                .expect("fresh directory");
            for (i, (record, truth)) in flows.iter().enumerate() {
                // The back half rotates ground truth so the prequential
                // error surges, the monitor trips and — on the open-set
                // arm — publish recalibrates from the reservoir.
                let label = if recalibrating && i >= flows.len() / 2 {
                    (truth + 1) % classes
                } else {
                    *truth
                };
                let _ = lane.submit_labelled(record, label).expect("capacity sized to stream");
            }
            lane.flush().expect("flush succeeds");
            (
                lane.seal_snapshot().to_bytes(),
                lane.thresholds_snapshot(),
                lane.stats().recalibrations,
            )
        };
        if recalibrating {
            assert!(
                recalibrations >= 1,
                "{label}: the label rotation must trip and recalibrate for this arm to measure \
                 the recalibrated-publish recovery path"
            );
        }
        let mut durations = Vec::with_capacity(reps.max(1));
        let mut replayed = 0u64;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let (lane, report) = DurableLane::recover(&dir, None).expect("recoverable directory");
            durations.push(start.elapsed());
            replayed = report.events_replayed;
            assert_eq!(
                lane.seal_snapshot().to_bytes(),
                sealed,
                "{label}: recovery must rebuild the crashed lane bit for bit"
            );
            assert_eq!(
                lane.thresholds_snapshot(),
                thresholds,
                "{label}: open-set thresholds must recover bit-identically"
            );
        }
        durations.sort();
        let p50 = durations[durations.len() / 2];
        let best = *durations.first().expect("at least one rep");
        let report = ThroughputReport::new(best, replayed as usize);
        println!(
            "  {label:<20}: {replayed} events replayed, {recalibrations} recalibrations, p50 \
             {:.2} ms",
            p50.as_secs_f64() * 1e3,
        );
        extra_params.push((format!("p50_ms_{label}"), p50.as_secs_f64() * 1e3));
        extra_params.push((format!("events_replayed_{label}"), replayed as f64));
        extra_params.push((format!("recalibrations_{label}"), recalibrations as f64));
        arms.push(snapshot::Arm::new(&format!("recover_{label}"), report));
        std::fs::remove_dir_all(&dir).ok();
    }

    let speedups = vec![("durability_overhead", plain.speedup_over(&durable))];
    let mut params: Vec<(&str, f64)> = vec![
        ("dim", dim as f64),
        ("classes", detector.num_classes() as f64),
        ("events", events as f64),
        ("reps", reps as f64),
        ("max_batch", adaptive.max_batch as f64),
        ("available_cores", hdc::parallel::available_cores() as f64),
    ];
    params.extend(extra_params.iter().map(|(k, v)| (k.as_str(), *v)));
    let labels = [("kernel_isa", hdc::kernel::active().isa())];
    match snapshot::write("BENCH_recover.json", "recover", &labels, &params, &arms, &speedups) {
        Ok(path) => println!("  snapshot: {}", path.display()),
        Err(err) => eprintln!("  snapshot write failed: {err}"),
    }
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);

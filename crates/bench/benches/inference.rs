//! Inference benchmarks.
//!
//! Two layers:
//!
//! 1. The paper-facing single-flow latency groups (CyberHD 0.5k vs
//!    baselineHD 4k, plus the quantized deployment path) — unchanged from
//!    the seed.
//! 2. The engine-facing `batched_vs_serial` comparison: the seed's serial
//!    per-sample loop (fresh allocations per sample, class norms recomputed
//!    per query, one base-matrix pass per sample) against the fused batched
//!    engine (`predict_batch`), at NSL-KDD-shaped traffic.  The 1-bit path
//!    is measured twice: the PR 1 pipeline (batched f32 encode → sign-pack →
//!    Hamming), reconstructed here from public primitives, and the fused
//!    sign-encode kernel `predict_batch` now runs (quadrant test packing
//!    bits straight into words, no f32 matrix).  Scale is controlled by
//!    `CYBERHD_BENCH_DIM` / `CYBERHD_BENCH_SAMPLES` / `CYBERHD_BENCH_REPS`
//!    (defaults 10_000 / 10_000 / 2); CI smoke runs shrink them.  The group
//!    prints an explicit `speedup:` line per path and writes the
//!    `BENCH_infer.json` snapshot at the workspace root.

use bench::reference::{predict_b1_encode_then_quantize, predict_dense_per_class_scoring};
use bench::{env_usize, prepare_dataset, snapshot, timed_pass};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyberhd::{CyberHdTrainer, Detector, DetectorBuilder, EncoderKind};
use eval::timing::ThroughputReport;
use hdc::parallel::{available_cores, engine_threads};
use hdc::BitWidth;
use nids_data::datasets::{language_id, tabular_zoo};
use nids_data::synth::SyntheticConfig;
use nids_data::{Dataset, DatasetKind};
use std::hint::black_box;

fn bench_single_flow(c: &mut Criterion) {
    let data = prepare_dataset(DatasetKind::NslKdd, 1_200, 21).expect("dataset generation");
    let query = data.test_x[0].clone();

    let mut group = c.benchmark_group("single_flow_inference");
    for (label, dimension, regeneration) in
        [("cyberhd_512", 512usize, 0.2f32), ("baseline_4096", 4096, 0.0)]
    {
        let config =
            bench::cyberhd_config(&data, dimension, regeneration, 3, 2).expect("valid config");
        let model = CyberHdTrainer::new(config)
            .unwrap()
            .fit(&data.train_x, &data.train_y)
            .expect("training succeeds");
        group.bench_with_input(BenchmarkId::from_parameter(label), &model, |bencher, model| {
            bencher.iter(|| black_box(model.predict(&query).unwrap()))
        });
    }
    group.finish();

    // Quantized deployment path.
    let config = bench::cyberhd_config(&data, 512, 0.2, 3, 3).expect("valid config");
    let model = CyberHdTrainer::new(config)
        .unwrap()
        .fit(&data.train_x, &data.train_y)
        .expect("training succeeds");
    let mut group = c.benchmark_group("quantized_single_flow_inference");
    for width in [BitWidth::B8, BitWidth::B1] {
        let deployed = model.quantize(width);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}")),
            &deployed,
            |bencher, deployed| bencher.iter(|| black_box(deployed.predict(&query).unwrap())),
        );
    }
    group.finish();
}

/// The headline engine comparison: fused `predict_batch` against the seed's
/// serial per-sample loop, dense and 1-bit, at dim×samples scale.
fn bench_batched_vs_serial(c: &mut Criterion) {
    // Keep the criterion harness in the loop for its reporting conventions,
    // but the heavy passes are timed directly: one pass at the default
    // scale is far too large for calibrated micro-sampling.
    let _ = c;
    let dim = env_usize("CYBERHD_BENCH_DIM", 10_000);
    let samples = env_usize("CYBERHD_BENCH_SAMPLES", 10_000);
    let reps = env_usize("CYBERHD_BENCH_REPS", 2);

    // NSL-KDD-shaped synthetic traffic, restricted to 4 classes (the
    // engine's reference configuration); a small training subset keeps
    // model construction cheap at huge dims.
    let data = prepare_dataset(DatasetKind::NslKdd, samples.max(600) + 400, 29)
        .expect("dataset generation");
    let classes = 4usize;
    let keep = |xs: &[Vec<f32>], ys: &[usize]| -> (Vec<Vec<f32>>, Vec<usize>) {
        xs.iter().zip(ys).filter(|(_, &y)| y < classes).map(|(x, &y)| (x.clone(), y)).unzip()
    };
    let (train_x, train_y) = keep(&data.train_x, &data.train_y);
    let (test_x, _) = keep(&data.test_x, &data.test_y);
    let train_n = 400.min(train_x.len());
    let config = cyberhd::CyberHdConfig::builder(data.input_width, classes)
        .dimension(dim)
        .retrain_epochs(1)
        .regeneration_rate(0.0)
        .learning_rate(0.05)
        .seed(17)
        .build()
        .expect("valid config");
    let model = CyberHdTrainer::new(config)
        .unwrap()
        .fit(&train_x[..train_n], &train_y[..train_n])
        .expect("training succeeds");
    let batch: Vec<Vec<f32>> =
        test_x.iter().chain(train_x.iter()).cycle().take(samples).cloned().collect();
    // The zero-copy arm consumes the same flows as one contiguous matrix —
    // the form a preprocessed capture buffer would already be in.
    let buffer = hdc::BatchBuffer::from_rows(&batch, data.input_width).expect("consistent rows");

    println!(
        "\nbatched_vs_serial: dim={dim}, classes={}, samples={samples}, reps={reps}",
        model.num_classes()
    );

    // Dense path: the seed's serial loop is exactly `predict` per sample.
    let (serial, _) = timed_pass(samples, reps, || {
        batch.iter().map(|f| model.predict(f).unwrap()).collect::<Vec<_>>()
    });
    let (batched, _) = timed_pass(samples, reps, || model.predict_batch(&batch).unwrap());
    let (batched_view, view_predictions) =
        timed_pass(samples, reps, || model.predict_batch_view(buffer.view()).unwrap());
    // The scoring loop the interleaved multi-class dot kernel replaced:
    // same batched encode, one query pass per class instead of one total.
    let (per_class, per_class_predictions) = timed_pass(samples, reps, || {
        predict_dense_per_class_scoring(model.encoder(), model.memory(), buffer.view())
    });
    println!("  dense serial       : {serial}");
    println!("  dense batched rows : {batched}");
    println!("  dense batched view : {batched_view}");
    println!("  dense per-class scoring (pre-kernel): {per_class}");
    println!("  dense speedup      : {:.2}x", batched.speedup_over(&serial));
    println!("  dense view-vs-rows : {:.2}x", batched_view.speedup_over(&batched));
    println!("  dense interleaved-vs-per-class: {:.2}x", batched_view.speedup_over(&per_class));
    // The interleaved kernel replicates the per-class accumulation order
    // exactly; predictions must match bit for bit.
    assert_eq!(view_predictions, per_class_predictions, "interleaved kernel diverged");

    // 1-bit deployment path: packed-word Hamming kernel vs serial integer
    // cosine, plus the fused sign-encode kernel vs the PR 1 encode-then-pack
    // pipeline.
    let deployed = model.quantize(BitWidth::B1);
    let (serial_q, _) = timed_pass(samples, reps, || {
        batch.iter().map(|f| deployed.predict(f).unwrap()).collect::<Vec<_>>()
    });
    let (prefused_q, prefused_predictions) = timed_pass(samples, reps, || {
        predict_b1_encode_then_quantize(model.encoder(), &deployed, buffer.view())
    });
    let (fused_q, fused_predictions) =
        timed_pass(samples, reps, || deployed.predict_batch_view(buffer.view()).unwrap());
    println!("  1-bit serial            : {serial_q}");
    println!("  1-bit batched (PR1 path): {prefused_q}");
    println!("  1-bit fused sign-encode : {fused_q}");
    println!("  1-bit batched-vs-serial speedup: {:.2}x", prefused_q.speedup_over(&serial_q));
    println!("  1-bit fused-vs-batched  speedup: {:.2}x", fused_q.speedup_over(&prefused_q));
    println!("  1-bit fused-vs-serial   speedup: {:.2}x", fused_q.speedup_over(&serial_q));

    // The fused kernel's contract is bit-exact predictions against the
    // encode-then-quantize path; assert it at bench scale, where boundary
    // cases actually occur (both pipelines are deterministic, so the timed
    // passes' outputs are the assertion inputs).
    assert_eq!(fused_predictions, prefused_predictions, "fused 1-bit predictions diverged");

    // Kernel-layer micro-arms: the runtime-dispatched SIMD path against the
    // always-available scalar table, on the two kernels the engine leans on
    // hardest — the dense dot and the packed-word Hamming distance — at the
    // bench dimensionality.  The roofline rows compare the dispatched
    // throughput against a single-core `hw_model::CpuModel` whose SIMD
    // width matches the selected ISA; utilization above 1.0 means the
    // first-order model underestimates the host (multiple issue ports).
    let dispatched = hdc::kernel::active();
    let scalar_kernels = hdc::Kernels::scalar();
    let isa = dispatched.isa();
    // Enough calls per pass (~hundreds of µs) that the sub-30ns Hamming
    // kernel is measured well clear of timer and frequency-ramp noise.
    let kernel_iters = env_usize("CYBERHD_BENCH_KERNEL_ITERS", 20_000);
    fn mix(seed: u64) -> u64 {
        // splitmix64 finalizer — deterministic word/float patterns.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let ka: Vec<f32> = (0..dim).map(|i| (mix(i as u64) % 2048) as f32 / 1024.0 - 1.0).collect();
    let kb: Vec<f32> =
        (0..dim).map(|i| (mix(i as u64 ^ 0xABCD) % 2048) as f32 / 1024.0 - 1.0).collect();
    let words = hdc::binary::words_for_dim(dim);
    let wa: Vec<u64> = (0..words).map(|i| mix(i as u64 ^ 0x1111)).collect();
    let wb: Vec<u64> = (0..words).map(|i| mix(i as u64 ^ 0x2222)).collect();
    // The scalar and dispatched passes of each kernel are interleaved
    // (A/B/A/B..., best-of per arm) so clock drift between sections cannot
    // bias the ratio, with one untimed warm-up pair ahead of the clock.
    let kernel_reps = reps.max(5);
    let dot_pass = |kernels: &hdc::Kernels| {
        let mut acc = 0.0f32;
        for _ in 0..kernel_iters {
            acc += kernels.dot(black_box(&ka), black_box(&kb));
        }
        black_box(acc)
    };
    let ham_pass = |kernels: &hdc::Kernels| {
        let mut acc = 0usize;
        for _ in 0..kernel_iters {
            acc += kernels.hamming_distance(black_box(&wa), black_box(&wb));
        }
        black_box(acc)
    };
    let best = |current: &mut Option<ThroughputReport>, report: ThroughputReport| {
        if current.is_none_or(|b| report.seconds < b.seconds) {
            *current = Some(report);
        }
    };
    let (mut kd_scalar, mut kd_dispatched, mut kh_scalar, mut kh_dispatched) =
        (None, None, None, None);
    dot_pass(scalar_kernels);
    dot_pass(dispatched);
    ham_pass(scalar_kernels);
    ham_pass(dispatched);
    for _ in 0..kernel_reps {
        best(
            &mut kd_scalar,
            ThroughputReport::measure(kernel_iters, || dot_pass(scalar_kernels)).1,
        );
        best(
            &mut kd_dispatched,
            ThroughputReport::measure(kernel_iters, || dot_pass(dispatched)).1,
        );
        best(
            &mut kh_scalar,
            ThroughputReport::measure(kernel_iters, || ham_pass(scalar_kernels)).1,
        );
        best(
            &mut kh_dispatched,
            ThroughputReport::measure(kernel_iters, || ham_pass(dispatched)).1,
        );
    }
    let kernel_dot_scalar = kd_scalar.expect("at least one kernel rep");
    let kernel_dot_dispatched = kd_dispatched.expect("at least one kernel rep");
    let kernel_ham_scalar = kh_scalar.expect("at least one kernel rep");
    let kernel_ham_dispatched = kh_dispatched.expect("at least one kernel rep");
    let roofline = hw_model::CpuModel::single_core_for_isa(isa);
    let kernel_dot_util =
        roofline.utilization(32, kernel_dot_dispatched.samples_per_second() * dim as f64);
    let kernel_ham_util =
        roofline.utilization(1, kernel_ham_dispatched.samples_per_second() * (words * 64) as f64);
    println!("  kernel isa              : {isa}");
    println!("  kernel dot scalar       : {kernel_dot_scalar}");
    println!("  kernel dot dispatched   : {kernel_dot_dispatched}");
    println!("  kernel hamming scalar   : {kernel_ham_scalar}");
    println!("  kernel hamming dispatched: {kernel_ham_dispatched}");
    println!(
        "  kernel dot dispatched-vs-scalar: {:.2}x",
        kernel_dot_dispatched.speedup_over(&kernel_dot_scalar)
    );
    println!(
        "  kernel hamming dispatched-vs-scalar: {:.2}x",
        kernel_ham_dispatched.speedup_over(&kernel_ham_scalar)
    );
    println!("  kernel dot roofline utilization ({isa}): {kernel_dot_util:.2}");
    println!("  kernel hamming roofline utilization ({isa}): {kernel_ham_util:.2}");

    // Workload-zoo arms: end-to-end `detect_batch` throughput of the
    // symbolic encoders (raw records → preprocessing → n-gram /
    // symbol-record encode → scoring), dense and 1-bit, on the sealed
    // Detector path the zoo examples deploy.  Scale via
    // `CYBERHD_BENCH_ZOO_SAMPLES` / `CYBERHD_BENCH_ZOO_DIM`.
    let zoo_samples = env_usize("CYBERHD_BENCH_ZOO_SAMPLES", 4_000);
    let zoo_dim = env_usize("CYBERHD_BENCH_ZOO_DIM", 2_048);
    let zoo_train = 1_200.min(zoo_samples.max(200));
    let zoo_arm = |builder: &DetectorBuilder, train: &Dataset, live: &[Vec<f32>]| {
        let detector = builder.train(train).expect("zoo training succeeds");
        timed_pass(live.len(), reps, || detector.detect_batch(live).unwrap()).0
    };
    let cycle_records = |train: &Dataset| -> Vec<Vec<f32>> {
        train.records().iter().cycle().take(zoo_samples).cloned().collect()
    };
    let lang_train = language_id::generate(zoo_train, 91).expect("language corpus");
    let lang_live = cycle_records(&lang_train);
    let lang_builder = Detector::builder()
        .encoder(EncoderKind::NGram)
        .ngram_order(3)
        .dimension(zoo_dim)
        .retrain_epochs(1)
        .regeneration_rate(0.0)
        .seed(0xB00C);
    let zoo_lang_dense = zoo_arm(&lang_builder, &lang_train, &lang_live);
    let zoo_lang_b1 =
        zoo_arm(&lang_builder.clone().quantize(BitWidth::B1), &lang_train, &lang_live);
    let tab_train =
        tabular_zoo::generate(&SyntheticConfig::new(zoo_train, 92)).expect("tabular corpus");
    let tab_live = cycle_records(&tab_train);
    let tab_builder = Detector::builder()
        .encoder(EncoderKind::SymbolRecord)
        .dimension(zoo_dim)
        .id_level_levels(16)
        .retrain_epochs(1)
        .regeneration_rate(0.0)
        .seed(0xB00D);
    let zoo_tab_dense = zoo_arm(&tab_builder, &tab_train, &tab_live);
    let zoo_tab_b1 = zoo_arm(&tab_builder.clone().quantize(BitWidth::B1), &tab_train, &tab_live);
    println!("  zoo language-id dense   : {zoo_lang_dense}");
    println!("  zoo language-id 1-bit   : {zoo_lang_b1}");
    println!("  zoo tabular dense       : {zoo_tab_dense}");
    println!("  zoo tabular 1-bit       : {zoo_tab_b1}");
    println!("  zoo lang 1-bit-vs-dense : {:.2}x", zoo_lang_b1.speedup_over(&zoo_lang_dense));
    println!("  zoo tab  1-bit-vs-dense : {:.2}x", zoo_tab_b1.speedup_over(&zoo_tab_dense));

    let arms = vec![
        snapshot::Arm::new("kernel_dot_scalar", kernel_dot_scalar),
        snapshot::Arm::new("kernel_dot_dispatched", kernel_dot_dispatched),
        snapshot::Arm::new("kernel_hamming_scalar", kernel_ham_scalar),
        snapshot::Arm::new("kernel_hamming_dispatched", kernel_ham_dispatched),
        snapshot::Arm::new("dense_serial", serial),
        snapshot::Arm::new("dense_batched", batched),
        snapshot::Arm::new("dense_batched_view", batched_view),
        snapshot::Arm::new("dense_per_class_scoring", per_class),
        snapshot::Arm::new("b1_serial", serial_q),
        snapshot::Arm::new("b1_batched_prefused", prefused_q),
        snapshot::Arm::new("b1_fused_sign_encode", fused_q),
        snapshot::Arm::new("zoo_language_id_dense", zoo_lang_dense),
        snapshot::Arm::new("zoo_language_id_b1", zoo_lang_b1),
        snapshot::Arm::new("zoo_tabular_dense", zoo_tab_dense),
        snapshot::Arm::new("zoo_tabular_b1", zoo_tab_b1),
    ];
    let speedups = vec![
        ("kernel_dot_dispatched_vs_scalar", kernel_dot_dispatched.speedup_over(&kernel_dot_scalar)),
        (
            "kernel_hamming_dispatched_vs_scalar",
            kernel_ham_dispatched.speedup_over(&kernel_ham_scalar),
        ),
        ("kernel_dot_roofline_utilization", kernel_dot_util),
        ("kernel_hamming_roofline_utilization", kernel_ham_util),
        ("dense_batched_vs_serial", batched.speedup_over(&serial)),
        ("dense_view_vs_rows", batched_view.speedup_over(&batched)),
        ("dense_interleaved_vs_per_class", batched_view.speedup_over(&per_class)),
        ("b1_batched_vs_serial", prefused_q.speedup_over(&serial_q)),
        ("b1_fused_vs_batched", fused_q.speedup_over(&prefused_q)),
        ("b1_fused_vs_serial", fused_q.speedup_over(&serial_q)),
        ("zoo_language_id_b1_vs_dense", zoo_lang_b1.speedup_over(&zoo_lang_dense)),
        ("zoo_tabular_b1_vs_dense", zoo_tab_b1.speedup_over(&zoo_tab_dense)),
    ];
    let params = [
        ("dim", dim as f64),
        ("classes", model.num_classes() as f64),
        ("samples", samples as f64),
        ("reps", reps as f64),
        ("threads", engine_threads() as f64),
        ("available_cores", available_cores() as f64),
        ("zoo_dim", zoo_dim as f64),
        ("zoo_samples", zoo_samples as f64),
    ];
    let labels = [("kernel_isa", isa)];
    match snapshot::write("BENCH_infer.json", "inference", &labels, &params, &arms, &speedups) {
        Ok(path) => println!("  snapshot: {}", path.display()),
        Err(err) => eprintln!("  snapshot write failed: {err}"),
    }
}

criterion_group!(benches, bench_single_flow, bench_batched_vs_serial);
criterion_main!(benches);

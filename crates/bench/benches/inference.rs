//! Inference-latency benchmarks: per-flow classification cost of CyberHD at
//! 0.5k vs. baselineHD at 4k (the 15x inference gap of Fig. 4), plus the
//! quantized deployment path at 8 and 1 bit.

use bench::prepare_dataset;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyberhd::CyberHdTrainer;
use hdc::BitWidth;
use nids_data::DatasetKind;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let data = prepare_dataset(DatasetKind::NslKdd, 1_200, 21).expect("dataset generation");
    let query = data.test_x[0].clone();

    let mut group = c.benchmark_group("single_flow_inference");
    for (label, dimension, regeneration) in
        [("cyberhd_512", 512usize, 0.2f32), ("baseline_4096", 4096, 0.0)]
    {
        let config =
            bench::cyberhd_config(&data, dimension, regeneration, 3, 2).expect("valid config");
        let model = CyberHdTrainer::new(config)
            .unwrap()
            .fit(&data.train_x, &data.train_y)
            .expect("training succeeds");
        group.bench_with_input(BenchmarkId::from_parameter(label), &model, |bencher, model| {
            bencher.iter(|| black_box(model.predict(&query).unwrap()))
        });
    }
    group.finish();

    // Quantized deployment path.
    let config = bench::cyberhd_config(&data, 512, 0.2, 3, 3).expect("valid config");
    let model = CyberHdTrainer::new(config)
        .unwrap()
        .fit(&data.train_x, &data.train_y)
        .expect("training succeeds");
    let mut group = c.benchmark_group("quantized_single_flow_inference");
    for width in [BitWidth::B8, BitWidth::B1] {
        let deployed = model.quantize(width);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}")),
            &deployed,
            |bencher, deployed| bencher.iter(|| black_box(deployed.predict(&query).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);

//! Micro-benchmarks of the HDC substrate kernels: similarity, bundling,
//! quantization and binary (1-bit) operations as a function of the
//! hypervector dimensionality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc::rng::HdcRng;
use hdc::{BinaryHypervector, BitWidth, Hypervector, QuantizedHypervector};
use std::hint::black_box;

fn random_hv(dim: usize, seed: u64) -> Hypervector {
    let mut rng = HdcRng::seed_from(seed);
    Hypervector::from_fn(dim, |_| rng.standard_normal() as f32)
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine_similarity");
    for &dim in &[512usize, 4096, 10_000] {
        let a = random_hv(dim, 1);
        let b = random_hv(dim, 2);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(a.cosine(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_bundling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundle_scaled_in_place");
    for &dim in &[512usize, 4096] {
        let sample = random_hv(dim, 3);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, _| {
            let mut accumulator = Hypervector::zeros(dim);
            bencher.iter(|| accumulator.bundle_scaled_in_place(black_box(&sample), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_512");
    let hv = random_hv(512, 4);
    for width in [BitWidth::B32, BitWidth::B8, BitWidth::B1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}")),
            &width,
            |bencher, &width| {
                bencher.iter(|| QuantizedHypervector::quantize(black_box(&hv), width))
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("quantized_cosine_4096");
    let a = random_hv(4096, 5);
    let b = random_hv(4096, 6);
    for width in [BitWidth::B8, BitWidth::B1] {
        let qa = QuantizedHypervector::quantize(&a, width);
        let qb = QuantizedHypervector::quantize(&b, width);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}")),
            &width,
            |bencher, _| bencher.iter(|| black_box(qa.cosine(&qb).unwrap())),
        );
    }
    group.finish();
}

fn bench_binary_ops(c: &mut Criterion) {
    let mut rng = HdcRng::seed_from(7);
    let a = BinaryHypervector::random(10_000, &mut rng);
    let b = BinaryHypervector::random(10_000, &mut rng);
    c.bench_function("binary_hamming_10000", |bencher| {
        bencher.iter(|| black_box(a.hamming_distance(&b).unwrap()))
    });
    c.bench_function("binary_xor_bind_10000", |bencher| {
        bencher.iter(|| black_box(a.bind(&b).unwrap()))
    });
}

criterion_group!(benches, bench_similarity, bench_bundling, bench_quantization, bench_binary_ops);
criterion_main!(benches);

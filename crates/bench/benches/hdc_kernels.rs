//! Micro-benchmarks of the HDC substrate kernels: similarity, bundling,
//! quantization and binary (1-bit) operations as a function of the
//! hypervector dimensionality, plus per-kernel scalar-vs-dispatched arms
//! for the runtime SIMD dispatch layer (`hdc::kernel`) and a CI smoke
//! assertion that the dispatched Hamming path never loses to forced
//! scalar (equality is allowed when dispatch resolves to scalar).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eval::timing::ThroughputReport;
use hdc::rng::HdcRng;
use hdc::{BinaryHypervector, BitWidth, Hypervector, Kernels, QuantizedHypervector};
use std::hint::black_box;

fn random_hv(dim: usize, seed: u64) -> Hypervector {
    let mut rng = HdcRng::seed_from(seed);
    Hypervector::from_fn(dim, |_| rng.standard_normal() as f32)
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine_similarity");
    for &dim in &[512usize, 4096, 10_000] {
        let a = random_hv(dim, 1);
        let b = random_hv(dim, 2);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(a.cosine(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_bundling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundle_scaled_in_place");
    for &dim in &[512usize, 4096] {
        let sample = random_hv(dim, 3);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bencher, _| {
            let mut accumulator = Hypervector::zeros(dim);
            bencher.iter(|| accumulator.bundle_scaled_in_place(black_box(&sample), 0.1).unwrap())
        });
    }
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_512");
    let hv = random_hv(512, 4);
    for width in [BitWidth::B32, BitWidth::B8, BitWidth::B1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}")),
            &width,
            |bencher, &width| {
                bencher.iter(|| QuantizedHypervector::quantize(black_box(&hv), width))
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("quantized_cosine_4096");
    let a = random_hv(4096, 5);
    let b = random_hv(4096, 6);
    for width in [BitWidth::B8, BitWidth::B1] {
        let qa = QuantizedHypervector::quantize(&a, width);
        let qb = QuantizedHypervector::quantize(&b, width);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}")),
            &width,
            |bencher, _| bencher.iter(|| black_box(qa.cosine(&qb).unwrap())),
        );
    }
    group.finish();
}

fn bench_binary_ops(c: &mut Criterion) {
    let mut rng = HdcRng::seed_from(7);
    let a = BinaryHypervector::random(10_000, &mut rng);
    let b = BinaryHypervector::random(10_000, &mut rng);
    c.bench_function("binary_hamming_10000", |bencher| {
        bencher.iter(|| black_box(a.hamming_distance(&b).unwrap()))
    });
    c.bench_function("binary_xor_bind_10000", |bencher| {
        bencher.iter(|| black_box(a.bind(&b).unwrap()))
    });
}

/// Per-kernel scalar-vs-dispatched criterion arms over the `hdc::kernel`
/// dispatch table.  Both arms call through the same fn-pointer table type,
/// so the comparison isolates the ISA difference, not calling convention.
fn bench_kernel_dispatch(c: &mut Criterion) {
    let dispatched = hdc::kernel::active();
    let scalar = Kernels::scalar();
    println!("kernel_dispatch: selected isa = {}", dispatched.isa());

    let dim = 10_000usize;
    let a = random_hv(dim, 11);
    let b = random_hv(dim, 12);
    let mut rng = HdcRng::seed_from(13);
    let wa = BinaryHypervector::random(dim, &mut rng);
    let wb = BinaryHypervector::random(dim, &mut rng);
    let arms: [(&str, &'static Kernels); 2] = [("scalar", scalar), ("dispatched", dispatched)];

    let mut group = c.benchmark_group("kernel_dot_10000");
    for (label, kernels) in arms {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kernels, |bencher, k| {
            bencher.iter(|| black_box(k.dot(a.as_slice(), b.as_slice())))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_hamming_10000");
    for (label, kernels) in arms {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kernels, |bencher, k| {
            bencher.iter(|| black_box(k.hamming_distance(wa.as_words(), wb.as_words())))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_axpy_10000");
    for (label, kernels) in arms {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kernels, |bencher, k| {
            let mut out = vec![0.0f32; dim];
            bencher.iter(|| k.axpy(black_box(&mut out), 0.05, black_box(a.as_slice())))
        });
    }
    group.finish();

    // The sign kernels work one packed word (≤ 64 floats) at a time, the
    // shape `Encoder::encode_signs_into` feeds them.
    let chunk: Vec<f32> = a.as_slice()[..64].to_vec();
    let mut group = c.benchmark_group("kernel_sign_quadrant_word");
    for (label, kernels) in arms {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kernels, |bencher, k| {
            bencher.iter(|| black_box(k.sign_quadrant_word(black_box(&chunk), 1e-3)))
        });
    }
    group.finish();
    let mut group = c.benchmark_group("kernel_sign_pack_word");
    for (label, kernels) in arms {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kernels, |bencher, k| {
            bencher.iter(|| black_box(k.sign_pack_word(black_box(&chunk))))
        });
    }
    group.finish();

    // CI smoke: the dispatched Hamming path must not lose to forced scalar.
    // A 0.9 noise floor absorbs timer jitter at smoke scale; when dispatch
    // resolves to scalar the two arms are the same table and the ratio sits
    // at ~1.0 by construction.
    // Scalar/dispatched passes interleaved (best-of per arm, one untimed
    // warm-up pair) so clock drift between sections cannot bias the ratio.
    let reps = bench::env_usize("CYBERHD_BENCH_REPS", 5);
    let iters = bench::env_usize("CYBERHD_BENCH_KERNEL_ITERS", 20_000);
    let ham_pass = |kernels: &hdc::Kernels| {
        let mut acc = 0usize;
        for _ in 0..iters {
            acc += kernels.hamming_distance(black_box(wa.as_words()), black_box(wb.as_words()));
        }
        black_box(acc)
    };
    ham_pass(scalar);
    ham_pass(dispatched);
    let (mut ham_scalar, mut ham_dispatched) = (None::<ThroughputReport>, None::<ThroughputReport>);
    for _ in 0..reps.max(1) {
        let (_, r) = ThroughputReport::measure(iters, || ham_pass(scalar));
        if ham_scalar.is_none_or(|b| r.seconds < b.seconds) {
            ham_scalar = Some(r);
        }
        let (_, r) = ThroughputReport::measure(iters, || ham_pass(dispatched));
        if ham_dispatched.is_none_or(|b| r.seconds < b.seconds) {
            ham_dispatched = Some(r);
        }
    }
    let ham_scalar = ham_scalar.expect("at least one rep");
    let ham_dispatched = ham_dispatched.expect("at least one rep");
    let ratio = ham_dispatched.speedup_over(&ham_scalar);
    println!(
        "kernel_dispatch: hamming dispatched-vs-scalar = {ratio:.2}x (isa = {})",
        dispatched.isa()
    );
    assert!(
        ratio >= 0.9,
        "dispatched Hamming ({}) slower than scalar: {ratio:.2}x",
        dispatched.isa()
    );
}

criterion_group!(
    benches,
    bench_similarity,
    bench_bundling,
    bench_quantization,
    bench_binary_ops,
    bench_kernel_dispatch
);
criterion_main!(benches);

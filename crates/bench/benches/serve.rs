//! Serving-layer benchmarks: what the micro-batcher buys over per-flow
//! serving, and what the `max_delay` watermark costs in tail latency.
//!
//! Two measurements, both at the engine's reference configuration
//! (dim=10k, 4 classes, NSL-KDD-shaped flows; scale via
//! `CYBERHD_SERVE_DIM` / `CYBERHD_SERVE_SAMPLES` / `CYBERHD_SERVE_REPS`):
//!
//! 1. **Single-submit throughput** — flows pushed one at a time through
//!    [`ServeEngine::submit`] (the deployment arrival pattern) against the
//!    naive per-flow `detect_with` loop a caller without the engine would
//!    write, plus the one-shot `detect_batch` ceiling.  The engine must
//!    hold ≥ 5× over the naive loop (asserted here at full scale).
//! 2. **Flush latency vs `max_delay`** — a paced submit→poll loop per
//!    `max_delay` setting, reporting p50/p99 submit→verdict latency and
//!    throughput from the engine's own [`LatencyHistogram`]-backed stats —
//!    the README's throughput/latency trade-off table.
//!
//! A third measurement covers the drift-adaptive lane:
//!
//! 3. **Adaptive recovery** — the abrupt-shift scenario
//!    ([`bench::scenario`]) replayed through the frozen engine and an
//!    [`cyberhd::serve::AdaptiveLane`] in lock-step (scale via
//!    `CYBERHD_SERVE_ADAPTIVE_DIM`), reporting the post-drift accuracy
//!    delta, the automatic regeneration/republish count and the
//!    reseal+swap latency.
//!
//! And a fourth covers the scale-out path:
//!
//! 4. **Sharded many-tenant serving** — ≥ 256 tenants
//!    (`CYBERHD_SERVE_TENANTS`) under a seeded, bit-reproducible Zipf
//!    traffic schedule ([`bench::zipf`]), pushed by partitioned submitter
//!    threads through a [`ShardedServeEngine`] at shard counts
//!    {1, 2, 4, 8} (scale via `CYBERHD_SERVE_SHARDED_FLOWS` /
//!    `CYBERHD_SERVE_SHARDED_DIM`).  Determinism (schedule regeneration
//!    equality + per-tenant verdict parity with the `detect_batch`
//!    oracle) is asserted on every run; near-linear shard scaling is
//!    asserted only when more than one core is available.
//!
//! Emits the `BENCH_serve.json` snapshot at the workspace root and
//! asserts the determinism contract (served verdicts == `detect_batch`
//! oracle) at bench scale, where flush boundaries actually vary.

use bench::scenario::{abrupt_shift, replay, ReplayConfig};
use bench::zipf::ZipfSampler;
use bench::{env_usize, limited_class_dataset, snapshot, timed_pass};
use criterion::{criterion_group, criterion_main, Criterion};
use cyberhd::serve::shard::{ShardConfig, ShardedServeEngine};
use cyberhd::serve::{DetectorRegistry, ServeConfig, ServeEngine, Ticket};
use cyberhd::{Detector, Verdict};
use hdc::parallel::{available_cores, engine_threads};
use nids_data::DatasetKind;
use std::sync::Arc;
use std::time::Duration;

/// Submits every flow through the engine one at a time, flushes the tail
/// and collects every verdict — the serving equivalent of one batch pass.
fn serve_pass(engine: &ServeEngine, flows: &[Vec<f32>]) -> Vec<Verdict> {
    let tickets: Vec<_> = flows
        .iter()
        .map(|record| engine.submit("bench", record).expect("registered tenant, sound flow"))
        .collect();
    engine.flush("bench").expect("registered tenant");
    tickets.iter().map(|t| engine.take(t).expect("flushed")).collect()
}

fn bench_serve(c: &mut Criterion) {
    // Criterion's calibrated micro-sampling cannot hold a full serve pass
    // at default scale; the heavy passes are timed directly (see the
    // inference bench for the same convention).
    let _ = c;
    let dim = env_usize("CYBERHD_SERVE_DIM", 10_000);
    let samples = env_usize("CYBERHD_SERVE_SAMPLES", 10_000);
    let reps = env_usize("CYBERHD_SERVE_REPS", 2);

    // A small training corpus keeps model construction cheap at huge dims
    // (the trainer materializes a samples × dim encoding matrix); the
    // served stream cycles the same flows up to `samples`.
    let dataset =
        limited_class_dataset(DatasetKind::NslKdd, 4, 1_000, 29).expect("dataset generation");
    let detector = Detector::builder()
        .dimension(dim)
        .retrain_epochs(1)
        .regeneration_rate(0.0)
        .learning_rate(0.05)
        .seed(17)
        .train(&dataset)
        .expect("training succeeds");
    let flows: Vec<Vec<f32>> = dataset.records().iter().cycle().take(samples).cloned().collect();

    println!(
        "\nserve_single_submit: dim={dim}, classes={}, samples={samples}, reps={reps}",
        detector.num_classes()
    );

    let fresh_engine = |config: ServeConfig| {
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("bench", detector.clone()).expect("fresh registry");
        ServeEngine::new(registry, config).expect("valid config")
    };

    // Naive per-flow serving: what a caller without the micro-batcher
    // writes — one detect per arriving flow, reusing scratch.
    let mut scratch = detector.scratch();
    let (naive, _) = timed_pass(samples, reps, || {
        flows
            .iter()
            .map(|record| detector.detect_with(record, &mut scratch).unwrap())
            .collect::<Vec<_>>()
    });

    // Micro-batched serving at the default watermarks; the whole
    // submit→flush→take cycle is inside the timed region.
    let engine =
        fresh_engine(ServeConfig { queue_capacity: samples.max(64), ..ServeConfig::default() });
    let (served, serve_verdicts) = timed_pass(samples, reps, || serve_pass(&engine, &flows));

    // The ceiling: the caller already holds the whole batch.
    let (batch, batch_verdicts) =
        timed_pass(samples, reps, || detector.detect_batch(&flows).unwrap());

    println!("  naive per-flow detect : {naive}");
    println!("  serve single-submit   : {served}");
    println!("  detect_batch ceiling  : {batch}");
    println!("  serve-vs-naive  speedup: {:.2}x", served.speedup_over(&naive));
    println!("  serve-vs-batch  fraction: {:.2}", batch.speedup_over(&served));

    // Determinism contract at bench scale: the served verdicts are the
    // detect_batch oracle, bit for bit.
    assert_eq!(serve_verdicts, batch_verdicts, "served verdicts diverged from detect_batch");

    // At full scale the engine must clear the 5x acceptance bar; smoke
    // runs at reduced scale skip the assertion (watermark amortization
    // needs real batches).
    let serve_speedup = served.speedup_over(&naive);
    if samples >= 10_000 && dim >= 10_000 {
        assert!(
            serve_speedup >= 5.0,
            "single-submit serving must hold >= 5x over the naive loop, got {serve_speedup:.2}x"
        );
    }

    // Flush-latency percentiles vs the max_delay watermark, under a paced
    // arrival stream (5k flows/s — thin enough that the batch watermark
    // never fires and the delay watermark picks the batch size).  The
    // engine stamps submit time itself, so the percentiles measure real
    // submit→verdict waiting including the batch's own scoring.
    let mut arms = vec![
        snapshot::Arm::new("naive_per_flow_detect", naive),
        snapshot::Arm::new("serve_single_submit", served),
        snapshot::Arm::new("detect_batch_ceiling", batch),
    ];
    let mut extra_params: Vec<(String, f64)> = Vec::new();
    let paced = samples.min(2_000);
    let arrival_interval = Duration::from_micros(200);
    println!(
        "\nflush latency vs max_delay ({paced} flows arriving every \
         {arrival_interval:?}, max_batch uncapped):"
    );
    for delay_us in [500u64, 2_000, 8_000] {
        let engine = fresh_engine(ServeConfig {
            max_batch: paced,
            max_delay: Duration::from_micros(delay_us),
            queue_capacity: paced,
        });
        let (report, _) = timed_pass(paced, 1, || {
            let start = std::time::Instant::now();
            let tickets: Vec<_> = flows[..paced]
                .iter()
                .enumerate()
                .map(|(i, record)| {
                    // Spin until this flow's arrival time (sleep granularity
                    // is too coarse for a 200us schedule).
                    let due = start + arrival_interval * i as u32;
                    while std::time::Instant::now() < due {
                        std::hint::spin_loop();
                    }
                    let ticket = engine.submit("bench", record).unwrap();
                    engine.poll();
                    ticket
                })
                .collect();
            engine.flush("bench").unwrap();
            tickets.iter().map(|t| engine.take(t).unwrap()).collect::<Vec<_>>()
        });
        let stats = engine.stats("bench").expect("tenant served traffic");
        let p50_ms = stats.p50_latency.as_secs_f64() * 1e3;
        let p99_ms = stats.p99_latency.as_secs_f64() * 1e3;
        println!(
            "  max_delay {:>5}us: p50 {:.3} ms, p99 {:.3} ms, mean batch {:.1}, {:.0} flows/s",
            delay_us,
            p50_ms,
            p99_ms,
            stats.mean_batch_size(),
            report.samples_per_second()
        );
        arms.push(snapshot::Arm::new(&format!("serve_paced_delay_{delay_us}us"), report));
        extra_params.push((format!("p50_ms_delay_{delay_us}us"), p50_ms));
        extra_params.push((format!("p99_ms_delay_{delay_us}us"), p99_ms));
        extra_params.push((format!("mean_batch_delay_{delay_us}us"), stats.mean_batch_size()));
    }

    // Drift-adaptive serving: the abrupt-shift scenario through the full
    // frozen + adaptive stack.  Everything is seeded, so the recovery
    // numbers are exact reproductions, not trends.
    let adaptive_dim = env_usize("CYBERHD_SERVE_ADAPTIVE_DIM", 1024);
    let spec = abrupt_shift(DatasetKind::NslKdd);
    let scenario_flows: usize = spec.phases.iter().map(|p| p.samples).sum();
    println!(
        "\nadaptive_recovery: scenario {} at dim={adaptive_dim}, {scenario_flows} flows",
        spec.name
    );
    let config = ReplayConfig { dimension: adaptive_dim, ..ReplayConfig::default() };
    let (adaptive_report, outcome) =
        timed_pass(scenario_flows, 1, || replay(&spec, &config).expect("scenario replay"));
    assert!(
        outcome.frozen_bit_identical,
        "frozen lanes must stay bit-identical to the detect_batch oracle under drift"
    );
    let swap_p50_ms = outcome.adaptive.p50_publish_latency.as_secs_f64() * 1e3;
    let swap_max_ms = outcome.adaptive.max_publish_latency.as_secs_f64() * 1e3;
    println!("  adaptive replay        : {adaptive_report}");
    println!(
        "  post-drift accuracy    : adaptive {:.3} vs frozen {:.3} (delta {:+.3}) over {:?}",
        outcome.adaptive_recovery_accuracy,
        outcome.frozen_recovery_accuracy,
        outcome.recovery_delta(),
        outcome.recovery_window,
    );
    println!(
        "  adaptation             : {} trips -> {} regenerations ({} dims), {} publishes \
         (registry v{}), swap p50 {swap_p50_ms:.3} ms max {swap_max_ms:.3} ms",
        outcome.adaptive.monitor_trips,
        outcome.adaptive.adaptations,
        outcome.adaptive.regenerated_dimensions,
        outcome.adaptive.publishes,
        outcome.final_registry_version,
    );
    if adaptive_dim >= 512 {
        assert!(
            outcome.recovery_delta() >= 0.10,
            "the adaptive lane must recover >= 10 accuracy points over the frozen artifact \
             post-drift, got {:+.3}",
            outcome.recovery_delta()
        );
        assert!(
            outcome.adaptive.publishes >= 1,
            "at least one automatic regeneration + registry swap must fire mid-stream"
        );
    }
    arms.push(snapshot::Arm::new("adaptive_recovery", adaptive_report));
    extra_params.push(("adaptive_dim".into(), adaptive_dim as f64));
    extra_params.push(("adaptive_post_drift_acc".into(), outcome.adaptive_recovery_accuracy));
    extra_params.push(("frozen_post_drift_acc".into(), outcome.frozen_recovery_accuracy));
    extra_params.push(("adaptive_recovery_delta".into(), outcome.recovery_delta()));
    extra_params.push(("adaptive_trips".into(), outcome.adaptive.monitor_trips as f64));
    extra_params.push(("adaptive_publishes".into(), outcome.adaptive.publishes as f64));
    extra_params.push(("swap_p50_ms".into(), swap_p50_ms));
    extra_params.push(("swap_max_ms".into(), swap_max_ms));

    // Sharded many-tenant serving: a fixed seeded Zipf schedule over the
    // tenant fleet, replayed at every shard count.  The timed region is
    // the full serve pass (partitioned-thread submit -> flush_all ->
    // drain), so the arm measures end-to-end submit throughput.
    let tenant_count = env_usize("CYBERHD_SERVE_TENANTS", 256);
    let sharded_flows = env_usize("CYBERHD_SERVE_SHARDED_FLOWS", 20_000);
    let sharded_dim = env_usize("CYBERHD_SERVE_SHARDED_DIM", 2_048);
    let sharded_detector = Detector::builder()
        .dimension(sharded_dim)
        .retrain_epochs(1)
        .regeneration_rate(0.0)
        .learning_rate(0.05)
        .seed(17)
        .train(&dataset)
        .expect("training succeeds");
    let tenant_names: Vec<String> = (0..tenant_count).map(|t| format!("edge-{t:04}")).collect();
    let zipf = ZipfSampler::new(tenant_count, 1.1);
    let schedule = zipf.schedule(sharded_flows, 91);
    assert_eq!(
        schedule,
        zipf.schedule(sharded_flows, 91),
        "the Zipf traffic schedule must regenerate bit-for-bit from its seed"
    );

    // Per-tenant flow sequences (cycling the corpus) and their oracle are
    // functions of the schedule alone — fixed across shard counts.
    let mut tenant_records: Vec<Vec<usize>> = vec![Vec::new(); tenant_count];
    for &t in &schedule {
        let next = tenant_records[t].len();
        tenant_records[t].push(next % dataset.len());
    }
    let sharded_oracle: Vec<Vec<Verdict>> = tenant_records
        .iter()
        .map(|records| {
            if records.is_empty() {
                return Vec::new();
            }
            let flows: Vec<Vec<f32>> =
                records.iter().map(|&r| dataset.records()[r].clone()).collect();
            sharded_detector.detect_batch(&flows).expect("oracle pass")
        })
        .collect();

    let submitters = engine_threads().clamp(1, 8);
    println!(
        "\nserve_sharded: {tenant_count} tenants (Zipf 1.1), {sharded_flows} flows, \
         dim={sharded_dim}, {submitters} submitter threads, {} cores",
        available_cores()
    );
    let mut sharded_rates: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let registry = Arc::new(DetectorRegistry::new());
        for tenant in &tenant_names {
            registry.register(tenant, sharded_detector.clone()).expect("fresh registry");
        }
        let engine = ShardedServeEngine::new(
            Arc::clone(&registry),
            ShardConfig {
                shards,
                serve: ServeConfig {
                    max_batch: 32,
                    max_delay: Duration::from_millis(2),
                    queue_capacity: sharded_flows.max(64),
                },
                ..ShardConfig::default()
            },
        )
        .expect("valid shard config");

        let (report, served) = timed_pass(sharded_flows, 1, || {
            // Tenants are partitioned over the submitter threads (tenant
            // index mod thread count), so every tenant's submission order
            // is deterministic regardless of thread interleaving.
            let mut tickets: Vec<Vec<Ticket>> = vec![Vec::new(); tenant_count];
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..submitters)
                    .map(|worker| {
                        let engine = &engine;
                        let schedule = &schedule;
                        let tenant_names = &tenant_names;
                        let dataset = &dataset;
                        scope.spawn(move || {
                            let mut mine: Vec<Vec<Ticket>> = vec![Vec::new(); tenant_count];
                            let mut cursor = vec![0usize; tenant_count];
                            for &t in schedule {
                                let record = cursor[t] % dataset.len();
                                cursor[t] += 1;
                                if t % submitters != worker {
                                    continue;
                                }
                                let ticket = engine
                                    .submit(&tenant_names[t], &dataset.records()[record])
                                    .expect("registered tenant, sound flow");
                                mine[t].push(ticket);
                            }
                            mine
                        })
                    })
                    .collect();
                for handle in handles {
                    for (t, mut own) in handle.join().expect("submitter").into_iter().enumerate() {
                        tickets[t].append(&mut own);
                    }
                }
            });
            engine.flush_all();
            tickets
                .iter()
                .map(|tickets| {
                    tickets.iter().map(|t| engine.take(t).expect("flushed")).collect::<Vec<_>>()
                })
                .collect::<Vec<Vec<Verdict>>>()
        });

        // Determinism through sharding, flusher threads and submitter
        // partitioning: every tenant's verdicts are the oracle, bit for
        // bit.
        assert_eq!(
            served, sharded_oracle,
            "sharded verdicts diverged from the detect_batch oracle at {shards} shards"
        );
        let fleet = engine.fleet_stats().expect("fleet served traffic");
        println!(
            "  shards {shards}: {report} (fleet p50 {:?} p99 {:?}, mean batch {:.1})",
            fleet.p50_latency,
            fleet.p99_latency,
            fleet.mean_batch_size()
        );
        arms.push(snapshot::Arm::new(&format!("serve_sharded_shards_{shards}"), report));
        sharded_rates.push((shards, report.samples_per_second()));
    }
    let single_shard_rate = sharded_rates[0].1;
    let (best_shards, best_rate) =
        sharded_rates.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1)).expect("four shard arms");
    let sharded_scaling = best_rate / single_shard_rate;
    println!(
        "  best: {best_shards} shards at {sharded_scaling:.2}x the single-shard rate \
         (scaling asserted only on multi-core hosts)"
    );
    // On a single-core host the shard sweep measures overhead, not
    // scaling; the conservative near-linear bar only applies when the
    // flusher and submitter threads can actually run in parallel.
    if available_cores() > 1 && sharded_flows >= 10_000 {
        assert!(
            sharded_scaling >= 1.3,
            "multi-shard serving must beat one shard by >= 1.3x on a multi-core host, got \
             {sharded_scaling:.2}x"
        );
    }
    extra_params.push(("tenants".into(), tenant_count as f64));
    extra_params.push(("sharded_flows".into(), sharded_flows as f64));
    extra_params.push(("sharded_dim".into(), sharded_dim as f64));
    extra_params.push(("cores".into(), available_cores() as f64));
    extra_params.push(("sharded_submitters".into(), submitters as f64));

    let speedups = vec![
        ("serve_vs_naive", serve_speedup),
        ("batch_ceiling_vs_serve", batch.speedup_over(&served)),
        ("serve_vs_batch_fraction", served.speedup_over(&batch)),
        ("sharded_best_vs_1_shard", sharded_scaling),
    ];
    let mut params: Vec<(&str, f64)> = vec![
        ("dim", dim as f64),
        ("classes", detector.num_classes() as f64),
        ("samples", samples as f64),
        ("reps", reps as f64),
        ("threads", engine_threads() as f64),
        ("available_cores", available_cores() as f64),
        ("max_batch", ServeConfig::default().max_batch as f64),
    ];
    params.extend(extra_params.iter().map(|(k, v)| (k.as_str(), *v)));
    let labels = [("kernel_isa", hdc::kernel::active().isa())];
    match snapshot::write("BENCH_serve.json", "serve", &labels, &params, &arms, &speedups) {
        Ok(path) => println!("  snapshot: {}", path.display()),
        Err(err) => eprintln!("  snapshot write failed: {err}"),
    }
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);

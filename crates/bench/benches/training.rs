//! End-to-end training benchmarks: CyberHD (D = 0.5k, with regeneration)
//! vs. baselineHD at 0.5k and 4k on a small NSL-KDD-shaped corpus.
//!
//! These are the kernels behind the paper's Fig. 4 training-time comparison;
//! the full figure (all datasets, all models, larger corpora) is produced by
//! `cargo run -p bench --bin fig4 --release`.

use bench::{prepare_dataset, ExperimentScale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyberhd::CyberHdTrainer;
use nids_data::DatasetKind;
use std::hint::black_box;

fn bench_hdc_training(c: &mut Criterion) {
    let _ = ExperimentScale::Quick;
    let data = prepare_dataset(DatasetKind::NslKdd, 1_500, 11).expect("dataset generation");
    let mut group = c.benchmark_group("hdc_training_1500_flows");
    group.sample_size(10);
    for (label, dimension, regeneration) in [
        ("cyberhd_512_regen", 512usize, 0.2f32),
        ("baseline_512", 512, 0.0),
        ("baseline_2048", 2048, 0.0),
    ] {
        let config = bench::cyberhd_config(&data, dimension, regeneration, 5, 1)
            .expect("valid configuration");
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |bencher, config| {
            bencher.iter(|| {
                let trainer = CyberHdTrainer::new(config.clone()).unwrap();
                black_box(trainer.fit(&data.train_x, &data.train_y).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hdc_training);
criterion_main!(benches);

//! Training benchmarks.
//!
//! Two layers:
//!
//! 1. The paper-facing `hdc_training_1500_flows` criterion group (CyberHD
//!    0.5k with regeneration vs. baselineHD at 0.5k/2k) — the kernels behind
//!    Fig. 4; the full figure is produced by `cargo run -p bench --bin fig4
//!    --release`.
//! 2. The engine-facing `minibatch_vs_serial` comparison: `fit` under the
//!    classic serial adaptive rule (`batch_size = 1`, today's bit-exact
//!    default) against the deterministic mini-batch engine at one worker
//!    and at the machine's thread count.  Scale is controlled by
//!    `CYBERHD_TRAIN_DIM` / `CYBERHD_TRAIN_SAMPLES` /
//!    `CYBERHD_TRAIN_EPOCHS` / `CYBERHD_TRAIN_BATCH` /
//!    `CYBERHD_TRAIN_REPS` (defaults 10_000 / 10_000 / 5 / 256 / 1); CI
//!    smoke runs shrink them.  Throughput is reported in **sample visits
//!    per second** (`samples × (epochs + 1)` adaptive visits per `fit`),
//!    and the run writes the `BENCH_train.json` snapshot at the workspace
//!    root.

use bench::{env_usize, prepare_dataset, snapshot, ExperimentScale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyberhd::{CyberHdConfig, CyberHdTrainer, TrainingBatch};
use eval::ThroughputReport;
use hdc::parallel::{available_cores, engine_threads};
use nids_data::DatasetKind;
use std::hint::black_box;

fn bench_hdc_training(c: &mut Criterion) {
    let _ = ExperimentScale::Quick;
    let data = prepare_dataset(DatasetKind::NslKdd, 1_500, 11).expect("dataset generation");
    let mut group = c.benchmark_group("hdc_training_1500_flows");
    group.sample_size(10);
    for (label, dimension, regeneration) in [
        ("cyberhd_512_regen", 512usize, 0.2f32),
        ("baseline_512", 512, 0.0),
        ("baseline_2048", 2048, 0.0),
    ] {
        let config = bench::cyberhd_config(&data, dimension, regeneration, 5, 1)
            .expect("valid configuration");
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |bencher, config| {
            bencher.iter(|| {
                let trainer = CyberHdTrainer::new(config.clone()).unwrap();
                black_box(trainer.fit(&data.train_x, &data.train_y).unwrap())
            })
        });
    }
    group.finish();
}

/// Best-of-`reps` wall-clock throughput of one full `fit`, measured in
/// sample visits (`samples × passes`), plus the last fitted model (so the
/// determinism assertion reuses the timed work).
fn timed_fit(
    visits: usize,
    reps: usize,
    mut f: impl FnMut() -> cyberhd::CyberHdModel,
) -> (ThroughputReport, cyberhd::CyberHdModel) {
    let mut best: Option<ThroughputReport> = None;
    let mut last: Option<cyberhd::CyberHdModel> = None;
    for _ in 0..reps.max(1) {
        let (model, report) = ThroughputReport::measure(visits, &mut f);
        last = Some(black_box(model));
        if best.is_none_or(|b| report.seconds < b.seconds) {
            best = Some(report);
        }
    }
    (best.expect("at least one rep"), last.expect("at least one rep"))
}

/// The engine comparison: serial adaptive epochs vs. the deterministic
/// mini-batch engine, at dim×samples training scale.
fn bench_minibatch_vs_serial(c: &mut Criterion) {
    // The heavy passes are timed directly (one default-scale `fit` is far
    // too large for calibrated micro-sampling); criterion stays in the loop
    // for its reporting conventions.
    let _ = c;
    let dim = env_usize("CYBERHD_TRAIN_DIM", 10_000);
    let samples = env_usize("CYBERHD_TRAIN_SAMPLES", 10_000);
    let epochs = env_usize("CYBERHD_TRAIN_EPOCHS", 5);
    let batch = env_usize("CYBERHD_TRAIN_BATCH", 256);
    let reps = env_usize("CYBERHD_TRAIN_REPS", 1);
    let threads = engine_threads();

    // NSL-KDD-shaped synthetic traffic, restricted to 4 classes (the
    // engine's reference configuration).
    let data = prepare_dataset(DatasetKind::NslKdd, samples + 400, 29).expect("dataset generation");
    let classes = 4usize;
    let (train_x, train_y): (Vec<Vec<f32>>, Vec<usize>) = data
        .train_x
        .iter()
        .chain(data.test_x.iter())
        .zip(data.train_y.iter().chain(data.test_y.iter()))
        .filter(|(_, &y)| y < classes)
        .map(|(x, &y)| (x.clone(), y))
        .unzip();
    let n = samples.min(train_x.len());
    let (train_x, train_y) = (&train_x[..n], &train_y[..n]);

    let config_with = |batch: TrainingBatch| -> CyberHdConfig {
        CyberHdConfig::builder(data.input_width, classes)
            .dimension(dim)
            .retrain_epochs(epochs)
            .regeneration_rate(0.0)
            .learning_rate(0.05)
            // Encoding is parallel in every arm, so the comparison isolates
            // the epoch engine.
            .encode_threads(threads)
            .training_batch(batch)
            .seed(17)
            .build()
            .expect("valid config")
    };
    let fit = |batch: TrainingBatch| -> cyberhd::CyberHdModel {
        CyberHdTrainer::new(config_with(batch)).unwrap().fit(train_x, train_y).unwrap()
    };

    let visits = n * (epochs + 1);
    println!(
        "\nminibatch_vs_serial: dim={dim}, classes={classes}, samples={n}, epochs={epochs}, \
         batch={batch}, threads={threads} (throughput = adaptive sample visits/s over fit)"
    );

    let (serial, _) = timed_fit(visits, reps, || fit(TrainingBatch::SERIAL));
    let (mini_one, model_one) =
        timed_fit(visits, reps, || fit(TrainingBatch { size: batch, threads: 1 }));
    let (mini_all, model_all) =
        timed_fit(visits, reps, || fit(TrainingBatch { size: batch, threads }));
    println!("  serial rule (batch 1)      : {serial}");
    println!("  mini-batch {batch} × 1 thread  : {mini_one}");
    println!("  mini-batch {batch} × {threads} thread(s): {mini_all}");
    println!("  mini-batch 1-thread speedup : {:.2}x", mini_one.speedup_over(&serial));
    println!("  mini-batch {threads}-thread speedup : {:.2}x", mini_all.speedup_over(&serial));

    // Determinism is part of the engine's contract: the same seed and batch
    // size must produce identical models at 1 and N threads (the timed
    // passes' models are the assertion inputs).
    assert_eq!(
        model_one.class_hypervectors(),
        model_all.class_hypervectors(),
        "mini-batch training diverged across thread counts"
    );

    let arms = vec![
        snapshot::Arm::new("serial_rule", serial),
        snapshot::Arm::new("minibatch_1_thread", mini_one),
        snapshot::Arm::new("minibatch_all_threads", mini_all),
    ];
    let speedups = vec![
        ("minibatch_1_thread_vs_serial", mini_one.speedup_over(&serial)),
        ("minibatch_all_threads_vs_serial", mini_all.speedup_over(&serial)),
    ];
    let params = [
        ("dim", dim as f64),
        ("classes", classes as f64),
        ("samples", n as f64),
        ("epochs", epochs as f64),
        ("batch_size", batch as f64),
        ("threads", threads as f64),
        ("available_cores", available_cores() as f64),
        ("reps", reps as f64),
    ];
    let labels = [("kernel_isa", hdc::kernel::active().isa())];
    match snapshot::write("BENCH_train.json", "training", &labels, &params, &arms, &speedups) {
        Ok(path) => println!("  snapshot: {}", path.display()),
        Err(err) => eprintln!("  snapshot write failed: {err}"),
    }
}

criterion_group!(benches, bench_hdc_training, bench_minibatch_vs_serial);
criterion_main!(benches);

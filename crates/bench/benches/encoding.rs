//! Micro-benchmarks of the encoders: RBF vs. ID-level vs. record encoding of
//! NIDS-sized feature vectors, plus the cost of single-dimension
//! regeneration and patching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc::encoder::{Encoder, IdLevelEncoder, RbfEncoder, RecordEncoder};
use std::hint::black_box;

/// A feature vector shaped like a preprocessed NSL-KDD record (~120 dense
/// columns after one-hot expansion).
fn features(n: usize) -> Vec<f32> {
    (0..n).map(|i| ((i as f32) * 0.137).sin().abs()).collect()
}

fn bench_encoders(c: &mut Criterion) {
    let input = features(120);
    let mut group = c.benchmark_group("encode_120_features");
    for &dim in &[512usize, 4096] {
        let rbf = RbfEncoder::new(120, dim, 1).unwrap();
        let id_level = IdLevelEncoder::new(120, dim, 32, 2).unwrap();
        let record = RecordEncoder::new(120, dim, 3).unwrap();
        group.bench_with_input(BenchmarkId::new("rbf", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(rbf.encode(&input).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("id_level", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(id_level.encode(&input).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("record", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(record.encode(&input).unwrap()))
        });
    }
    group.finish();
}

fn bench_regeneration(c: &mut Criterion) {
    let input = features(120);
    c.bench_function("rbf_regenerate_dimension_512", |bencher| {
        let mut encoder = RbfEncoder::new(120, 512, 4).unwrap();
        let mut dim = 0usize;
        bencher.iter(|| {
            dim = (dim + 1) % 512;
            encoder.regenerate_dimension(dim).unwrap();
        })
    });
    c.bench_function("rbf_encode_single_dimension", |bencher| {
        let encoder = RbfEncoder::new(120, 512, 5).unwrap();
        bencher.iter(|| black_box(encoder.encode_dimension(&input, 17).unwrap()))
    });
}

criterion_group!(benches, bench_encoders, bench_regeneration);
criterion_main!(benches);

//! Benchmarks of the non-HDC baselines (MLP and linear SVM) on the same
//! corpus sizes as the HDC training benchmarks, so the relative training
//! costs behind Fig. 4 can be read directly from `cargo bench` output.

use baselines::mlp::{Mlp, MlpConfig};
use baselines::svm::{LinearSvm, SvmConfig};
use baselines::Classifier;
use bench::prepare_dataset;
use criterion::{criterion_group, criterion_main, Criterion};
use nids_data::DatasetKind;
use std::hint::black_box;

fn bench_baseline_training(c: &mut Criterion) {
    let data = prepare_dataset(DatasetKind::NslKdd, 1_500, 31).expect("dataset generation");

    let mut group = c.benchmark_group("baseline_training_1500_flows");
    group.sample_size(10);
    group.bench_function("mlp_2x256_3_epochs", |bencher| {
        bencher.iter(|| {
            let config = MlpConfig::new(data.input_width, data.num_classes)
                .hidden_layers(vec![256, 256])
                .epochs(3)
                .seed(1);
            let mut mlp = Mlp::new(config).unwrap();
            mlp.fit(&data.train_x, &data.train_y).unwrap();
            black_box(mlp)
        })
    });
    group.bench_function("svm_linear_5_epochs", |bencher| {
        bencher.iter(|| {
            let config = SvmConfig::new(data.input_width, data.num_classes).epochs(5).seed(1);
            let mut svm = LinearSvm::new(config).unwrap();
            svm.fit(&data.train_x, &data.train_y).unwrap();
            black_box(svm)
        })
    });
    group.finish();

    // Per-flow inference.
    let query = data.test_x[0].clone();
    let mut mlp = Mlp::new(
        MlpConfig::new(data.input_width, data.num_classes).hidden_layers(vec![256, 256]).epochs(3),
    )
    .unwrap();
    mlp.fit(&data.train_x, &data.train_y).unwrap();
    let mut svm =
        LinearSvm::new(SvmConfig::new(data.input_width, data.num_classes).epochs(5)).unwrap();
    svm.fit(&data.train_x, &data.train_y).unwrap();
    c.bench_function("mlp_single_flow_inference", |bencher| {
        bencher.iter(|| black_box(mlp.predict(&query).unwrap()))
    });
    c.bench_function("svm_single_flow_inference", |bencher| {
        bencher.iter(|| black_box(svm.predict(&query).unwrap()))
    });
}

criterion_group!(benches, bench_baseline_training);
criterion_main!(benches);

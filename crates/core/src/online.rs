//! Single-pass online (streaming) learning.
//!
//! The paper motivates HDC for NIDS with *real-time* detection on edge
//! devices: network flows arrive continuously and the detector must keep up.
//! [`OnlineLearner`] supports that deployment style — it consumes one sample
//! at a time, predicts first (so prequential "test-then-train" accuracy can
//! be tracked), then updates the class hypervectors with the same adaptive
//! rule the batch trainer uses.  Periodic dimension regeneration can be
//! triggered explicitly with [`OnlineLearner::regenerate`] once enough
//! evidence has accumulated.

use crate::config::CyberHdConfig;
use crate::model::{AnyEncoder, CyberHdModel, TrainingReport};
use crate::regeneration::{RegenerationPlan, RegenerationStats};
use crate::trainer::{adaptive_update, ChunkScratch};
use crate::{CyberHdError, Result};
use hdc::encoder::Encoder;
use hdc::{similarity, AssociativeMemory, BatchView};

/// A streaming CyberHD learner.
///
/// # Example
///
/// ```
/// use cyberhd::{CyberHdConfig, OnlineLearner};
///
/// # fn main() -> Result<(), cyberhd::CyberHdError> {
/// let config = CyberHdConfig::builder(2, 2).dimension(128).seed(3).build()?;
/// let mut learner = OnlineLearner::new(config)?;
/// // Stream a few labelled flows.
/// for i in 0..50 {
///     let (x, y) = if i % 2 == 0 { (vec![0.1, 0.0], 0) } else { (vec![0.9, 1.0], 1) };
///     learner.observe(&x, y)?;
/// }
/// assert_eq!(learner.predict(&[0.05, 0.02])?, 0);
/// assert!(learner.prequential_accuracy() > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineLearner {
    config: CyberHdConfig,
    encoder: AnyEncoder,
    memory: AssociativeMemory,
    stats: RegenerationStats,
    seen: usize,
    correct_before_update: usize,
    /// Frozen-snapshot scratch reused by [`OnlineLearner::observe_batch`]
    /// (allocated once; the drain re-zeroes only the touched rows).
    batch_scratch: ChunkScratch,
}

impl OnlineLearner {
    /// Creates a learner from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates encoder/memory construction errors.
    pub fn new(config: CyberHdConfig) -> Result<Self> {
        let encoder = AnyEncoder::from_config(&config)?;
        let memory = AssociativeMemory::new(config.num_classes, config.dimension)?;
        Ok(Self {
            batch_scratch: ChunkScratch::new(config.num_classes, config.dimension),
            config,
            encoder,
            memory,
            stats: RegenerationStats::new(),
            seen: 0,
            correct_before_update: 0,
        })
    }

    /// Resumes streaming from a trained model: the learner takes over the
    /// model's encoder and class memory (with its regeneration history) and
    /// keeps applying the adaptive rule to new observations.
    ///
    /// The prequential counters start from zero — they track the *streamed*
    /// phase, not the batch-training phase the model came from.
    pub fn from_model(model: CyberHdModel) -> Self {
        let CyberHdModel { encoder, memory, config, report } = model;
        Self {
            batch_scratch: ChunkScratch::new(config.num_classes, config.dimension),
            config,
            encoder,
            memory,
            stats: report.regeneration,
            seen: 0,
            correct_before_update: 0,
        }
    }

    /// Number of samples observed so far.
    pub fn samples_seen(&self) -> usize {
        self.seen
    }

    /// Samples that were classified correctly *before* their update — the
    /// numerator of [`OnlineLearner::prequential_accuracy`].
    pub(crate) fn prequential_correct(&self) -> usize {
        self.correct_before_update
    }

    /// Restores the prequential counters of a checkpointed learner (the
    /// durable serving lane's recovery path): [`OnlineLearner::from_model`]
    /// deliberately zeroes them, but a lane recovered from a checkpoint
    /// must resume mid-stream so its sealed snapshots stay bit-identical to
    /// the lane that never crashed.
    pub(crate) fn restore_prequential(&mut self, seen: usize, correct: usize) {
        self.seen = seen;
        self.correct_before_update = correct.min(seen);
    }

    /// Prequential ("test-then-train") accuracy: the fraction of observed
    /// samples that were classified correctly *before* the model was updated
    /// with them. Zero before any sample has been seen.
    pub fn prequential_accuracy(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        self.correct_before_update as f64 / self.seen as f64
    }

    /// Predicts the class of one feature vector without updating the model.
    ///
    /// # Errors
    ///
    /// Returns an error if `features` has the wrong arity.
    pub fn predict(&self, features: &[f32]) -> Result<usize> {
        self.predict_scored(features).map(|(class, _similarity)| class)
    }

    /// [`OnlineLearner::predict`] returning `(class, cosine similarity)` —
    /// the scored form the adaptive serving lane builds verdicts (and
    /// open-set novelty flags) from.
    ///
    /// # Errors
    ///
    /// Returns an error if `features` has the wrong arity.
    pub fn predict_scored(&self, features: &[f32]) -> Result<(usize, f32)> {
        let encoded = self.encoder.encode(features)?;
        Ok(self.memory.nearest(&encoded)?)
    }

    /// Observes one labelled sample: predicts it, then updates the model.
    /// Returns the prediction made *before* the update.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for an out-of-range label and
    /// propagates encoder errors.
    pub fn observe(&mut self, features: &[f32], label: usize) -> Result<usize> {
        self.observe_scored(features, label).map(|(class, _similarity)| class)
    }

    /// [`OnlineLearner::observe`] returning `(prediction, similarity)` for
    /// the prediction made *before* the update — identical computation,
    /// identical model update, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for an out-of-range label and
    /// propagates encoder errors.
    pub fn observe_scored(&mut self, features: &[f32], label: usize) -> Result<(usize, f32)> {
        if label >= self.config.num_classes {
            return Err(CyberHdError::InvalidData(format!(
                "label {label} out of range for {} classes",
                self.config.num_classes
            )));
        }
        let encoded = self.encoder.encode(features)?;
        let (prediction, similarity) = self.memory.nearest(&encoded)?;
        let was_correct =
            adaptive_update(&mut self.memory, &encoded, label, self.config.learning_rate);
        self.seen += 1;
        if was_correct {
            self.correct_before_update += 1;
        }
        Ok((prediction, similarity))
    }

    /// Observes one mini-batch of labelled samples: predicts every sample
    /// against the current (frozen) model, then applies all adaptive
    /// updates at once — the streaming twin of the trainer's mini-batch
    /// engine.  Returns the predictions made *before* the update.
    ///
    /// Samples are encoded through the batched kernel and scored against
    /// class norms computed once per call, so a burst of flows costs far
    /// less than the same flows through [`OnlineLearner::observe`]; the
    /// trade-off is that samples within the batch do not see each other's
    /// updates (for the RBF encoder the batched kernel also carries its
    /// documented ~1e-6 rounding difference from the serial encode).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for mismatched lengths or an
    /// out-of-range label, and propagates the encoder's
    /// [`CyberHdError::Hdc`] error for rows with the wrong feature arity —
    /// in every error case the model and its counters are left untouched.
    pub fn observe_batch(&mut self, features: &[Vec<f32>], labels: &[usize]) -> Result<Vec<usize>> {
        // Arity problems surface as the encoder's error (the documented
        // contract of this legacy entry point): `from_rows` reports the
        // ragged row as the same `FeatureMismatch` the encoder would.
        let buffer = hdc::BatchBuffer::from_rows(features, self.encoder.input_features())
            .map_err(CyberHdError::Hdc)?;
        self.observe_batch_view(buffer.view(), labels)
    }

    /// [`OnlineLearner::observe_batch`] over a zero-copy row-major batch
    /// view — the primary streaming-burst entry point.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for mismatched lengths or an
    /// out-of-range label, and the encoder's [`CyberHdError::Hdc`] error for
    /// a view whose row width does not match the feature arity — in every
    /// error case the model and its counters are left untouched.
    pub fn observe_batch_view(
        &mut self,
        features: BatchView<'_>,
        labels: &[usize],
    ) -> Result<Vec<usize>> {
        self.observe_batch_view_scored(features, labels)
            .map(|scored| scored.into_iter().map(|(class, _similarity)| class).collect())
    }

    /// [`OnlineLearner::observe_batch_view`] returning `(prediction,
    /// similarity)` per row — identical frozen-snapshot scoring, identical
    /// deferred update, bit for bit.  The batched-feedback serving lane
    /// builds its verdicts (and open-set novelty flags) from the scored
    /// form.
    ///
    /// # Errors
    ///
    /// Same as [`OnlineLearner::observe_batch_view`].
    pub fn observe_batch_view_scored(
        &mut self,
        features: BatchView<'_>,
        labels: &[usize],
    ) -> Result<Vec<(usize, f32)>> {
        if features.rows() != labels.len() {
            return Err(CyberHdError::InvalidData(format!(
                "{} feature rows but {} labels",
                features.rows(),
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&y| y >= self.config.num_classes) {
            return Err(CyberHdError::InvalidData(format!(
                "label {bad} out of range for {} classes",
                self.config.num_classes
            )));
        }
        let dim = self.memory.dim();
        let mut matrix = vec![0.0f32; features.rows() * dim];
        self.encoder.encode_batch_into(features, &mut matrix)?;

        // Frozen-snapshot scoring + deferred deltas through the trainer's
        // own mini-batch scratch: the whole call is one batch, so the
        // streaming and batch engines share one implementation of the rule.
        let class_norms = self.memory.class_norms();
        let scratch = &mut self.batch_scratch;
        let mut predictions = Vec::with_capacity(features.rows());
        for (row, &label) in matrix.chunks_exact(dim).zip(labels) {
            let scored = scratch.visit_scored(
                &self.memory,
                &class_norms,
                row,
                similarity::norm(row),
                label,
                self.config.learning_rate,
            );
            predictions.push(scored);
        }
        self.seen += features.rows();
        self.correct_before_update += scratch.drain_into(&mut self.memory, |_| {});
        Ok(predictions)
    }

    /// Recalibrates per-class open-set thresholds against the learner's
    /// **current** memory from a set of in-distribution samples (the
    /// adaptive lane's reservoir), borrowing the global own-class quantile
    /// for classes the reservoir is transiently missing — see
    /// `openset::calibrate_thresholds_or_global_parts`.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for inconsistent inputs or an
    /// out-of-range quantile.
    pub(crate) fn calibrate_thresholds_or_global(
        &self,
        features: BatchView<'_>,
        labels: &[usize],
        quantile: f64,
    ) -> Result<Vec<f32>> {
        crate::openset::calibrate_thresholds_or_global_parts(
            &self.encoder,
            &self.memory,
            features,
            labels,
            quantile,
        )
    }

    /// Runs one regeneration round using the configured regeneration rate.
    ///
    /// Unlike the batch trainer, the streaming learner cannot re-encode past
    /// samples — regenerated dimensions simply start from zero evidence and
    /// are filled by subsequent observations, which is the standard
    /// NeuralHD-style streaming adaptation.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidConfig`] if the configured encoder
    /// cannot regenerate dimensions.
    pub fn regenerate(&mut self) -> Result<usize> {
        self.regenerate_at(self.config.regeneration_rate)
    }

    /// [`OnlineLearner::regenerate`] with an explicit rate override — the
    /// drift-adaptive serving lane's knob for regenerating more (or less)
    /// aggressively than the training-time configuration when a drift
    /// monitor trips mid-stream.  A non-positive `rate` is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidConfig`] if the configured encoder
    /// cannot regenerate dimensions.
    pub fn regenerate_at(&mut self, rate: f32) -> Result<usize> {
        if rate <= 0.0 {
            return Ok(0);
        }
        let plan = RegenerationPlan::analyze(&self.memory, rate);
        if plan.drop_count() == 0 {
            return Ok(0);
        }
        let rbf = self.encoder.as_rbf_mut().ok_or_else(|| {
            CyberHdError::InvalidConfig("dimension regeneration requires the RBF encoder".into())
        })?;
        for &d in &plan.drop {
            self.memory.zero_dimension(d)?;
            rbf.regenerate_dimension(d)?;
        }
        self.stats.record_round(&plan);
        Ok(plan.drop_count())
    }

    /// Effective dimensionality accumulated so far.
    pub fn effective_dimension(&self) -> usize {
        self.stats.effective_dimension(self.config.dimension)
    }

    /// Freezes the learner into an immutable [`CyberHdModel`].
    pub fn into_model(self) -> CyberHdModel {
        let report = TrainingReport {
            epoch_accuracy: vec![self.prequential_accuracy()],
            regeneration: self.stats,
            samples: self.seen,
            physical_dimension: self.config.dimension,
        };
        CyberHdModel::from_parts(self.encoder, self.memory, self.config, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::HdcRng;

    fn config(dim: usize, regen: f32) -> CyberHdConfig {
        CyberHdConfig::builder(3, 2)
            .dimension(dim)
            .regeneration_rate(regen)
            .learning_rate(0.08)
            .seed(17)
            .build()
            .unwrap()
    }

    fn stream(n: usize, seed: u64) -> Vec<(Vec<f32>, usize)> {
        let mut rng = HdcRng::seed_from(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let offset = label as f64;
                let x = vec![
                    (offset + rng.normal(0.0, 0.08)) as f32,
                    (1.0 - offset + rng.normal(0.0, 0.08)) as f32,
                    (offset * 0.5 + rng.normal(0.0, 0.08)) as f32,
                ];
                (x, label)
            })
            .collect()
    }

    #[test]
    fn online_learning_converges_on_a_stream() {
        let mut learner = OnlineLearner::new(config(256, 0.0)).unwrap();
        for (x, y) in stream(300, 1) {
            learner.observe(&x, y).unwrap();
        }
        assert_eq!(learner.samples_seen(), 300);
        assert!(learner.prequential_accuracy() > 0.8, "{}", learner.prequential_accuracy());
        // The frozen model keeps predicting correctly.
        let model = learner.into_model();
        assert_eq!(model.predict(&[0.0, 1.0, 0.0]).unwrap(), 0);
        assert_eq!(model.predict(&[1.0, 0.0, 0.5]).unwrap(), 1);
        assert_eq!(model.report().samples, 300);
    }

    #[test]
    fn observe_validates_labels() {
        let mut learner = OnlineLearner::new(config(64, 0.0)).unwrap();
        assert!(learner.observe(&[0.0, 0.0, 0.0], 2).is_err());
        assert!(learner.observe(&[0.0, 0.0], 0).is_err());
    }

    #[test]
    fn prequential_accuracy_starts_at_zero() {
        let learner = OnlineLearner::new(config(64, 0.0)).unwrap();
        assert_eq!(learner.prequential_accuracy(), 0.0);
        assert_eq!(learner.samples_seen(), 0);
    }

    #[test]
    fn regeneration_tracks_effective_dimension() {
        let mut learner = OnlineLearner::new(config(100, 0.1)).unwrap();
        for (x, y) in stream(100, 2) {
            learner.observe(&x, y).unwrap();
        }
        let dropped = learner.regenerate().unwrap();
        assert_eq!(dropped, 10, "10% of 100 dimensions");
        assert_eq!(learner.effective_dimension(), 110);
        // Accuracy should recover as more samples arrive after regeneration.
        for (x, y) in stream(200, 3) {
            learner.observe(&x, y).unwrap();
        }
        assert!(learner.prequential_accuracy() > 0.7);
    }

    #[test]
    fn observe_batch_matches_streaming_semantics() {
        let mut batched = OnlineLearner::new(config(256, 0.0)).unwrap();
        let flows = stream(300, 1);
        for window in flows.chunks(25) {
            let (xs, ys): (Vec<Vec<f32>>, Vec<usize>) = window.iter().cloned().unzip();
            let predictions = batched.observe_batch(&xs, &ys).unwrap();
            assert_eq!(predictions.len(), xs.len());
        }
        assert_eq!(batched.samples_seen(), 300);
        // Mini-batch updates converge like the per-sample stream does.
        assert!(batched.prequential_accuracy() > 0.75, "{}", batched.prequential_accuracy());
        let model = batched.into_model();
        assert_eq!(model.predict(&[0.0, 1.0, 0.0]).unwrap(), 0);
        assert_eq!(model.predict(&[1.0, 0.0, 0.5]).unwrap(), 1);
    }

    #[test]
    fn observe_batch_validates_inputs() {
        let mut learner = OnlineLearner::new(config(64, 0.0)).unwrap();
        let xs = vec![vec![0.0f32; 3]];
        // Length/label problems are InvalidData; arity problems surface as
        // the encoder's error (the documented contract).
        assert!(matches!(learner.observe_batch(&xs, &[]), Err(CyberHdError::InvalidData(_))));
        assert!(matches!(learner.observe_batch(&xs, &[2]), Err(CyberHdError::InvalidData(_))));
        let ragged = vec![vec![0.0f32; 2]];
        assert!(matches!(learner.observe_batch(&ragged, &[0]), Err(CyberHdError::Hdc(_))));
        assert_eq!(learner.samples_seen(), 0, "failed batches must not count");
    }

    #[test]
    fn regenerate_is_a_noop_when_disabled() {
        let mut learner = OnlineLearner::new(config(64, 0.0)).unwrap();
        assert_eq!(learner.regenerate().unwrap(), 0);
        assert_eq!(learner.effective_dimension(), 64);
    }

    #[test]
    fn regenerate_at_overrides_the_configured_rate() {
        let mut learner = OnlineLearner::new(config(100, 0.0)).unwrap();
        for (x, y) in stream(80, 11) {
            learner.observe(&x, y).unwrap();
        }
        // The configured rate is zero, but an explicit override still
        // regenerates (the adaptive serving trigger).
        assert_eq!(learner.regenerate_at(0.2).unwrap(), 20);
        assert_eq!(learner.effective_dimension(), 120);
        assert_eq!(learner.regenerate_at(0.0).unwrap(), 0);
        assert_eq!(learner.regenerate_at(-1.0).unwrap(), 0);
    }

    #[test]
    fn scored_forms_match_their_unscored_twins_bit_for_bit() {
        let mut scored = OnlineLearner::new(config(128, 0.0)).unwrap();
        let mut plain = OnlineLearner::new(config(128, 0.0)).unwrap();
        for (x, y) in stream(120, 9) {
            let (class, similarity) = scored.observe_scored(&x, y).unwrap();
            assert_eq!(plain.observe(&x, y).unwrap(), class);
            assert!((-1.0..=1.0).contains(&similarity));
        }
        assert_eq!(scored.samples_seen(), plain.samples_seen());
        assert_eq!(scored.prequential_accuracy(), plain.prequential_accuracy());
        let probe = [0.4f32, 0.6, 0.2];
        let (class, similarity) = scored.predict_scored(&probe).unwrap();
        assert_eq!(plain.predict(&probe).unwrap(), class);
        assert_eq!(
            scored.predict_scored(&probe).unwrap().1.to_bits(),
            similarity.to_bits(),
            "prediction is pure; repeated calls are bit-identical"
        );
        // The two learners hold bit-identical models.
        let a = scored.into_model();
        let b = plain.into_model();
        assert_eq!(a.memory().classes(), b.memory().classes());
    }

    #[test]
    fn from_model_resumes_with_the_trained_memory() {
        let mut warm = OnlineLearner::new(config(256, 0.1)).unwrap();
        for (x, y) in stream(200, 5) {
            warm.observe(&x, y).unwrap();
        }
        warm.regenerate().unwrap();
        let effective = warm.effective_dimension();
        let model = warm.into_model();
        let expected = model.predict(&[0.0, 1.0, 0.0]).unwrap();

        let mut resumed = OnlineLearner::from_model(model);
        // The trained memory is carried over verbatim...
        assert_eq!(resumed.predict(&[0.0, 1.0, 0.0]).unwrap(), expected);
        // ...the regeneration history survives...
        assert_eq!(resumed.effective_dimension(), effective);
        // ...and the prequential counters restart for the streamed phase.
        assert_eq!(resumed.samples_seen(), 0);
        for (x, y) in stream(100, 6) {
            resumed.observe(&x, y).unwrap();
        }
        assert!(resumed.prequential_accuracy() > 0.8, "{}", resumed.prequential_accuracy());
    }
}

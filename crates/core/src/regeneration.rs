//! Dimension-significance analysis and regeneration book-keeping.
//!
//! This module implements steps (D)–(G) of the CyberHD workflow:
//!
//! * the trained model is **normalized** (each class hypervector scaled to
//!   unit norm),
//! * the **variance of every dimension across the class hypervectors** is
//!   computed — a dimension whose value is (nearly) the same for every class
//!   carries common information and cannot help discriminate,
//! * the `R%` of dimensions with the **lowest variance** are selected for
//!   dropping,
//! * the accounting of how many dimensions were regenerated over the whole
//!   training run yields the paper's *effective dimensionality*
//!   `D* = D + Σ regenerated`.
//!
//! The actual base-vector replacement lives in
//! [`hdc::RbfEncoder::regenerate_dimension`]; the trainer glues the two
//! together.

use hdc::AssociativeMemory;
use serde::{Deserialize, Serialize};

/// The outcome of one variance analysis: which dimensions to drop and the
/// variance statistics that led to the decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegenerationPlan {
    /// Indices of the dimensions selected for dropping/regeneration,
    /// ordered by ascending variance (least significant first).
    pub drop: Vec<usize>,
    /// Variance of every dimension across the normalized class hypervectors.
    pub variances: Vec<f32>,
    /// Largest variance among the dropped dimensions (the selection
    /// threshold actually applied), or `0.0` when nothing was dropped.
    pub threshold: f32,
}

impl RegenerationPlan {
    /// Analyses a trained associative memory and selects the
    /// `floor(rate * dim)` least-significant dimensions.
    ///
    /// The memory is normalized internally; the caller keeps the original
    /// (unnormalized) model for continued training, exactly as the paper's
    /// workflow does.
    pub fn analyze(memory: &AssociativeMemory, rate: f32) -> Self {
        let normalized = memory.normalized();
        let variances = normalized.dimension_variances();
        let count = ((rate.clamp(0.0, 1.0)) * memory.dim() as f32).floor() as usize;
        let drop = select_lowest_variance(&variances, count);
        let threshold = drop.last().map(|&d| variances[d]).unwrap_or(0.0);
        Self { drop, variances, threshold }
    }

    /// Number of dimensions selected for dropping.
    pub fn drop_count(&self) -> usize {
        self.drop.len()
    }

    /// Mean variance over all dimensions (a coarse signal of how much
    /// discriminative structure the model has).
    pub fn mean_variance(&self) -> f32 {
        if self.variances.is_empty() {
            return 0.0;
        }
        self.variances.iter().sum::<f32>() / self.variances.len() as f32
    }
}

/// Returns the indices of the `count` smallest values in `variances`,
/// ordered by ascending value (ties broken by index for determinism).
///
/// `count` is clamped to `variances.len()`.
pub fn select_lowest_variance(variances: &[f32], count: usize) -> Vec<usize> {
    let count = count.min(variances.len());
    let mut indices: Vec<usize> = (0..variances.len()).collect();
    indices.sort_by(|&a, &b| {
        variances[a].partial_cmp(&variances[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    indices.truncate(count);
    indices
}

/// Running statistics of the regeneration process across a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegenerationStats {
    /// Number of regeneration rounds executed (at most one per retraining
    /// epoch).
    pub rounds: usize,
    /// Total number of dimension regenerations across all rounds.
    pub total_regenerated: usize,
    /// Number of dimensions regenerated in each round, in order.
    pub per_round: Vec<usize>,
    /// Mean cross-class variance observed before each round.
    pub mean_variance_per_round: Vec<f32>,
}

impl RegenerationStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one regeneration round.
    pub fn record_round(&mut self, plan: &RegenerationPlan) {
        self.rounds += 1;
        self.total_regenerated += plan.drop_count();
        self.per_round.push(plan.drop_count());
        self.mean_variance_per_round.push(plan.mean_variance());
    }

    /// The paper's *effective dimensionality*: the physical dimensionality
    /// plus every regenerated dimension explored during training.
    pub fn effective_dimension(&self, physical_dimension: usize) -> usize {
        physical_dimension + self.total_regenerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::Hypervector;

    #[test]
    fn select_lowest_variance_orders_and_clamps() {
        let variances = [0.5, 0.1, 0.9, 0.1, 0.0];
        assert_eq!(select_lowest_variance(&variances, 3), vec![4, 1, 3]);
        assert_eq!(select_lowest_variance(&variances, 0), Vec::<usize>::new());
        assert_eq!(select_lowest_variance(&variances, 99).len(), 5);
    }

    #[test]
    fn select_lowest_variance_is_deterministic_under_ties() {
        let variances = [0.3, 0.3, 0.3, 0.3];
        assert_eq!(select_lowest_variance(&variances, 2), vec![0, 1]);
    }

    fn memory_with_common_dimension() -> AssociativeMemory {
        // Dimension 0 is identical in every class (useless), dimension 1 and 2
        // differ strongly.
        AssociativeMemory::from_class_hypervectors(vec![
            Hypervector::from_vec(vec![1.0, 2.0, -1.0, 0.4]),
            Hypervector::from_vec(vec![1.0, -2.0, 1.5, 0.1]),
            Hypervector::from_vec(vec![1.0, 0.5, 2.0, -0.6]),
        ])
        .unwrap()
    }

    #[test]
    fn analyze_targets_common_dimensions_first() {
        let memory = memory_with_common_dimension();
        let plan = RegenerationPlan::analyze(&memory, 0.25);
        assert_eq!(plan.drop_count(), 1);
        // Dimension 0 is *not* constant after normalization (norms differ),
        // but it is still by far the least discriminative of the four.
        assert_eq!(plan.drop[0], 0);
        assert!(plan.threshold <= plan.mean_variance());
        assert_eq!(plan.variances.len(), 4);
    }

    #[test]
    fn analyze_with_zero_rate_drops_nothing() {
        let memory = memory_with_common_dimension();
        let plan = RegenerationPlan::analyze(&memory, 0.0);
        assert_eq!(plan.drop_count(), 0);
        assert_eq!(plan.threshold, 0.0);
    }

    #[test]
    fn analyze_clamps_excessive_rates() {
        let memory = memory_with_common_dimension();
        let plan = RegenerationPlan::analyze(&memory, 5.0);
        assert_eq!(plan.drop_count(), 4, "rate is clamped to 1.0 -> all dimensions");
    }

    #[test]
    fn stats_accumulate_and_compute_effective_dimension() {
        let memory = memory_with_common_dimension();
        let plan = RegenerationPlan::analyze(&memory, 0.5);
        let mut stats = RegenerationStats::new();
        stats.record_round(&plan);
        stats.record_round(&plan);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.total_regenerated, 2 * plan.drop_count());
        assert_eq!(stats.per_round.len(), 2);
        assert_eq!(stats.mean_variance_per_round.len(), 2);
        assert_eq!(
            stats.effective_dimension(512),
            512 + 2 * plan.drop_count(),
            "effective dimension adds every regenerated dimension to the physical one"
        );
    }

    #[test]
    fn empty_plan_mean_variance_is_zero() {
        let plan = RegenerationPlan { drop: vec![], variances: vec![], threshold: 0.0 };
        assert_eq!(plan.mean_variance(), 0.0);
    }
}

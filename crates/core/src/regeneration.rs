//! Dimension-significance analysis, regeneration book-keeping and the
//! drift monitor that decides **when** a streaming deployment regenerates.
//!
//! This module implements steps (D)–(G) of the CyberHD workflow:
//!
//! * the trained model is **normalized** (each class hypervector scaled to
//!   unit norm),
//! * the **variance of every dimension across the class hypervectors** is
//!   computed — a dimension whose value is (nearly) the same for every class
//!   carries common information and cannot help discriminate,
//! * the `R%` of dimensions with the **lowest variance** are selected for
//!   dropping,
//! * the accounting of how many dimensions were regenerated over the whole
//!   training run yields the paper's *effective dimensionality*
//!   `D* = D + Σ regenerated`.
//!
//! The actual base-vector replacement lives in
//! [`hdc::RbfEncoder::regenerate_dimension`]; the trainer glues the two
//! together.
//!
//! The batch trainer regenerates once per retraining epoch; an **online**
//! deployment has no epochs, so [`DriftMonitor`] supplies the trigger the
//! paper's non-stationary-traffic motivation implies: a sliding-window
//! prequential error rate compared against a frozen baseline (concept
//! drift), plus an open-set unknown-rate surge (zero-day appearance).  The
//! monitor is deliberately deterministic — its decision depends only on
//! the sequence of observations fed into it — which is what lets the
//! serving layer's adaptive lanes stay bit-identical to a serial replay.

use hdc::AssociativeMemory;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The outcome of one variance analysis: which dimensions to drop and the
/// variance statistics that led to the decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegenerationPlan {
    /// Indices of the dimensions selected for dropping/regeneration,
    /// ordered by ascending variance (least significant first).
    pub drop: Vec<usize>,
    /// Variance of every dimension across the normalized class hypervectors.
    pub variances: Vec<f32>,
    /// Largest variance among the dropped dimensions (the selection
    /// threshold actually applied), or `0.0` when nothing was dropped.
    pub threshold: f32,
}

impl RegenerationPlan {
    /// Analyses a trained associative memory and selects the
    /// `floor(rate * dim)` least-significant dimensions.
    ///
    /// The memory is normalized internally; the caller keeps the original
    /// (unnormalized) model for continued training, exactly as the paper's
    /// workflow does.
    pub fn analyze(memory: &AssociativeMemory, rate: f32) -> Self {
        let normalized = memory.normalized();
        let variances = normalized.dimension_variances();
        let count = ((rate.clamp(0.0, 1.0)) * memory.dim() as f32).floor() as usize;
        let drop = select_lowest_variance(&variances, count);
        let threshold = drop.last().map(|&d| variances[d]).unwrap_or(0.0);
        Self { drop, variances, threshold }
    }

    /// Number of dimensions selected for dropping.
    pub fn drop_count(&self) -> usize {
        self.drop.len()
    }

    /// Mean variance over all dimensions (a coarse signal of how much
    /// discriminative structure the model has).
    pub fn mean_variance(&self) -> f32 {
        if self.variances.is_empty() {
            return 0.0;
        }
        self.variances.iter().sum::<f32>() / self.variances.len() as f32
    }
}

/// Returns the indices of the `count` smallest values in `variances`,
/// ordered by ascending value (ties broken by index for determinism).
///
/// `count` is clamped to `variances.len()`.
pub fn select_lowest_variance(variances: &[f32], count: usize) -> Vec<usize> {
    let count = count.min(variances.len());
    let mut indices: Vec<usize> = (0..variances.len()).collect();
    indices.sort_by(|&a, &b| {
        variances[a].partial_cmp(&variances[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    indices.truncate(count);
    indices
}

/// Running statistics of the regeneration process across a training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegenerationStats {
    /// Number of regeneration rounds executed (at most one per retraining
    /// epoch).
    pub rounds: usize,
    /// Total number of dimension regenerations across all rounds.
    pub total_regenerated: usize,
    /// Number of dimensions regenerated in each round, in order.
    pub per_round: Vec<usize>,
    /// Mean cross-class variance observed before each round.
    pub mean_variance_per_round: Vec<f32>,
}

impl RegenerationStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one regeneration round.
    pub fn record_round(&mut self, plan: &RegenerationPlan) {
        self.rounds += 1;
        self.total_regenerated += plan.drop_count();
        self.per_round.push(plan.drop_count());
        self.mean_variance_per_round.push(plan.mean_variance());
    }

    /// The paper's *effective dimensionality*: the physical dimensionality
    /// plus every regenerated dimension explored during training.
    pub fn effective_dimension(&self, physical_dimension: usize) -> usize {
        physical_dimension + self.total_regenerated
    }
}

/// Thresholds and window shapes of a [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftMonitorConfig {
    /// Length of the sliding windows (labelled outcomes and novelty flags).
    pub window: usize,
    /// Observations a window needs before its signal arms: the labelled
    /// window freezes its baseline error at this fill level, and the
    /// novelty window starts checking for surges.  Must lie in
    /// `1..=window`.
    pub min_observations: usize,
    /// Drift trips when `windowed error − frozen baseline error` reaches
    /// this delta (e.g. `0.15` = fifteen accuracy points lost).
    pub error_delta: f64,
    /// Drift trips when the windowed unknown/novel rate reaches this
    /// fraction; values above `1.0` disable the novelty signal (a rate
    /// can never exceed one).
    pub unknown_surge: f64,
    /// Observations ignored entirely after a trip, so the monitor does not
    /// re-trip while the model is still re-learning the new regime.
    pub cooldown: usize,
}

impl Default for DriftMonitorConfig {
    fn default() -> Self {
        Self {
            window: 128,
            min_observations: 64,
            error_delta: 0.15,
            unknown_surge: 0.5,
            cooldown: 64,
        }
    }
}

impl DriftMonitorConfig {
    /// Validates the window shapes and thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CyberHdError::InvalidConfig`] for a zero-length
    /// window, a `min_observations` outside `1..=window`, or a
    /// non-positive / non-finite threshold.
    pub fn validate(&self) -> crate::Result<()> {
        if self.window == 0 {
            return Err(crate::CyberHdError::InvalidConfig(
                "drift monitor window must be non-zero".into(),
            ));
        }
        if self.min_observations == 0 || self.min_observations > self.window {
            return Err(crate::CyberHdError::InvalidConfig(format!(
                "min_observations ({}) must lie in 1..={}",
                self.min_observations, self.window
            )));
        }
        if !(self.error_delta.is_finite() && self.error_delta > 0.0) {
            return Err(crate::CyberHdError::InvalidConfig(format!(
                "error_delta must be positive and finite, got {}",
                self.error_delta
            )));
        }
        if !(self.unknown_surge.is_finite() && self.unknown_surge > 0.0) {
            return Err(crate::CyberHdError::InvalidConfig(format!(
                "unknown_surge must be positive and finite (> 1.0 disables it), got {}",
                self.unknown_surge
            )));
        }
        Ok(())
    }
}

/// A deterministic concept-drift detector over a prequential stream.
///
/// Feed it one observation per served flow — [`DriftMonitor::record_labelled`]
/// when ground truth is available (a labelled submit or late feedback),
/// [`DriftMonitor::record_unlabelled`] otherwise — and it reports `true`
/// exactly when an adaptation (dimension regeneration + republish) should
/// run.  Two signals trip it:
///
/// 1. **Windowed error-rate delta** — once the labelled window has
///    [`DriftMonitorConfig::min_observations`] outcomes, the then-current
///    window error is frozen as the *baseline*; drift trips when the
///    sliding window error exceeds the baseline by
///    [`DriftMonitorConfig::error_delta`].
/// 2. **Unknown-rate surge** — when the windowed fraction of flows flagged
///    novel (open-set lanes) reaches [`DriftMonitorConfig::unknown_surge`].
///    This signal needs no labels at all, which is what catches a zero-day
///    campaign before any feedback arrives.
///
/// After a trip both windows clear, the baseline unfreezes, and the next
/// [`DriftMonitorConfig::cooldown`] observations are ignored so the
/// monitor does not chain-trip while the model re-learns.
///
/// # Example
///
/// ```
/// use cyberhd::{DriftMonitor, DriftMonitorConfig};
///
/// let config = DriftMonitorConfig {
///     window: 20,
///     min_observations: 10,
///     error_delta: 0.3,
///     unknown_surge: 2.0, // disabled
///     cooldown: 5,
/// };
/// let mut monitor = DriftMonitor::new(config).unwrap();
/// // A calm phase freezes a low baseline error...
/// for _ in 0..10 {
///     assert!(!monitor.record_labelled(true, false));
/// }
/// // ...then an abrupt error surge trips the monitor.
/// let tripped = (0..20).any(|_| monitor.record_labelled(false, false));
/// assert!(tripped);
/// assert_eq!(monitor.trips(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriftMonitor {
    config: DriftMonitorConfig,
    /// Sliding window of labelled outcomes (`true` = predicted correctly
    /// before the update).
    labelled: VecDeque<bool>,
    /// Sliding window of novelty flags over **all** observations.
    novelty: VecDeque<bool>,
    /// Window error frozen once the labelled window first arms.
    baseline_error: Option<f64>,
    /// Observations still to ignore after the last trip.
    cooldown_left: usize,
    trips: usize,
    observations: u64,
}

impl DriftMonitor {
    /// Creates a monitor.
    ///
    /// # Errors
    ///
    /// Propagates [`DriftMonitorConfig::validate`].
    pub fn new(config: DriftMonitorConfig) -> crate::Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            labelled: VecDeque::with_capacity(config.window),
            novelty: VecDeque::with_capacity(config.window),
            baseline_error: None,
            cooldown_left: 0,
            trips: 0,
            observations: 0,
        })
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &DriftMonitorConfig {
        &self.config
    }

    /// Records a prequential outcome with ground truth.  Returns `true`
    /// when drift trips (the caller should adapt now).
    pub fn record_labelled(&mut self, correct: bool, novel: bool) -> bool {
        if self.skip_for_cooldown() {
            return false;
        }
        push_window(&mut self.labelled, correct, self.config.window);
        push_window(&mut self.novelty, novel, self.config.window);
        if self.baseline_error.is_none() {
            if self.labelled.len() >= self.config.min_observations {
                self.baseline_error = Some(window_rate(&self.labelled, |&ok| !ok));
            }
            // An unarmed error signal can still see a novelty surge.
            return self.check_novelty_surge();
        }
        self.check_error_delta() || self.check_novelty_surge()
    }

    /// Records an unlabelled observation (novelty flag only).  Returns
    /// `true` when the unknown-rate surge trips.
    pub fn record_unlabelled(&mut self, novel: bool) -> bool {
        if self.skip_for_cooldown() {
            return false;
        }
        push_window(&mut self.novelty, novel, self.config.window);
        self.check_novelty_surge()
    }

    /// Consumes one observation of cooldown; `true` while cooling down.
    fn skip_for_cooldown(&mut self) -> bool {
        self.observations += 1;
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return true;
        }
        false
    }

    fn check_error_delta(&mut self) -> bool {
        let Some(baseline) = self.baseline_error else { return false };
        if self.labelled.len() < self.config.min_observations {
            return false;
        }
        if self.window_error() - baseline >= self.config.error_delta {
            self.trip();
            return true;
        }
        false
    }

    fn check_novelty_surge(&mut self) -> bool {
        if self.config.unknown_surge > 1.0 || self.novelty.len() < self.config.min_observations {
            return false;
        }
        if self.unknown_rate() >= self.config.unknown_surge {
            self.trip();
            return true;
        }
        false
    }

    /// Clears the windows, unfreezes the baseline and starts the cooldown.
    fn trip(&mut self) {
        self.trips += 1;
        self.labelled.clear();
        self.novelty.clear();
        self.baseline_error = None;
        self.cooldown_left = self.config.cooldown;
    }

    /// Error rate over the current labelled window (`0.0` while empty).
    pub fn window_error(&self) -> f64 {
        window_rate(&self.labelled, |&ok| !ok)
    }

    /// Accuracy over the current labelled window (`0.0` while empty).
    pub fn window_accuracy(&self) -> f64 {
        window_rate(&self.labelled, |&ok| ok)
    }

    /// Novel-flag rate over the current novelty window (`0.0` while empty).
    pub fn unknown_rate(&self) -> f64 {
        window_rate(&self.novelty, |&novel| novel)
    }

    /// The frozen baseline error, once the labelled window has armed.
    pub fn baseline_error(&self) -> Option<f64> {
        self.baseline_error
    }

    /// Number of times the monitor has tripped.
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Persists the monitor's full state — configuration, both sliding
    /// windows, the frozen baseline, cooldown and counters — through the
    /// artifact codec, so a recovered serving lane resumes drift detection
    /// **bit-identically** to the lane that never crashed.
    pub fn write_to(&self, w: &mut hdc::codec::Writer) {
        w.usize(self.config.window);
        w.usize(self.config.min_observations);
        w.f64(self.config.error_delta);
        w.f64(self.config.unknown_surge);
        w.usize(self.config.cooldown);
        w.usize(self.labelled.len());
        for &ok in &self.labelled {
            w.bool(ok);
        }
        w.usize(self.novelty.len());
        for &novel in &self.novelty {
            w.bool(novel);
        }
        match self.baseline_error {
            None => w.bool(false),
            Some(baseline) => {
                w.bool(true);
                w.f64(baseline);
            }
        }
        w.usize(self.cooldown_left);
        w.usize(self.trips);
        w.u64(self.observations);
    }

    /// Reads a monitor persisted by [`DriftMonitor::write_to`], bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`hdc::codec::CodecError`] on a truncated stream, an invalid
    /// configuration or windows longer than the configuration allows.
    pub fn read_from(r: &mut hdc::codec::Reader<'_>) -> hdc::codec::CodecResult<Self> {
        use hdc::codec::CodecError;
        let config = DriftMonitorConfig {
            window: r.usize()?,
            min_observations: r.usize()?,
            error_delta: r.f64()?,
            unknown_surge: r.f64()?,
            cooldown: r.usize()?,
        };
        config.validate().map_err(|e| CodecError::Invalid(format!("drift monitor: {e}")))?;
        let read_window =
            |r: &mut hdc::codec::Reader<'_>| -> hdc::codec::CodecResult<VecDeque<bool>> {
                let len = r.usize()?;
                if len > config.window {
                    return Err(CodecError::Invalid(format!(
                        "monitor window holds {len} observations but is configured for {}",
                        config.window
                    )));
                }
                (0..len).map(|_| r.bool()).collect()
            };
        let labelled = read_window(r)?;
        let novelty = read_window(r)?;
        let baseline_error = if r.bool()? { Some(r.f64()?) } else { None };
        let cooldown_left = r.usize()?;
        let trips = r.usize()?;
        let observations = r.u64()?;
        if cooldown_left > config.cooldown {
            return Err(CodecError::Invalid(format!(
                "cooldown_left {cooldown_left} exceeds the configured cooldown {}",
                config.cooldown
            )));
        }
        Ok(Self { config, labelled, novelty, baseline_error, cooldown_left, trips, observations })
    }

    /// Total observations fed in (cooldown-swallowed ones included).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Labelled outcomes currently in the window.
    pub fn labelled_in_window(&self) -> usize {
        self.labelled.len()
    }
}

/// Pushes into a bounded sliding window.
fn push_window(window: &mut VecDeque<bool>, value: bool, bound: usize) {
    if window.len() == bound {
        window.pop_front();
    }
    window.push_back(value);
}

/// Fraction of window entries matching the predicate (`0.0` when empty).
fn window_rate(window: &VecDeque<bool>, pred: impl Fn(&bool) -> bool) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    window.iter().filter(|v| pred(v)).count() as f64 / window.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::Hypervector;

    #[test]
    fn select_lowest_variance_orders_and_clamps() {
        let variances = [0.5, 0.1, 0.9, 0.1, 0.0];
        assert_eq!(select_lowest_variance(&variances, 3), vec![4, 1, 3]);
        assert_eq!(select_lowest_variance(&variances, 0), Vec::<usize>::new());
        assert_eq!(select_lowest_variance(&variances, 99).len(), 5);
    }

    #[test]
    fn select_lowest_variance_is_deterministic_under_ties() {
        let variances = [0.3, 0.3, 0.3, 0.3];
        assert_eq!(select_lowest_variance(&variances, 2), vec![0, 1]);
    }

    fn memory_with_common_dimension() -> AssociativeMemory {
        // Dimension 0 is identical in every class (useless), dimension 1 and 2
        // differ strongly.
        AssociativeMemory::from_class_hypervectors(vec![
            Hypervector::from_vec(vec![1.0, 2.0, -1.0, 0.4]),
            Hypervector::from_vec(vec![1.0, -2.0, 1.5, 0.1]),
            Hypervector::from_vec(vec![1.0, 0.5, 2.0, -0.6]),
        ])
        .unwrap()
    }

    #[test]
    fn analyze_targets_common_dimensions_first() {
        let memory = memory_with_common_dimension();
        let plan = RegenerationPlan::analyze(&memory, 0.25);
        assert_eq!(plan.drop_count(), 1);
        // Dimension 0 is *not* constant after normalization (norms differ),
        // but it is still by far the least discriminative of the four.
        assert_eq!(plan.drop[0], 0);
        assert!(plan.threshold <= plan.mean_variance());
        assert_eq!(plan.variances.len(), 4);
    }

    #[test]
    fn analyze_with_zero_rate_drops_nothing() {
        let memory = memory_with_common_dimension();
        let plan = RegenerationPlan::analyze(&memory, 0.0);
        assert_eq!(plan.drop_count(), 0);
        assert_eq!(plan.threshold, 0.0);
    }

    #[test]
    fn analyze_clamps_excessive_rates() {
        let memory = memory_with_common_dimension();
        let plan = RegenerationPlan::analyze(&memory, 5.0);
        assert_eq!(plan.drop_count(), 4, "rate is clamped to 1.0 -> all dimensions");
    }

    #[test]
    fn stats_accumulate_and_compute_effective_dimension() {
        let memory = memory_with_common_dimension();
        let plan = RegenerationPlan::analyze(&memory, 0.5);
        let mut stats = RegenerationStats::new();
        stats.record_round(&plan);
        stats.record_round(&plan);
        assert_eq!(stats.rounds, 2);
        assert_eq!(stats.total_regenerated, 2 * plan.drop_count());
        assert_eq!(stats.per_round.len(), 2);
        assert_eq!(stats.mean_variance_per_round.len(), 2);
        assert_eq!(
            stats.effective_dimension(512),
            512 + 2 * plan.drop_count(),
            "effective dimension adds every regenerated dimension to the physical one"
        );
    }

    #[test]
    fn empty_plan_mean_variance_is_zero() {
        let plan = RegenerationPlan { drop: vec![], variances: vec![], threshold: 0.0 };
        assert_eq!(plan.mean_variance(), 0.0);
    }

    fn monitor_config() -> DriftMonitorConfig {
        DriftMonitorConfig {
            window: 20,
            min_observations: 10,
            error_delta: 0.3,
            unknown_surge: 0.5,
            cooldown: 8,
        }
    }

    #[test]
    fn monitor_config_is_validated() {
        assert!(DriftMonitor::new(DriftMonitorConfig::default()).is_ok());
        for bad in [
            DriftMonitorConfig { window: 0, ..monitor_config() },
            DriftMonitorConfig { min_observations: 0, ..monitor_config() },
            DriftMonitorConfig { min_observations: 21, ..monitor_config() },
            DriftMonitorConfig { error_delta: 0.0, ..monitor_config() },
            DriftMonitorConfig { error_delta: f64::NAN, ..monitor_config() },
            DriftMonitorConfig { unknown_surge: -0.1, ..monitor_config() },
        ] {
            assert!(DriftMonitor::new(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn monitor_freezes_a_baseline_then_trips_on_an_error_surge() {
        let mut monitor = DriftMonitor::new(monitor_config()).unwrap();
        // Calm phase: 10% error.  The baseline freezes at min_observations.
        for i in 0..10 {
            assert!(!monitor.record_labelled(i % 10 != 0, false));
        }
        let baseline = monitor.baseline_error().expect("baseline frozen at min_observations");
        assert!((baseline - 0.1).abs() < 1e-9, "{baseline}");

        // Stationary continuation never trips...
        for i in 10..40 {
            assert!(!monitor.record_labelled(i % 10 != 0, false));
        }
        assert_eq!(monitor.trips(), 0);

        // ...an abrupt shift (everything wrong) trips exactly once, at a
        // deterministic observation index.
        let mut tripped_at = None;
        for i in 0..20 {
            if monitor.record_labelled(false, false) {
                tripped_at = Some(i);
                break;
            }
        }
        // The full window sits at 2/20 mistakes; the seventh wrong flow
        // (index 6) pushes it to 8/20 = 0.4 >= baseline 0.1 + delta 0.3.
        assert_eq!(tripped_at, Some(6));
        assert_eq!(monitor.trips(), 1);
        assert!(monitor.baseline_error().is_none(), "trip unfreezes the baseline");
        assert_eq!(monitor.labelled_in_window(), 0, "trip clears the windows");
    }

    #[test]
    fn monitor_cooldown_swallows_observations_after_a_trip() {
        let mut monitor = DriftMonitor::new(monitor_config()).unwrap();
        for _ in 0..10 {
            monitor.record_labelled(true, false);
        }
        while !monitor.record_labelled(false, false) {}
        assert_eq!(monitor.trips(), 1);
        // The next `cooldown` observations are ignored outright: they build
        // no window and cannot re-trip, even though every one is wrong.
        for _ in 0..8 {
            assert!(!monitor.record_labelled(false, false));
            assert_eq!(monitor.labelled_in_window(), 0);
        }
        // After the cooldown the monitor re-arms from scratch: a uniformly
        // bad phase freezes a *bad* baseline, so only a further degradation
        // would trip again.
        for _ in 0..10 {
            assert!(!monitor.record_labelled(false, false));
        }
        assert_eq!(monitor.baseline_error(), Some(1.0));
        assert_eq!(monitor.trips(), 1);
    }

    #[test]
    fn monitor_trips_on_an_unknown_rate_surge_without_any_labels() {
        let mut monitor = DriftMonitor::new(monitor_config()).unwrap();
        // Unlabelled, non-novel traffic arms nothing.
        for _ in 0..30 {
            assert!(!monitor.record_unlabelled(false));
        }
        // A zero-day campaign: novel flags surge past 50% of the window.
        let mut tripped = false;
        for _ in 0..20 {
            if monitor.record_unlabelled(true) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "novelty surge must trip without ground truth");
        assert_eq!(monitor.trips(), 1);
        assert_eq!(monitor.unknown_rate(), 0.0, "trip clears the novelty window");
    }

    #[test]
    fn monitor_novelty_signal_can_be_disabled() {
        let config = DriftMonitorConfig { unknown_surge: 2.0, ..monitor_config() };
        let mut monitor = DriftMonitor::new(config).unwrap();
        for _ in 0..200 {
            assert!(!monitor.record_unlabelled(true));
        }
        assert_eq!(monitor.trips(), 0);
        assert_eq!(monitor.observations(), 200);
        assert_eq!(monitor.unknown_rate(), 1.0);
        assert_eq!(monitor.window_accuracy(), 0.0, "no labelled outcomes yet");
    }

    #[test]
    fn monitor_is_deterministic_over_a_replayed_sequence() {
        let run = |config: DriftMonitorConfig| {
            let mut monitor = DriftMonitor::new(config).unwrap();
            let mut trip_points = Vec::new();
            for i in 0..500u32 {
                let correct = (i / 100) % 2 == 0 || i % 3 == 0;
                let novel = i % 7 == 0 && i > 250;
                let tripped = if i % 4 == 0 {
                    monitor.record_unlabelled(novel)
                } else {
                    monitor.record_labelled(correct, novel)
                };
                if tripped {
                    trip_points.push(i);
                }
            }
            (trip_points, monitor.trips())
        };
        let (a, trips_a) = run(monitor_config());
        let (b, trips_b) = run(monitor_config());
        assert_eq!(a, b, "same observation sequence must trip at the same points");
        assert_eq!(trips_a, trips_b);
        assert!(trips_a >= 1, "the synthetic sequence is designed to drift");
    }

    #[test]
    fn monitor_state_round_trips_through_the_codec_mid_stream() {
        let mut monitor = DriftMonitor::new(monitor_config()).unwrap();
        for i in 0..137u32 {
            let correct = i % 5 != 0;
            let novel = i % 11 == 0;
            if i % 4 == 0 {
                monitor.record_unlabelled(novel);
            } else {
                monitor.record_labelled(correct, novel);
            }
        }
        let mut w = hdc::codec::Writer::new();
        monitor.write_to(&mut w);
        let bytes = w.into_bytes();
        let mut restored = DriftMonitor::read_from(&mut hdc::codec::Reader::new(&bytes)).unwrap();
        assert_eq!(restored, monitor);

        // The restored monitor and the original make identical decisions on
        // the continuation of the stream — the crash-recovery contract.
        for i in 137..400u32 {
            let correct = i % 7 != 0;
            let novel = i % 3 == 0;
            let (a, b) = if i % 4 == 0 {
                (monitor.record_unlabelled(novel), restored.record_unlabelled(novel))
            } else {
                (monitor.record_labelled(correct, novel), restored.record_labelled(correct, novel))
            };
            assert_eq!(a, b, "divergence at observation {i}");
        }
        assert_eq!(restored, monitor);
    }

    #[test]
    fn corrupted_monitor_state_is_rejected_not_misread() {
        let mut monitor = DriftMonitor::new(monitor_config()).unwrap();
        for _ in 0..50 {
            monitor.record_labelled(true, false);
        }
        let mut w = hdc::codec::Writer::new();
        monitor.write_to(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                DriftMonitor::read_from(&mut hdc::codec::Reader::new(&bytes[..cut])).is_err(),
                "truncation to {cut} bytes must not parse"
            );
        }
        // An impossible window length fails validation rather than
        // reconstructing an inconsistent monitor.
        let mut w = hdc::codec::Writer::new();
        w.usize(8); // window
        w.usize(4); // min_observations
        w.f64(0.1);
        w.f64(0.5);
        w.usize(4); // cooldown
        w.usize(9_999); // labelled window "length"
        let bad = w.into_bytes();
        assert!(DriftMonitor::read_from(&mut hdc::codec::Reader::new(&bad)).is_err());
    }
}

//! Quantized deployment models.
//!
//! Table I of the paper studies CyberHD deployed with hypervector elements at
//! 32 → 1 bits, and Fig. 5 injects random bit flips into exactly those
//! quantized class hypervectors.  [`QuantizedModel`] is the deployment
//! artefact: it keeps the trained encoder at full precision (encoding happens
//! on the feature side) but stores and compares class hypervectors at the
//! chosen bitwidth, with queries quantized on the fly to the same width.

use crate::model::{AnyEncoder, CyberHdModel};
use crate::{CyberHdError, Result};
use eval::metrics::ConfusionMatrix;
use hdc::{BatchView, BitWidth, QuantizedHypervector};
use serde::{Deserialize, Serialize};

/// A CyberHD model whose class hypervectors are stored at a reduced
/// bitwidth.
///
/// # Example
///
/// ```
/// use cyberhd::{CyberHdConfig, CyberHdTrainer};
/// use hdc::BitWidth;
///
/// # fn main() -> Result<(), cyberhd::CyberHdError> {
/// let features = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.1, 0.0], vec![0.9, 1.0]];
/// let labels = vec![0, 1, 0, 1];
/// let config = CyberHdConfig::builder(2, 2).dimension(256).seed(5).build()?;
/// let model = CyberHdTrainer::new(config)?.fit(&features, &labels)?;
///
/// let deployed = model.quantize(BitWidth::B1);
/// assert_eq!(deployed.predict(&[0.05, 0.02])?, 0);
/// assert_eq!(deployed.storage_bits(), 2 * 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    encoder: AnyEncoder,
    classes: Vec<QuantizedHypervector>,
    width: BitWidth,
}

/// Summary of a quantized model's storage footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageSummary {
    /// Element bitwidth.
    pub bits_per_element: u32,
    /// Total class-hypervector payload in bits.
    pub total_bits: usize,
    /// Number of classes.
    pub classes: usize,
    /// Hypervector dimensionality.
    pub dimension: usize,
}

impl QuantizedModel {
    /// Quantizes a trained model's class hypervectors at `width`.
    pub fn from_model(model: &CyberHdModel, width: BitWidth) -> Self {
        Self { encoder: model.encoder.clone(), classes: model.memory.quantized(width), width }
    }

    /// Rebuilds a quantized model from persisted parts (the detector
    /// artifact loader).
    pub(crate) fn from_parts(
        encoder: AnyEncoder,
        classes: Vec<QuantizedHypervector>,
        width: BitWidth,
    ) -> Self {
        Self { encoder, classes, width }
    }

    /// Borrow of the full-precision encoder.
    pub fn encoder(&self) -> &AnyEncoder {
        &self.encoder
    }

    /// Element bitwidth of the stored class hypervectors.
    pub fn width(&self) -> BitWidth {
        self.width
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality.
    pub fn dimension(&self) -> usize {
        self.classes.first().map(QuantizedHypervector::dim).unwrap_or(0)
    }

    /// Total class-hypervector storage in bits.
    pub fn storage_bits(&self) -> usize {
        self.classes.iter().map(QuantizedHypervector::storage_bits).sum()
    }

    /// Storage summary for reporting.
    pub fn storage_summary(&self) -> StorageSummary {
        StorageSummary {
            bits_per_element: self.width.bits(),
            total_bits: self.storage_bits(),
            classes: self.num_classes(),
            dimension: self.dimension(),
        }
    }

    /// Shared access to the quantized class hypervectors.
    pub fn classes(&self) -> &[QuantizedHypervector] {
        &self.classes
    }

    /// Mutable access to the quantized class hypervectors.
    ///
    /// Exposed for fault-injection studies (Fig. 5), which flip physical bits
    /// of the deployed model.
    pub fn classes_mut(&mut self) -> &mut [QuantizedHypervector] {
        &mut self.classes
    }

    /// Predicts the class of one feature vector.
    ///
    /// The query is encoded at full precision, quantized to the model's
    /// bitwidth and compared against every quantized class hypervector with
    /// integer cosine similarity.
    ///
    /// # Errors
    ///
    /// Returns an error if `features` has the wrong arity.
    pub fn predict(&self, features: &[f32]) -> Result<usize> {
        Ok(self.predict_with_similarity(features)?.0)
    }

    /// Predicts the class of one feature vector and returns the winning
    /// integer-cosine similarity alongside it (the open-set detector layer
    /// thresholds on it).
    ///
    /// Ties break in favour of the lowest class index, matching the dense
    /// path's argmax convention.
    ///
    /// # Errors
    ///
    /// Returns an error if `features` has the wrong arity.
    pub fn predict_with_similarity(&self, features: &[f32]) -> Result<(usize, f32)> {
        let encoded = self.encoder.encode(features)?;
        let query = QuantizedHypervector::quantize(&encoded, self.width);
        let mut best = 0usize;
        let mut best_sim = f32::NEG_INFINITY;
        for (k, class) in self.classes.iter().enumerate() {
            let sim = query.cosine(class)?;
            if sim > best_sim {
                best_sim = sim;
                best = k;
            }
        }
        Ok((best, best_sim))
    }

    /// Predicts the classes of a batch of feature vectors on the fused
    /// batched engine (the crate-private `inference` module).
    ///
    /// Class norms are computed once per batch instead of once per
    /// query×class.  At 1 bit the pipeline is fully fused: queries are
    /// encoded straight to packed sign words by the encoder's
    /// `encode_signs_into` kernel (for RBF a quadrant test replaces the
    /// cosine and the f32 query matrix is never materialized) and scored
    /// with whole-word XOR + popcount on the runtime-dispatched
    /// [`hdc::kernel`] layer (bit-exact across SIMD paths, so predictions
    /// do not depend on the host ISA).  Predictions match mapping
    /// [`QuantizedModel::predict`] over the batch — exactly for
    /// IdLevel/Record-encoded models; for RBF models the batched encoding
    /// feeding the quantizer carries the RBF batch kernel's ~1e-6 rounding,
    /// so winners can differ only when a level boundary or class tie falls
    /// inside that margin.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] if the view's row width does
    /// not match the configured feature arity.
    pub fn predict_batch_view(&self, batch: BatchView<'_>) -> Result<Vec<usize>> {
        Ok(self.predict_batch_view_scored(batch)?.into_iter().map(|(class, _)| class).collect())
    }

    /// [`QuantizedModel::predict_batch_view`] returning the winning
    /// similarity alongside each class.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedModel::predict_batch_view`].
    pub fn predict_batch_view_scored(&self, batch: BatchView<'_>) -> Result<Vec<(usize, f32)>> {
        crate::inference::predict_quantized(&self.encoder, &self.classes, self.width, batch)
    }

    /// Predicts the classes of a batch of feature vectors (legacy
    /// row-per-`Vec` form: rows are validated and flattened once, then
    /// scored through the zero-copy [`QuantizedModel::predict_batch_view`]
    /// engine).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] if any sample has the wrong
    /// feature arity.
    pub fn predict_batch(&self, batch: &[Vec<f32>]) -> Result<Vec<usize>> {
        let features = self.encoder.input_features();
        let data = crate::inference::flatten_rows(batch, features)?;
        self.predict_batch_view(BatchView::new(&data, features).expect("flattened rows"))
    }

    /// Evaluates the quantized model on a labelled batch view.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for mismatched input lengths
    /// and propagates prediction errors.
    pub fn evaluate_view(&self, batch: BatchView<'_>, labels: &[usize]) -> Result<ConfusionMatrix> {
        if batch.rows() != labels.len() {
            return Err(CyberHdError::InvalidData(format!(
                "{} feature rows but {} labels",
                batch.rows(),
                labels.len()
            )));
        }
        let predictions = self.predict_batch_view(batch)?;
        ConfusionMatrix::from_predictions(&predictions, labels, self.num_classes())
            .map_err(CyberHdError::from)
    }

    /// Evaluates the quantized model on labelled data.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for mismatched input lengths and
    /// propagates prediction errors.
    pub fn evaluate(&self, features: &[Vec<f32>], labels: &[usize]) -> Result<ConfusionMatrix> {
        if features.len() != labels.len() {
            return Err(CyberHdError::InvalidData(format!(
                "{} feature vectors but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let predictions = self.predict_batch(features)?;
        ConfusionMatrix::from_predictions(&predictions, labels, self.num_classes())
            .map_err(CyberHdError::from)
    }

    /// Accuracy on labelled data.
    ///
    /// # Errors
    ///
    /// Same as [`QuantizedModel::evaluate`].
    pub fn accuracy(&self, features: &[Vec<f32>], labels: &[usize]) -> Result<f64> {
        Ok(self.evaluate(features, labels)?.accuracy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CyberHdConfig;
    use crate::trainer::CyberHdTrainer;
    use hdc::rng::HdcRng;

    fn trained_model() -> (CyberHdModel, Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = HdcRng::seed_from(4);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..3usize {
            for _ in 0..40 {
                xs.push(vec![
                    (c as f64 + rng.normal(0.0, 0.08)) as f32,
                    (2.0 - c as f64 + rng.normal(0.0, 0.08)) as f32,
                    (c as f64 * 0.5 + rng.normal(0.0, 0.08)) as f32,
                    rng.normal(0.0, 0.08) as f32,
                ]);
                ys.push(c);
            }
        }
        let config = CyberHdConfig::builder(4, 3)
            .dimension(512)
            .retrain_epochs(6)
            .regeneration_rate(0.1)
            .seed(21)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap();
        (model, xs, ys)
    }

    #[test]
    fn quantized_models_retain_most_accuracy() {
        let (model, xs, ys) = trained_model();
        let full = model.accuracy(&xs, &ys).unwrap();
        assert!(full > 0.9);
        for width in BitWidth::ALL {
            let q = model.quantize(width);
            let acc = q.accuracy(&xs, &ys).unwrap();
            assert!(
                acc > full - 0.15,
                "width {width:?}: quantized accuracy {acc} dropped too far below {full}"
            );
            assert_eq!(q.num_classes(), 3);
            assert_eq!(q.dimension(), 512);
            assert_eq!(q.width(), width);
        }
    }

    #[test]
    fn storage_shrinks_with_bitwidth() {
        let (model, _, _) = trained_model();
        let b32 = model.quantize(BitWidth::B32).storage_bits();
        let b8 = model.quantize(BitWidth::B8).storage_bits();
        let b1 = model.quantize(BitWidth::B1).storage_bits();
        assert_eq!(b32, 3 * 512 * 32);
        assert_eq!(b8, 3 * 512 * 8);
        assert_eq!(b1, 3 * 512);
        let summary = model.quantize(BitWidth::B4).storage_summary();
        assert_eq!(summary.bits_per_element, 4);
        assert_eq!(summary.classes, 3);
        assert_eq!(summary.dimension, 512);
        assert_eq!(summary.total_bits, 3 * 512 * 4);
    }

    #[test]
    fn quantized_prediction_validates_arity_and_lengths() {
        let (model, xs, ys) = trained_model();
        let q = model.quantize(BitWidth::B8);
        assert!(q.predict(&[0.0]).is_err());
        assert!(q.evaluate(&xs, &ys[..10]).is_err());
    }

    #[test]
    fn classes_mut_allows_in_place_perturbation() {
        let (model, xs, ys) = trained_model();
        let mut q = model.quantize(BitWidth::B8);
        let clean = q.accuracy(&xs, &ys).unwrap();
        // Corrupt every element of every class hypervector heavily.
        for class in q.classes_mut() {
            for i in 0..class.dim() {
                class.flip_bit(i, 7).unwrap();
            }
        }
        let corrupted = q.accuracy(&xs, &ys).unwrap();
        assert!(
            corrupted <= clean,
            "massive corruption should not improve accuracy ({clean} -> {corrupted})"
        );
    }
}

//! `cyberhd::durable` — crash-durable adaptive serving.
//!
//! An [`AdaptiveLane`] is a purely in-memory
//! object: kill the process and the adapted model, the drift-monitor
//! state and every retained flow die with it.  This module wraps the lane
//! in a **write-ahead log plus checkpoint** pair so a restart resumes the
//! lane *bit-identically* — same model bytes, same monitor windows, same
//! sequence numbering, same verdicts for the replayed tail:
//!
//! * every accepted event (flow submission, labelled submission, late
//!   feedback) is appended to an [`hdc::wal`] log **before** it can be
//!   applied to the model — the log is fsynced once per micro-batch, so
//!   durability costs one `sync_data` per flush, not per flow;
//! * every `checkpoint_every` applied events the lane's full state is
//!   written to a sealed **checkpoint** file (model bytes via
//!   [`Detector::to_bytes`](crate::Detector::to_bytes), CRC-framed), the
//!   WAL is compacted to the tail the oldest kept checkpoint still needs,
//!   and checkpoints beyond `keep_checkpoints` are pruned — so replay
//!   length, log size and recovery time all stay bounded;
//! * [`DurableLane::recover`] loads the newest checkpoint that still
//!   validates (corrupt ones are skipped, counted in the report), resumes
//!   the WAL past any torn tail, and replays the surviving records
//!   through the ordinary serving path.
//!
//! Recovery is bit-identical for the same reason the adaptive lane is
//! deterministic at all: events are applied strictly in submission order
//! through the serial streaming rule, so "checkpoint + replayed tail" and
//! "never crashed" are literally the same event sequence.  The encoder
//! persists its seed *and* its regeneration draw counter, so even
//! post-recovery regenerations draw the exact streams the uncrashed lane
//! would have drawn.  The recalibration reservoir rides the same
//! guarantee — it is a pure function of the applied event sequence plus
//! the checkpointed `(entries, candidate counter)` pair, so recovered
//! lanes recalibrate to bit-identical thresholds.  Batched-feedback
//! lanes ([`AdaptiveConfig::batched_feedback`]) additionally log a
//! batch-boundary marker at every flush (fsynced with the events it
//! closes), and recovery flushes the replayed tail at exactly those
//! markers — the batched contract is bit-identity to a replay *at the
//! same boundaries*, so the boundaries themselves are durable state, and
//! a suffix of events whose closing marker tore off mid-fsync is
//! discarded as uncommitted rather than replayed at an invented boundary.
//!
//! Corrupt bytes — a torn WAL tail, a half-written checkpoint, byte flips
//! anywhere — always yield a defined outcome: torn tails are truncated to
//! the last valid record, damaged checkpoints are skipped in favour of an
//! older one, and anything unrecoverable is a
//! [`ServeError::Durability`], never a panic and never a silently wrong
//! model (pinned by `tests/scenario.rs`' kill-at-random-offset matrix).
//!
//! # Example
//!
//! ```
//! use cyberhd::durable::{DurableConfig, DurableLane};
//! use cyberhd::Detector;
//! use nids_data::synth::SyntheticConfig;
//! use nids_data::DatasetKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("cyberhd_durable_doc_{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(300, 7))?;
//! let detector = Detector::builder().dimension(128).retrain_epochs(1).train(&dataset)?;
//!
//! let lane = DurableLane::create(&dir, "edge-0", detector, DurableConfig::default(), None)?;
//! let ticket = lane.submit_labelled(&dataset.records()[0], dataset.labels()[0])?;
//! lane.flush()?;
//! let verdict = lane.take(&ticket)?;
//! drop(lane); // "crash"
//!
//! // A restart recovers the same lane from disk.
//! let (lane, report) = DurableLane::recover(&dir, None)?;
//! assert_eq!(report.next_event, 1);
//! assert!(verdict.class < dataset.num_classes());
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

use crate::detector::{Detector, Verdict};
use crate::serve::{
    AdaptiveConfig, AdaptiveLane, AdaptiveStats, DetectorRegistry, LaneCheckpoint, ServeError,
    ServeResult, Ticket,
};
use hdc::codec::{CodecError, CodecResult, Reader, Writer};
use hdc::wal;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Magic prefix of a checkpoint file.
const CKPT_MAGIC: &[u8; 4] = b"CYCK";

/// Checkpoint format version.  Version 2 added the recalibration
/// reservoir (entries + candidate counter), the reservoir/recalibration
/// and batched-feedback knobs of [`AdaptiveConfig`], and the
/// recalibration counter; version-1 files are rejected with a clean
/// error rather than misread.
const CKPT_VERSION: u32 = 2;

/// File name of the write-ahead log inside a durable lane's directory.
const WAL_FILE: &str = "wal.log";

/// WAL payload tags.  Tags 0–2 are **replayed events**, numbered by a
/// single monotonic event index across flows and feedback; tags 3–6 are
/// audit records (adaptation history for operators) that replay skips;
/// tag 7 is a **replayed control record**: a batch-boundary marker a
/// batched-feedback lane writes at every flush, so recovery replays the
/// tail batched at the original boundaries (the batched contract is
/// bit-identity *at the same boundaries*, so the boundaries themselves
/// must be durable).
const TAG_FLOW: u8 = 0;
const TAG_FLOW_LABELLED: u8 = 1;
const TAG_FEEDBACK: u8 = 2;
const TAG_DRIFT_TRIP: u8 = 3;
const TAG_REGENERATION: u8 = 4;
const TAG_PUBLISH: u8 = 5;
const TAG_RECALIBRATION: u8 = 6;
const TAG_BATCH_BOUNDARY: u8 = 7;

/// Durability policy of a [`DurableLane`].
#[derive(Debug, Clone, PartialEq)]
pub struct DurableConfig {
    /// The wrapped lane's serving and adaptation policy.
    pub adaptive: AdaptiveConfig,
    /// Write a checkpoint (and compact the log) once this many events
    /// have been applied since the last one — the replay-length bound.
    pub checkpoint_every: u64,
    /// How many checkpoints to keep on disk.  More than one lets recovery
    /// fall back past a checkpoint that was itself corrupted; the WAL is
    /// compacted only to what the **oldest kept** checkpoint still needs.
    pub keep_checkpoints: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        Self { adaptive: AdaptiveConfig::default(), checkpoint_every: 1024, keep_checkpoints: 2 }
    }
}

impl DurableConfig {
    fn validate(&self) -> ServeResult<()> {
        if self.checkpoint_every == 0 {
            return Err(ServeError::InvalidConfig("checkpoint_every must be non-zero".into()));
        }
        if self.keep_checkpoints == 0 {
            return Err(ServeError::InvalidConfig("keep_checkpoints must be non-zero".into()));
        }
        Ok(())
    }

    /// The wrapped lane's configuration with its *internal* auto-flush
    /// neutralized (pushed out to the queue-capacity bound): the durable
    /// wrapper must fsync the log **before** events apply, so it enforces
    /// the real `max_batch` watermark itself.
    fn inner_adaptive(&self) -> AdaptiveConfig {
        AdaptiveConfig { max_batch: self.adaptive.queue_capacity, ..self.adaptive }
    }
}

/// What [`DurableLane::recover`] found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Events already applied by the checkpoint recovery started from.
    pub checkpoint_events: u64,
    /// WAL tail events replayed on top of the checkpoint.
    pub events_replayed: u64,
    /// The next event index the recovered lane will log — equals
    /// `checkpoint_events + events_replayed`.
    pub next_event: u64,
    /// Verdicts of the replayed flows, sorted by sequence number.  The
    /// crash destroyed their tickets, so recovery hands the verdicts back
    /// directly; [`DurableLane::reissue_ticket`] mints new handles.
    pub verdicts: Vec<(u64, Verdict)>,
    /// Bytes of torn WAL tail truncated before replay.
    pub truncated_bytes: usize,
    /// Checkpoint files that failed validation and were skipped.
    pub checkpoints_skipped: usize,
}

/// Mutable durability state behind the [`DurableLane`] mutex.
///
/// Lock order: this mutex is taken **first**, the wrapped lane's internal
/// mutex second (inside the lane's own methods) — nothing ever takes them
/// the other way around.
#[derive(Debug)]
struct DurableState {
    wal: wal::Writer,
    /// Next event index (tags 0–2 logged so far, checkpoint included).
    events: u64,
    /// Events applied (flushed into the model), for the checkpoint cadence.
    applied: u64,
    /// Event count of the last checkpoint written.
    checkpointed: u64,
    /// Stats watermarks for the audit records (tags 3–6).
    trips: usize,
    adaptations: u64,
    regenerated: u64,
    publishes: u64,
    recalibrations: u64,
}

/// A crash-durable [`AdaptiveLane`] (see the [module docs](self)).
///
/// All methods take `&self`; the durability state sits behind one mutex,
/// so concurrent submitters serialize exactly as they do on the wrapped
/// lane.
#[derive(Debug)]
pub struct DurableLane {
    lane: AdaptiveLane,
    config: DurableConfig,
    dir: PathBuf,
    state: Mutex<DurableState>,
}

impl DurableLane {
    /// Creates a fresh durable lane in `dir` (created if missing; must not
    /// already hold a durable lane).  Writes the initial checkpoint and an
    /// empty WAL before returning, so recovery always has a base to load.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for bad watermarks,
    /// [`ServeError::Durability`] for I/O failures or a directory that
    /// already holds a lane.
    pub fn create(
        dir: impl AsRef<Path>,
        tenant: &str,
        detector: Detector,
        config: DurableConfig,
        registry: Option<Arc<DetectorRegistry>>,
    ) -> ServeResult<Self> {
        config.validate()?;
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create lane directory", &dir, &e))?;
        let wal_path = dir.join(WAL_FILE);
        if wal_path.exists() || !list_checkpoints(&dir)?.is_empty() {
            return Err(ServeError::Durability(format!(
                "{} already holds a durable lane; recover it instead of creating over it",
                dir.display()
            )));
        }
        let lane = match registry {
            Some(registry) => {
                AdaptiveLane::with_registry(tenant, detector, config.inner_adaptive(), registry)?
            }
            None => AdaptiveLane::new(tenant, detector, config.inner_adaptive())?,
        };
        let wal = wal::Writer::create(&wal_path)
            .map_err(|e| ServeError::Durability(format!("create WAL: {e}")))?;
        let durable = Self {
            lane,
            config,
            dir,
            state: Mutex::new(DurableState {
                wal,
                events: 0,
                applied: 0,
                checkpointed: 0,
                trips: 0,
                adaptations: 0,
                regenerated: 0,
                publishes: 0,
                recalibrations: 0,
            }),
        };
        {
            let mut state = durable.state.lock().expect("durable state lock");
            durable.write_checkpoint(&mut state)?;
        }
        Ok(durable)
    }

    /// Recovers the durable lane stored in `dir`: loads the newest
    /// checkpoint that validates, truncates any torn WAL tail, replays the
    /// surviving records and returns the lane plus a [`RecoveryReport`].
    ///
    /// The recovered lane is **bit-identical** to the lane that would
    /// exist had the process never died after its last fsync: model
    /// bytes, monitor state, sequence numbering and the replayed
    /// verdicts all match (events submitted after the last fsync are
    /// gone — they were never durable, and their verdicts were never
    /// observable).
    ///
    /// # Errors
    ///
    /// [`ServeError::Durability`] when no checkpoint validates or the WAL
    /// contradicts the checkpoint it should extend.
    pub fn recover(
        dir: impl AsRef<Path>,
        registry: Option<Arc<DetectorRegistry>>,
    ) -> ServeResult<(Self, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();

        // Newest checkpoint that still validates wins; damaged ones are
        // counted and skipped.
        let mut skipped = 0usize;
        let mut recovered: Option<(DurableConfig, u64, LaneCheckpoint)> = None;
        for path in list_checkpoints(&dir)? {
            match fs::read(&path)
                .map_err(|e| e.to_string())
                .and_then(|bytes| decode_checkpoint(&bytes).map_err(|e| e.to_string()))
            {
                Ok(parsed) => {
                    recovered = Some(parsed);
                    break;
                }
                Err(_) => skipped += 1,
            }
        }
        let Some((config, checkpoint_events, state)) = recovered else {
            return Err(ServeError::Durability(format!(
                "{}: no valid checkpoint ({skipped} damaged)",
                dir.display()
            )));
        };
        config.validate()?;

        // Scan the WAL, truncating a torn tail; a missing or unreadable
        // WAL is unrecoverable (the checkpoint alone cannot prove the log
        // held nothing newer).
        let wal_path = dir.join(WAL_FILE);
        let scan = wal::read_file(&wal_path)
            .map_err(|e| ServeError::Durability(format!("read WAL: {e}")))?;
        let mut truncated_bytes = scan.truncated;
        let mut records = scan.records;
        let mut valid_len = scan.valid_len;
        if config.adaptive.batched_feedback {
            // Batch-atomic commit: a batched lane's events are committed
            // only once the boundary marker closing their batch is durable
            // (the marker rides the same fsync).  A suffix past the last
            // marker — a flush whose fsync tore — was never applied
            // anywhere, and replaying it would invent a batch boundary the
            // original timeline never had; it is truncated away like any
            // other torn tail.  Records the checkpoint covers are committed
            // by definition (their markers may have been compacted away).
            let mut committed_records = 0usize;
            let mut committed_len = wal::HEADER_LEN;
            let mut offset = wal::HEADER_LEN;
            for (i, record) in records.iter().enumerate() {
                offset += wal::FRAME_LEN + record.len();
                let committed = match decode_event(record)? {
                    Some(event) => {
                        matches!(event.kind, EventKind::Boundary) || event.index < checkpoint_events
                    }
                    None => false,
                };
                if committed {
                    committed_records = i + 1;
                    committed_len = offset;
                }
            }
            truncated_bytes += valid_len - committed_len;
            records.truncate(committed_records);
            valid_len = committed_len;
        }
        let wal = wal::Writer::resume(&wal_path, valid_len as u64)
            .map_err(|e| ServeError::Durability(format!("resume WAL: {e}")))?;

        let lane = AdaptiveLane::restore(config.inner_adaptive(), registry, state)?;

        // Replay the tail: records the checkpoint already covers are
        // skipped, the rest must be contiguous and must reproduce the
        // exact sequence numbers the log recorded.  Serial lanes flush at
        // the batch watermark (flush boundaries cannot change serial
        // results); batched-feedback lanes flush **only** at the logged
        // boundary markers, because their contract is bit-identity to a
        // batched replay *at the same boundaries*.
        let mut replayed = 0u64;
        let mut next_event = checkpoint_events;
        let mut verdicts: Vec<(u64, Verdict)> = Vec::new();
        let mut pending = 0usize;
        for record in &records {
            let event = match decode_event(record)? {
                Some(event) => event,
                None => continue, // audit record
            };
            if event.index < checkpoint_events {
                continue;
            }
            if matches!(event.kind, EventKind::Boundary) {
                // The original lane flushed here; the marker carries the
                // event count it closed, so it must land exactly where
                // replay stands (== checkpoint_events is the no-op
                // boundary the checkpoint itself was cut at).
                if event.index != next_event {
                    return Err(ServeError::Durability(format!(
                        "WAL batch boundary closes event {} but replay stands at {next_event}",
                        event.index
                    )));
                }
                if pending > 0 {
                    lane.flush()?;
                    verdicts.extend(lane.drain_completed());
                    pending = 0;
                }
                continue;
            }
            if event.index != next_event {
                return Err(ServeError::Durability(format!(
                    "WAL does not extend the checkpoint: expected event {next_event}, log holds \
                     {}",
                    event.index
                )));
            }
            match event.kind {
                EventKind::Boundary => unreachable!("boundary markers are handled above"),
                EventKind::Flow { seq, record, label } => {
                    let ticket = match label {
                        Some(label) => lane.submit_labelled(&record, label),
                        None => lane.submit(&record),
                    }
                    .map_err(|e| replay_err(event.index, &e))?;
                    if ticket.seq() != seq {
                        return Err(ServeError::Durability(format!(
                            "WAL does not match the checkpoint: event {} replayed as flow {}, \
                             log recorded flow {seq}",
                            event.index,
                            ticket.seq()
                        )));
                    }
                }
                EventKind::Feedback { seq, label } => {
                    lane.submit_feedback(&lane.ticket_for(seq), label)
                        .map_err(|e| replay_err(event.index, &e))?;
                }
            }
            next_event += 1;
            replayed += 1;
            pending += 1;
            // Drain as we go: nobody collects tickets during replay, so
            // without this a long tail would hit its own backpressure.
            // Batched lanes skip this — their flush points are the logged
            // boundary markers, and the original lane's own flushes bound
            // the gap between boundaries by the queue capacity.
            if !config.adaptive.batched_feedback && pending >= config.adaptive.max_batch {
                lane.flush()?;
                verdicts.extend(lane.drain_completed());
                pending = 0;
            }
        }
        // For batched lanes this is a no-op: every committed event was
        // closed by a boundary marker, so the queue is already empty.
        lane.flush()?;
        verdicts.extend(lane.drain_completed());
        verdicts.sort_unstable_by_key(|&(seq, _)| seq);

        let stats = lane.stats();
        let durable = Self {
            lane,
            config,
            dir,
            state: Mutex::new(DurableState {
                wal,
                events: next_event,
                applied: next_event,
                checkpointed: checkpoint_events,
                trips: stats.monitor_trips,
                adaptations: stats.adaptations,
                regenerated: stats.regenerated_dimensions,
                publishes: stats.publishes,
                recalibrations: stats.recalibrations,
            }),
        };
        let report = RecoveryReport {
            checkpoint_events,
            events_replayed: replayed,
            next_event,
            verdicts,
            truncated_bytes,
            checkpoints_skipped: skipped,
        };
        // Replay may have crossed the checkpoint cadence; checkpointing
        // now bounds the next recovery instead of re-replaying this tail.
        if replayed >= durable.config.checkpoint_every {
            let mut state = durable.state.lock().expect("durable state lock");
            durable.sync_and_checkpoint(&mut state)?;
        }
        Ok((durable, report))
    }

    /// The tenant this lane serves.
    pub fn tenant(&self) -> &str {
        self.lane.tenant()
    }

    /// The lane's durability policy.
    pub fn config(&self) -> &DurableConfig {
        &self.config
    }

    /// The directory holding the lane's WAL and checkpoints.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Submits one unlabelled raw flow — [`AdaptiveLane::submit`] with the
    /// event logged to the WAL before it can reach the model.
    ///
    /// # Errors
    ///
    /// The wrapped lane's submit errors, plus [`ServeError::Durability`]
    /// when the batch watermark forces a flush and the log cannot be
    /// synced.
    pub fn submit(&self, record: &[f32]) -> ServeResult<Ticket> {
        self.submit_event(record, None)
    }

    /// Submits one labelled raw flow — [`AdaptiveLane::submit_labelled`],
    /// logged.
    ///
    /// # Errors
    ///
    /// Same as [`DurableLane::submit`].
    pub fn submit_labelled(&self, record: &[f32], label: usize) -> ServeResult<Ticket> {
        self.submit_event(record, Some(label))
    }

    fn submit_event(&self, record: &[f32], label: Option<usize>) -> ServeResult<Ticket> {
        let mut state = self.state.lock().expect("durable state lock");
        let ticket = match label {
            Some(label) => self.lane.submit_labelled(record, label)?,
            None => self.lane.submit(record)?,
        };
        let mut w = Writer::new();
        match label {
            Some(label) => {
                w.u8(TAG_FLOW_LABELLED);
                w.u64(state.events);
                w.u64(ticket.seq());
                w.usize(label);
            }
            None => {
                w.u8(TAG_FLOW);
                w.u64(state.events);
                w.u64(ticket.seq());
            }
        }
        w.f32_slice(record);
        state
            .wal
            .append(&w.into_bytes())
            .map_err(|e| ServeError::Durability(format!("append to WAL: {e}")))?;
        state.events += 1;
        if state.events - state.applied >= self.config.adaptive.max_batch as u64 {
            self.flush_locked(&mut state)?;
        }
        Ok(ticket)
    }

    /// Applies late ground truth through a ticket —
    /// [`AdaptiveLane::submit_feedback`], logged.
    ///
    /// # Errors
    ///
    /// Same as [`AdaptiveLane::submit_feedback`], plus
    /// [`ServeError::Durability`] on log failures.
    pub fn submit_feedback(&self, ticket: &Ticket, label: usize) -> ServeResult<()> {
        let mut state = self.state.lock().expect("durable state lock");
        self.lane.submit_feedback(ticket, label)?;
        let mut w = Writer::new();
        w.u8(TAG_FEEDBACK);
        w.u64(state.events);
        w.u64(ticket.seq());
        w.usize(label);
        state
            .wal
            .append(&w.into_bytes())
            .map_err(|e| ServeError::Durability(format!("append to WAL: {e}")))?;
        state.events += 1;
        if state.events - state.applied >= self.config.adaptive.max_batch as u64 {
            self.flush_locked(&mut state)?;
        }
        Ok(())
    }

    /// Flushes now: fsyncs the log, applies the queued events, appends
    /// audit records for any adaptation activity, and checkpoints when the
    /// cadence is due.  Returns how many flows were served.
    ///
    /// # Errors
    ///
    /// [`ServeError::Durability`] when the log or a checkpoint cannot be
    /// written; the queued events stay queued (and stay in the WAL
    /// buffer), so the call can be retried.
    pub fn flush(&self) -> ServeResult<usize> {
        let mut state = self.state.lock().expect("durable state lock");
        self.flush_locked(&mut state)
    }

    /// Flushes if the oldest queued event has waited at least
    /// [`AdaptiveConfig::max_delay`]; returns the number of flows served.
    ///
    /// # Errors
    ///
    /// Same as [`DurableLane::flush`].
    pub fn poll(&self) -> ServeResult<usize> {
        let mut state = self.state.lock().expect("durable state lock");
        if self.lane.poll_due() {
            self.flush_locked(&mut state)
        } else {
            Ok(0)
        }
    }

    /// The write-ahead invariant lives here: `wal.flush()` (buffered
    /// append + one fsync) happens strictly **before** the lane applies
    /// the events, so every event that ever touched the model is durable.
    /// Batched-feedback lanes also log a batch-boundary marker closing the
    /// pending events — it rides the same fsync as the events it closes,
    /// so recovery replays the tail batched at these exact boundaries.
    fn flush_locked(&self, state: &mut DurableState) -> ServeResult<usize> {
        if self.config.adaptive.batched_feedback && state.events > state.applied {
            let mut w = Writer::new();
            w.u8(TAG_BATCH_BOUNDARY);
            w.u64(state.events);
            state
                .wal
                .append(&w.into_bytes())
                .map_err(|e| ServeError::Durability(format!("append to WAL: {e}")))?;
        }
        state.wal.flush().map_err(|e| ServeError::Durability(format!("sync WAL: {e}")))?;
        let served = self.lane.flush()?;
        state.applied = state.events;
        self.append_audit(state)?;
        if state.applied - state.checkpointed >= self.config.checkpoint_every {
            self.sync_and_checkpoint(state)?;
        }
        Ok(served)
    }

    /// Appends audit records (tags 3–6) for adaptation activity since the
    /// last flush.  They ride the next fsync — losing them in a crash is
    /// fine, replay reconstructs the same state without them.
    fn append_audit(&self, state: &mut DurableState) -> ServeResult<()> {
        let stats = self.lane.stats();
        if stats.monitor_trips > state.trips {
            let mut w = Writer::new();
            w.u8(TAG_DRIFT_TRIP);
            w.u64(state.applied);
            w.u64(stats.monitor_trips as u64);
            state
                .wal
                .append(&w.into_bytes())
                .map_err(|e| ServeError::Durability(format!("append to WAL: {e}")))?;
            state.trips = stats.monitor_trips;
        }
        if stats.adaptations > state.adaptations || stats.regenerated_dimensions > state.regenerated
        {
            let mut w = Writer::new();
            w.u8(TAG_REGENERATION);
            w.u64(state.applied);
            w.u64(stats.adaptations);
            w.u64(stats.regenerated_dimensions);
            state
                .wal
                .append(&w.into_bytes())
                .map_err(|e| ServeError::Durability(format!("append to WAL: {e}")))?;
            state.adaptations = stats.adaptations;
            state.regenerated = stats.regenerated_dimensions;
        }
        if stats.recalibrations > state.recalibrations {
            // The thresholds the recalibration produced ride along so an
            // operator can diff threshold drift straight off the log.
            let mut w = Writer::new();
            w.u8(TAG_RECALIBRATION);
            w.u64(state.applied);
            w.u64(stats.recalibrations);
            w.f32_slice(&self.lane.thresholds_snapshot().unwrap_or_default());
            state
                .wal
                .append(&w.into_bytes())
                .map_err(|e| ServeError::Durability(format!("append to WAL: {e}")))?;
            state.recalibrations = stats.recalibrations;
        }
        if stats.publishes > state.publishes {
            let mut w = Writer::new();
            w.u8(TAG_PUBLISH);
            w.u64(state.applied);
            w.u64(stats.publishes);
            w.u64(stats.last_published_version.unwrap_or(0));
            state
                .wal
                .append(&w.into_bytes())
                .map_err(|e| ServeError::Durability(format!("append to WAL: {e}")))?;
            state.publishes = stats.publishes;
        }
        Ok(())
    }

    /// Syncs any pending audit records, then checkpoints and compacts.
    fn sync_and_checkpoint(&self, state: &mut DurableState) -> ServeResult<()> {
        state.wal.flush().map_err(|e| ServeError::Durability(format!("sync WAL: {e}")))?;
        self.write_checkpoint(state)
    }

    /// Writes a checkpoint of the lane's current state (queue must be
    /// empty — only called at flush boundaries or creation), prunes old
    /// checkpoints and compacts the WAL.
    fn write_checkpoint(&self, state: &mut DurableState) -> ServeResult<()> {
        let bytes = encode_checkpoint(&self.config, state.applied, &self.lane.checkpoint_state());
        let name = format!("checkpoint-{:020}.ckpt", state.applied);
        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        fs::write(&tmp, &bytes).map_err(|e| io_err("write checkpoint", &tmp, &e))?;
        sync_file(&tmp)?;
        fs::rename(&tmp, &path).map_err(|e| io_err("publish checkpoint", &path, &e))?;
        sync_dir(&self.dir);
        state.checkpointed = state.applied;

        // Prune checkpoints beyond the keep bound (newest first).
        let checkpoints = list_checkpoints(&self.dir)?;
        let mut oldest_kept = state.applied;
        for (i, old) in checkpoints.iter().enumerate() {
            if i < self.config.keep_checkpoints {
                if let Some(events) = checkpoint_events_of(old) {
                    oldest_kept = oldest_kept.min(events);
                }
            } else {
                let _ = fs::remove_file(old);
            }
        }

        // Compact the WAL: records below what the oldest kept checkpoint
        // needs are dead weight on every future recovery.
        self.compact_wal(state, oldest_kept)
    }

    /// Rewrites the WAL keeping only events at or past `oldest_kept`
    /// (audit records are dropped — they are advisory; batch-boundary
    /// markers survive with the events they close, so a batched replay
    /// keeps its boundaries).  Atomic via tmp + rename; the writer
    /// resumes on the compacted file.
    fn compact_wal(&self, state: &mut DurableState, oldest_kept: u64) -> ServeResult<()> {
        let path = state.wal.path().to_path_buf();
        let scan =
            wal::read_file(&path).map_err(|e| ServeError::Durability(format!("read WAL: {e}")))?;
        let mut compacted: Vec<u8> = Vec::with_capacity(wal::HEADER_LEN);
        compacted.extend_from_slice(wal::MAGIC);
        compacted.extend_from_slice(&wal::VERSION.to_le_bytes());
        for record in &scan.records {
            let keep = match decode_event(record)? {
                Some(event) => event.index >= oldest_kept,
                None => false,
            };
            if keep {
                compacted.extend_from_slice(&wal::frame(record));
            }
        }
        let tmp = path.with_extension("log.tmp");
        fs::write(&tmp, &compacted).map_err(|e| io_err("write compacted WAL", &tmp, &e))?;
        sync_file(&tmp)?;
        fs::rename(&tmp, &path).map_err(|e| io_err("publish compacted WAL", &path, &e))?;
        sync_dir(&self.dir);
        state.wal = wal::Writer::resume(&path, compacted.len() as u64)
            .map_err(|e| ServeError::Durability(format!("resume compacted WAL: {e}")))?;
        Ok(())
    }

    /// Collects a ticket's verdict, durably flushing first if the flow is
    /// still queued (the write-ahead invariant covers every path that
    /// applies events, this one included).
    ///
    /// # Errors
    ///
    /// Same as [`AdaptiveLane::take`], plus [`ServeError::Durability`]
    /// when the forced flush cannot sync the log.
    pub fn take(&self, ticket: &Ticket) -> ServeResult<Verdict> {
        {
            let mut state = self.state.lock().expect("durable state lock");
            if state.events > state.applied {
                self.flush_locked(&mut state)?;
            }
        }
        self.lane.take(ticket)
    }

    /// Non-blocking collect: the verdict if the flow has been served,
    /// `None` while it is still queued.
    ///
    /// # Errors
    ///
    /// Same as [`AdaptiveLane::try_take`].
    pub fn try_take(&self, ticket: &Ticket) -> ServeResult<Option<Verdict>> {
        self.lane.try_take(ticket)
    }

    /// Mints a ticket for a previously issued sequence number — the
    /// post-recovery path for feedback on flows whose original tickets
    /// died with the crashed process.
    pub fn reissue_ticket(&self, seq: u64) -> Ticket {
        self.lane.ticket_for(seq)
    }

    /// Publishes a sealed snapshot to the registry now (see
    /// [`AdaptiveLane::publish`]).
    ///
    /// # Errors
    ///
    /// Same as [`AdaptiveLane::publish`].
    pub fn publish(&self) -> ServeResult<u64> {
        self.lane.publish()
    }

    /// Seals a snapshot of the current model (the lane keeps adapting).
    pub fn seal_snapshot(&self) -> Detector {
        self.lane.seal_snapshot()
    }

    /// Cumulative prequential accuracy of the lane's labelled stream.
    pub fn prequential_accuracy(&self) -> f64 {
        self.lane.prequential_accuracy()
    }

    /// A point-in-time snapshot of the lane's counters.
    pub fn stats(&self) -> AdaptiveStats {
        self.lane.stats()
    }

    /// The lane's current open-set thresholds (`None` for a closed-set
    /// lane); see [`AdaptiveLane::thresholds_snapshot`].
    pub fn thresholds_snapshot(&self) -> Option<Vec<f32>> {
        self.lane.thresholds_snapshot()
    }

    /// The recalibration reservoir's entries and candidate counter; see
    /// [`AdaptiveLane::reservoir_snapshot`].
    pub fn reservoir_snapshot(&self) -> (Vec<(Vec<f32>, usize)>, u64) {
        self.lane.reservoir_snapshot()
    }

    /// Events logged so far (flows + feedback, durable or pending).
    pub fn events(&self) -> u64 {
        self.state.lock().expect("durable state lock").events
    }
}

/// One decoded replayable WAL event.
struct LoggedEvent {
    index: u64,
    kind: EventKind,
}

enum EventKind {
    Flow {
        seq: u64,
        record: Vec<f32>,
        label: Option<usize>,
    },
    Feedback {
        seq: u64,
        label: usize,
    },
    /// A batched-feedback flush boundary; `index` is the event count the
    /// flush closed (everything below it was applied as of this marker).
    Boundary,
}

/// Decodes one WAL payload; `Ok(None)` for audit tags, an error for byte
/// soup — never a panic.
fn decode_event(payload: &[u8]) -> ServeResult<Option<LoggedEvent>> {
    let r = &mut Reader::new(payload);
    let parse = |r: &mut Reader<'_>| -> CodecResult<Option<LoggedEvent>> {
        let tag = r.u8()?;
        let event = match tag {
            TAG_FLOW => LoggedEvent {
                index: r.u64()?,
                kind: EventKind::Flow { seq: r.u64()?, label: None, record: r.f32_vec()? },
            },
            TAG_FLOW_LABELLED => {
                let index = r.u64()?;
                let seq = r.u64()?;
                let label = r.usize()?;
                LoggedEvent {
                    index,
                    kind: EventKind::Flow { seq, label: Some(label), record: r.f32_vec()? },
                }
            }
            TAG_FEEDBACK => LoggedEvent {
                index: r.u64()?,
                kind: EventKind::Feedback { seq: r.u64()?, label: r.usize()? },
            },
            TAG_BATCH_BOUNDARY => LoggedEvent { index: r.u64()?, kind: EventKind::Boundary },
            TAG_DRIFT_TRIP | TAG_REGENERATION | TAG_PUBLISH | TAG_RECALIBRATION => return Ok(None),
            other => {
                return Err(CodecError::Invalid(format!("unknown WAL record tag {other}")));
            }
        };
        if !r.is_exhausted() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after WAL record",
                r.remaining()
            )));
        }
        Ok(Some(event))
    };
    parse(r).map_err(|e| ServeError::Durability(format!("malformed WAL record: {e}")))
}

/// The error for a replayed event the lane refused — the log and the
/// checkpoint disagree, which specific corruption CRCs cannot catch.
fn replay_err(index: u64, e: &ServeError) -> ServeError {
    ServeError::Durability(format!("WAL event {index} failed to replay: {e}"))
}

/// Serializes a checkpoint: `CYCK` + version + payload + CRC-32 trailer.
fn encode_checkpoint(config: &DurableConfig, events: u64, state: &LaneCheckpoint) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(CKPT_MAGIC);
    w.u32(CKPT_VERSION);
    let a = &config.adaptive;
    w.usize(a.max_batch);
    w.u64(a.max_delay.as_nanos() as u64);
    w.usize(a.queue_capacity);
    w.usize(a.monitor.window);
    w.usize(a.monitor.min_observations);
    w.f64(a.monitor.error_delta);
    w.f64(a.monitor.unknown_surge);
    w.usize(a.monitor.cooldown);
    w.usize(a.retention);
    w.bool(a.regeneration_rate.is_some());
    w.f32(a.regeneration_rate.unwrap_or(0.0));
    w.usize(a.regeneration_rounds);
    w.bool(a.auto_publish);
    w.usize(a.reservoir_capacity);
    w.u64(a.reservoir_seed);
    w.f64(a.recalibration_quantile);
    w.bool(a.batched_feedback);
    w.u64(config.checkpoint_every);
    w.usize(config.keep_checkpoints);
    w.u64(events);
    w.str(&state.tenant);
    w.usize(state.detector_bytes.len());
    w.bytes(&state.detector_bytes);
    w.bool(state.thresholds.is_some());
    w.f32_slice(state.thresholds.as_deref().unwrap_or(&[]));
    state.monitor.write_to(&mut w);
    w.u64(state.next_seq);
    w.usize(state.retained.len());
    for (seq, record) in &state.retained {
        w.u64(*seq);
        w.f32_slice(record);
    }
    w.bool(state.evicted_up_to.is_some());
    w.u64(state.evicted_up_to.unwrap_or(0));
    w.usize(state.reservoir.len());
    for (record, label) in &state.reservoir {
        w.f32_slice(record);
        w.usize(*label);
    }
    w.u64(state.reservoir_candidates);
    w.usize(state.seen);
    w.usize(state.prequential_correct);
    for counter in state.counters {
        w.u64(counter);
    }
    let crc = hdc::codec::crc32(w.as_slice());
    w.u32(crc);
    w.into_bytes()
}

/// Parses and validates a checkpoint file's bytes.
fn decode_checkpoint(bytes: &[u8]) -> CodecResult<(DurableConfig, u64, LaneCheckpoint)> {
    if bytes.len() < 12 {
        return Err(CodecError::Invalid("checkpoint too short for its frame".into()));
    }
    let trailer_at = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[trailer_at..].try_into().expect("4 bytes"));
    let computed = hdc::codec::crc32(&bytes[..trailer_at]);
    if stored != computed {
        return Err(CodecError::Invalid(format!(
            "checkpoint checksum mismatch (stored {stored:08X}, computed {computed:08X})"
        )));
    }
    let r = &mut Reader::new(&bytes[..trailer_at]);
    if r.take(4)? != CKPT_MAGIC {
        return Err(CodecError::Invalid("not a cyberhd checkpoint".into()));
    }
    let version = r.u32()?;
    if version != CKPT_VERSION {
        return Err(CodecError::Invalid(format!(
            "checkpoint version {version}; this build reads version {CKPT_VERSION}"
        )));
    }
    let max_batch = r.usize()?;
    let max_delay = Duration::from_nanos(r.u64()?);
    let queue_capacity = r.usize()?;
    let monitor = crate::regeneration::DriftMonitorConfig {
        window: r.usize()?,
        min_observations: r.usize()?,
        error_delta: r.f64()?,
        unknown_surge: r.f64()?,
        cooldown: r.usize()?,
    };
    let retention = r.usize()?;
    let has_rate = r.bool()?;
    let rate = r.f32()?;
    let regeneration_rounds = r.usize()?;
    let auto_publish = r.bool()?;
    let reservoir_capacity = r.usize()?;
    let reservoir_seed = r.u64()?;
    let recalibration_quantile = r.f64()?;
    let batched_feedback = r.bool()?;
    let config = DurableConfig {
        adaptive: AdaptiveConfig {
            max_batch,
            max_delay,
            queue_capacity,
            monitor,
            retention,
            regeneration_rate: has_rate.then_some(rate),
            regeneration_rounds,
            auto_publish,
            reservoir_capacity,
            reservoir_seed,
            recalibration_quantile,
            batched_feedback,
        },
        checkpoint_every: r.u64()?,
        keep_checkpoints: r.usize()?,
    };
    let events = r.u64()?;
    let tenant = r.str()?;
    let detector_len = r.usize()?;
    let detector_bytes = r.take(detector_len)?.to_vec();
    let has_thresholds = r.bool()?;
    let thresholds = r.f32_vec()?;
    let monitor_state = crate::regeneration::DriftMonitor::read_from(r)?;
    let next_seq = r.u64()?;
    let retained_len = r.usize()?;
    let mut retained = Vec::with_capacity(retained_len.min(4096));
    for _ in 0..retained_len {
        let seq = r.u64()?;
        retained.push((seq, r.f32_vec()?));
    }
    let has_watermark = r.bool()?;
    let watermark = r.u64()?;
    let reservoir_len = r.usize()?;
    let mut reservoir = Vec::with_capacity(reservoir_len.min(4096));
    for _ in 0..reservoir_len {
        let record = r.f32_vec()?;
        reservoir.push((record, r.usize()?));
    }
    let reservoir_candidates = r.u64()?;
    let seen = r.usize()?;
    let prequential_correct = r.usize()?;
    let mut counters = [0u64; 9];
    for counter in &mut counters {
        *counter = r.u64()?;
    }
    if !r.is_exhausted() {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes inside checkpoint frame",
            r.remaining()
        )));
    }
    let state = LaneCheckpoint {
        tenant,
        detector_bytes,
        thresholds: has_thresholds.then_some(thresholds),
        monitor: monitor_state,
        next_seq,
        retained,
        evicted_up_to: has_watermark.then_some(watermark),
        reservoir,
        reservoir_candidates,
        seen,
        prequential_correct,
        counters,
    };
    Ok((config, events, state))
}

/// Checkpoint files in `dir`, **newest first** (the zero-padded event
/// count in the name makes lexical order chronological).
fn list_checkpoints(dir: &Path) -> ServeResult<Vec<PathBuf>> {
    let mut checkpoints = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(checkpoints),
        Err(e) => return Err(io_err("list checkpoints", dir, &e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list checkpoints", dir, &e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("checkpoint-") && name.ends_with(".ckpt") {
            checkpoints.push(path);
        }
    }
    checkpoints.sort();
    checkpoints.reverse();
    Ok(checkpoints)
}

/// The event count encoded in a checkpoint file name, if well-formed.
fn checkpoint_events_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_string_lossy().into_owned();
    let digits = name.strip_prefix("checkpoint-")?.strip_suffix(".ckpt")?;
    digits.parse().ok()
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> ServeError {
    ServeError::Durability(format!("{what} {}: {e}", path.display()))
}

fn sync_file(path: &Path) -> ServeResult<()> {
    fs::File::open(path).and_then(|f| f.sync_data()).map_err(|e| io_err("sync", path, &e))
}

/// Best-effort directory fsync (makes renames durable on crash-consistent
/// filesystems; failure is not fatal — the matrix tests inject file-level
/// faults, not directory-entry loss).
fn sync_dir(dir: &Path) {
    if let Ok(f) = fs::File::open(dir) {
        let _ = f.sync_data();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nids_data::synth::SyntheticConfig;
    use nids_data::DatasetKind;

    fn dataset(samples: usize, seed: u64) -> nids_data::Dataset {
        DatasetKind::NslKdd
            .generate(&SyntheticConfig::new(samples, seed).difficulty(1.2))
            .expect("synthetic generation")
    }

    fn detector(data: &nids_data::Dataset, seed: u64) -> Detector {
        Detector::builder().dimension(96).retrain_epochs(1).seed(seed).train(data).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cyberhd_durable_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> DurableConfig {
        DurableConfig {
            adaptive: AdaptiveConfig {
                max_batch: 8,
                retention: 32,
                monitor: crate::regeneration::DriftMonitorConfig {
                    window: 32,
                    min_observations: 16,
                    cooldown: 16,
                    ..Default::default()
                },
                ..AdaptiveConfig::default()
            },
            checkpoint_every: 64,
            keep_checkpoints: 2,
        }
    }

    #[test]
    fn durable_lane_round_trips_and_recovers_bit_identically() {
        let data = dataset(400, 53);
        let dir = temp_dir("roundtrip");
        let config = small_config();
        let lane =
            DurableLane::create(&dir, "t0", detector(&data, 3), config.clone(), None).unwrap();
        let oracle = AdaptiveLane::new("t0", detector(&data, 3), config.adaptive).unwrap();

        // Mixed labelled/unlabelled traffic plus some feedback.
        let mut fb = Vec::new();
        for (i, record) in data.records()[..150].iter().enumerate() {
            if i % 3 == 0 {
                lane.submit_labelled(record, data.labels()[i]).unwrap();
                oracle.submit_labelled(record, data.labels()[i]).unwrap();
            } else {
                fb.push((i, lane.submit(record).unwrap(), oracle.submit(record).unwrap()));
            }
            if i % 11 == 0 {
                if let Some((j, td, to)) = fb.pop() {
                    lane.submit_feedback(&td, data.labels()[j]).unwrap();
                    oracle.submit_feedback(&to, data.labels()[j]).unwrap();
                }
            }
        }
        lane.flush().unwrap();
        oracle.flush().unwrap();
        assert_eq!(
            lane.seal_snapshot().to_bytes(),
            oracle.seal_snapshot().to_bytes(),
            "durability wrapping must not change the model"
        );
        let events = lane.events();
        drop(lane); // clean "crash": everything flushed

        let (recovered, report) = DurableLane::recover(&dir, None).unwrap();
        assert_eq!(report.next_event, events);
        assert_eq!(report.checkpoints_skipped, 0);
        assert_eq!(
            recovered.seal_snapshot().to_bytes(),
            oracle.seal_snapshot().to_bytes(),
            "recovered model must be bit-identical"
        );

        // Both keep serving identically after recovery.
        for (i, record) in data.records()[150..300].iter().enumerate() {
            let label = data.labels()[150 + i];
            recovered.submit_labelled(record, label).unwrap();
            oracle.submit_labelled(record, label).unwrap();
        }
        recovered.flush().unwrap();
        oracle.flush().unwrap();
        assert_eq!(recovered.seal_snapshot().to_bytes(), oracle.seal_snapshot().to_bytes());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_lane_round_trips_and_recovery_discards_partial_batches() {
        let data = dataset(400, 83);
        let dir = temp_dir("batched");
        let mut config = small_config();
        config.adaptive.batched_feedback = true;
        let artifact = Detector::builder()
            .dimension(96)
            .retrain_epochs(1)
            .open_set(0.05)
            .seed(5)
            .train(&data)
            .unwrap();
        let lane = DurableLane::create(&dir, "t0", artifact.clone(), config.clone(), None).unwrap();
        let oracle = AdaptiveLane::new("t0", artifact, config.adaptive).unwrap();

        for (i, record) in data.records()[..160].iter().enumerate() {
            if i % 3 == 0 {
                lane.submit_labelled(record, data.labels()[i]).unwrap();
                oracle.submit_labelled(record, data.labels()[i]).unwrap();
            } else {
                lane.submit(record).unwrap();
                oracle.submit(record).unwrap();
            }
        }
        lane.flush().unwrap();
        oracle.flush().unwrap();
        let committed_model = oracle.seal_snapshot().to_bytes();
        let committed_thresholds = oracle.thresholds_snapshot();
        let committed_reservoir = oracle.reservoir_snapshot();

        drop(lane);
        let (recovered, report) = DurableLane::recover(&dir, None).unwrap();
        assert_eq!(report.next_event, 160);
        assert_eq!(
            recovered.seal_snapshot().to_bytes(),
            committed_model,
            "batched durability wrapping must not change the model"
        );
        assert_eq!(recovered.thresholds_snapshot(), committed_thresholds);
        assert_eq!(recovered.reservoir_snapshot(), committed_reservoir);

        // One more short batch, then tear its boundary record off the log:
        // batch-atomic recovery must discard the whole partial batch — the
        // intact flow records past the last boundary must not replay.
        for (i, record) in data.records()[160..167].iter().enumerate() {
            recovered.submit_labelled(record, data.labels()[160 + i]).unwrap();
        }
        recovered.flush().unwrap();
        drop(recovered);
        let wal_path = dir.join(WAL_FILE);
        let bytes = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &bytes[..bytes.len() - 2]).unwrap();

        let (reopened, report) = DurableLane::recover(&dir, None).unwrap();
        assert_eq!(report.next_event, 160, "a torn boundary must roll back the whole batch");
        assert_eq!(reopened.seal_snapshot().to_bytes(), committed_model);
        assert_eq!(reopened.thresholds_snapshot(), committed_thresholds);
        assert_eq!(reopened.reservoir_snapshot(), committed_reservoir);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unflushed_events_are_lost_but_flushed_state_survives() {
        let data = dataset(300, 59);
        let dir = temp_dir("unflushed");
        let lane =
            DurableLane::create(&dir, "t0", detector(&data, 3), small_config(), None).unwrap();
        for (i, record) in data.records()[..40].iter().enumerate() {
            lane.submit_labelled(record, data.labels()[i]).unwrap();
        }
        lane.flush().unwrap();
        let durable_model = lane.seal_snapshot().to_bytes();
        // Three more events, never flushed: they exist only in memory.
        for (i, record) in data.records()[40..43].iter().enumerate() {
            lane.submit_labelled(record, data.labels()[40 + i]).unwrap();
        }
        drop(lane);

        let (recovered, report) = DurableLane::recover(&dir, None).unwrap();
        assert_eq!(report.next_event, 40, "unsynced events must not resurrect");
        assert_eq!(recovered.seal_snapshot().to_bytes(), durable_model);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_fatal() {
        let data = dataset(300, 61);
        let dir = temp_dir("torn");
        let lane =
            DurableLane::create(&dir, "t0", detector(&data, 3), small_config(), None).unwrap();
        for (i, record) in data.records()[..30].iter().enumerate() {
            lane.submit_labelled(record, data.labels()[i]).unwrap();
        }
        lane.flush().unwrap();
        drop(lane);

        // Tear the log mid-record.
        let wal_path = dir.join(WAL_FILE);
        let bytes = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();

        let (recovered, report) = DurableLane::recover(&dir, None).unwrap();
        assert!(report.truncated_bytes > 0);
        assert!(report.next_event < 30);
        // The lane serves on; the torn-off event can simply be resubmitted.
        recovered.submit_labelled(&data.records()[29], data.labels()[29]).unwrap();
        recovered.flush().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_the_previous_one() {
        let data = dataset(400, 67);
        let dir = temp_dir("fallback");
        let mut config = small_config();
        config.checkpoint_every = 32;
        let lane = DurableLane::create(&dir, "t0", detector(&data, 3), config, None).unwrap();
        for (i, record) in data.records()[..200].iter().enumerate() {
            lane.submit_labelled(record, data.labels()[i]).unwrap();
        }
        lane.flush().unwrap();
        let sealed = lane.seal_snapshot().to_bytes();
        drop(lane);

        // Flip a byte inside the newest checkpoint.
        let newest = list_checkpoints(&dir).unwrap().remove(0);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();

        let (recovered, report) = DurableLane::recover(&dir, None).unwrap();
        assert_eq!(report.checkpoints_skipped, 1);
        assert!(report.events_replayed > 0, "older checkpoint forces a longer replay");
        assert_eq!(
            recovered.seal_snapshot().to_bytes(),
            sealed,
            "fallback recovery must still converge on the same model"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_are_pruned_and_the_wal_is_compacted() {
        let data = dataset(400, 71);
        let dir = temp_dir("compact");
        let mut config = small_config();
        config.checkpoint_every = 16;
        config.keep_checkpoints = 2;
        let lane = DurableLane::create(&dir, "t0", detector(&data, 3), config, None).unwrap();
        for (i, record) in data.records()[..200].iter().enumerate() {
            lane.submit_labelled(record, data.labels()[i]).unwrap();
        }
        lane.flush().unwrap();
        let checkpoints = list_checkpoints(&dir).unwrap();
        assert_eq!(checkpoints.len(), 2, "pruning must enforce keep_checkpoints");
        let wal_len = fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        let scan = wal::read_file(dir.join(WAL_FILE)).unwrap();
        let oldest_kept = checkpoint_events_of(&checkpoints[1]).unwrap();
        for record in &scan.records {
            if let Some(event) = decode_event(record).unwrap() {
                assert!(event.index >= oldest_kept, "compaction must drop covered records");
            }
        }
        assert!(wal_len < 1 << 20, "compacted log stays small");
        drop(lane);
        let (_recovered, report) = DurableLane::recover(&dir, None).unwrap();
        assert!(report.events_replayed <= 32, "replay length is bounded by the cadence");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_a_directory_that_already_holds_a_lane() {
        let data = dataset(300, 73);
        let dir = temp_dir("refuse");
        let lane =
            DurableLane::create(&dir, "t0", detector(&data, 3), small_config(), None).unwrap();
        drop(lane);
        let err =
            DurableLane::create(&dir, "t0", detector(&data, 3), small_config(), None).unwrap_err();
        assert!(matches!(err, ServeError::Durability(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_of_byte_soup_errors_instead_of_panicking() {
        let dir = temp_dir("soup");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(WAL_FILE), b"not a wal at all").unwrap();
        fs::write(dir.join("checkpoint-00000000000000000000.ckpt"), b"garbage").unwrap();
        let err = DurableLane::recover(&dir, None).unwrap_err();
        assert!(matches!(err, ServeError::Durability(_)));
        // And an empty directory has nothing to recover.
        fs::remove_dir_all(&dir).unwrap();
        let err = DurableLane::recover(&dir, None).unwrap_err();
        assert!(matches!(err, ServeError::Durability(_)));
    }

    #[test]
    fn recovered_tickets_can_be_reissued_for_feedback() {
        let data = dataset(300, 79);
        let dir = temp_dir("reissue");
        let lane =
            DurableLane::create(&dir, "t0", detector(&data, 3), small_config(), None).unwrap();
        let ticket = lane.submit(&data.records()[0]).unwrap();
        lane.flush().unwrap();
        let seq = ticket.seq();
        drop(lane);

        let (recovered, report) = DurableLane::recover(&dir, None).unwrap();
        assert_eq!(report.verdicts.len(), 1, "replayed verdicts come back through the report");
        assert_eq!(report.verdicts[0].0, seq);
        let reissued = recovered.reissue_ticket(seq);
        recovered.submit_feedback(&reissued, data.labels()[0]).unwrap();
        recovered.flush().unwrap();
        assert_eq!(recovered.stats().feedback_applied, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_codec_rejects_corruption() {
        let data = dataset(300, 83);
        let dir = temp_dir("ckpt_codec");
        let lane =
            DurableLane::create(&dir, "t0", detector(&data, 3), small_config(), None).unwrap();
        for (i, record) in data.records()[..20].iter().enumerate() {
            lane.submit_labelled(record, data.labels()[i]).unwrap();
        }
        lane.flush().unwrap();
        drop(lane);
        let newest = list_checkpoints(&dir).unwrap().remove(0);
        let bytes = fs::read(&newest).unwrap();
        assert!(decode_checkpoint(&bytes).is_ok());
        // Every single-byte truncation fails cleanly.
        for cut in [1usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "truncation at {cut} must fail");
        }
        // Any byte flip trips the CRC.
        for at in [0usize, 5, bytes.len() / 3, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(decode_checkpoint(&bad).is_err(), "byte flip at {at} must fail");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! The fused batched inference engine.
//!
//! The serial hot path of the original reproduction
//! (`CyberHdModel::predict` in a loop) paid four avoidable costs per sample:
//! a fresh `Hypervector` allocation, a fresh score vector allocation, one
//! full pass over the encoder's base matrix per sample, and a recomputation
//! of every class norm per query.  This module fuses the encode→score
//! pipeline over contiguous chunks of the batch instead:
//!
//! 1. the batch arrives as a zero-copy row-major [`hdc::BatchView`], is
//!    split into [`CHUNK_ROWS`]-row sub-views (no data movement), and fanned
//!    out across scoped threads ([`hdc::parallel`], behind the `parallel`
//!    feature);
//! 2. each chunk is encoded into one reusable chunk-local `rows × dim`
//!    buffer with the encoder's cache-blocked batch kernel (**zero
//!    per-sample allocations**, base matrix streamed once per sample block
//!    instead of once per sample);
//! 3. each encoded row is scored against all classes with class norms that
//!    were computed **once per batch** ([`AssociativeMemory::class_norms`]);
//! 4. the 1-bit deployment path packs class hypervectors into `u64` words
//!    once per batch, encodes queries straight to packed sign bits with the
//!    encoder's fused sign kernel (`Encoder::encode_signs_into` — the RBF
//!    encoder reduces each phase to a quadrant test and never materializes
//!    the f32 matrix), and scores whole word slices with XOR + popcount
//!    through the runtime-dispatched [`hdc::kernel`] layer (AVX2/AVX-512 on
//!    x86_64, NEON on aarch64, scalar fallback — bit-exact on every path,
//!    so the parity contract below is unaffected by the selected ISA).
//!
//! Every entry point returns `(winner, similarity)` pairs so the open-set
//! detector layer can threshold without a second scoring pass.
//!
//! **Parity contract** (asserted by the `tests/batch_parity.rs` suite):
//! the IdLevel/Record encoders and every quantized width evaluate the same
//! expressions as the serial path, so their batched results match
//! bit-for-bit.  The RBF batch kernel reassociates the projection sum and
//! uses a polynomial cosine, so its batched scores agree with serial
//! scores to within 1e-6 — predictions can differ only on ties closer
//! than that, and only for inputs in the encoder's documented range
//! (normalized features; see `fast_cos` in `hdc`'s `rbf.rs`).

use crate::model::AnyEncoder;
use crate::{CyberHdError, Result};
use hdc::encoder::Encoder;
use hdc::parallel::{engine_threads, for_each_chunk};
use hdc::quant::quantize_into_with_scratch;
use hdc::similarity::argmax;
use hdc::{binary, AssociativeMemory, BatchView, BitWidth, QuantizedHypervector};

/// Rows per engine chunk: one chunk's encode buffer (`CHUNK_ROWS × dim`
/// f32) stays L2-resident at the paper's dimensionalities while leaving
/// enough chunks to keep every worker thread busy.
pub(crate) const CHUNK_ROWS: usize = 64;

/// Validates that the view's row width matches the encoder arity.
fn check_width(batch: BatchView<'_>, features: usize) -> Result<()> {
    if batch.width() != features {
        return Err(CyberHdError::InvalidData(format!(
            "batch rows are {} features wide, expected {features}",
            batch.width()
        )));
    }
    Ok(())
}

/// Validates that every row of a legacy `&[Vec<f32>]` batch has `features`
/// entries, preserving the sample-indexed error message of the original
/// batch API (the contiguous path cannot be ragged by construction).
pub(crate) fn check_rows_arity(batch: &[Vec<f32>], features: usize) -> Result<()> {
    if let Some((i, bad)) = batch.iter().enumerate().find(|(_, row)| row.len() != features) {
        return Err(CyberHdError::InvalidData(format!(
            "sample {i} has {} features, expected {features}",
            bad.len()
        )));
    }
    Ok(())
}

/// Flattens a legacy `&[Vec<f32>]` batch into the contiguous buffer the
/// zero-copy engines consume; rows are validated first so the error carries
/// the offending sample index.
pub(crate) fn flatten_rows(batch: &[Vec<f32>], features: usize) -> Result<Vec<f32>> {
    check_rows_arity(batch, features)?;
    let mut data = Vec::with_capacity(batch.len() * features);
    for row in batch {
        data.extend_from_slice(row);
    }
    Ok(data)
}

/// Fused batched prediction against a dense [`AssociativeMemory`],
/// returning `(winner, cosine similarity)` per row of `batch`.
///
/// Winners are identical to calling the serial `encode` → `nearest` pair
/// per sample (up to the documented RBF rounding).
pub(crate) fn predict_dense(
    encoder: &AnyEncoder,
    memory: &AssociativeMemory,
    batch: BatchView<'_>,
) -> Result<Vec<(usize, f32)>> {
    check_width(batch, encoder.input_features())?;
    let dim = encoder.output_dim();
    debug_assert_eq!(dim, memory.dim(), "trainer guarantees encoder/memory agreement");
    let classes = memory.num_classes();
    let norms = memory.class_norms();
    let mut predictions = vec![(0usize, 0.0f32); batch.rows()];
    for_each_chunk(
        batch.rows(),
        CHUNK_ROWS,
        &mut predictions,
        1,
        engine_threads(),
        |chunk, out| {
            let rows = batch.rows_range(chunk.start, chunk.end);
            let mut matrix = vec![0.0f32; rows.rows() * dim];
            let mut scores = vec![0.0f32; classes];
            encoder
                .encode_batch_into(rows, &mut matrix)
                .expect("batch shape validated before the fan-out");
            for (local, slot) in out.iter_mut().enumerate() {
                let query = &matrix[local * dim..(local + 1) * dim];
                memory
                    .similarities_into(query, &norms, &mut scores)
                    .expect("shapes validated before the fan-out");
                *slot = argmax(&scores).expect("at least one class");
            }
        },
    );
    Ok(predictions)
}

/// Fused batched prediction against quantized class hypervectors, returning
/// `(winner, cosine similarity)` per row of `batch`.
///
/// Class norms are computed once per batch; at 1 bit the classes are packed
/// into `u64` words once, queries are sign-encoded straight into packed
/// words by the encoder's fused kernel (bit-exact with encode-then-quantize
/// by the `Encoder::encode_signs_into` contract), and each query is scored
/// with whole-word XOR + popcount instead of a `dim`-element integer dot
/// product.  Given the same quantization levels, the score formula matches
/// the serial [`QuantizedHypervector::cosine`] to within one ulp of the
/// f64→f32 rounding; end-to-end parity additionally inherits the
/// encoder-side contract described in the module docs.
pub(crate) fn predict_quantized(
    encoder: &AnyEncoder,
    classes: &[QuantizedHypervector],
    width: BitWidth,
    batch: BatchView<'_>,
) -> Result<Vec<(usize, f32)>> {
    check_width(batch, encoder.input_features())?;
    let dim = encoder.output_dim();
    let num_classes = classes.len();
    debug_assert!(num_classes > 0, "quantized models always carry at least one class");
    debug_assert!(classes.iter().all(|c| c.dim() == dim));

    // Per-batch precomputation: integer class norms, and the packed word
    // form of every class for the 1-bit kernel.
    let class_norms: Vec<f64> = classes
        .iter()
        .map(|c| c.levels().iter().map(|&l| (l as f64) * (l as f64)).sum::<f64>().sqrt())
        .collect();
    let packed: Option<Vec<hdc::BinaryHypervector>> = (width == BitWidth::B1).then(|| {
        classes.iter().map(|c| binary::BinaryHypervector::from_level_signs(c.levels())).collect()
    });

    let mut predictions = vec![(0usize, 0.0f32); batch.rows()];
    for_each_chunk(
        batch.rows(),
        CHUNK_ROWS,
        &mut predictions,
        1,
        engine_threads(),
        |chunk, out| {
            let rows = batch.rows_range(chunk.start, chunk.end);
            let mut scores = vec![0.0f32; num_classes];
            if let Some(packed_classes) = &packed {
                // Fused 1-bit kernel: the encoder packs quadrant-test sign bits
                // straight into u64 words (`Encoder::encode_signs_into`) — the
                // f32 chunk matrix, the cosine pass and the per-row quantize +
                // pack passes never happen — then each query scores whole word
                // slices with XOR + popcount.
                let words_per_row = binary::words_for_dim(dim);
                let mut query_words = vec![0u64; rows.rows() * words_per_row];
                let mut zero_rows = vec![false; rows.rows()];
                encoder
                    .encode_signs_into(rows, &mut query_words, &mut zero_rows)
                    .expect("batch shape validated before the fan-out");
                // ±1 levels: every query norm is exactly sqrt(dim).
                let qn = (dim as f64).sqrt();
                for (local, slot) in out.iter_mut().enumerate() {
                    // An all-zero encoding quantizes to all-zero levels on the
                    // serial path (zero norm → every score 0.0, class 0 wins);
                    // the sign encoder flags those rows rather than packing the
                    // zeros to +1.
                    if zero_rows[local] {
                        scores.fill(0.0);
                    } else {
                        let query =
                            &query_words[local * words_per_row..(local + 1) * words_per_row];
                        for ((score, class), cn) in
                            scores.iter_mut().zip(packed_classes).zip(&class_norms)
                        {
                            let h = hdc::hamming_distance(query, class.as_words());
                            let dot = dim as f64 - 2.0 * h as f64;
                            *score = quantized_cosine(dot, qn, *cn);
                        }
                    }
                    *slot = argmax(&scores).expect("at least one class");
                }
            } else {
                let mut matrix = vec![0.0f32; rows.rows() * dim];
                encoder
                    .encode_batch_into(rows, &mut matrix)
                    .expect("batch shape validated before the fan-out");
                let mut levels = vec![0i32; dim];
                let mut magnitudes = Vec::new();
                for (local, slot) in out.iter_mut().enumerate() {
                    let query = &matrix[local * dim..(local + 1) * dim];
                    quantize_into_with_scratch(query, width, &mut levels, &mut magnitudes);
                    let qn = levels.iter().map(|&l| (l as f64) * (l as f64)).sum::<f64>().sqrt();
                    for ((score, class), cn) in scores.iter_mut().zip(classes).zip(&class_norms) {
                        let dot = levels
                            .iter()
                            .zip(class.levels())
                            .map(|(&a, &b)| a as f64 * b as f64)
                            .sum::<f64>();
                        *score = quantized_cosine(dot, qn, *cn);
                    }
                    *slot = argmax(&scores).expect("at least one class");
                }
            }
        },
    );
    Ok(predictions)
}

/// The cosine convention of [`QuantizedHypervector::cosine`]: zero norms
/// score `0.0`, everything else is clamped into `[-1, 1]`.
pub(crate) fn quantized_cosine(dot: f64, qn: f64, cn: f64) -> f32 {
    if qn == 0.0 || cn == 0.0 {
        return 0.0;
    }
    (dot / (qn * cn)).clamp(-1.0, 1.0) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CyberHdConfig, EncoderKind};
    use crate::trainer::CyberHdTrainer;
    use hdc::rng::HdcRng;
    use hdc::BatchBuffer;

    fn toy_problem(seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = HdcRng::seed_from(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..3usize {
            for _ in 0..25 {
                xs.push(
                    (0..5)
                        .map(|f| (c as f64 * 0.8 + f as f64 * 0.1 + rng.normal(0.0, 0.1)) as f32)
                        .collect(),
                );
                ys.push(c);
            }
        }
        (xs, ys)
    }

    fn trained(encoder: EncoderKind) -> (crate::CyberHdModel, Vec<Vec<f32>>) {
        let (xs, ys) = toy_problem(31);
        let config = CyberHdConfig::builder(5, 3)
            .dimension(160)
            .encoder(encoder)
            .regeneration_rate(if encoder == EncoderKind::Rbf { 0.1 } else { 0.0 })
            .retrain_epochs(3)
            .seed(5)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap();
        (model, xs)
    }

    #[test]
    fn fused_dense_predictions_match_the_serial_path() {
        for kind in [EncoderKind::Rbf, EncoderKind::IdLevel, EncoderKind::Record] {
            let (model, xs) = trained(kind);
            let buffer = BatchBuffer::from_rows(&xs, 5).unwrap();
            let batched = predict_dense(model.encoder(), model.memory(), buffer.view()).unwrap();
            for (i, x) in xs.iter().enumerate() {
                assert_eq!(batched[i].0, model.predict(x).unwrap(), "{kind:?} sample {i}");
                // The winner similarity is the serial score of the winner.
                let (_, scores) = model.predict_with_scores(x).unwrap();
                assert!((batched[i].1 - scores[batched[i].0]).abs() < 2e-6);
            }
        }
    }

    #[test]
    fn fused_quantized_predictions_match_the_serial_path() {
        let (model, xs) = trained(EncoderKind::Rbf);
        let buffer = BatchBuffer::from_rows(&xs, 5).unwrap();
        for width in BitWidth::ALL {
            let deployed = model.quantize(width);
            let batched =
                predict_quantized(model.encoder(), deployed.classes(), width, buffer.view())
                    .unwrap();
            for (i, x) in xs.iter().enumerate() {
                assert_eq!(batched[i].0, deployed.predict(x).unwrap(), "{width:?} sample {i}");
            }
        }
    }

    #[test]
    fn zero_encoding_scores_zero_on_the_packed_path_like_the_serial_path() {
        // A Record encoder maps the all-zero feature vector to the zero
        // hypervector; the serial 1-bit path quantizes that to all-zero
        // levels (every score 0.0 → class 0).  The packed kernel must not
        // sign-pack zeros into +1 bits instead.
        let (model, mut xs) = trained(EncoderKind::Record);
        xs.push(vec![0.0; 5]);
        let deployed = model.quantize(BitWidth::B1);
        let buffer = BatchBuffer::from_rows(&xs, 5).unwrap();
        let batched =
            predict_quantized(model.encoder(), deployed.classes(), BitWidth::B1, buffer.view())
                .unwrap();
        let zero_row = xs.len() - 1;
        assert_eq!(batched[zero_row].0, deployed.predict(&xs[zero_row]).unwrap());
        assert_eq!(batched[zero_row].0, 0, "all-zero query falls back to class 0");
        assert_eq!(batched[zero_row].1, 0.0, "all-zero query scores zero");
    }

    #[test]
    fn width_errors_are_reported_before_any_work() {
        let (model, _) = trained(EncoderKind::Rbf);
        let data = [0.0f32; 4];
        let bad = BatchView::new(&data, 4).unwrap();
        assert!(predict_dense(model.encoder(), model.memory(), bad).is_err());
        let deployed = model.quantize(BitWidth::B1);
        assert!(predict_quantized(model.encoder(), deployed.classes(), BitWidth::B1, bad).is_err());
    }

    #[test]
    fn empty_batches_produce_empty_predictions() {
        let (model, _) = trained(EncoderKind::Rbf);
        let empty = BatchView::new(&[], 5).unwrap();
        assert!(predict_dense(model.encoder(), model.memory(), empty).unwrap().is_empty());
    }

    #[test]
    fn legacy_row_flattening_preserves_sample_indexed_errors() {
        let rows = vec![vec![0.0f32; 5], vec![0.0f32; 3]];
        let err = flatten_rows(&rows, 5).unwrap_err();
        assert!(err.to_string().contains("sample 1"), "{err}");
        let flat = flatten_rows(&rows[..1], 5).unwrap();
        assert_eq!(flat.len(), 5);
    }
}

//! The sealed, deployable `Detector` artifact: raw flows in, verdicts out.
//!
//! The manual pipeline (generate → split → `Preprocessor::fit` →
//! `transform_with_labels` → config builder → trainer → optional quantize /
//! open-set calibration) exposes every internal seam — which is exactly
//! right for experiments and exactly wrong for deployment.  A production
//! NIDS needs *train once, ship the artifact, serve raw traffic*:
//!
//! ```
//! use cyberhd::Detector;
//! use nids_data::synth::SyntheticConfig;
//! use nids_data::DatasetKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(600, 7))?;
//! let detector = Detector::builder().dimension(256).seed(7).train(&dataset)?;
//!
//! // Serve a raw record (schema values, not preprocessed vectors).
//! let verdict = detector.detect(dataset.records()[0].as_slice())?;
//! assert!(verdict.class < dataset.num_classes());
//!
//! // Ship it: the saved bytes reproduce every prediction bit for bit.
//! let bytes = detector.to_bytes();
//! let loaded = Detector::from_bytes(&bytes)?;
//! assert_eq!(
//!     loaded.detect(dataset.records()[0].as_slice())?,
//!     verdict,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! A [`Detector`] bundles the fitted [`Preprocessor`], the trained encoder,
//! the class memory (dense or quantized) and optional open-set thresholds
//! behind four verbs — [`Detector::detect`], [`Detector::detect_batch`],
//! [`Detector::evaluate`] and [`Detector::into_online`] — plus **versioned
//! persistence** ([`Detector::save`] / [`Detector::load`]) through the
//! bit-exact [`hdc::codec`].  Batch work rides the zero-copy
//! [`hdc::BatchView`] engines end to end.
//!
//! Internally the scoring shapes (full-precision, quantized, open-set
//! thresholded) live behind the object-safe [`ScoringBackend`] trait, and
//! the sealed state is [`std::sync::Arc`]-shared — cloning a `Detector`
//! costs one reference count, which is what lets the [`crate::serve`]
//! layer pin an artifact per in-flight micro-batch and hot-swap artifacts
//! under live traffic without copying class memories around.

use crate::model::{AnyEncoder, CyberHdModel, TrainingReport};
use crate::online::OnlineLearner;
use crate::quantized::QuantizedModel;
use crate::regeneration::RegenerationStats;
use crate::trainer::CyberHdTrainer;
use crate::{CyberHdConfig, CyberHdError, EncoderKind, Result, TrainingBatch};
use eval::metrics::ConfusionMatrix;
use hdc::codec::{CodecError, CodecResult, Reader, Writer};
use hdc::encoder::Encoder;
use hdc::similarity;
use hdc::{AssociativeMemory, BatchView, BitWidth, QuantizedHypervector};
use nids_data::preprocess::{Normalization, Preprocessor};
use nids_data::{Dataset, Schema};
use std::fmt;
use std::sync::Arc;

/// Magic tag of a persisted detector artifact.
const MAGIC: &[u8; 4] = b"CYHD";

/// Current artifact format version.  Readers reject any other version with
/// a clear error instead of misinterpreting the payload; bump it whenever
/// the field layout changes.
///
/// Version 2 appends a CRC-32 integrity trailer over everything before it,
/// so silent on-disk corruption of a checkpointed artifact is detected at
/// load instead of deserializing garbage that happens to parse.  Version 1
/// artifacts (no trailer) are still readable.
const FORMAT_VERSION: u32 = 2;

/// The pre-CRC artifact format, still accepted by [`Detector::from_bytes`].
const LEGACY_FORMAT_VERSION: u32 = 1;

/// Rows per streaming burst of the builder's `.online()` single-pass
/// training mode: large enough to amortize the batched kernels, small
/// enough that the model refreshes many times per pass.
const ONLINE_BURST_ROWS: usize = 256;

/// The outcome of classifying one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Best-matching trained class.
    pub class: usize,
    /// Cosine similarity to that class (integer cosine for quantized
    /// engines).
    pub similarity: f32,
    /// `true` when the detector was built with `.open_set(..)` and the
    /// similarity fell below the winning class's calibrated threshold —
    /// the flow looks like traffic the model was never trained on.
    pub novel: bool,
}

impl Verdict {
    /// The predicted class for in-distribution traffic, `None` when the
    /// flow was flagged as novel.
    pub fn known(&self) -> Option<usize> {
        (!self.novel).then_some(self.class)
    }
}

/// Reusable scratch buffers for the allocation-free single-flow hot path
/// ([`Detector::detect_with`]).
#[derive(Debug, Clone)]
pub struct DetectScratch {
    features: Vec<f32>,
    encoded: Vec<f32>,
    scores: Vec<f32>,
}

/// The scoring surface behind a sealed [`Detector`]: one object-safe
/// dispatch point unifying full-precision ([`DenseBackend`]), quantized
/// ([`QuantizedBackend`]) and open-set-thresholded ([`OpenSetBackend`])
/// scoring.
///
/// The serving layer ([`crate::serve`]) and the detector verbs only ever
/// talk to this trait; the engine-selection branching that used to live
/// inside every `Detector` method now happens once, at build/load time,
/// when the backend is constructed.  Inputs to both scoring verbs are
/// **preprocessed** feature vectors (rows of [`Preprocessor`] output, not
/// raw records) — the `Detector` owns the raw→feature step.
pub trait ScoringBackend: fmt::Debug + Send + Sync {
    /// Number of trained classes.
    fn num_classes(&self) -> usize;

    /// Hypervector dimensionality of the class memory.
    fn dimension(&self) -> usize;

    /// The (full-precision) encoder feeding the class memory.
    fn encoder(&self) -> &AnyEncoder;

    /// Element bitwidth of the class memory; `None` for full precision.
    fn bit_width(&self) -> Option<BitWidth> {
        None
    }

    /// Calibrated per-class open-set thresholds, if this backend flags
    /// novel traffic.
    fn thresholds(&self) -> Option<&[f32]> {
        None
    }

    /// The underlying full-precision model, when there is one.
    fn as_dense(&self) -> Option<&CyberHdModel> {
        None
    }

    /// The underlying quantized deployment model, when there is one.
    fn as_quantized(&self) -> Option<&QuantizedModel> {
        None
    }

    /// Length of the encode scratch buffer [`ScoringBackend::detect_one`]
    /// needs (zero when the backend does not use caller scratch).
    fn scratch_dim(&self) -> usize {
        0
    }

    /// Scores one preprocessed feature vector using caller-provided
    /// scratch (`encoded` of [`ScoringBackend::scratch_dim`] elements,
    /// `scores` of one slot per class).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for a feature vector of the
    /// wrong arity.
    fn detect_one(
        &self,
        features: &[f32],
        encoded: &mut [f32],
        scores: &mut [f32],
    ) -> Result<Verdict>;

    /// Scores a zero-copy batch of preprocessed feature rows through the
    /// fused [`BatchView`] engines.
    ///
    /// Per-row verdicts are **batch-composition invariant**: every kernel
    /// on this path processes rows independently and the per-batch
    /// precomputation (class norms, packed class words) depends only on
    /// the class memory, so splitting a batch at any boundary produces
    /// bit-identical verdicts — the determinism contract the micro-batching
    /// serve engine is built on.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] if the view's row width does
    /// not match the encoder arity.
    fn detect_view(&self, batch: BatchView<'_>) -> Result<Vec<Verdict>>;

    /// Evaluates the backend on a labelled batch view (closed-set: novelty
    /// flags are ignored, every row scores against its nearest class).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for mismatched lengths and
    /// propagates prediction errors.
    fn evaluate_view(&self, batch: BatchView<'_>, labels: &[usize]) -> Result<ConfusionMatrix>;

    /// Persists the engine payload (variant tag + body, **without** the
    /// threshold trailer — the [`Detector`] writes that from
    /// [`ScoringBackend::thresholds`] to keep the v1 artifact layout).
    fn write_engine(&self, w: &mut Writer);

    /// Recovers the owned full-precision model for unsealing, or hands the
    /// backend back when it cannot continue learning.
    fn into_dense_model(
        self: Box<Self>,
    ) -> std::result::Result<CyberHdModel, Box<dyn ScoringBackend>>;
}

/// [`ScoringBackend`] over full-precision class hypervectors.
#[derive(Debug, Clone)]
pub struct DenseBackend {
    model: CyberHdModel,
    /// Cached `similarity::norm` of every class, computed once at
    /// build/load time — the per-query recomputation of the serial path
    /// never happens.
    class_norms: Vec<f32>,
}

impl DenseBackend {
    /// Seals a trained model as a scoring backend, caching class norms.
    pub fn new(model: CyberHdModel) -> Self {
        let class_norms = model.memory().class_norms();
        Self { model, class_norms }
    }

    /// Scores `features`, returning the winning class and its similarity.
    fn score_one(
        &self,
        features: &[f32],
        encoded: &mut [f32],
        scores: &mut [f32],
    ) -> Result<(usize, f32)> {
        self.model.encoder().encode_into(features, encoded)?;
        self.model.memory().similarities_into(encoded, &self.class_norms, scores)?;
        Ok(similarity::argmax(scores).expect("at least one class"))
    }
}

impl ScoringBackend for DenseBackend {
    fn num_classes(&self) -> usize {
        self.model.num_classes()
    }

    fn dimension(&self) -> usize {
        self.model.dimension()
    }

    fn encoder(&self) -> &AnyEncoder {
        self.model.encoder()
    }

    fn as_dense(&self) -> Option<&CyberHdModel> {
        Some(&self.model)
    }

    fn scratch_dim(&self) -> usize {
        self.model.dimension()
    }

    fn detect_one(
        &self,
        features: &[f32],
        encoded: &mut [f32],
        scores: &mut [f32],
    ) -> Result<Verdict> {
        let (class, similarity) = self.score_one(features, encoded, scores)?;
        Ok(Verdict { class, similarity, novel: false })
    }

    fn detect_view(&self, batch: BatchView<'_>) -> Result<Vec<Verdict>> {
        Ok(self
            .model
            .predict_batch_view_scored(batch)?
            .into_iter()
            .map(|(class, similarity)| Verdict { class, similarity, novel: false })
            .collect())
    }

    fn evaluate_view(&self, batch: BatchView<'_>, labels: &[usize]) -> Result<ConfusionMatrix> {
        self.model.evaluate_view(batch, labels)
    }

    fn write_engine(&self, w: &mut Writer) {
        w.u8(0);
        self.model.encoder().write_to(w);
        self.model.memory().write_to(w);
        write_report(w, self.model.report());
    }

    fn into_dense_model(
        self: Box<Self>,
    ) -> std::result::Result<CyberHdModel, Box<dyn ScoringBackend>> {
        Ok(self.model)
    }
}

/// [`ScoringBackend`] over class hypervectors stored at a reduced
/// bitwidth.
#[derive(Debug, Clone)]
pub struct QuantizedBackend {
    model: QuantizedModel,
}

impl QuantizedBackend {
    /// Wraps a quantized deployment model as a scoring backend.
    pub fn new(model: QuantizedModel) -> Self {
        Self { model }
    }
}

impl ScoringBackend for QuantizedBackend {
    fn num_classes(&self) -> usize {
        self.model.num_classes()
    }

    fn dimension(&self) -> usize {
        self.model.dimension()
    }

    fn encoder(&self) -> &AnyEncoder {
        self.model.encoder()
    }

    fn bit_width(&self) -> Option<BitWidth> {
        Some(self.model.width())
    }

    fn as_quantized(&self) -> Option<&QuantizedModel> {
        Some(&self.model)
    }

    fn detect_one(
        &self,
        features: &[f32],
        _encoded: &mut [f32],
        _scores: &mut [f32],
    ) -> Result<Verdict> {
        // The quantized single-flow path quantizes through the model's own
        // (allocating) predictor; caller scratch is unused.
        let (class, similarity) = self.model.predict_with_similarity(features)?;
        Ok(Verdict { class, similarity, novel: false })
    }

    fn detect_view(&self, batch: BatchView<'_>) -> Result<Vec<Verdict>> {
        Ok(self
            .model
            .predict_batch_view_scored(batch)?
            .into_iter()
            .map(|(class, similarity)| Verdict { class, similarity, novel: false })
            .collect())
    }

    fn evaluate_view(&self, batch: BatchView<'_>, labels: &[usize]) -> Result<ConfusionMatrix> {
        self.model.evaluate_view(batch, labels)
    }

    fn write_engine(&self, w: &mut Writer) {
        w.u8(1);
        self.model.encoder().write_to(w);
        w.u8(self.model.width().bits() as u8);
        w.usize(self.model.classes().len());
        for class in self.model.classes() {
            class.write_to(w);
        }
    }

    fn into_dense_model(
        self: Box<Self>,
    ) -> std::result::Result<CyberHdModel, Box<dyn ScoringBackend>> {
        Err(self)
    }
}

/// [`ScoringBackend`] decorating dense scoring with calibrated per-class
/// open-set thresholds: a winner scoring below its class threshold is
/// flagged [`Verdict::novel`].
#[derive(Debug, Clone)]
pub struct OpenSetBackend {
    inner: DenseBackend,
    thresholds: Vec<f32>,
}

impl OpenSetBackend {
    /// Wraps a dense backend with per-class thresholds (one per class).
    pub fn new(inner: DenseBackend, thresholds: Vec<f32>) -> Self {
        debug_assert_eq!(thresholds.len(), inner.num_classes());
        Self { inner, thresholds }
    }

    fn verdict(&self, class: usize, similarity: f32) -> Verdict {
        Verdict { class, similarity, novel: similarity < self.thresholds[class] }
    }
}

impl ScoringBackend for OpenSetBackend {
    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn dimension(&self) -> usize {
        self.inner.dimension()
    }

    fn encoder(&self) -> &AnyEncoder {
        self.inner.encoder()
    }

    fn thresholds(&self) -> Option<&[f32]> {
        Some(&self.thresholds)
    }

    fn as_dense(&self) -> Option<&CyberHdModel> {
        self.inner.as_dense()
    }

    fn scratch_dim(&self) -> usize {
        self.inner.scratch_dim()
    }

    fn detect_one(
        &self,
        features: &[f32],
        encoded: &mut [f32],
        scores: &mut [f32],
    ) -> Result<Verdict> {
        let (class, similarity) = self.inner.score_one(features, encoded, scores)?;
        Ok(self.verdict(class, similarity))
    }

    fn detect_view(&self, batch: BatchView<'_>) -> Result<Vec<Verdict>> {
        Ok(self
            .inner
            .model
            .predict_batch_view_scored(batch)?
            .into_iter()
            .map(|(class, similarity)| self.verdict(class, similarity))
            .collect())
    }

    fn evaluate_view(&self, batch: BatchView<'_>, labels: &[usize]) -> Result<ConfusionMatrix> {
        self.inner.evaluate_view(batch, labels)
    }

    fn write_engine(&self, w: &mut Writer) {
        self.inner.write_engine(w);
    }

    fn into_dense_model(
        self: Box<Self>,
    ) -> std::result::Result<CyberHdModel, Box<dyn ScoringBackend>> {
        // Unsealing drops the thresholds (see `Detector::into_online`).
        Ok(self.inner.model)
    }
}

/// The Arc-shared sealed state of a [`Detector`].
#[derive(Debug)]
struct DetectorState {
    preprocessor: Preprocessor,
    config: CyberHdConfig,
    backend: Box<dyn ScoringBackend>,
}

/// A sealed, deployable intrusion detector (see the [module docs](self)).
///
/// The sealed state is `Arc`-shared: `Clone` costs one reference count,
/// so worker threads, the serve engine's in-flight batches and the
/// registry can all hold the same artifact without copying it.
#[derive(Debug, Clone)]
pub struct Detector {
    state: Arc<DetectorState>,
}

/// Artifact metadata of a sealed [`Detector`] — the admission-check
/// surface of the serving registry (see [`Detector::info`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorInfo {
    /// Name of the raw-record schema the detector consumes.
    pub schema: String,
    /// Raw features per record (pre one-hot expansion).
    pub record_arity: usize,
    /// Preprocessed feature width (post one-hot expansion).
    pub input_width: usize,
    /// Physical hypervector dimensionality.
    pub dimension: usize,
    /// Number of trained classes.
    pub classes: usize,
    /// Encoder family.
    pub encoder: EncoderKind,
    /// Element bitwidth of the class memory; `None` for full precision.
    pub bit_width: Option<BitWidth>,
    /// Artifact format version [`Detector::to_bytes`] writes.
    pub codec_version: u32,
    /// Whether the artifact carries calibrated open-set thresholds.
    pub open_set: bool,
    /// Whether the artifact can be unsealed for streaming
    /// ([`Detector::into_online`]) — dense artifacts only.
    pub online_capable: bool,
}

impl fmt::Display for DetectorInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} raw features -> {} inputs), {:?} encoder, dim {}, {} classes, {}{}{}",
            self.schema,
            self.record_arity,
            self.input_width,
            self.encoder,
            self.dimension,
            self.classes,
            match self.bit_width {
                Some(width) => format!("{width} memory"),
                None => "dense memory".into(),
            },
            if self.open_set { ", open-set" } else { "" },
            if self.online_capable { ", online-capable" } else { "" },
        )
    }
}

/// Builds [`Detector`]s from a labelled [`Dataset`].
///
/// The builder owns both the preprocessing choice and the CyberHD training
/// knobs; [`DetectorBuilder::train`] runs the whole pipeline and seals the
/// result.  Deployment shapes compose as options:
///
/// * [`DetectorBuilder::quantize`] — store the class memory at a reduced
///   bitwidth (the paper's Table I deployment study),
/// * [`DetectorBuilder::open_set`] — calibrate per-class similarity
///   thresholds so zero-day-like traffic is reported as novel,
/// * [`DetectorBuilder::online`] — train with a single streaming pass
///   (prequential mini-bursts) instead of multi-epoch retraining.
#[derive(Debug, Clone)]
pub struct DetectorBuilder {
    normalization: Normalization,
    dimension: usize,
    learning_rate: f32,
    retrain_epochs: usize,
    regeneration_rate: f32,
    encoder: EncoderKind,
    rbf_sigma: f32,
    id_level_levels: usize,
    ngram_order: usize,
    seed: u64,
    encode_threads: usize,
    batch: TrainingBatch,
    quantize: Option<BitWidth>,
    open_set: Option<f64>,
    online: bool,
}

impl Default for DetectorBuilder {
    fn default() -> Self {
        Self {
            normalization: Normalization::MinMax,
            dimension: 512,
            learning_rate: 0.035,
            retrain_epochs: 10,
            regeneration_rate: 0.1,
            encoder: EncoderKind::Rbf,
            rbf_sigma: 1.0,
            id_level_levels: 32,
            ngram_order: 3,
            seed: 0x5EED,
            encode_threads: 1,
            batch: TrainingBatch::SERIAL,
            quantize: None,
            open_set: None,
            online: false,
        }
    }
}

impl DetectorBuilder {
    /// Sets the feature-scaling strategy of the fitted preprocessor.
    pub fn normalization(mut self, normalization: Normalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Sets the physical hypervector dimensionality `D`.
    pub fn dimension(mut self, dimension: usize) -> Self {
        self.dimension = dimension;
        self
    }

    /// Sets the learning rate `η` of the adaptive update.
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.learning_rate = learning_rate;
        self
    }

    /// Sets the number of retraining epochs (ignored by
    /// [`DetectorBuilder::online`] training).
    pub fn retrain_epochs(mut self, retrain_epochs: usize) -> Self {
        self.retrain_epochs = retrain_epochs;
        self
    }

    /// Sets the regeneration rate `R` (zero disables regeneration).
    pub fn regeneration_rate(mut self, regeneration_rate: f32) -> Self {
        self.regeneration_rate = regeneration_rate;
        self
    }

    /// Selects the encoder family.
    pub fn encoder(mut self, encoder: EncoderKind) -> Self {
        self.encoder = encoder;
        self
    }

    /// Sets the Gaussian bandwidth of the RBF encoder.
    pub fn rbf_sigma(mut self, rbf_sigma: f32) -> Self {
        self.rbf_sigma = rbf_sigma;
        self
    }

    /// Sets the level count of the ID–level encoder (also the
    /// numeric-column level count of the symbol-record encoder).
    pub fn id_level_levels(mut self, id_level_levels: usize) -> Self {
        self.id_level_levels = id_level_levels;
        self
    }

    /// Sets the n-gram order of the [`EncoderKind::NGram`] encoder.
    pub fn ngram_order(mut self, ngram_order: usize) -> Self {
        self.ngram_order = ngram_order;
        self
    }

    /// Sets the RNG seed (base vectors, shuffling, regeneration).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for batch encoding.
    pub fn encode_threads(mut self, encode_threads: usize) -> Self {
        self.encode_threads = encode_threads;
        self
    }

    /// Sets the full mini-batch shape of the training engine.
    pub fn training_batch(mut self, batch: TrainingBatch) -> Self {
        self.batch = batch;
        self
    }

    /// Deploys the class memory at the given element bitwidth.
    ///
    /// Incompatible with [`DetectorBuilder::open_set`] (thresholds are
    /// calibrated on full-precision scores).
    pub fn quantize(mut self, width: BitWidth) -> Self {
        self.quantize = Some(width);
        self
    }

    /// Calibrates per-class open-set thresholds at the given quantile
    /// (e.g. `0.05` keeps 95% of in-distribution training traffic above the
    /// threshold); flows scoring below their winning class's threshold are
    /// reported with [`Verdict::novel`] set.
    pub fn open_set(mut self, quantile: f64) -> Self {
        self.open_set = Some(quantile);
        self
    }

    /// Trains with a single streaming pass ([`OnlineLearner`] mini-bursts,
    /// prequential test-then-train) instead of multi-epoch retraining —
    /// the edge-deployment mode of the paper's motivation.
    pub fn online(mut self) -> Self {
        self.online = true;
        self
    }

    /// Runs the full pipeline on `dataset`: fit the preprocessor, transform
    /// into one contiguous matrix, train (batch or streaming), optionally
    /// calibrate open-set thresholds, optionally quantize — and seal the
    /// result.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidConfig`] for incompatible options
    /// (quantize + open-set), [`CyberHdError::Data`] for preprocessing
    /// failures and [`CyberHdError::InvalidData`] for an empty or
    /// inconsistent dataset.
    pub fn train(&self, dataset: &Dataset) -> Result<Detector> {
        if let (Some(width), Some(_)) = (self.quantize, self.open_set) {
            return Err(CyberHdError::InvalidConfig(format!(
                "open-set thresholds are calibrated on full-precision scores and cannot be \
                 combined with {width} quantization; drop one of the two options"
            )));
        }
        // The symbolic encoders consume raw category indices, so they force
        // the symbolic preprocessing mode regardless of what the builder was
        // given — a silent one-hot expansion would destroy the symbol
        // identities the item memories key on.
        let normalization =
            if self.encoder.is_symbolic() { Normalization::Symbolic } else { self.normalization };
        let symbol_alphabets = derive_symbol_alphabets(self.encoder, dataset.schema())?;
        let preprocessor = Preprocessor::fit(dataset, normalization)?;
        let matrix = preprocessor.transform_matrix(dataset)?;
        let width = preprocessor.output_width();
        let view = BatchView::new(&matrix, width).map_err(CyberHdError::from)?;
        let labels = dataset.labels();

        let config = CyberHdConfig::builder(width, dataset.num_classes())
            .dimension(self.dimension)
            .learning_rate(self.learning_rate)
            .retrain_epochs(self.retrain_epochs)
            .regeneration_rate(self.regeneration_rate)
            .encoder(self.encoder)
            .rbf_sigma(self.rbf_sigma)
            .id_level_levels(self.id_level_levels)
            .ngram_order(self.ngram_order)
            .symbol_alphabets(symbol_alphabets)
            .seed(self.seed)
            .encode_threads(self.encode_threads)
            .training_batch(self.batch)
            .build()?;

        let model = if self.online {
            crate::validate_dataset_view(view, labels, width, config.num_classes)?;
            let mut learner = OnlineLearner::new(config)?;
            let mut start = 0usize;
            while start < view.rows() {
                let end = (start + ONLINE_BURST_ROWS).min(view.rows());
                learner.observe_batch_view(view.rows_range(start, end), &labels[start..end])?;
                start = end;
            }
            learner.into_model()
        } else {
            CyberHdTrainer::new(config)?.fit_view(view, labels)?
        };

        // Builder calibration uses the pooled own-class fallback: training
        // corpora for zero-day scenarios structurally omit a class, and an
        // absent class must borrow the global in-distribution floor (so it
        // still rejects) rather than silently never rejecting — or erroring
        // the way manual `OpenSetDetector::calibrate` now does.
        let thresholds = match self.open_set {
            Some(quantile) => Some(crate::openset::calibrate_thresholds_or_global_parts(
                model.encoder(),
                model.memory(),
                view,
                labels,
                quantile,
            )?),
            None => None,
        };

        let config = model.config().clone();
        let backend: Box<dyn ScoringBackend> = match (self.quantize, thresholds) {
            (Some(width), _) => Box::new(QuantizedBackend::new(model.quantize(width))),
            (None, Some(thresholds)) => {
                Box::new(OpenSetBackend::new(DenseBackend::new(model), thresholds))
            }
            (None, None) => Box::new(DenseBackend::new(model)),
        };
        Ok(Detector::from_parts(preprocessor, config, backend))
    }
}

/// Derives the `symbol_alphabets` configuration of the symbolic encoders
/// from a dataset schema: for [`EncoderKind::NGram`] the single shared
/// alphabet (every feature must be categorical with the same cardinality);
/// for [`EncoderKind::SymbolRecord`] one entry per feature (`0` marking
/// numeric columns).  Numeric encoders get an empty vector.
fn derive_symbol_alphabets(encoder: EncoderKind, schema: &Schema) -> Result<Vec<usize>> {
    use nids_data::FeatureKind;
    match encoder {
        EncoderKind::NGram => {
            let mut shared: Option<usize> = None;
            for feature in schema.features() {
                let FeatureKind::Categorical { values } = &feature.kind else {
                    return Err(CyberHdError::InvalidConfig(format!(
                        "the NGram encoder needs an all-categorical sequence schema, but \
                         feature {:?} is numeric",
                        feature.name
                    )));
                };
                match shared {
                    None => shared = Some(values.len()),
                    Some(alphabet) if alphabet != values.len() => {
                        return Err(CyberHdError::InvalidConfig(format!(
                            "the NGram encoder needs one shared alphabet, but feature {:?} \
                             has {} symbols where earlier positions have {alphabet}",
                            feature.name,
                            values.len()
                        )));
                    }
                    Some(_) => {}
                }
            }
            let alphabet = shared.expect("schemas always have at least one feature");
            Ok(vec![alphabet])
        }
        EncoderKind::SymbolRecord => Ok(schema
            .features()
            .iter()
            .map(|feature| match &feature.kind {
                FeatureKind::Categorical { values } => values.len(),
                FeatureKind::Numeric { .. } => 0,
            })
            .collect()),
        _ => Ok(Vec::new()),
    }
}

impl Detector {
    /// Starts building a detector with default options.
    pub fn builder() -> DetectorBuilder {
        DetectorBuilder::default()
    }

    /// Seals preprocessor + backend into a shared artifact.
    fn from_parts(
        preprocessor: Preprocessor,
        config: CyberHdConfig,
        backend: Box<dyn ScoringBackend>,
    ) -> Self {
        Self { state: Arc::new(DetectorState { preprocessor, config, backend }) }
    }

    /// The fitted preprocessing pipeline.
    pub fn preprocessor(&self) -> &Preprocessor {
        &self.state.preprocessor
    }

    /// The schema of the raw records this detector consumes.
    pub fn schema(&self) -> &Schema {
        self.state.preprocessor.schema()
    }

    /// The training configuration the artifact was built with.
    pub fn config(&self) -> &CyberHdConfig {
        &self.state.config
    }

    /// The scoring backend behind the artifact — the dispatch surface the
    /// serving layer drives directly.
    pub fn backend(&self) -> &dyn ScoringBackend {
        self.state.backend.as_ref()
    }

    /// Number of trained classes.
    pub fn num_classes(&self) -> usize {
        self.state.backend.num_classes()
    }

    /// Element bitwidth of the class memory, `None` for full precision.
    pub fn bit_width(&self) -> Option<BitWidth> {
        self.state.backend.bit_width()
    }

    /// The calibrated per-class open-set thresholds, if any.
    pub fn thresholds(&self) -> Option<&[f32]> {
        self.state.backend.thresholds()
    }

    /// The full-precision model, when this is a dense detector.
    pub fn model(&self) -> Option<&CyberHdModel> {
        self.state.backend.as_dense()
    }

    /// The quantized deployment model, when this is a quantized detector.
    pub fn quantized_model(&self) -> Option<&QuantizedModel> {
        self.state.backend.as_quantized()
    }

    /// Reseals this artifact with calibrated per-class open-set thresholds
    /// attached: the preprocessor, config and dense model carry over
    /// verbatim and only the scoring backend gains the threshold
    /// decoration, so the result persists (and hot-swaps) as an open-set
    /// artifact.  The adaptive lane's publish path uses this to keep a
    /// snapshot resealed after drift regeneration emitting open-set
    /// verdicts instead of silently dropping to closed-set.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidConfig`] for a quantized artifact
    /// (thresholds are calibrated on the dense cosine scale) and
    /// [`CyberHdError::InvalidData`] when `thresholds.len()` differs from
    /// the number of classes.
    pub fn with_thresholds(&self, thresholds: Vec<f32>) -> Result<Detector> {
        let model = self.state.backend.as_dense().ok_or_else(|| {
            CyberHdError::InvalidConfig(
                "open-set thresholds require a dense (full-precision) artifact".into(),
            )
        })?;
        if thresholds.len() != model.num_classes() {
            return Err(CyberHdError::InvalidData(format!(
                "{} thresholds for {} classes",
                thresholds.len(),
                model.num_classes()
            )));
        }
        Ok(Self::from_parts(
            self.state.preprocessor.clone(),
            self.state.config.clone(),
            Box::new(OpenSetBackend::new(DenseBackend::new(model.clone()), thresholds)),
        ))
    }

    /// Artifact metadata in one read: what the registry checks before
    /// admitting a hot-swap, and what operators print next to serve stats.
    pub fn info(&self) -> DetectorInfo {
        let backend = self.state.backend.as_ref();
        DetectorInfo {
            schema: self.schema().name().to_string(),
            record_arity: self.schema().num_features(),
            input_width: self.state.preprocessor.output_width(),
            dimension: backend.dimension(),
            classes: backend.num_classes(),
            encoder: self.state.config.encoder,
            bit_width: backend.bit_width(),
            codec_version: FORMAT_VERSION,
            open_set: backend.thresholds().is_some(),
            online_capable: backend.as_dense().is_some(),
        }
    }

    /// Allocates scratch buffers sized for this detector, for the
    /// allocation-free [`Detector::detect_with`] hot path.
    pub fn scratch(&self) -> DetectScratch {
        DetectScratch {
            features: vec![0.0; self.state.preprocessor.output_width()],
            encoded: vec![0.0; self.state.backend.scratch_dim()],
            scores: vec![0.0; self.num_classes()],
        }
    }

    /// Classifies one **raw record** (schema values, not preprocessed
    /// vectors), returning the verdict.
    ///
    /// Convenience form of [`Detector::detect_with`] that allocates its own
    /// scratch; serving loops should allocate one [`DetectScratch`] and
    /// reuse it.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] if the record does not conform to the
    /// schema.
    pub fn detect(&self, record: &[f32]) -> Result<Verdict> {
        self.detect_with(record, &mut self.scratch())
    }

    /// Classifies one raw record using caller-provided scratch buffers —
    /// the allocation-free hot path for dense detectors (preprocess →
    /// encode → score entirely in `scratch`).
    ///
    /// Predictions are bit-exact with preprocessing the record manually and
    /// calling the model's serial `predict`.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] if the record does not conform to the
    /// schema.
    pub fn detect_with(&self, record: &[f32], scratch: &mut DetectScratch) -> Result<Verdict> {
        if scratch.features.len() != self.state.preprocessor.output_width() {
            return Err(CyberHdError::InvalidData(
                "scratch buffers were sized for a different detector".into(),
            ));
        }
        self.state.preprocessor.transform_record_into(record, &mut scratch.features)?;
        self.state.backend.detect_one(&scratch.features, &mut scratch.encoded, &mut scratch.scores)
    }

    /// Classifies a batch of raw records on the fused batched engine: the
    /// records are preprocessed into one contiguous matrix (a single
    /// allocation) and scored through the zero-copy [`BatchView`] pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] on the first record that does not
    /// conform to the schema.
    pub fn detect_batch(&self, records: &[Vec<f32>]) -> Result<Vec<Verdict>> {
        let width = self.state.preprocessor.output_width();
        let matrix = self.state.preprocessor.transform_records_matrix(records)?;
        let view = BatchView::new(&matrix, width).map_err(CyberHdError::from)?;
        self.state.backend.detect_view(view)
    }

    /// Classifies a zero-copy batch of **already preprocessed** feature
    /// rows (width [`Preprocessor::output_width`]) — the flush path of the
    /// serve engine, which preprocesses records one at a time at submit
    /// time into a reusable [`hdc::BatchBuffer`].
    ///
    /// Verdicts are bit-identical to [`Detector::detect_batch`] on the raw
    /// records the rows were transformed from, regardless of how the flows
    /// are split into batches (see [`ScoringBackend::detect_view`]).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] if the view's row width does
    /// not match the preprocessor output width.
    pub fn detect_preprocessed(&self, batch: BatchView<'_>) -> Result<Vec<Verdict>> {
        self.state.backend.detect_view(batch)
    }

    /// Evaluates the detector on a labelled dataset of raw records,
    /// returning the (closed-set) confusion matrix — novel flags are
    /// ignored, every flow is scored against its nearest class.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] if the dataset does not match the
    /// fitted schema, and propagates prediction errors.
    pub fn evaluate(&self, dataset: &Dataset) -> Result<eval::metrics::ConfusionMatrix> {
        let matrix = self.state.preprocessor.transform_matrix(dataset)?;
        let view = BatchView::new(&matrix, self.state.preprocessor.output_width())
            .map_err(CyberHdError::from)?;
        self.state.backend.evaluate_view(view, dataset.labels())
    }

    /// Accuracy on a labelled dataset of raw records.
    ///
    /// # Errors
    ///
    /// Same as [`Detector::evaluate`].
    pub fn accuracy(&self, dataset: &Dataset) -> Result<f64> {
        Ok(self.evaluate(dataset)?.accuracy())
    }

    /// Unseals the detector into a streaming [`OnlineDetector`] that keeps
    /// learning from labelled raw flows (the model continues from the
    /// trained class memory).
    ///
    /// Open-set thresholds are dropped: they were calibrated against the
    /// sealed memory, and a learner that keeps updating would silently
    /// invalidate them.  Re-seal and rebuild with
    /// [`DetectorBuilder::open_set`] to restore them.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidConfig`] for quantized detectors —
    /// the adaptive rule updates full-precision class hypervectors.
    pub fn into_online(self) -> Result<OnlineDetector> {
        if let Some(width) = self.state.backend.bit_width() {
            return Err(CyberHdError::InvalidConfig(format!(
                "a {width} quantized detector cannot continue learning; keep the dense artifact \
                 for streaming and quantize at deployment"
            )));
        }
        // Sole owner: unwrap the Arc and move the model out without a copy.
        // Shared (e.g. still registered for serving): clone the dense model.
        let (preprocessor, model) = match Arc::try_unwrap(self.state) {
            Ok(state) => (
                state.preprocessor,
                state.backend.into_dense_model().expect("bit_width checked above"),
            ),
            Err(shared) => (
                shared.preprocessor.clone(),
                shared.backend.as_dense().expect("bit_width checked above").clone(),
            ),
        };
        Ok(OnlineDetector { preprocessor, learner: OnlineLearner::from_model(model) })
    }

    // ------------------------------------------------------------------
    // Versioned persistence
    // ------------------------------------------------------------------

    /// Serializes the full artifact — preprocessor statistics, encoder
    /// seeds/projections, dense or packed class memory, thresholds — into
    /// the versioned binary format.  A load of these bytes reproduces every
    /// prediction **bit for bit** (floats travel as IEEE-754 bit patterns).
    ///
    /// The version-2 frame ends with a CRC-32 trailer over every preceding
    /// byte; [`Detector::from_bytes`] verifies it before parsing anything,
    /// so corrupted checkpoints fail loudly instead of loading a silently
    /// wrong model.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u32(FORMAT_VERSION);
        self.state.preprocessor.write_to(&mut w);
        write_config(&mut w, &self.state.config);
        self.state.backend.write_engine(&mut w);
        match self.state.backend.thresholds() {
            None => w.bool(false),
            Some(thresholds) => {
                w.bool(true);
                w.f32_slice(thresholds);
            }
        }
        let crc = hdc::codec::crc32(w.as_slice());
        w.u32(crc);
        w.into_bytes()
    }

    /// Deserializes an artifact produced by [`Detector::to_bytes`] —
    /// version 2 (CRC-32 trailer, verified before parsing) or the legacy
    /// version 1 (no trailer).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Persist`] for a wrong magic tag, an
    /// unsupported format version, a checksum mismatch, a truncated stream
    /// or an internally inconsistent payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        read_detector(bytes).map_err(CyberHdError::from)
    }

    /// Saves the artifact to `path` (see [`Detector::to_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Persist`] on I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_bytes())
            .map_err(|e| CyberHdError::Persist(format!("writing {}: {e}", path.display())))
    }

    /// Loads an artifact saved by [`Detector::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Persist`] on I/O failure or a malformed
    /// artifact.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CyberHdError::Persist(format!("reading {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

/// A streaming detector: the unsealed form of a dense [`Detector`] that
/// keeps applying the adaptive rule to labelled raw flows.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    preprocessor: Preprocessor,
    learner: OnlineLearner,
}

impl OnlineDetector {
    /// Observes one labelled raw record: predicts it, then updates the
    /// model.  Returns the prediction made *before* the update.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] for a record that does not conform to
    /// the schema and [`CyberHdError::InvalidData`] for an out-of-range
    /// label.
    pub fn observe(&mut self, record: &[f32], label: usize) -> Result<usize> {
        let features = self.preprocessor.transform_record(record)?;
        self.learner.observe(&features, label)
    }

    /// [`OnlineDetector::observe`] returning `(prediction, similarity)` for
    /// the prediction made *before* the update — the scored form the
    /// adaptive serving lane builds verdicts from.  Identical computation
    /// and identical model update, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] for a record that does not conform to
    /// the schema and [`CyberHdError::InvalidData`] for an out-of-range
    /// label.
    pub fn observe_scored(&mut self, record: &[f32], label: usize) -> Result<(usize, f32)> {
        let features = self.preprocessor.transform_record(record)?;
        self.learner.observe_scored(&features, label)
    }

    /// Observes one burst of labelled raw records through the mini-batch
    /// streaming engine, returning the predictions made *before* the
    /// update.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] on the first malformed record,
    /// [`CyberHdError::InvalidData`] for mismatched lengths or an
    /// out-of-range label.
    pub fn observe_batch(&mut self, records: &[Vec<f32>], labels: &[usize]) -> Result<Vec<usize>> {
        if records.len() != labels.len() {
            return Err(CyberHdError::InvalidData(format!(
                "{} records but {} labels",
                records.len(),
                labels.len()
            )));
        }
        let width = self.preprocessor.output_width();
        let matrix = self.preprocessor.transform_records_matrix(records)?;
        self.learner
            .observe_batch_view(BatchView::new(&matrix, width).map_err(CyberHdError::from)?, labels)
    }

    /// [`OnlineDetector::observe_batch`] returning `(prediction,
    /// similarity)` per record — identical frozen-snapshot scoring and
    /// identical deferred update, bit for bit.  The batched-feedback
    /// serving lane builds its verdicts (and open-set novelty flags) from
    /// the scored form.
    ///
    /// # Errors
    ///
    /// Same as [`OnlineDetector::observe_batch`].
    pub fn observe_batch_scored(
        &mut self,
        records: &[Vec<f32>],
        labels: &[usize],
    ) -> Result<Vec<(usize, f32)>> {
        if records.len() != labels.len() {
            return Err(CyberHdError::InvalidData(format!(
                "{} records but {} labels",
                records.len(),
                labels.len()
            )));
        }
        let width = self.preprocessor.output_width();
        let matrix = self.preprocessor.transform_records_matrix(records)?;
        self.learner.observe_batch_view_scored(
            BatchView::new(&matrix, width).map_err(CyberHdError::from)?,
            labels,
        )
    }

    /// Recalibrates per-class open-set thresholds against the **current**
    /// (post-regeneration) model from a set of labelled in-distribution raw
    /// records — the adaptive lane's reservoir.  Classes the reservoir is
    /// transiently missing borrow the global own-class quantile instead of
    /// silently never rejecting.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] on the first malformed record and
    /// [`CyberHdError::InvalidData`] for inconsistent inputs or an
    /// out-of-range quantile.
    pub fn recalibrate_thresholds(
        &self,
        records: &[Vec<f32>],
        labels: &[usize],
        quantile: f64,
    ) -> Result<Vec<f32>> {
        let width = self.preprocessor.output_width();
        let matrix = self.preprocessor.transform_records_matrix(records)?;
        self.learner.calibrate_thresholds_or_global(
            BatchView::new(&matrix, width).map_err(CyberHdError::from)?,
            labels,
            quantile,
        )
    }

    /// Predicts one raw record without updating the model.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] for a malformed record.
    pub fn predict(&self, record: &[f32]) -> Result<usize> {
        let features = self.preprocessor.transform_record(record)?;
        self.learner.predict(&features)
    }

    /// [`OnlineDetector::predict`] returning `(class, similarity)`.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::Data`] for a malformed record.
    pub fn predict_scored(&self, record: &[f32]) -> Result<(usize, f32)> {
        let features = self.preprocessor.transform_record(record)?;
        self.learner.predict_scored(&features)
    }

    /// Prequential ("test-then-train") accuracy of the streamed phase.
    pub fn prequential_accuracy(&self) -> f64 {
        self.learner.prequential_accuracy()
    }

    /// Number of flows observed since the detector was unsealed.
    pub fn samples_seen(&self) -> usize {
        self.learner.samples_seen()
    }

    /// Runs one regeneration round (see [`OnlineLearner::regenerate`]).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidConfig`] if the configured encoder
    /// cannot regenerate dimensions.
    pub fn regenerate(&mut self) -> Result<usize> {
        self.learner.regenerate()
    }

    /// Runs one regeneration round at an explicit rate (see
    /// [`OnlineLearner::regenerate_at`]).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidConfig`] if the configured encoder
    /// cannot regenerate dimensions.
    pub fn regenerate_at(&mut self, rate: f32) -> Result<usize> {
        self.learner.regenerate_at(rate)
    }

    /// The underlying streaming learner.
    pub fn learner(&self) -> &OnlineLearner {
        &self.learner
    }

    /// Restores the prequential counters after a checkpoint reload (see
    /// [`OnlineLearner::restore_prequential`]).
    pub(crate) fn restore_prequential(&mut self, seen: usize, correct: usize) {
        self.learner.restore_prequential(seen, correct);
    }

    /// The fitted preprocessing pipeline the detector was unsealed with.
    pub fn preprocessor(&self) -> &Preprocessor {
        &self.preprocessor
    }

    /// Re-seals the streaming detector into an immutable [`Detector`].
    /// The result is closed-set; recalibrate thresholds and attach them
    /// with [`Detector::with_thresholds`] (the adaptive lane's publish
    /// path) or rebuild with [`DetectorBuilder::open_set`].
    pub fn seal(self) -> Detector {
        let model = self.learner.into_model();
        let config = model.config().clone();
        Detector::from_parts(self.preprocessor, config, Box::new(DenseBackend::new(model)))
    }

    /// Seals a **snapshot** of the current model into an immutable
    /// [`Detector`] while this streaming detector keeps learning — the
    /// publication step of the drift-adaptive serving loop: the adaptive
    /// lane keeps adapting in place and periodically hands the registry a
    /// sealed copy for the frozen, batch-served tenants.
    ///
    /// The snapshot reproduces the learner's current predictions bit for
    /// bit (the class memory and encoder are cloned verbatim).
    pub fn seal_snapshot(&self) -> Detector {
        let model = self.learner.clone().into_model();
        let config = model.config().clone();
        Detector::from_parts(self.preprocessor.clone(), config, Box::new(DenseBackend::new(model)))
    }
}

// ----------------------------------------------------------------------
// Codec helpers
// ----------------------------------------------------------------------

fn write_config(w: &mut Writer, config: &CyberHdConfig) {
    w.usize(config.input_features);
    w.usize(config.num_classes);
    w.usize(config.dimension);
    w.f32(config.learning_rate);
    w.usize(config.retrain_epochs);
    w.f32(config.regeneration_rate);
    w.u8(match config.encoder {
        EncoderKind::Rbf => 0,
        EncoderKind::IdLevel => 1,
        EncoderKind::Record => 2,
        EncoderKind::NGram => 3,
        EncoderKind::SymbolRecord => 4,
    });
    // The symbolic fields only exist for tags >= 3, keeping every artifact
    // written before the workload zoo byte-identical.
    if config.encoder.is_symbolic() {
        w.usize(config.ngram_order);
        w.usize(config.symbol_alphabets.len());
        for &alphabet in &config.symbol_alphabets {
            w.usize(alphabet);
        }
    }
    w.f32(config.rbf_sigma);
    w.usize(config.id_level_levels);
    w.u64(config.seed);
    w.usize(config.encode_threads);
    w.usize(config.batch.size);
    w.usize(config.batch.threads);
}

fn read_config(r: &mut Reader<'_>) -> CodecResult<CyberHdConfig> {
    let input_features = r.usize()?;
    let num_classes = r.usize()?;
    let dimension = r.usize()?;
    let learning_rate = r.f32()?;
    let retrain_epochs = r.usize()?;
    let regeneration_rate = r.f32()?;
    let encoder = match r.u8()? {
        0 => EncoderKind::Rbf,
        1 => EncoderKind::IdLevel,
        2 => EncoderKind::Record,
        3 => EncoderKind::NGram,
        4 => EncoderKind::SymbolRecord,
        tag => return Err(CodecError::Invalid(format!("encoder-kind tag {tag}"))),
    };
    let (ngram_order, symbol_alphabets) = if encoder.is_symbolic() {
        let order = r.usize()?;
        let len = r.usize()?;
        let mut alphabets = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            alphabets.push(r.usize()?);
        }
        (order, alphabets)
    } else {
        (3, Vec::new())
    };
    let rbf_sigma = r.f32()?;
    let id_level_levels = r.usize()?;
    let seed = r.u64()?;
    let encode_threads = r.usize()?;
    let batch = TrainingBatch { size: r.usize()?, threads: r.usize()? };
    CyberHdConfig::builder(input_features, num_classes)
        .dimension(dimension)
        .learning_rate(learning_rate)
        .retrain_epochs(retrain_epochs)
        .regeneration_rate(regeneration_rate)
        .encoder(encoder)
        .rbf_sigma(rbf_sigma)
        .id_level_levels(id_level_levels)
        .ngram_order(ngram_order)
        .symbol_alphabets(symbol_alphabets)
        .seed(seed)
        .encode_threads(encode_threads)
        .training_batch(batch)
        .build()
        .map_err(|e| CodecError::Invalid(format!("config: {e}")))
}

fn write_report(w: &mut Writer, report: &TrainingReport) {
    w.f64_slice(&report.epoch_accuracy);
    w.usize(report.regeneration.rounds);
    w.usize(report.regeneration.total_regenerated);
    w.usize(report.regeneration.per_round.len());
    for &n in &report.regeneration.per_round {
        w.usize(n);
    }
    w.f32_slice(&report.regeneration.mean_variance_per_round);
    w.usize(report.samples);
    w.usize(report.physical_dimension);
}

fn read_report(r: &mut Reader<'_>) -> CodecResult<TrainingReport> {
    let epoch_accuracy = r.f64_vec()?;
    let rounds = r.usize()?;
    let total_regenerated = r.usize()?;
    let per_round_len = r.usize()?;
    let per_round = (0..per_round_len).map(|_| r.usize()).collect::<CodecResult<Vec<_>>>()?;
    let mean_variance_per_round = r.f32_vec()?;
    let samples = r.usize()?;
    let physical_dimension = r.usize()?;
    let regeneration =
        RegenerationStats { rounds, total_regenerated, per_round, mean_variance_per_round };
    Ok(TrainingReport { epoch_accuracy, regeneration, samples, physical_dimension })
}

fn read_detector(bytes: &[u8]) -> CodecResult<Detector> {
    let mut head = Reader::new(bytes);
    let magic = head.take(4)?;
    if magic != MAGIC {
        return Err(CodecError::Invalid(format!(
            "not a detector artifact (magic {magic:02X?}, expected {MAGIC:02X?})"
        )));
    }
    let version = head.u32()?;
    let body = match version {
        LEGACY_FORMAT_VERSION => &bytes[8..],
        FORMAT_VERSION => {
            // Verify the CRC-32 trailer over everything before it, so a
            // corrupted artifact fails here instead of parsing garbage.
            if bytes.len() < 12 {
                return Err(CodecError::UnexpectedEof { needed: 12, remaining: bytes.len() });
            }
            let trailer_at = bytes.len() - 4;
            let stored = u32::from_le_bytes([
                bytes[trailer_at],
                bytes[trailer_at + 1],
                bytes[trailer_at + 2],
                bytes[trailer_at + 3],
            ]);
            let computed = hdc::codec::crc32(&bytes[..trailer_at]);
            if stored != computed {
                return Err(CodecError::Invalid(format!(
                    "artifact checksum mismatch (stored {stored:08X}, computed {computed:08X}): \
                     the bytes were corrupted after sealing"
                )));
            }
            &bytes[8..trailer_at]
        }
        other => {
            return Err(CodecError::Invalid(format!(
                "artifact format version {other} is not supported (this build reads versions \
                 {LEGACY_FORMAT_VERSION} and {FORMAT_VERSION})"
            )));
        }
    };
    let r = &mut Reader::new(body);
    let preprocessor = Preprocessor::read_from(r)?;
    let config = read_config(r)?;
    if config.input_features != preprocessor.output_width() {
        return Err(CodecError::Invalid(format!(
            "config expects {} input features but the preprocessor produces {}",
            config.input_features,
            preprocessor.output_width()
        )));
    }
    let engine_tag = r.u8()?;
    let backend: Box<dyn ScoringBackend> = match engine_tag {
        0 => {
            let encoder = AnyEncoder::read_from(r)?;
            let memory = AssociativeMemory::read_from(r)?;
            let report = read_report(r)?;
            check_encoder_shape(&encoder, &config, memory.dim(), memory.num_classes())?;
            Box::new(DenseBackend::new(CyberHdModel::from_parts(
                encoder,
                memory,
                config.clone(),
                report,
            )))
        }
        1 => {
            let encoder = AnyEncoder::read_from(r)?;
            let width = BitWidth::from_bits(r.u8()? as u32)
                .map_err(|e| CodecError::Invalid(e.to_string()))?;
            let num_classes = r.usize()?;
            let mut classes: Vec<QuantizedHypervector> =
                Vec::with_capacity(num_classes.min(r.remaining()));
            for _ in 0..num_classes {
                let class = QuantizedHypervector::read_from(r)?;
                if class.width() != width {
                    return Err(CodecError::Invalid(format!(
                        "class stored at {} inside a {width} artifact",
                        class.width()
                    )));
                }
                classes.push(class);
            }
            let dim = classes.first().map(QuantizedHypervector::dim).unwrap_or(0);
            if classes.iter().any(|c| c.dim() != dim) {
                return Err(CodecError::Invalid("class dimensionalities disagree".into()));
            }
            check_encoder_shape(&encoder, &config, dim, classes.len())?;
            Box::new(QuantizedBackend::new(QuantizedModel::from_parts(encoder, classes, width)))
        }
        tag => return Err(CodecError::Invalid(format!("engine tag {tag}"))),
    };
    let backend: Box<dyn ScoringBackend> = if r.bool()? {
        let thresholds = r.f32_vec()?;
        if thresholds.len() != config.num_classes {
            return Err(CodecError::Invalid(format!(
                "{} thresholds for {} classes",
                thresholds.len(),
                config.num_classes
            )));
        }
        match backend.into_dense_model() {
            Ok(model) => Box::new(OpenSetBackend::new(DenseBackend::new(model), thresholds)),
            Err(_) => {
                // The builder forbids quantize + open-set, so a quantized
                // engine with a threshold trailer is a stitched artifact.
                return Err(CodecError::Invalid(
                    "open-set thresholds on a quantized engine".into(),
                ));
            }
        }
    } else {
        backend
    };
    if !r.is_exhausted() {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes after the artifact",
            r.remaining()
        )));
    }
    Ok(Detector::from_parts(preprocessor, config, backend))
}

/// Cross-checks a loaded encoder against the config and class-memory
/// shapes, so a stitched-together artifact fails at load rather than at
/// first detect.
fn check_encoder_shape(
    encoder: &AnyEncoder,
    config: &CyberHdConfig,
    memory_dim: usize,
    memory_classes: usize,
) -> CodecResult<()> {
    if encoder.input_features() != config.input_features {
        return Err(CodecError::Invalid(format!(
            "encoder consumes {} features but the config expects {}",
            encoder.input_features(),
            config.input_features
        )));
    }
    if encoder.output_dim() != memory_dim {
        return Err(CodecError::Invalid(format!(
            "encoder produces {}-dimensional hypervectors but the class memory is \
             {memory_dim}-dimensional",
            encoder.output_dim()
        )));
    }
    if memory_classes != config.num_classes {
        return Err(CodecError::Invalid(format!(
            "{memory_classes} stored classes but the config expects {}",
            config.num_classes
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nids_data::synth::SyntheticConfig;
    use nids_data::DatasetKind;

    fn dataset(samples: usize, seed: u64) -> Dataset {
        DatasetKind::NslKdd
            .generate(&SyntheticConfig::new(samples, seed).difficulty(1.2))
            .expect("synthetic generation")
    }

    fn quick_builder() -> DetectorBuilder {
        Detector::builder().dimension(192).retrain_epochs(2).seed(11)
    }

    #[test]
    fn builder_trains_a_working_detector() {
        let data = dataset(600, 3);
        let detector = quick_builder().train(&data).unwrap();
        assert_eq!(detector.num_classes(), data.num_classes());
        assert_eq!(detector.schema().name(), data.schema().name());
        assert!(detector.bit_width().is_none());
        assert!(detector.thresholds().is_none());
        assert!(detector.model().is_some());
        assert!(detector.quantized_model().is_none());
        let accuracy = detector.accuracy(&data).unwrap();
        assert!(accuracy > 0.5, "training-set accuracy {accuracy}");
    }

    #[test]
    fn detect_matches_the_manual_pipeline_bit_for_bit() {
        let data = dataset(500, 5);
        let detector = quick_builder().train(&data).unwrap();
        let model = detector.model().unwrap();
        let preprocessor = detector.preprocessor();
        let mut scratch = detector.scratch();
        for record in data.records().iter().take(50) {
            let manual = model.predict(&preprocessor.transform_record(record).unwrap()).unwrap();
            let verdict = detector.detect(record).unwrap();
            assert_eq!(verdict.class, manual);
            assert!(!verdict.novel);
            assert_eq!(verdict.known(), Some(manual));
            // The scratch path is the same computation.
            assert_eq!(detector.detect_with(record, &mut scratch).unwrap(), verdict);
        }
    }

    #[test]
    fn detect_batch_matches_the_manual_batched_pipeline() {
        let data = dataset(400, 7);
        let detector = quick_builder().train(&data).unwrap();
        let model = detector.model().unwrap();
        let records: Vec<Vec<f32>> = data.records().to_vec();
        let verdicts = detector.detect_batch(&records).unwrap();
        let manual_x = detector.preprocessor().transform(&data).unwrap();
        let manual = model.predict_batch(&manual_x).unwrap();
        assert_eq!(verdicts.len(), manual.len());
        for (verdict, class) in verdicts.iter().zip(manual) {
            assert_eq!(verdict.class, class);
        }
    }

    #[test]
    fn quantized_detector_serves_and_open_set_flags_novel_traffic() {
        let data = dataset(500, 9);
        let quantized = quick_builder().quantize(BitWidth::B1).train(&data).unwrap();
        assert_eq!(quantized.bit_width(), Some(BitWidth::B1));
        assert!(quantized.model().is_none());
        let record = data.records()[0].as_slice();
        let manual = quantized.quantized_model().unwrap();
        let expected =
            manual.predict(&quantized.preprocessor().transform_record(record).unwrap()).unwrap();
        assert_eq!(quantized.detect(record).unwrap().class, expected);

        let open = quick_builder().open_set(0.05).train(&data).unwrap();
        assert_eq!(open.thresholds().unwrap().len(), data.num_classes());
        // In-distribution traffic is mostly accepted.
        let verdicts = open.detect_batch(data.records()).unwrap();
        let novel = verdicts.iter().filter(|v| v.novel).count();
        assert!(
            (novel as f64) < 0.2 * verdicts.len() as f64,
            "{novel}/{} in-distribution flows flagged novel",
            verdicts.len()
        );
    }

    #[test]
    fn info_reports_artifact_metadata_for_every_shape() {
        let data = dataset(400, 41);
        let dense = quick_builder().train(&data).unwrap();
        let info = dense.info();
        assert_eq!(info.schema, data.schema().name());
        assert_eq!(info.record_arity, data.schema().num_features());
        assert_eq!(info.input_width, dense.preprocessor().output_width());
        assert_eq!(info.dimension, 192);
        assert_eq!(info.classes, data.num_classes());
        assert_eq!(info.encoder, EncoderKind::Rbf);
        assert_eq!(info.bit_width, None);
        assert_eq!(info.codec_version, FORMAT_VERSION);
        assert!(!info.open_set);
        assert!(info.online_capable);
        let shown = info.to_string();
        assert!(shown.contains("dense memory") && shown.contains("online-capable"), "{shown}");

        let quantized = quick_builder().quantize(BitWidth::B1).train(&data).unwrap();
        let info = quantized.info();
        assert_eq!(info.bit_width, Some(BitWidth::B1));
        assert!(!info.online_capable);

        let open = quick_builder().open_set(0.05).train(&data).unwrap();
        assert!(open.info().open_set);
        // A load round trip reports identical metadata.
        let loaded = Detector::from_bytes(&open.to_bytes()).unwrap();
        assert_eq!(loaded.info(), open.info());
    }

    #[test]
    fn clones_share_the_sealed_state() {
        let data = dataset(300, 43);
        let detector = quick_builder().train(&data).unwrap();
        let clone = detector.clone();
        assert!(Arc::ptr_eq(&detector.state, &clone.state), "clone is a reference count bump");
        let record = data.records()[0].as_slice();
        assert_eq!(clone.detect(record).unwrap(), detector.detect(record).unwrap());
        // A shared artifact can still unseal (clone-on-unseal).
        let online = clone.into_online().unwrap();
        assert_eq!(online.samples_seen(), 0);
        assert!(detector.detect(record).is_ok(), "original artifact unaffected");
    }

    #[test]
    fn quantize_and_open_set_do_not_compose() {
        let data = dataset(300, 13);
        let err = quick_builder().quantize(BitWidth::B2).open_set(0.05).train(&data);
        assert!(matches!(err, Err(CyberHdError::InvalidConfig(_))));
    }

    #[test]
    fn online_training_and_streaming_round_trip() {
        let data = dataset(800, 17);
        let detector = quick_builder().online().train(&data).unwrap();
        let accuracy = detector.accuracy(&data).unwrap();
        assert!(accuracy > 0.4, "single-pass accuracy {accuracy}");

        // Unseal, stream more labelled flows, re-seal.
        let mut online = detector.into_online().unwrap();
        assert_eq!(online.samples_seen(), 0);
        let more = dataset(300, 19);
        for (record, &label) in more.records().iter().zip(more.labels()).take(100) {
            online.observe(record, label).unwrap();
        }
        let (burst_records, burst_labels): (Vec<Vec<f32>>, Vec<usize>) = more
            .records()
            .iter()
            .zip(more.labels())
            .skip(100)
            .map(|(record, &label)| (record.clone(), label))
            .unzip();
        online.observe_batch(&burst_records, &burst_labels).unwrap();
        assert_eq!(online.samples_seen(), more.records().len());
        assert!(online.prequential_accuracy() > 0.0);
        let class = online.predict(more.records()[0].as_slice()).unwrap();
        assert!(class < more.num_classes());
        let resealed = online.seal();
        assert!(resealed.thresholds().is_none());
        assert!(resealed.accuracy(&data).unwrap() > 0.4);

        // Quantized artifacts refuse to stream.
        let quantized = quick_builder().quantize(BitWidth::B4).train(&data).unwrap();
        assert!(matches!(quantized.into_online(), Err(CyberHdError::InvalidConfig(_))));
    }

    #[test]
    fn persistence_rejects_foreign_and_corrupt_artifacts() {
        let data = dataset(300, 23);
        let detector = quick_builder().train(&data).unwrap();
        let bytes = detector.to_bytes();

        assert!(matches!(Detector::from_bytes(b"not an artifact"), Err(CyberHdError::Persist(_))));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xFF;
        let err = Detector::from_bytes(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let truncated = &bytes[..bytes.len() / 2];
        assert!(Detector::from_bytes(truncated).is_err());
        // Any corruption of a v2 frame — including appended garbage, which
        // shifts the CRC trailer — fails the checksum before parsing.
        let mut trailing = bytes.clone();
        trailing.push(0);
        let err = Detector::from_bytes(&trailing).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let err = Detector::from_bytes(&flipped).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    /// Strips the CRC trailer off a v2 frame and patches the version field
    /// back to 1 — exactly the bytes a pre-CRC build would have written.
    fn as_legacy_v1(v2_bytes: &[u8]) -> Vec<u8> {
        let mut v1 = v2_bytes[..v2_bytes.len() - 4].to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        v1
    }

    #[test]
    fn legacy_v1_artifacts_still_load_bit_identically() {
        let data = dataset(300, 31);
        let detector = quick_builder().train(&data).unwrap();
        let v1 = as_legacy_v1(&detector.to_bytes());
        let loaded = Detector::from_bytes(&v1).unwrap();
        for record in data.records().iter().take(25) {
            assert_eq!(loaded.detect(record).unwrap(), detector.detect(record).unwrap());
        }
        // Re-serializing a legacy artifact upgrades it to the v2 frame.
        let upgraded = loaded.to_bytes();
        assert_eq!(upgraded, detector.to_bytes());
        // The v1 reader still demands exhaustion (no trailer to absorb
        // trailing garbage).
        let mut trailing = v1;
        trailing.push(0);
        let err = Detector::from_bytes(&trailing).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn save_and_load_round_trip_through_the_filesystem() {
        let data = dataset(300, 29);
        let detector = quick_builder().train(&data).unwrap();
        let path = std::env::temp_dir().join("cyberhd_detector_roundtrip.chd");
        detector.save(&path).unwrap();
        let loaded = Detector::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for record in data.records().iter().take(25) {
            assert_eq!(loaded.detect(record).unwrap(), detector.detect(record).unwrap());
        }
        assert!(Detector::load(std::env::temp_dir().join("cyberhd_missing.chd")).is_err());
    }
}

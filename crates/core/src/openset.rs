//! Open-set detection: flagging traffic that matches *no* trained class.
//!
//! A deployed NIDS constantly faces attack families it was never trained on
//! ("zero-day" traffic).  A nearest-class HDC model will happily assign such
//! flows to whichever trained class is least dissimilar, which is exactly the
//! wrong behaviour.  [`OpenSetDetector`] adds the standard HDC mitigation:
//! per-class **similarity thresholds** calibrated on the training data — a
//! query whose best cosine similarity falls below the winning class's
//! threshold is reported as [`OpenSetPrediction::Unknown`] instead of being
//! forced into a known class.
//!
//! This is an extension beyond the paper's evaluation (the paper's datasets
//! are closed-set), included because the intro motivates CyberHD with the
//! "constant evolution of cyber attacks".

use crate::model::{AnyEncoder, CyberHdModel};
use crate::{CyberHdError, Result};
use hdc::encoder::Encoder;
use hdc::parallel::{engine_threads, for_each_chunk};
use hdc::{AssociativeMemory, BatchView};
use serde::{Deserialize, Serialize};

/// The outcome of an open-set prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpenSetPrediction {
    /// The query matched a trained class with sufficient similarity.
    Known {
        /// Predicted class index.
        class: usize,
        /// Cosine similarity to that class.
        similarity: f32,
    },
    /// The query was too dissimilar from every trained class — likely a
    /// traffic pattern (or attack family) the model has never seen.
    Unknown {
        /// The closest trained class (for triage).
        nearest_class: usize,
        /// Its (insufficient) cosine similarity.
        similarity: f32,
    },
}

impl OpenSetPrediction {
    /// Returns the predicted class for known traffic, `None` for unknown.
    pub fn class(&self) -> Option<usize> {
        match self {
            OpenSetPrediction::Known { class, .. } => Some(*class),
            OpenSetPrediction::Unknown { .. } => None,
        }
    }

    /// Returns `true` if the flow was flagged as unknown/novel.
    pub fn is_unknown(&self) -> bool {
        matches!(self, OpenSetPrediction::Unknown { .. })
    }
}

/// A CyberHD model wrapped with per-class similarity thresholds.
#[derive(Debug, Clone)]
pub struct OpenSetDetector {
    model: CyberHdModel,
    thresholds: Vec<f32>,
}

impl OpenSetDetector {
    /// Calibrates per-class thresholds from labelled (training or
    /// validation) data.
    ///
    /// For each class the detector collects the cosine similarity of every
    /// sample of that class to its own class hypervector and sets the
    /// threshold at the `quantile`-th percentile (e.g. `0.05` keeps 95% of
    /// in-distribution traffic above the threshold).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for inconsistent inputs or an
    /// out-of-range quantile, and [`CyberHdError::UncalibratedClass`] when
    /// a class has zero calibration samples — a silent zero threshold would
    /// accept nearly everything as in-distribution for that class, so
    /// manual calibration refuses instead.  (The serving lane's reservoir
    /// recalibration uses the global own-class quantile as its documented
    /// fallback; see `calibrate_thresholds_or_global_parts`.)
    pub fn calibrate(
        model: CyberHdModel,
        features: &[Vec<f32>],
        labels: &[usize],
        quantile: f64,
    ) -> Result<Self> {
        if features.len() != labels.len() {
            return Err(CyberHdError::InvalidData(format!(
                "{} feature vectors but {} labels",
                features.len(),
                labels.len()
            )));
        }
        if features.is_empty() {
            return Err(CyberHdError::InvalidData("calibration set is empty".into()));
        }
        let data = crate::inference::flatten_rows(features, model.encoder().input_features())?;
        let view = BatchView::new(&data, model.encoder().input_features()).expect("flattened rows");
        let thresholds = calibrate_thresholds(&model, view, labels, quantile)?;
        Ok(Self { model, thresholds })
    }

    /// [`OpenSetDetector::calibrate`] over a zero-copy batch view.
    ///
    /// # Errors
    ///
    /// Same as [`OpenSetDetector::calibrate`].
    pub fn calibrate_view(
        model: CyberHdModel,
        features: BatchView<'_>,
        labels: &[usize],
        quantile: f64,
    ) -> Result<Self> {
        let thresholds = calibrate_thresholds(&model, features, labels, quantile)?;
        Ok(Self { model, thresholds })
    }

    /// The wrapped model.
    pub fn model(&self) -> &CyberHdModel {
        &self.model
    }

    /// The calibrated per-class thresholds.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// Classifies one flow, rejecting it as unknown when its best similarity
    /// falls below the winning class's threshold.
    ///
    /// # Errors
    ///
    /// Returns an error if `features` has the wrong arity.
    pub fn predict(&self, features: &[f32]) -> Result<OpenSetPrediction> {
        let (class, scores) = self.model.predict_with_scores(features)?;
        let similarity = scores[class];
        if similarity >= self.thresholds[class] {
            Ok(OpenSetPrediction::Known { class, similarity })
        } else {
            Ok(OpenSetPrediction::Unknown { nearest_class: class, similarity })
        }
    }

    /// Fraction of `features` flagged as unknown.
    ///
    /// # Errors
    ///
    /// Returns the first prediction error encountered, or
    /// [`CyberHdError::InvalidData`] for an empty batch.
    pub fn unknown_rate(&self, features: &[Vec<f32>]) -> Result<f64> {
        if features.is_empty() {
            return Err(CyberHdError::InvalidData("cannot score zero samples".into()));
        }
        let mut unknown = 0usize;
        for sample in features {
            if self.predict(sample)?.is_unknown() {
                unknown += 1;
            }
        }
        Ok(unknown as f64 / features.len() as f64)
    }
}

/// Computes the per-class similarity thresholds of the open-set layer on
/// the **batched engine**: the calibration set is encoded in
/// cache-resident chunks with class norms computed once, instead of one
/// serial `predict_with_scores` round trip per sample.
///
/// Shared by [`OpenSetDetector`] and the sealed `Detector` artifact
/// builder.  For RBF models the batched encoding carries the engine's
/// documented ~1e-6 rounding relative to the serial path, which shifts
/// thresholds by at most that much.
///
/// # Errors
///
/// Returns [`CyberHdError::InvalidData`] for inconsistent inputs or an
/// out-of-range quantile, and [`CyberHdError::UncalibratedClass`] for a
/// class with zero calibration samples.
pub(crate) fn calibrate_thresholds(
    model: &CyberHdModel,
    features: BatchView<'_>,
    labels: &[usize],
    quantile: f64,
) -> Result<Vec<f32>> {
    let per_class =
        own_class_similarities(model.encoder(), model.memory(), features, labels, quantile)?;
    if let Some(class) = per_class.iter().position(Vec::is_empty) {
        return Err(CyberHdError::UncalibratedClass(class));
    }
    Ok(per_class.into_iter().map(|sims| quantile_of(sims, quantile)).collect())
}

/// [`calibrate_thresholds`] with the reservoir-recalibration fallback: a
/// class with zero calibration samples receives the `quantile`-th
/// percentile of the **pooled** own-class similarities (every sample scored
/// against its own class, all classes together) instead of an error.  The
/// adaptive serving lane recalibrates from a bounded reservoir that may
/// transiently miss a quiet class; borrowing the global in-distribution
/// floor keeps that class open-set rather than never-rejecting.  Takes a
/// borrowed encoder + class memory so the streaming learner can
/// recalibrate mid-trip without cloning itself into a
/// [`CyberHdModel`] first.
///
/// # Errors
///
/// Returns [`CyberHdError::InvalidData`] for inconsistent inputs or an
/// out-of-range quantile.
pub(crate) fn calibrate_thresholds_or_global_parts(
    encoder: &AnyEncoder,
    memory: &AssociativeMemory,
    features: BatchView<'_>,
    labels: &[usize],
    quantile: f64,
) -> Result<Vec<f32>> {
    let per_class = own_class_similarities(encoder, memory, features, labels, quantile)?;
    let pooled: Vec<f32> = per_class.iter().flatten().copied().collect();
    let global = quantile_of(pooled, quantile);
    Ok(per_class
        .into_iter()
        .map(|sims| if sims.is_empty() { global } else { quantile_of(sims, quantile) })
        .collect())
}

/// Sorts `sims` and returns its `quantile`-th percentile (nearest-rank with
/// round-half-up, the convention both calibration entry points share).
///
/// # Panics
///
/// Panics on an empty slice — callers guarantee at least one sample.
fn quantile_of(mut sims: Vec<f32>, quantile: f64) -> f32 {
    assert!(!sims.is_empty(), "quantile of zero samples");
    sims.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let index = ((sims.len() as f64 - 1.0) * quantile).round() as usize;
    sims[index.min(sims.len() - 1)]
}

/// The shared scoring core of both calibration entry points: validates the
/// inputs, scores every sample against its own class hypervector on the
/// batched engine, and groups the similarities per class.
fn own_class_similarities(
    encoder: &AnyEncoder,
    memory: &AssociativeMemory,
    features: BatchView<'_>,
    labels: &[usize],
    quantile: f64,
) -> Result<Vec<Vec<f32>>> {
    if features.rows() != labels.len() {
        return Err(CyberHdError::InvalidData(format!(
            "{} feature rows but {} labels",
            features.rows(),
            labels.len()
        )));
    }
    if features.is_empty() {
        return Err(CyberHdError::InvalidData("calibration set is empty".into()));
    }
    if features.width() != encoder.input_features() {
        return Err(CyberHdError::InvalidData(format!(
            "batch rows are {} features wide, expected {}",
            features.width(),
            encoder.input_features()
        )));
    }
    if !(0.0..=1.0).contains(&quantile) || !quantile.is_finite() {
        return Err(CyberHdError::InvalidData(format!(
            "quantile must lie in [0, 1], got {quantile}"
        )));
    }
    let num_classes = memory.num_classes();
    if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
        return Err(CyberHdError::InvalidData(format!(
            "label {bad} out of range for {num_classes} classes"
        )));
    }

    // Batched own-class scoring: chunked zero-allocation encoding, class
    // norms computed once for the whole calibration set.
    let dim = encoder.output_dim();
    let norms = memory.class_norms();
    let mut own = vec![0.0f32; features.rows()];
    for_each_chunk(
        features.rows(),
        crate::inference::CHUNK_ROWS,
        &mut own,
        1,
        engine_threads(),
        |chunk, out| {
            let rows = features.rows_range(chunk.start, chunk.end);
            let mut matrix = vec![0.0f32; rows.rows() * dim];
            let mut scores = vec![0.0f32; num_classes];
            encoder
                .encode_batch_into(rows, &mut matrix)
                .expect("batch shape validated before the fan-out");
            for (local, slot) in out.iter_mut().enumerate() {
                let query = &matrix[local * dim..(local + 1) * dim];
                memory
                    .similarities_into(query, &norms, &mut scores)
                    .expect("shapes validated before the fan-out");
                *slot = scores[labels[chunk.start + local]];
            }
        },
    );

    let mut per_class: Vec<Vec<f32>> = vec![Vec::new(); num_classes];
    for (&similarity, &label) in own.iter().zip(labels) {
        per_class[label].push(similarity);
    }
    Ok(per_class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CyberHdConfig;
    use crate::trainer::CyberHdTrainer;
    use hdc::rng::HdcRng;

    /// Two trained classes near the origin plus a far-away "novel" cluster
    /// that the model never sees during training.
    fn data() -> (Vec<Vec<f32>>, Vec<usize>, Vec<Vec<f32>>) {
        let mut rng = HdcRng::seed_from(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..2usize {
            for _ in 0..80 {
                xs.push(vec![
                    (c as f64 + rng.normal(0.0, 0.08)) as f32,
                    (1.0 - c as f64 + rng.normal(0.0, 0.08)) as f32,
                    rng.normal(0.0, 0.08) as f32,
                ]);
                ys.push(c);
            }
        }
        let novel: Vec<Vec<f32>> = (0..60)
            .map(|_| {
                vec![
                    (6.0 + rng.normal(0.0, 0.1)) as f32,
                    (-5.0 + rng.normal(0.0, 0.1)) as f32,
                    (7.0 + rng.normal(0.0, 0.1)) as f32,
                ]
            })
            .collect();
        (xs, ys, novel)
    }

    fn trained() -> (CyberHdModel, Vec<Vec<f32>>, Vec<usize>, Vec<Vec<f32>>) {
        let (xs, ys, novel) = data();
        let config = CyberHdConfig::builder(3, 2)
            .dimension(512)
            .retrain_epochs(5)
            .regeneration_rate(0.1)
            .rbf_sigma(1.5)
            .seed(9)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap();
        (model, xs, ys, novel)
    }

    #[test]
    fn calibration_validates_inputs() {
        let (model, xs, ys, _) = trained();
        assert!(OpenSetDetector::calibrate(model.clone(), &xs, &ys[..1], 0.05).is_err());
        assert!(OpenSetDetector::calibrate(model.clone(), &[], &[], 0.05).is_err());
        assert!(OpenSetDetector::calibrate(model.clone(), &xs, &ys, 1.5).is_err());
        let bad_labels = vec![9; xs.len()];
        assert!(OpenSetDetector::calibrate(model, &xs, &bad_labels, 0.05).is_err());
    }

    #[test]
    fn known_traffic_is_accepted_and_novel_traffic_is_rejected() {
        let (model, xs, ys, novel) = trained();
        let detector = OpenSetDetector::calibrate(model, &xs, &ys, 0.05).unwrap();
        assert_eq!(detector.thresholds().len(), 2);

        // In-distribution flows: mostly accepted and correctly classified.
        let known_unknown_rate = detector.unknown_rate(&xs).unwrap();
        assert!(known_unknown_rate < 0.15, "in-distribution rejection rate {known_unknown_rate}");
        let prediction = detector.predict(&xs[0]).unwrap();
        assert_eq!(prediction.class(), Some(ys[0]));
        assert!(!prediction.is_unknown());

        // The far-away novel cluster: mostly rejected.
        let novel_unknown_rate = detector.unknown_rate(&novel).unwrap();
        assert!(
            novel_unknown_rate > 0.7,
            "novel-traffic rejection rate {novel_unknown_rate} should be high"
        );
        let novel_prediction = detector.predict(&novel[0]).unwrap();
        if let OpenSetPrediction::Unknown { nearest_class, similarity } = novel_prediction {
            assert!(nearest_class < 2);
            assert!(similarity < detector.thresholds()[nearest_class]);
        }
    }

    #[test]
    fn zero_quantile_accepts_everything_seen_during_calibration() {
        let (model, xs, ys, _) = trained();
        let detector = OpenSetDetector::calibrate(model, &xs, &ys, 0.0).unwrap();
        // With thresholds at the minimum observed similarity, (almost) no
        // calibration flow can be rejected.
        assert!(detector.unknown_rate(&xs).unwrap() <= 0.02);
    }

    #[test]
    fn zero_sample_classes_are_a_typed_error_for_manual_calibration() {
        let (model, xs, _, _) = trained();
        // Every calibration sample labelled 0 leaves class 1 with zero
        // samples: the old behavior silently set its threshold to 0.0
        // (never reject); manual calibration now refuses with a typed
        // error naming the class.
        let lopsided = vec![0usize; xs.len()];
        match OpenSetDetector::calibrate(model, &xs, &lopsided, 0.05) {
            Err(CyberHdError::UncalibratedClass(class)) => assert_eq!(class, 1),
            other => panic!("expected UncalibratedClass(1), got {other:?}"),
        }
    }

    #[test]
    fn reservoir_fallback_borrows_the_global_own_class_quantile() {
        let (model, xs, _, _) = trained();
        let lopsided = vec![0usize; xs.len()];
        let data = crate::inference::flatten_rows(&xs, model.encoder().input_features()).unwrap();
        let view = BatchView::new(&data, model.encoder().input_features()).unwrap();
        let thresholds = calibrate_thresholds_or_global_parts(
            model.encoder(),
            model.memory(),
            view,
            &lopsided,
            0.05,
        )
        .unwrap();
        assert_eq!(thresholds.len(), 2);
        // The empty class borrows the pooled own-class quantile — here the
        // pool is exactly the class-0-labelled samples, so the two
        // thresholds agree bit for bit, and neither is the silent
        // never-reject 0.0 the old code assigned.
        assert_eq!(thresholds[1].to_bits(), thresholds[0].to_bits());
        assert!(thresholds[1].is_finite());
        assert_ne!(thresholds[1], 0.0);
    }

    #[test]
    fn fallback_matches_strict_calibration_when_every_class_has_samples() {
        let (model, xs, ys, _) = trained();
        let data = crate::inference::flatten_rows(&xs, model.encoder().input_features()).unwrap();
        let view = BatchView::new(&data, model.encoder().input_features()).unwrap();
        let strict = calibrate_thresholds(&model, view, &ys, 0.05).unwrap();
        let fallback =
            calibrate_thresholds_or_global_parts(model.encoder(), model.memory(), view, &ys, 0.05)
                .unwrap();
        let strict_bits: Vec<u32> = strict.iter().map(|t| t.to_bits()).collect();
        let fallback_bits: Vec<u32> = fallback.iter().map(|t| t.to_bits()).collect();
        assert_eq!(strict_bits, fallback_bits);
    }

    #[test]
    fn unknown_rate_requires_samples() {
        let (model, xs, ys, _) = trained();
        let detector = OpenSetDetector::calibrate(model, &xs, &ys, 0.05).unwrap();
        assert!(detector.unknown_rate(&[]).is_err());
        assert!(detector.predict(&[0.0]).is_err());
    }
}

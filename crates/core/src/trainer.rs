//! The CyberHD training loop.
//!
//! [`CyberHdTrainer`] wires together the whole workflow of Fig. 2 of the
//! paper:
//!
//! 1. **(A) Encoding** — every training sample is encoded once into
//!    hyperspace (in parallel across `encode_threads` workers).
//! 2. **(B) Adaptive learning** — class hypervectors are updated with
//!    similarity-weighted deltas: a sample that is already well represented
//!    (`δ ≈ 1`) barely changes the model, a novel pattern (`δ ≈ 0`) is added
//!    with full weight.
//! 3. **(D)–(G) Variance analysis** — after each retraining epoch the model
//!    is normalized, per-dimension cross-class variances are computed and the
//!    `R%` least-significant dimensions are dropped.
//! 4. **(H) Regeneration** — the dropped dimensions' encoder base vectors are
//!    redrawn from the Gaussian distribution, the cached encodings are
//!    patched in place (only the regenerated coordinates are recomputed) and
//!    training continues.
//!
//! Setting `regeneration_rate` to zero turns the same loop into the paper's
//! *baselineHD* (static encoder, adaptive retraining only) — which is exactly
//! how [`crate::BaselineHd`] is implemented.
//!
//! # Serial rule vs. mini-batch engine
//!
//! The adaptive update is order-dependent — every mispredict changes the
//! model the next sample is scored against — which pins the classic rule to
//! one thread.  The [`crate::TrainingBatch`] knob trades a bounded amount of
//! that freshness for parallelism: with `batch.size > 1` each mini-batch is
//! scored against a **frozen snapshot** of the class memory, the adaptive
//! deltas are accumulated per row chunk (fanned out through
//! [`hdc::parallel`]), merged in fixed chunk order and applied once per
//! batch, after which exactly the touched class norms are refreshed.  Chunk
//! boundaries and the merge order depend only on the batch size — never on
//! the thread count — so a fixed seed produces bit-identical models at any
//! parallelism.  `batch.size == 1` (the default) runs the untouched serial
//! loop and reproduces the classic rule bit for bit.

use crate::config::{CyberHdConfig, TrainingBatch};
use crate::model::{AnyEncoder, CyberHdModel, TrainingReport};
use crate::regeneration::{RegenerationPlan, RegenerationStats};
use crate::{validate_dataset, validate_dataset_view, CyberHdError, Result};
use hdc::encoder::Encoder;
use hdc::rng::HdcRng;
use hdc::similarity;
use hdc::{AssociativeMemory, BatchView, Hypervector};

/// The trainer's cache of encoded samples: one row-major `samples × dim`
/// matrix instead of one `Hypervector` allocation per sample.
///
/// Rows are handed to the adaptive update as plain slices, and dimension
/// regeneration patches single coordinates in place.
#[derive(Debug, Clone)]
pub(crate) struct EncodedMatrix {
    data: Vec<f32>,
    dim: usize,
    /// Cached `similarity::norm` of every row, so the mini-batch engine can
    /// score without re-deriving the query norm per visit.  Only built when
    /// that engine will run (empty otherwise — the serial scorer derives
    /// norms itself), and refreshed whenever rows are patched
    /// (regeneration).
    row_norms: Vec<f32>,
}

impl EncodedMatrix {
    /// Encodes `features` through the batched engine: chunked over
    /// [`crate::inference::CHUNK_ROWS`]-row tiles, each tile written by the
    /// encoder's cache-blocked batch kernel, fanned out across at most
    /// `threads` workers.  `cache_row_norms` builds the per-row norm cache
    /// the mini-batch engine scores with; the serial scorer never reads it,
    /// so `batch_size = 1` runs skip the extra pass.
    fn encode(
        encoder: &AnyEncoder,
        features: BatchView<'_>,
        threads: usize,
        cache_row_norms: bool,
    ) -> Result<Self> {
        let dim = encoder.output_dim();
        if features.width() != encoder.input_features() {
            return Err(CyberHdError::Hdc(hdc::HdcError::FeatureMismatch {
                expected: encoder.input_features(),
                actual: features.width(),
            }));
        }
        let mut data = vec![0.0f32; features.rows() * dim];
        hdc::parallel::for_each_chunk(
            features.rows(),
            crate::inference::CHUNK_ROWS,
            &mut data,
            dim,
            threads.max(1),
            |chunk, tile| {
                encoder
                    .encode_batch_into(features.rows_range(chunk.start, chunk.end), tile)
                    .expect("shapes validated before the fan-out");
            },
        );
        let row_norms = if cache_row_norms {
            data.chunks_exact(dim).map(similarity::norm).collect()
        } else {
            Vec::new()
        };
        Ok(Self { data, dim, row_norms })
    }

    fn rows(&self) -> usize {
        self.data.len() / self.dim
    }

    fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Cached `similarity::norm` of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix was encoded without `cache_row_norms` — only
    /// the mini-batch engine calls this, and `fit` builds the cache exactly
    /// when that engine will run.
    fn row_norm(&self, i: usize) -> f32 {
        self.row_norms[i]
    }

    fn patch(&mut self, i: usize, d: usize, value: f32) {
        self.data[i * self.dim + d] = value;
    }

    /// Recomputes every cached row norm (after regeneration patched
    /// coordinates in place); a no-op when the cache was not requested.
    fn refresh_row_norms(&mut self) {
        for (norm, row) in self.row_norms.iter_mut().zip(self.data.chunks_exact(self.dim)) {
            *norm = similarity::norm(row);
        }
    }
}

/// Trains [`CyberHdModel`]s from labelled feature vectors.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct CyberHdTrainer {
    config: CyberHdConfig,
}

impl CyberHdTrainer {
    /// Creates a trainer from a validated configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible for a [`CyberHdConfig`] built through its
    /// builder, but kept fallible so future cross-field checks (e.g.
    /// dimension vs. thread count) do not break the API.
    pub fn new(config: CyberHdConfig) -> Result<Self> {
        Ok(Self { config })
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &CyberHdConfig {
        &self.config
    }

    /// Trains a model on `features` / `labels` (legacy row-per-`Vec` form:
    /// rows are validated and flattened once, then trained through the
    /// zero-copy [`CyberHdTrainer::fit_view`] engine).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] if the dataset is empty or
    /// inconsistent with the configuration, and propagates encoder errors.
    pub fn fit(&self, features: &[Vec<f32>], labels: &[usize]) -> Result<CyberHdModel> {
        let config = &self.config;
        validate_dataset(features, labels, config.input_features, config.num_classes)?;
        let data = crate::inference::flatten_rows(features, config.input_features)?;
        self.fit_view(BatchView::new(&data, config.input_features).expect("flattened rows"), labels)
    }

    /// Trains a model on a zero-copy row-major batch view — the primary
    /// training entry point; callers holding contiguous data (a
    /// preprocessed matrix) pay no copies.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] if the dataset is empty or
    /// inconsistent with the configuration, and propagates encoder errors.
    pub fn fit_view(&self, features: BatchView<'_>, labels: &[usize]) -> Result<CyberHdModel> {
        let config = &self.config;
        validate_dataset_view(features, labels, config.input_features, config.num_classes)?;

        let mut encoder = AnyEncoder::from_config(config)?;
        let mut encoded = EncodedMatrix::encode(
            &encoder,
            features,
            config.encode_threads,
            config.batch.size > 1,
        )?;
        let mut memory = AssociativeMemory::new(config.num_classes, config.dimension)?;
        let mut rng = HdcRng::seed_from(config.seed ^ 0xA5A5_A5A5_DEAD_BEEF);
        let mut stats = RegenerationStats::new();
        let mut epoch_accuracy = Vec::with_capacity(config.retrain_epochs + 1);

        // Per-epoch update state: the serial scorer (batch size 1, the
        // classic rule) or the parallel mini-batch engine, both maintaining
        // cached class norms incrementally instead of recomputing every
        // norm per sample.
        let mut updater = Updater::new(&memory, config.batch, encoded.rows());

        // Initial adaptive pass over the data in its natural order.
        let initial_correct =
            updater.epoch(&mut memory, &encoded, labels, None, config.learning_rate);
        epoch_accuracy.push(initial_correct as f64 / labels.len() as f64);

        for epoch in 0..config.retrain_epochs {
            // Regenerate *before* each retraining epoch except the first, so
            // the final epoch always trains on the final encoder (the paper
            // retrains after updating the base vectors).
            if config.regeneration_rate > 0.0 && epoch > 0 {
                let plan = RegenerationPlan::analyze(&memory, config.regeneration_rate);
                if plan.drop_count() > 0 {
                    apply_regeneration(&mut encoder, &mut memory, &mut encoded, features, &plan)?;
                    stats.record_round(&plan);
                    // Zeroed dimensions invalidate every cached class norm.
                    updater.refresh(&memory);
                }
            }

            let order = rng.permutation(encoded.rows());
            let correct =
                updater.epoch(&mut memory, &encoded, labels, Some(&order), config.learning_rate);
            epoch_accuracy.push(correct as f64 / labels.len() as f64);
        }

        let report = TrainingReport {
            epoch_accuracy,
            regeneration: stats,
            samples: labels.len(),
            physical_dimension: config.dimension,
        };
        Ok(CyberHdModel::from_parts(encoder, memory, config.clone(), report))
    }
}

/// Reusable scoring state for the trainer's per-epoch loop: cached class
/// norms plus one scratch score vector.
///
/// The adaptive update is order-dependent (each mispredict changes the
/// model the next sample is scored against), so the epoch itself stays
/// serial; the batching win here is eliminating the per-sample allocation
/// and the per-sample recomputation of every class norm that
/// `AssociativeMemory::similarities` performs.
pub(crate) struct EpochScorer {
    class_norms: Vec<f32>,
    scores: Vec<f32>,
}

impl EpochScorer {
    pub(crate) fn new(memory: &AssociativeMemory) -> Self {
        Self { class_norms: memory.class_norms(), scores: vec![0.0; memory.num_classes()] }
    }

    /// Recomputes every cached class norm (after regeneration zeroed
    /// dimensions behind the cache's back).
    pub(crate) fn refresh(&mut self, memory: &AssociativeMemory) {
        self.class_norms = memory.class_norms();
    }

    /// Runs one adaptive epoch visiting samples in `order` (or natural
    /// order), returning how many were already classified correctly.
    fn adaptive_epoch_ordered(
        &mut self,
        memory: &mut AssociativeMemory,
        encoded: &EncodedMatrix,
        labels: &[usize],
        order: Option<&[usize]>,
        learning_rate: f32,
    ) -> usize {
        let mut correct = 0usize;
        let mut visit = |i: usize| {
            if self.adaptive_update_slice(memory, encoded.row(i), labels[i], learning_rate) {
                correct += 1;
            }
        };
        match order {
            Some(order) => order.iter().copied().for_each(&mut visit),
            None => (0..encoded.rows()).for_each(&mut visit),
        }
        correct
    }

    /// One adaptive update against a raw encoded row, reusing the cached
    /// class norms and scratch scores.
    ///
    /// Returns `true` if the sample was already classified correctly (in
    /// which case the model is left untouched, matching the paper's
    /// mispredict-driven update rule).
    pub(crate) fn adaptive_update_slice(
        &mut self,
        memory: &mut AssociativeMemory,
        encoded: &[f32],
        label: usize,
        learning_rate: f32,
    ) -> bool {
        memory
            .similarities_into(encoded, &self.class_norms, &mut self.scores)
            .expect("encoded sample dimensionality is validated before training");
        let (predicted, _) =
            similarity::argmax(&self.scores).expect("memory always has at least one class");
        if predicted == label {
            return true;
        }
        // Pull the true class towards the sample, push the confused class
        // away, both scaled by how *novel* the sample is to that class
        // (1 - δ).
        let pull = learning_rate * (1.0 - self.scores[label]);
        let push = learning_rate * (1.0 - self.scores[predicted]);
        memory
            .add_scaled_slice(label, encoded, pull)
            .expect("label index validated before training");
        memory
            .add_scaled_slice(predicted, encoded, -push)
            .expect("predicted index comes from the memory itself");
        // Only the two touched classes changed; re-norm exactly those.
        for class in [label, predicted] {
            self.class_norms[class] =
                similarity::norm(memory.class(class).expect("index in range").as_slice());
        }
        false
    }
}

/// The trainer's per-epoch update strategy, dispatched by
/// [`TrainingBatch::size`]: the classic serial rule at size 1, the parallel
/// mini-batch engine otherwise.
enum Updater {
    Serial(EpochScorer),
    MiniBatch(MiniBatchEngine),
}

impl Updater {
    fn new(memory: &AssociativeMemory, batch: TrainingBatch, rows: usize) -> Self {
        if batch.size <= 1 {
            Updater::Serial(EpochScorer::new(memory))
        } else {
            Updater::MiniBatch(MiniBatchEngine::new(memory, batch, rows))
        }
    }

    fn epoch(
        &mut self,
        memory: &mut AssociativeMemory,
        encoded: &EncodedMatrix,
        labels: &[usize],
        order: Option<&[usize]>,
        learning_rate: f32,
    ) -> usize {
        match self {
            Updater::Serial(scorer) => {
                scorer.adaptive_epoch_ordered(memory, encoded, labels, order, learning_rate)
            }
            Updater::MiniBatch(engine) => {
                engine.epoch(memory, encoded, labels, order, learning_rate)
            }
        }
    }

    fn refresh(&mut self, memory: &AssociativeMemory) {
        match self {
            Updater::Serial(scorer) => scorer.refresh(memory),
            Updater::MiniBatch(engine) => engine.refresh(memory),
        }
    }
}

/// Rows per parallel scoring chunk of the mini-batch engine.
///
/// Chunk boundaries depend only on this constant and the batch size — never
/// on the worker-thread count — which is what makes mini-batch training
/// bit-identical at every parallelism for a fixed seed.
const TRAIN_CHUNK_ROWS: usize = 32;

/// Frozen-snapshot scratch of the mini-batch rule: a dense `classes × dim`
/// delta accumulator plus per-class touch flags, reused across batches (the
/// merge re-zeroes exactly the rows it consumed).
///
/// The mini-batch engine runs one per parallel chunk;
/// [`crate::OnlineLearner::observe_batch`] runs a single one over its whole
/// burst — both apply the identical deferred adaptive rule.
#[derive(Debug, Clone)]
pub(crate) struct ChunkScratch {
    delta: Vec<f32>,
    touched: Vec<bool>,
    correct: usize,
    scores: Vec<f32>,
}

impl ChunkScratch {
    pub(crate) fn new(classes: usize, dim: usize) -> Self {
        Self {
            delta: vec![0.0; classes * dim],
            touched: vec![false; classes],
            correct: 0,
            scores: vec![0.0; classes],
        }
    }

    /// Scores one encoded row against the frozen snapshot and accumulates
    /// the adaptive delta on a mispredict — the same pull/push expressions
    /// as [`EpochScorer::adaptive_update_slice`], deferred into the chunk's
    /// delta rows instead of applied to the live memory.  Returns the
    /// predicted class.  The row norm is caller-supplied (the engine's
    /// [`EncodedMatrix`] cache, bit-identical to recomputing it), saving one
    /// `dim`-length pass per visit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn visit(
        &mut self,
        frozen: &AssociativeMemory,
        class_norms: &[f32],
        row: &[f32],
        row_norm: f32,
        label: usize,
        learning_rate: f32,
    ) -> usize {
        self.visit_scored(frozen, class_norms, row, row_norm, label, learning_rate).0
    }

    /// [`ChunkScratch::visit`] also returning the winner's frozen-snapshot
    /// cosine similarity — identical scoring and identical deferred delta,
    /// bit for bit.  The batched-feedback serving lane builds its verdicts
    /// (and open-set novelty flags) from this score.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn visit_scored(
        &mut self,
        frozen: &AssociativeMemory,
        class_norms: &[f32],
        row: &[f32],
        row_norm: f32,
        label: usize,
        learning_rate: f32,
    ) -> (usize, f32) {
        frozen
            .similarities_with_query_norm(row, row_norm, class_norms, &mut self.scores)
            .expect("encoded sample dimensionality is validated before training");
        let (predicted, best) =
            similarity::argmax(&self.scores).expect("memory always has at least one class");
        if predicted == label {
            self.correct += 1;
            return (predicted, best);
        }
        let pull = learning_rate * (1.0 - self.scores[label]);
        let push = learning_rate * (1.0 - self.scores[predicted]);
        self.accumulate(label, row, pull);
        self.accumulate(predicted, row, -push);
        (predicted, best)
    }

    fn accumulate(&mut self, class: usize, row: &[f32], weight: f32) {
        self.touched[class] = true;
        let dim = row.len();
        for (slot, &v) in self.delta[class * dim..(class + 1) * dim].iter_mut().zip(row) {
            *slot += weight * v;
        }
    }

    /// Merges every touched delta row into `memory` (classes in index
    /// order), re-zeroing the consumed rows and flags, invoking `on_merged`
    /// per merged class, and returning the chunk's reset correct count.
    pub(crate) fn drain_into(
        &mut self,
        memory: &mut AssociativeMemory,
        mut on_merged: impl FnMut(usize),
    ) -> usize {
        let dim = memory.dim();
        for class in 0..self.touched.len() {
            if !self.touched[class] {
                continue;
            }
            self.touched[class] = false;
            let delta = &mut self.delta[class * dim..(class + 1) * dim];
            memory
                .add_scaled_slice(class, delta, 1.0)
                .expect("class index comes from the memory itself");
            delta.fill(0.0);
            on_merged(class);
        }
        std::mem::take(&mut self.correct)
    }
}

/// The parallel mini-batch training engine (see the module docs).
///
/// Owns the cached class norms, one [`ChunkScratch`] per possible chunk and
/// the merge bookkeeping, all allocated once per `fit` and reused for every
/// batch of every epoch.
pub(crate) struct MiniBatchEngine {
    batch_size: usize,
    threads: usize,
    class_norms: Vec<f32>,
    chunks: Vec<ChunkScratch>,
    dirty: Vec<bool>,
}

impl MiniBatchEngine {
    pub(crate) fn new(memory: &AssociativeMemory, batch: TrainingBatch, rows: usize) -> Self {
        let classes = memory.num_classes();
        let dim = memory.dim();
        let batch_size = batch.size.max(1).min(rows.max(1));
        let threads =
            if batch.threads == 0 { hdc::parallel::engine_threads() } else { batch.threads.max(1) };
        let chunk_count = batch_size.div_ceil(TRAIN_CHUNK_ROWS);
        Self {
            batch_size,
            threads,
            class_norms: memory.class_norms(),
            chunks: (0..chunk_count).map(|_| ChunkScratch::new(classes, dim)).collect(),
            dirty: vec![false; classes],
        }
    }

    /// Recomputes every cached class norm (after regeneration zeroed
    /// dimensions behind the cache's back).
    pub(crate) fn refresh(&mut self, memory: &AssociativeMemory) {
        self.class_norms = memory.class_norms();
    }

    /// Runs one epoch visiting samples in `order` (or natural order) in
    /// consecutive mini-batches, returning how many samples were classified
    /// correctly against their batch's snapshot.
    pub(crate) fn epoch(
        &mut self,
        memory: &mut AssociativeMemory,
        encoded: &EncodedMatrix,
        labels: &[usize],
        order: Option<&[usize]>,
        learning_rate: f32,
    ) -> usize {
        let rows = encoded.rows();
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < rows {
            let end = (start + self.batch_size).min(rows);
            correct += self.run_batch(memory, encoded, labels, order, start, end, learning_rate);
            start = end;
        }
        correct
    }

    /// One mini-batch: parallel frozen-snapshot scoring + delta
    /// accumulation, then the deterministic in-order merge.
    #[allow(clippy::too_many_arguments)]
    fn run_batch(
        &mut self,
        memory: &mut AssociativeMemory,
        encoded: &EncodedMatrix,
        labels: &[usize],
        order: Option<&[usize]>,
        start: usize,
        end: usize,
        learning_rate: f32,
    ) -> usize {
        let chunk_count = (end - start).div_ceil(TRAIN_CHUNK_ROWS);
        {
            let frozen: &AssociativeMemory = memory;
            let class_norms = &self.class_norms;
            let scratch = &mut self.chunks[..chunk_count];
            let kernel = |chunk: hdc::parallel::RowChunk, slot: &mut [ChunkScratch]| {
                let scratch = &mut slot[0];
                let lo = start + chunk.start * TRAIN_CHUNK_ROWS;
                let hi = (lo + TRAIN_CHUNK_ROWS).min(end);
                for visit in lo..hi {
                    let sample = order.map_or(visit, |o| o[visit]);
                    scratch.visit(
                        frozen,
                        class_norms,
                        encoded.row(sample),
                        encoded.row_norm(sample),
                        labels[sample],
                        learning_rate,
                    );
                }
            };
            if chunk_count == 1 {
                // Single chunk: no reason to stand up the fan-out.
                kernel(hdc::parallel::RowChunk { start: 0, end: 1 }, &mut scratch[..1]);
            } else {
                hdc::parallel::for_each_chunk(chunk_count, 1, scratch, 1, self.threads, kernel);
            }
        }

        // Deterministic merge: chunks in index order, classes in index
        // order, one slice addition per touched (chunk, class) pair (the
        // drained delta rows are re-zeroed so the scratch is clean for the
        // next batch).
        self.dirty.fill(false);
        let mut correct = 0usize;
        let dirty = &mut self.dirty;
        for scratch in &mut self.chunks[..chunk_count] {
            correct += scratch.drain_into(memory, |class| dirty[class] = true);
        }
        // Only the classes something pulled or pushed need a new norm.
        for (class, dirty) in self.dirty.iter().enumerate() {
            if *dirty {
                self.class_norms[class] =
                    similarity::norm(memory.class(class).expect("index in range").as_slice());
            }
        }
        correct
    }
}

/// Performs one adaptive update for a single encoded sample.
///
/// Returns `true` if the sample was already classified correctly (in which
/// case the model is left untouched, matching the paper's mispredict-driven
/// update rule).
///
/// This is the single-sample convenience form used by the streaming
/// [`crate::OnlineLearner`]; the trainer's epoch loop goes through
/// [`EpochScorer`], which amortizes the class-norm computation this wrapper
/// re-derives per call.
pub(crate) fn adaptive_update(
    memory: &mut AssociativeMemory,
    encoded: &Hypervector,
    label: usize,
    learning_rate: f32,
) -> bool {
    EpochScorer::new(memory).adaptive_update_slice(memory, encoded.as_slice(), label, learning_rate)
}

/// Applies one regeneration plan: zero the dropped dimensions in the model,
/// redraw their base vectors and patch the cached encodings in place.
fn apply_regeneration(
    encoder: &mut AnyEncoder,
    memory: &mut AssociativeMemory,
    encoded: &mut EncodedMatrix,
    features: BatchView<'_>,
    plan: &RegenerationPlan,
) -> Result<()> {
    let rbf = encoder.as_rbf_mut().ok_or_else(|| {
        CyberHdError::InvalidConfig("dimension regeneration requires the RBF encoder".into())
    })?;
    for &d in &plan.drop {
        memory.zero_dimension(d)?;
        rbf.regenerate_dimension(d)?;
    }
    // Patch only the regenerated coordinates of the cached encodings, then
    // bring the cached row norms back in sync with the patched rows.
    for (i, sample) in features.iter_rows().enumerate() {
        for &d in &plan.drop {
            encoded.patch(i, d, rbf.encode_dimension(sample, d)?);
        }
    }
    encoded.refresh_row_norms();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderKind;
    use hdc::rng::HdcRng;

    /// Builds a small synthetic multi-class problem of Gaussian blobs.
    fn blobs(
        classes: usize,
        per_class: usize,
        features: usize,
        spread: f64,
        seed: u64,
    ) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = HdcRng::seed_from(seed);
        let centers: Vec<Vec<f64>> =
            (0..classes).map(|_| (0..features).map(|_| rng.uniform(-1.0, 1.0)).collect()).collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (c, center) in centers.iter().enumerate() {
            for _ in 0..per_class {
                xs.push(center.iter().map(|&m| (m + rng.normal(0.0, spread)) as f32).collect());
                ys.push(c);
            }
        }
        (xs, ys)
    }

    fn base_config(features: usize, classes: usize) -> CyberHdConfig {
        CyberHdConfig::builder(features, classes)
            .dimension(256)
            .retrain_epochs(5)
            .regeneration_rate(0.1)
            .learning_rate(0.05)
            .seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn fit_rejects_inconsistent_data() {
        let trainer = CyberHdTrainer::new(base_config(4, 3)).unwrap();
        assert!(matches!(trainer.fit(&[], &[]), Err(CyberHdError::InvalidData(_))));
        let xs = vec![vec![0.0; 4]];
        assert!(trainer.fit(&xs, &[5]).is_err());
        assert!(trainer.fit(&xs, &[0, 1]).is_err());
        let bad = vec![vec![0.0; 3]];
        assert!(trainer.fit(&bad, &[0]).is_err());
    }

    #[test]
    fn fit_learns_separable_blobs() {
        let (xs, ys) = blobs(4, 40, 8, 0.05, 11);
        let trainer = CyberHdTrainer::new(base_config(8, 4)).unwrap();
        let model = trainer.fit(&xs, &ys).unwrap();
        let accuracy = model.accuracy(&xs, &ys).unwrap();
        assert!(accuracy > 0.9, "training accuracy {accuracy} too low");
        assert_eq!(model.dimension(), 256);
        assert!(model.effective_dimension() >= 256);
    }

    #[test]
    fn regeneration_increases_effective_dimension() {
        let (xs, ys) = blobs(3, 30, 6, 0.1, 5);
        let config = CyberHdConfig::builder(6, 3)
            .dimension(128)
            .retrain_epochs(4)
            .regeneration_rate(0.2)
            .seed(9)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap();
        let report = model.report();
        assert!(report.regeneration.rounds >= 1);
        assert!(model.effective_dimension() > model.dimension());
        // Effective dimension = physical + total regenerated.
        assert_eq!(
            model.effective_dimension(),
            model.dimension() + report.regeneration.total_regenerated
        );
    }

    #[test]
    fn zero_regeneration_rate_never_regenerates() {
        let (xs, ys) = blobs(3, 20, 6, 0.1, 6);
        let config = CyberHdConfig::builder(6, 3)
            .dimension(128)
            .retrain_epochs(3)
            .regeneration_rate(0.0)
            .seed(10)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap();
        assert_eq!(model.report().regeneration.rounds, 0);
        assert_eq!(model.effective_dimension(), model.dimension());
    }

    #[test]
    fn training_is_deterministic_for_a_fixed_seed() {
        let (xs, ys) = blobs(3, 25, 5, 0.1, 7);
        let config = base_config(5, 3);
        let a = CyberHdTrainer::new(config.clone()).unwrap().fit(&xs, &ys).unwrap();
        let b = CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap();
        assert_eq!(a.class_hypervectors(), b.class_hypervectors());
        assert_eq!(a.report().epoch_accuracy, b.report().epoch_accuracy);
    }

    #[test]
    fn parallel_encoding_matches_sequential_encoding() {
        let (xs, _) = blobs(2, 40, 7, 0.2, 8);
        let config = base_config(7, 2);
        let encoder = AnyEncoder::from_config(&config).unwrap();
        let buffer = hdc::BatchBuffer::from_rows(&xs, 7).unwrap();
        let sequential = EncodedMatrix::encode(&encoder, buffer.view(), 1, false).unwrap();
        let parallel = EncodedMatrix::encode(&encoder, buffer.view(), 4, false).unwrap();
        assert_eq!(sequential.data, parallel.data);
        // The matrix rows are the per-sample encodings (up to the batched
        // kernel's float-rounding difference from the serial path).
        for (i, x) in xs.iter().enumerate() {
            let reference = encoder.encode(x).unwrap();
            for (a, b) in sequential.row(i).iter().zip(reference.iter()) {
                assert!((a - b).abs() < 5e-6, "sample {i}: {a} vs {b}");
            }
        }
        // Width errors surface before the fan-out.
        let narrow = [0.0f32; 3];
        let bad = BatchView::new(&narrow, 3).unwrap();
        assert!(EncodedMatrix::encode(&encoder, bad, 2, false).is_err());
    }

    #[test]
    fn adaptive_update_moves_model_towards_novel_samples() {
        let mut memory = AssociativeMemory::new(2, 16).unwrap();
        let sample = Hypervector::from_vec((0..16).map(|i| (i as f32 * 0.3).sin()).collect());
        // Initially everything is zero: the sample is misclassified into
        // class 0 (tie), so class 1 training pulls it in.
        let was_correct = adaptive_update(&mut memory, &sample, 1, 0.5);
        assert!(!was_correct);
        let (winner, _) = memory.nearest(&sample).unwrap();
        assert_eq!(winner, 1, "after the update the true class should win");
        // A second presentation is now correct and leaves the model alone.
        let snapshot = memory.classes().to_vec();
        assert!(adaptive_update(&mut memory, &sample, 1, 0.5));
        assert_eq!(memory.classes(), snapshot.as_slice());
    }

    #[test]
    fn retraining_accuracy_is_monotone_on_easy_data_by_the_end() {
        let (xs, ys) = blobs(4, 30, 8, 0.02, 12);
        let model = CyberHdTrainer::new(base_config(8, 4)).unwrap().fit(&xs, &ys).unwrap();
        let accs = &model.report().epoch_accuracy;
        assert!(accs.len() >= 2);
        assert!(
            accs.last().unwrap() >= accs.first().unwrap(),
            "final accuracy {accs:?} should not be worse than the initial pass"
        );
    }

    /// Shared setup for the mini-batch engine tests: an encoded matrix,
    /// labels and a fresh memory.
    fn engine_fixture(seed: u64) -> (EncodedMatrix, Vec<usize>, AssociativeMemory, Vec<usize>) {
        let (xs, ys) = blobs(3, 30, 6, 0.25, seed);
        let config = base_config(6, 3);
        let encoder = AnyEncoder::from_config(&config).unwrap();
        let buffer = hdc::BatchBuffer::from_rows(&xs, 6).unwrap();
        let encoded = EncodedMatrix::encode(&encoder, buffer.view(), 1, true).unwrap();
        let memory = AssociativeMemory::new(3, 256).unwrap();
        let order = HdcRng::seed_from(seed ^ 0x0DDB).permutation(encoded.rows());
        (encoded, ys, memory, order)
    }

    #[test]
    fn minibatch_engine_at_batch_size_one_is_bit_exact_with_the_serial_rule() {
        let (encoded, labels, memory, order) = engine_fixture(41);
        let mut serial_memory = memory.clone();
        let mut batch_memory = memory;
        let mut scorer = EpochScorer::new(&serial_memory);
        let mut engine =
            MiniBatchEngine::new(&batch_memory, crate::TrainingBatch::of(1), encoded.rows());
        for (epoch, order) in [None, Some(order.as_slice()), None].into_iter().enumerate() {
            let serial_correct =
                scorer.adaptive_epoch_ordered(&mut serial_memory, &encoded, &labels, order, 0.05);
            let batch_correct = engine.epoch(&mut batch_memory, &encoded, &labels, order, 0.05);
            assert_eq!(serial_correct, batch_correct, "epoch {epoch}: correct counts diverge");
            assert_eq!(serial_memory, batch_memory, "epoch {epoch}: class memories diverge");
        }
    }

    #[test]
    fn minibatch_epochs_are_identical_for_every_thread_count() {
        let (encoded, labels, memory, order) = engine_fixture(43);
        let reference: Vec<AssociativeMemory> = {
            let mut m = memory.clone();
            let mut engine = MiniBatchEngine::new(
                &m,
                crate::TrainingBatch { size: 48, threads: 1 },
                encoded.rows(),
            );
            engine.epoch(&mut m, &encoded, &labels, Some(&order), 0.05);
            vec![m]
        };
        for threads in [2, 4, 8] {
            let mut m = memory.clone();
            let mut engine = MiniBatchEngine::new(
                &m,
                crate::TrainingBatch { size: 48, threads },
                encoded.rows(),
            );
            engine.epoch(&mut m, &encoded, &labels, Some(&order), 0.05);
            assert_eq!(m, reference[0], "{threads} threads diverged from 1 thread");
        }
    }

    #[test]
    fn minibatch_training_still_learns_the_blobs() {
        let (xs, ys) = blobs(4, 40, 8, 0.05, 11);
        let config = CyberHdConfig::builder(8, 4)
            .dimension(256)
            .retrain_epochs(5)
            .regeneration_rate(0.1)
            .learning_rate(0.05)
            .batch_size(32)
            .seed(3)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap();
        let accuracy = model.accuracy(&xs, &ys).unwrap();
        assert!(accuracy > 0.9, "mini-batch training accuracy {accuracy} too low");
    }

    #[test]
    fn minibatch_fit_is_deterministic_across_thread_counts_and_regeneration() {
        let (xs, ys) = blobs(3, 35, 5, 0.1, 19);
        let fit_with = |threads: usize| {
            let config = CyberHdConfig::builder(5, 3)
                .dimension(128)
                .retrain_epochs(4)
                .regeneration_rate(0.2)
                .batch_size(24)
                .train_threads(threads)
                .seed(9)
                .build()
                .unwrap();
            CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap()
        };
        let one = fit_with(1);
        for threads in [2, 8] {
            let many = fit_with(threads);
            assert_eq!(one.class_hypervectors(), many.class_hypervectors());
            assert_eq!(one.report().epoch_accuracy, many.report().epoch_accuracy);
            assert_eq!(
                one.report().regeneration.total_regenerated,
                many.report().regeneration.total_regenerated
            );
        }
    }

    #[test]
    fn id_level_encoder_trains_without_regeneration() {
        let (xs, ys) = blobs(3, 30, 6, 0.05, 13);
        // Scale features into [0, 1] for the level encoder.
        let xs: Vec<Vec<f32>> =
            xs.into_iter().map(|v| v.into_iter().map(|x| (x + 2.0) / 4.0).collect()).collect();
        let config = CyberHdConfig::builder(6, 3)
            .dimension(512)
            .encoder(EncoderKind::IdLevel)
            .regeneration_rate(0.0)
            .retrain_epochs(5)
            .seed(2)
            .build()
            .unwrap();
        let model = CyberHdTrainer::new(config).unwrap().fit(&xs, &ys).unwrap();
        assert!(model.accuracy(&xs, &ys).unwrap() > 0.8);
    }
}

//! `cyberhd::serve::shard` — the sharded many-tenant serving engine.
//!
//! One [`ServeEngine`] is a single shard: one lane map behind one
//! `RwLock`, flushed either inline (`max_batch`) or by whoever remembers
//! to call [`ServeEngine::poll`].  A [`ShardedServeEngine`] composes N of
//! them:
//!
//! * **Tenant-hash partitioning** — every tenant id maps to exactly one
//!   shard (FNV-1a over the id, mod N), so submits on different shards
//!   touch disjoint lane maps and never contend on a shared lock.
//! * **Deadline-wheel flushing** — instead of caller-driven polling, the
//!   submission that takes a lane from empty to non-empty schedules one
//!   entry on a shared [`DeadlineWheel`] at `now + max_delay`; per-shard
//!   flusher threads sweep the wheel and flush exactly the lanes whose
//!   deadline fired ([`ServeEngine::poll_tenant`]).  Flushers are
//!   work-conserving: any flusher may dispatch any shard's due entries
//!   (lanes are mutexed, and the determinism contract makes flush timing
//!   irrelevant to verdicts).
//! * **Admission control** — an optional [`AdmissionController`] sheds
//!   deterministically ([`ServeError::Shed`]) before any queue is
//!   touched: per-tenant quota tokens and priority lanes against the
//!   shard's live [`ServeEngine::outstanding`] occupancy.
//!
//! # What sharding does *not* change
//!
//! The bit-identity contract: a tenant lives on exactly one shard, whose
//! lane machinery is the unmodified single-shard [`ServeEngine`] — so a
//! ticket's verdict is bit-identical to one
//! [`crate::Detector::detect_batch`] call over the tenant's flows in
//! submission order, for every shard count, flush interleaving, and
//! flusher-thread schedule (`tests/serve_sharded.rs`).  Registry
//! hot-swaps stay atomic per micro-batch for the same reason: pinning is
//! per lane, and a tenant's lane lives on one shard.

use super::admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, Priority, TenantQuota,
};
use super::timer::DeadlineWheel;
use super::{
    DetectorRegistry, LanePoll, ServeConfig, ServeEngine, ServeError, ServeResult, ServeStats,
    Ticket, Verdict,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`ShardedServeEngine`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (single-shard lane maps) to partition tenants
    /// across.  The default is the machine's core count, capped at 8.
    pub shards: usize,
    /// The per-shard micro-batching watermarks (every shard runs the same
    /// [`ServeConfig`]).
    pub serve: ServeConfig,
    /// Admission-control policy; `None` disables shedding entirely
    /// (submissions then only fail on [`ServeError::Backpressure`]).
    pub admission: Option<AdmissionConfig>,
    /// Spawn per-shard flusher threads driven by the deadline wheel
    /// (requires the `parallel` feature; without it the engine falls back
    /// to caller-driven [`ShardedServeEngine::poll`]).
    pub background_flush: bool,
    /// Slot count of the shared deadline wheel.
    pub wheel_slots: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: hdc::parallel::available_cores().min(8),
            serve: ServeConfig::default(),
            admission: None,
            background_flush: true,
            wheel_slots: 256,
        }
    }
}

impl ShardConfig {
    /// Validates the shard topology and the nested configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero shard or wheel
    /// slot count, or an inconsistent nested config.
    pub fn validate(&self) -> ServeResult<()> {
        if self.shards == 0 {
            return Err(ServeError::InvalidConfig("shards must be non-zero".into()));
        }
        if self.wheel_slots == 0 {
            return Err(ServeError::InvalidConfig("wheel_slots must be non-zero".into()));
        }
        if self.serve.max_delay.is_zero() {
            return Err(ServeError::InvalidConfig(
                "max_delay must be non-zero (the deadline wheel needs a cadence)".into(),
            ));
        }
        if let Some(admission) = &self.admission {
            admission.validate()?;
        }
        self.serve.validate()
    }
}

/// FNV-1a over the tenant id — stable across runs and platforms, so a
/// tenant's shard assignment is reproducible (and testable).
fn fnv1a(tenant: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in tenant.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The sharded serving engine (see the [module docs](self)).
///
/// All methods take `&self`; the engine is `Send + Sync` and meant to be
/// shared behind an `Arc` by many submitter threads.
#[derive(Debug)]
pub struct ShardedServeEngine {
    registry: Arc<DetectorRegistry>,
    config: ShardConfig,
    shards: Vec<Arc<ServeEngine>>,
    wheel: Arc<DeadlineWheel<(usize, Arc<str>)>>,
    admission: Option<Arc<AdmissionController>>,
    shutdown: Arc<AtomicBool>,
    flushers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ShardedServeEngine {
    /// Creates a sharded engine routing through `registry`, spawning the
    /// flusher threads if configured (and the `parallel` feature is on).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an inconsistent
    /// [`ShardConfig`].
    pub fn new(registry: Arc<DetectorRegistry>, config: ShardConfig) -> ServeResult<Self> {
        config.validate()?;
        let shards = (0..config.shards)
            .map(|_| Ok(Arc::new(ServeEngine::new(Arc::clone(&registry), config.serve)?)))
            .collect::<ServeResult<Vec<_>>>()?;
        // Wheel granularity: fine enough that a deadline slips by at most
        // ~a quarter of max_delay, bounded so flusher wake-ups stay sane.
        let granularity = (config.serve.max_delay / 4)
            .clamp(Duration::from_micros(50), Duration::from_millis(10));
        let wheel = Arc::new(DeadlineWheel::new(granularity, config.wheel_slots));
        let admission = match &config.admission {
            Some(cfg) => Some(Arc::new(AdmissionController::new(*cfg)?)),
            None => None,
        };
        let engine = Self {
            registry,
            config,
            shards,
            wheel,
            admission,
            shutdown: Arc::new(AtomicBool::new(false)),
            flushers: Mutex::new(Vec::new()),
        };
        engine.spawn_flushers();
        Ok(engine)
    }

    /// Whether submissions schedule deadline-wheel entries (background
    /// flushers are running).  Without the `parallel` feature the engine
    /// is caller-driven regardless of [`ShardConfig::background_flush`].
    pub fn background_flush_active(&self) -> bool {
        cfg!(feature = "parallel") && self.config.background_flush
    }

    /// Spawns one flusher thread per shard (no-op when background
    /// flushing is inactive).
    fn spawn_flushers(&self) {
        if !self.background_flush_active() {
            return;
        }
        let mut flushers = self.flushers.lock().expect("flusher registry lock");
        for shard in 0..self.shards.len() {
            let shards: Vec<Arc<ServeEngine>> = self.shards.iter().map(Arc::clone).collect();
            let wheel = Arc::clone(&self.wheel);
            let shutdown = Arc::clone(&self.shutdown);
            let tick = wheel.granularity();
            flushers.push(
                std::thread::Builder::new()
                    .name(format!("cyberhd-flusher-{shard}"))
                    .spawn(move || flusher_loop(shard, &shards, &wheel, &shutdown, tick))
                    .expect("spawn flusher thread"),
            );
        }
    }

    /// The registry this engine routes through.
    pub fn registry(&self) -> &Arc<DetectorRegistry> {
        &self.registry
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `tenant` is served on — pure tenant-hash routing,
    /// stable for the engine's lifetime.
    pub fn shard_of(&self, tenant: &str) -> usize {
        (fnv1a(tenant) % self.shards.len() as u64) as usize
    }

    /// The single-shard engine serving `tenant`.
    fn shard(&self, tenant: &str) -> &Arc<ServeEngine> {
        &self.shards[self.shard_of(tenant)]
    }

    /// Submits one raw flow record for `tenant`, returning a [`Ticket`]
    /// for its verdict — [`ServeEngine::submit`] with sharding, admission
    /// control, and deadline scheduling in front.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Shed`] — admission control shed the submission
    ///   (quota exhausted, or the shard is over its overload watermark
    ///   for this tenant's priority); nothing was queued,
    /// * the [`ServeEngine::submit`] errors ([`ServeError::UnknownTenant`],
    ///   [`ServeError::Backpressure`], [`ServeError::Rejected`]).
    pub fn submit(&self, tenant: &str, record: &[f32]) -> ServeResult<Ticket> {
        let shard_index = self.shard_of(tenant);
        let shard = &self.shards[shard_index];
        if let Some(admission) = &self.admission {
            admission.admit(tenant, shard.outstanding(), Instant::now())?;
        }
        let (ticket, pending) = shard.submit_counted(tenant, record)?;
        // Exactly one wheel entry per in-flight batch: the flow that
        // started the batch (pending went 0 → 1) arms its deadline.  A
        // batch that filled and flushed inline (pending == 0) needs none.
        if pending == 1 && self.background_flush_active() {
            self.wheel.schedule(
                Instant::now() + self.config.serve.max_delay,
                (shard_index, Arc::clone(&ticket.tenant)),
            );
        }
        Ok(ticket)
    }

    /// Non-blocking collect — [`ServeEngine::try_take`] on the ticket's
    /// shard.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::try_take`].
    pub fn try_take(&self, ticket: &Ticket) -> ServeResult<Option<Verdict>> {
        self.shard(&ticket.tenant).try_take(ticket)
    }

    /// Collects a ticket's verdict, flushing its batch first if still
    /// pending — [`ServeEngine::take`] on the ticket's shard.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::take`].
    pub fn take(&self, ticket: &Ticket) -> ServeResult<Verdict> {
        self.shard(&ticket.tenant).take(ticket)
    }

    /// Flushes `tenant`'s pending flows now.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::flush`].
    pub fn flush(&self, tenant: &str) -> ServeResult<usize> {
        self.shard(tenant).flush(tenant)
    }

    /// Flushes every lane of every shard, fanning shards out across
    /// worker threads.  Returns the number of flows scored.
    pub fn flush_all(&self) -> usize {
        let served = std::sync::atomic::AtomicUsize::new(0);
        let shards: Vec<Arc<ServeEngine>> = self.shards.iter().map(Arc::clone).collect();
        let threads = hdc::parallel::engine_threads().min(shards.len());
        hdc::parallel::for_each_task(shards, threads, |shard| {
            served.fetch_add(shard.flush_all(), std::sync::atomic::Ordering::Relaxed);
        });
        served.into_inner()
    }

    /// Caller-driven deadline pass over every shard —
    /// [`ServeEngine::poll`] fanned across the fleet, for deployments
    /// without background flushers (e.g. builds without the `parallel`
    /// feature).  Also sweeps any stale wheel entries so a disabled
    /// flusher cannot leak them.  Returns the number of flows scored.
    pub fn poll(&self) -> usize {
        // Drain the wheel even in caller-driven mode: entries scheduled
        // while flushers were active (or spuriously) must not pile up.
        let _ = self.wheel.collect_expired(Instant::now());
        self.shards.iter().map(|shard| shard.poll()).sum()
    }

    /// Drops `tenant`'s lane on its shard — [`ServeEngine::evict`].
    pub fn evict(&self, tenant: &str) -> bool {
        self.shard(tenant).evict(tenant)
    }

    /// Queued work (pending flows plus uncollected verdicts) summed over
    /// every shard.
    pub fn outstanding(&self) -> usize {
        self.shards.iter().map(|shard| shard.outstanding()).sum()
    }

    /// A snapshot of `tenant`'s serving counters, or `None` before its
    /// first submission — [`ServeEngine::stats`] on its shard.
    pub fn stats(&self, tenant: &str) -> Option<ServeStats> {
        self.shard(tenant).stats(tenant)
    }

    /// Every tenant's [`ServeStats`] folded into one fleet-wide snapshot
    /// via [`ServeStats::merge`] (counters add, latency histograms merge
    /// bucket-wise, percentiles recomputed from the merged histogram), or
    /// `None` when no tenant has serving state yet.  The snapshot's
    /// `tenant` is `"fleet"`; `detector_version` is `0` unless every lane
    /// serves the same version.
    pub fn fleet_stats(&self) -> Option<ServeStats> {
        let mut merged: Option<ServeStats> = None;
        for shard in &self.shards {
            for tenant in shard.lane_keys() {
                if let Some(stats) = shard.stats(&tenant) {
                    match &mut merged {
                        Some(fleet) => fleet.merge(&stats),
                        None => merged = Some(stats),
                    }
                }
            }
        }
        merged.map(|mut fleet| {
            fleet.tenant = "fleet".into();
            fleet
        })
    }

    /// Sets a tenant's overload priority.  No-op without admission
    /// control.
    pub fn set_priority(&self, tenant: &str, priority: Priority) {
        if let Some(admission) = &self.admission {
            admission.set_priority(tenant, priority);
        }
    }

    /// Overrides a tenant's quota (`None` = unmetered).  No-op without
    /// admission control.
    pub fn set_quota(&self, tenant: &str, quota: Option<TenantQuota>) {
        if let Some(admission) = &self.admission {
            admission.set_quota(tenant, quota);
        }
    }

    /// Admission-control decision counters (all zero when admission
    /// control is disabled).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.as_ref().map(|a| a.stats()).unwrap_or_default()
    }
}

impl Drop for ShardedServeEngine {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let flushers = std::mem::take(&mut *self.flushers.lock().expect("flusher registry lock"));
        for flusher in flushers {
            let _ = flusher.join();
        }
    }
}

/// Body of one shard's flusher thread: sweep the shared wheel, flush the
/// due lanes, reschedule the not-yet-due ones, and run the owning shard's
/// full [`ServeEngine::poll`] occasionally as a housekeeping backstop
/// (evicts lanes of removed tenants, catches any deadline the wheel lost
/// track of).
fn flusher_loop(
    own_shard: usize,
    shards: &[Arc<ServeEngine>],
    wheel: &DeadlineWheel<(usize, Arc<str>)>,
    shutdown: &AtomicBool,
    tick: Duration,
) {
    let mut ticks = 0u32;
    while !shutdown.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        let now = Instant::now();
        // Work-conserving: this thread dispatches *any* shard's due
        // entries.  Lanes are mutexed and verdicts are flush-timing
        // invariant, so cross-shard dispatch is free concurrency, not a
        // correctness risk.
        for (shard, tenant) in wheel.collect_expired(now) {
            match shards[shard].poll_tenant(&tenant) {
                LanePoll::Flushed(_) | LanePoll::Idle => {}
                LanePoll::Due(remaining) => {
                    wheel.schedule(Instant::now() + remaining, (shard, tenant));
                }
            }
        }
        ticks = ticks.wrapping_add(1);
        // Housekeeping backstop every ~64 ticks, on the owning shard only
        // (each shard gets exactly one janitor).
        if ticks.is_multiple_of(64) {
            shards[own_shard].poll();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Detector;
    use nids_data::synth::SyntheticConfig;
    use nids_data::DatasetKind;

    fn small_detector() -> (Detector, nids_data::Dataset) {
        let dataset =
            DatasetKind::NslKdd.generate(&SyntheticConfig::new(200, 11)).expect("synthetic data");
        let detector = Detector::builder()
            .dimension(128)
            .retrain_epochs(1)
            .train(&dataset)
            .expect("train detector");
        (detector, dataset)
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(ShardConfig::default().validate().is_ok());
        assert!(ShardConfig { shards: 0, ..Default::default() }.validate().is_err());
        assert!(ShardConfig { wheel_slots: 0, ..Default::default() }.validate().is_err());
        let bad_delay = ShardConfig {
            serve: ServeConfig { max_delay: Duration::ZERO, ..Default::default() },
            ..Default::default()
        };
        assert!(bad_delay.validate().is_err());
    }

    #[test]
    fn tenant_hashing_is_stable_and_spreads() {
        let registry = Arc::new(DetectorRegistry::new());
        let engine = ShardedServeEngine::new(
            registry,
            ShardConfig { shards: 8, background_flush: false, ..Default::default() },
        )
        .unwrap();
        let mut hit = [false; 8];
        for i in 0..64 {
            let tenant = format!("tenant-{i}");
            let shard = engine.shard_of(&tenant);
            assert_eq!(shard, engine.shard_of(&tenant), "routing is deterministic");
            hit[shard] = true;
        }
        assert!(hit.iter().filter(|&&h| h).count() >= 4, "64 tenants spread over 8 shards");
    }

    #[test]
    fn submit_take_roundtrip_matches_single_engine() {
        let (detector, dataset) = small_detector();
        let oracle = detector.detect_batch(&dataset.records()[..32]).unwrap();

        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector).unwrap();
        let engine = ShardedServeEngine::new(
            Arc::clone(&registry),
            ShardConfig { shards: 4, background_flush: false, ..Default::default() },
        )
        .unwrap();
        let tickets: Vec<Ticket> =
            dataset.records()[..32].iter().map(|r| engine.submit("t0", r).unwrap()).collect();
        assert_eq!(engine.outstanding(), 32);
        engine.flush_all();
        for (ticket, expected) in tickets.iter().zip(&oracle) {
            assert_eq!(&engine.take(ticket).unwrap(), expected);
        }
        assert_eq!(engine.outstanding(), 0);
        let stats = engine.stats("t0").unwrap();
        assert_eq!(stats.flows_served, 32);
        let fleet = engine.fleet_stats().unwrap();
        assert_eq!(fleet.tenant, "fleet");
        assert_eq!(fleet.flows_served, 32);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn background_flusher_serves_without_polling() {
        let (detector, dataset) = small_detector();
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector).unwrap();
        let engine = ShardedServeEngine::new(
            Arc::clone(&registry),
            ShardConfig {
                shards: 2,
                serve: ServeConfig {
                    max_batch: 64,
                    max_delay: Duration::from_millis(1),
                    queue_capacity: 256,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(engine.background_flush_active());
        // Submit fewer than max_batch flows, then wait: only the deadline
        // wheel can flush them (no poll, no explicit flush).
        let tickets: Vec<Ticket> =
            dataset.records()[..5].iter().map(|r| engine.submit("t0", r).unwrap()).collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        'wait: for ticket in &tickets {
            loop {
                if engine.try_take(ticket).unwrap().is_some() {
                    continue 'wait;
                }
                assert!(Instant::now() < deadline, "background flusher never fired");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    #[test]
    fn admission_shed_path_is_reachable_and_typed() {
        let (detector, dataset) = small_detector();
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector).unwrap();
        let engine = ShardedServeEngine::new(
            Arc::clone(&registry),
            ShardConfig {
                shards: 2,
                background_flush: false,
                admission: Some(AdmissionConfig {
                    default_quota: Some(TenantQuota { rate_per_sec: 0, burst: 3 }),
                    ..Default::default()
                }),
                ..Default::default()
            },
        )
        .unwrap();
        for record in &dataset.records()[..3] {
            engine.submit("t0", record).unwrap();
        }
        match engine.submit("t0", &dataset.records()[3]) {
            Err(ServeError::Shed { tenant, retry_hint }) => {
                assert_eq!(tenant, "t0");
                assert!(retry_hint > Duration::ZERO);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(engine.admission_stats().shed_quota, 1);
        assert_eq!(engine.admission_stats().admitted, 3);
        // The three admitted flows still serve normally.
        engine.flush_all();
        assert_eq!(engine.stats("t0").unwrap().flows_served, 3);
    }
}

//! `cyberhd::serve::admission` — deterministic admission control for the
//! sharded serving engine.
//!
//! Backpressure ([`ServeError::Backpressure`]) is the *last* line of
//! defence: by the time a tenant's bounded queue is full, latency has
//! already collapsed.  Admission control sheds **before** work is queued,
//! with two independent, fully deterministic policies:
//!
//! * **Per-tenant quota tokens** — a token bucket per tenant
//!   ([`TenantQuota`]): `burst` tokens up front, refilled at
//!   `rate_per_sec`.  A submission with no token is shed with a
//!   [`ServeError::Shed`] whose `retry_hint` is the time until the next
//!   token, so well-behaved callers converge on their quota rate instead
//!   of hammering the engine.
//! * **Priority lanes under overload** — every tenant carries a
//!   [`Priority`]; as a shard's outstanding work (pending flows plus
//!   uncollected verdicts, [`super::ServeEngine::outstanding`]) climbs
//!   through the configured watermarks, lower priorities are shed first:
//!   `Low` above `low_watermark`, `Low`+`Normal` above
//!   `normal_watermark`, everyone at full `shard_capacity`.
//!
//! "Deterministic" means no randomness anywhere: the same submission
//! sequence with the same timestamps produces the same admit/shed
//! decisions, which is what lets `tests/serve_sharded.rs` pin verdict
//! bit-identity *through* the shedding path.

use super::{ServeError, ServeResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

/// A tenant's scheduling class under overload: higher priorities keep
/// being admitted while lower ones are already shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Shed first (batch/bulk traffic).
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Shed only when the shard is at full capacity.
    High,
}

/// A per-tenant token-bucket quota: `burst` tokens up front, refilled
/// continuously at `rate_per_sec`.  `rate_per_sec == 0` means the burst
/// is all the tenant ever gets (useful for tests and hard caps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Sustained admissions per second.
    pub rate_per_sec: u64,
    /// Maximum tokens the bucket holds (and its initial fill).
    pub burst: u64,
}

/// Admission-control policy knobs (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Quota applied to tenants without an explicit
    /// [`AdmissionController::set_quota`] override; `None` = unmetered.
    pub default_quota: Option<TenantQuota>,
    /// Outstanding flows per shard at which even [`Priority::High`]
    /// traffic is shed.
    pub shard_capacity: usize,
    /// Fraction of `shard_capacity` above which [`Priority::Low`] is
    /// shed.
    pub low_watermark: f64,
    /// Fraction of `shard_capacity` above which [`Priority::Normal`] is
    /// also shed.
    pub normal_watermark: f64,
    /// `retry_hint` attached to overload sheds (and to quota sheds whose
    /// bucket can never refill) — pick roughly one flush cadence.
    pub retry_hint: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            default_quota: None,
            shard_capacity: 4096,
            low_watermark: 0.5,
            normal_watermark: 0.75,
            retry_hint: Duration::from_millis(2),
        }
    }
}

impl AdmissionConfig {
    /// Validates the watermark ordering and capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when `shard_capacity` is
    /// zero, a watermark is outside `[0, 1]`, or the watermarks are out
    /// of order.
    pub fn validate(&self) -> ServeResult<()> {
        if self.shard_capacity == 0 {
            return Err(ServeError::InvalidConfig("shard_capacity must be non-zero".into()));
        }
        for (name, v) in
            [("low_watermark", self.low_watermark), ("normal_watermark", self.normal_watermark)]
        {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(ServeError::InvalidConfig(format!(
                    "{name} must be in [0, 1], got {v}"
                )));
            }
        }
        if self.low_watermark > self.normal_watermark {
            return Err(ServeError::InvalidConfig(format!(
                "low_watermark ({}) must not exceed normal_watermark ({})",
                self.low_watermark, self.normal_watermark
            )));
        }
        Ok(())
    }
}

/// Per-tenant mutable admission state.
#[derive(Debug)]
struct TenantState {
    priority: Priority,
    bucket: Option<Bucket>,
}

/// Token-bucket state; tokens are whole admissions.
#[derive(Debug)]
struct Bucket {
    quota: TenantQuota,
    tokens: u64,
    /// The instant the bucket was last refilled **to a whole token
    /// boundary** — fractional refill time is preserved by only advancing
    /// this by the time the granted whole tokens took to accrue.
    refilled: Instant,
}

impl Bucket {
    fn new(quota: TenantQuota, now: Instant) -> Self {
        Self { quota, tokens: quota.burst, refilled: now }
    }

    /// Refills whole tokens accrued since `refilled`, capped at `burst`.
    fn refill(&mut self, now: Instant) {
        if self.quota.rate_per_sec == 0 || self.tokens >= self.quota.burst {
            self.refilled = now;
            return;
        }
        let elapsed = now.saturating_duration_since(self.refilled).as_nanos();
        let accrued = (elapsed * self.quota.rate_per_sec as u128 / 1_000_000_000) as u64;
        if accrued == 0 {
            return;
        }
        let granted = accrued.min(self.quota.burst - self.tokens);
        self.tokens += granted;
        if self.tokens >= self.quota.burst {
            // A full bucket accrues nothing; restart the clock.
            self.refilled = now;
        } else {
            let nanos = granted as u128 * 1_000_000_000 / self.quota.rate_per_sec as u128;
            self.refilled += Duration::from_nanos(nanos as u64);
        }
    }

    /// Time until the next whole token accrues (the shed `retry_hint`);
    /// `None` when the bucket can never refill.
    ///
    /// [`refill`](Self::refill) grants a token once
    /// `elapsed * rate >= 1e9` ns, so the period must round **up**:
    /// truncating `1e9 / rate` hands back a hint one nanosecond short
    /// for every rate that does not divide 1e9, and a client retrying
    /// exactly at `now + hint` is shed again. `refilled` only advances
    /// to whole-token boundaries, so `since` is banked fractional
    /// accrual and counts toward the next token.
    fn next_token_in(&self, now: Instant) -> Option<Duration> {
        let rate = self.quota.rate_per_sec as u128;
        if rate == 0 {
            return None;
        }
        let needed = 1_000_000_000u128.div_ceil(rate);
        let since = now.saturating_duration_since(self.refilled).as_nanos();
        Some(Duration::from_nanos(needed.saturating_sub(since) as u64))
    }
}

/// A snapshot of the controller's decision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Submissions admitted.
    pub admitted: u64,
    /// Submissions shed by an exhausted tenant quota.
    pub shed_quota: u64,
    /// Submissions shed by an overload watermark.
    pub shed_overload: u64,
}

impl AdmissionStats {
    /// Total shed submissions.
    pub fn shed_total(&self) -> u64 {
        self.shed_quota + self.shed_overload
    }
}

/// The admission controller a [`super::shard::ShardedServeEngine`]
/// consults before any queue is touched (see the [module docs](self)).
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    tenants: RwLock<HashMap<String, Mutex<TenantState>>>,
    admitted: AtomicU64,
    shed_quota: AtomicU64,
    shed_overload: AtomicU64,
}

impl AdmissionController {
    /// Creates a controller.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an inconsistent
    /// [`AdmissionConfig`].
    pub fn new(config: AdmissionConfig) -> ServeResult<Self> {
        config.validate()?;
        Ok(Self {
            config,
            tenants: RwLock::new(HashMap::new()),
            admitted: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
        })
    }

    /// The controller's policy.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Sets a tenant's overload priority (defaults to
    /// [`Priority::Normal`] on first contact).
    pub fn set_priority(&self, tenant: &str, priority: Priority) {
        self.with_state(tenant, |state| state.priority = priority);
    }

    /// A tenant's current priority.
    pub fn priority(&self, tenant: &str) -> Priority {
        self.tenants
            .read()
            .expect("admission lock")
            .get(tenant)
            .map(|s| s.lock().expect("tenant state lock").priority)
            .unwrap_or_default()
    }

    /// Overrides a tenant's quota (`None` = unmetered), resetting its
    /// bucket to a full burst.
    pub fn set_quota(&self, tenant: &str, quota: Option<TenantQuota>) {
        let now = Instant::now();
        self.with_state(tenant, |state| {
            state.bucket = quota.map(|q| Bucket::new(q, now));
        });
    }

    /// Runs `f` on the tenant's state, creating it on first contact.
    fn with_state(&self, tenant: &str, f: impl FnOnce(&mut TenantState)) {
        {
            let tenants = self.tenants.read().expect("admission lock");
            if let Some(state) = tenants.get(tenant) {
                f(&mut state.lock().expect("tenant state lock"));
                return;
            }
        }
        let mut tenants = self.tenants.write().expect("admission lock");
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Mutex::new(self.fresh_state(Instant::now())));
        f(state.get_mut().expect("tenant state lock"));
    }

    fn fresh_state(&self, now: Instant) -> TenantState {
        TenantState {
            priority: Priority::default(),
            bucket: self.config.default_quota.map(|q| Bucket::new(q, now)),
        }
    }

    /// The admit/shed decision for one submission: `shard_outstanding`
    /// is the target shard's queued work at the moment of the call, `now`
    /// the submission timestamp (explicit so tests are wall-clock-free).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Shed`] (with a retry hint) when the
    /// submission is shed; the flow was not queued and no token was
    /// consumed by an overload shed.
    pub fn admit(&self, tenant: &str, shard_outstanding: usize, now: Instant) -> ServeResult<()> {
        // Overload watermarks first: they cost no token, so a shed burst
        // does not also drain the tenant's quota.
        let priority = self.priority_or_create(tenant, now);
        let capacity = self.config.shard_capacity as f64;
        let occupancy = shard_outstanding as f64 / capacity;
        let overloaded = occupancy >= 1.0
            || (priority <= Priority::Normal && occupancy >= self.config.normal_watermark)
            || (priority == Priority::Low && occupancy >= self.config.low_watermark);
        if overloaded {
            self.shed_overload.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Shed {
                tenant: tenant.to_string(),
                retry_hint: self.config.retry_hint,
            });
        }

        // Then the tenant's token bucket.
        let tenants = self.tenants.read().expect("admission lock");
        let state = tenants.get(tenant).expect("created above");
        let mut state = state.lock().expect("tenant state lock");
        if let Some(bucket) = &mut state.bucket {
            bucket.refill(now);
            if bucket.tokens == 0 {
                let retry_hint = bucket.next_token_in(now).unwrap_or(self.config.retry_hint);
                drop(state);
                drop(tenants);
                self.shed_quota.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Shed { tenant: tenant.to_string(), retry_hint });
            }
            bucket.tokens -= 1;
        }
        drop(state);
        drop(tenants);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The tenant's priority, creating default state on first contact.
    fn priority_or_create(&self, tenant: &str, now: Instant) -> Priority {
        {
            let tenants = self.tenants.read().expect("admission lock");
            if let Some(state) = tenants.get(tenant) {
                return state.lock().expect("tenant state lock").priority;
            }
        }
        let mut tenants = self.tenants.write().expect("admission lock");
        tenants
            .entry(tenant.to_string())
            .or_insert_with(|| Mutex::new(self.fresh_state(now)))
            .get_mut()
            .expect("tenant state lock")
            .priority
    }

    /// A snapshot of the decision counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_quota: self.shed_quota.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(config: AdmissionConfig) -> AdmissionController {
        AdmissionController::new(config).unwrap()
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(AdmissionConfig::default().validate().is_ok());
        let bad = AdmissionConfig { shard_capacity: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad = AdmissionConfig { low_watermark: 1.5, ..Default::default() };
        assert!(bad.validate().is_err());
        let bad =
            AdmissionConfig { low_watermark: 0.9, normal_watermark: 0.5, ..Default::default() };
        assert!(bad.validate().is_err());
        assert!(AdmissionController::new(bad).is_err());
    }

    #[test]
    fn burst_exhaustion_sheds_with_a_retry_hint() {
        // rate 0: the burst is all the tenant gets — wall-clock-free.
        let ctl = controller(AdmissionConfig {
            default_quota: Some(TenantQuota { rate_per_sec: 0, burst: 3 }),
            ..Default::default()
        });
        let now = Instant::now();
        for _ in 0..3 {
            ctl.admit("t0", 0, now).unwrap();
        }
        match ctl.admit("t0", 0, now) {
            Err(ServeError::Shed { tenant, retry_hint }) => {
                assert_eq!(tenant, "t0");
                assert!(retry_hint > Duration::ZERO);
            }
            other => panic!("expected quota shed, got {other:?}"),
        }
        // Quotas are per tenant: a different tenant is unaffected.
        ctl.admit("t1", 0, now).unwrap();
        let stats = ctl.stats();
        assert_eq!(stats.admitted, 4);
        assert_eq!(stats.shed_quota, 1);
        assert_eq!(stats.shed_overload, 0);
        assert_eq!(stats.shed_total(), 1);
    }

    #[test]
    fn tokens_refill_at_the_configured_rate() {
        let ctl = controller(AdmissionConfig {
            default_quota: Some(TenantQuota { rate_per_sec: 1000, burst: 2 }),
            ..Default::default()
        });
        let t0 = Instant::now();
        ctl.admit("t", 0, t0).unwrap();
        ctl.admit("t", 0, t0).unwrap();
        // Bucket empty; the hint points at the next token (≤ 1 ms at
        // 1000 tokens/s).
        let err = ctl.admit("t", 0, t0).unwrap_err();
        match err {
            ServeError::Shed { retry_hint, .. } => {
                assert!(retry_hint <= Duration::from_millis(1), "{retry_hint:?}")
            }
            other => panic!("{other:?}"),
        }
        // 2.5 ms later two whole tokens accrued, filling the bucket (the
        // half-token above burst is discarded — a full bucket accrues
        // nothing).
        let t1 = t0 + Duration::from_micros(2500);
        ctl.admit("t", 0, t1).unwrap();
        ctl.admit("t", 0, t1).unwrap();
        assert!(ctl.admit("t", 0, t1).is_err());
        // Fractional accrual below burst is preserved: 1.5 periods later
        // one token landed and the odd half-period carries over, so the
        // next token needs only another half-period.
        let t2 = t1 + Duration::from_micros(1500);
        ctl.admit("t", 0, t2).unwrap();
        assert!(ctl.admit("t", 0, t2).is_err());
        let t3 = t2 + Duration::from_micros(500);
        ctl.admit("t", 0, t3).unwrap();
    }

    #[test]
    fn a_retry_at_the_hinted_instant_is_never_shed_again() {
        // Rates that do not divide 1e9 are exactly the ones the old
        // truncated period shortchanged; sweep them with drifting
        // off-boundary offsets so banked fractional accrual feeds into
        // the hint as well.
        for rate in [1u64, 3, 7, 999, 1_000, 32_768, 999_999_937] {
            for burst in [1u64, 2, 5] {
                let ctl = controller(AdmissionConfig {
                    default_quota: Some(TenantQuota { rate_per_sec: rate, burst }),
                    ..Default::default()
                });
                let mut now = Instant::now();
                for step in 0..40u64 {
                    // Drain whatever is available at `now`, capturing the
                    // hint attached to the shed that empties the bucket.
                    let hint = loop {
                        match ctl.admit("t", 0, now) {
                            Ok(()) => {}
                            Err(ServeError::Shed { retry_hint, .. }) => break retry_hint,
                            Err(other) => panic!("{other:?}"),
                        }
                    };
                    now += hint;
                    ctl.admit("t", 0, now).unwrap_or_else(|err| {
                        panic!(
                            "retry at now + retry_hint shed again \
                             (rate {rate}, burst {burst}, step {step}): {err:?}"
                        )
                    });
                    // Step off the whole-token boundary before the next
                    // round so the fractional-accrual path is exercised.
                    now += Duration::from_nanos(step * 41 + 1);
                }
            }
        }
    }

    #[test]
    fn priorities_shed_in_order_under_overload() {
        let ctl = controller(AdmissionConfig {
            shard_capacity: 100,
            low_watermark: 0.5,
            normal_watermark: 0.75,
            ..Default::default()
        });
        let now = Instant::now();
        ctl.set_priority("low", Priority::Low);
        ctl.set_priority("high", Priority::High);
        assert_eq!(ctl.priority("low"), Priority::Low);
        assert_eq!(ctl.priority("normal"), Priority::Normal);

        // Below every watermark: everyone gets in.
        for t in ["low", "normal", "high"] {
            ctl.admit(t, 49, now).unwrap();
        }
        // Above low_watermark: only Low is shed.
        assert!(matches!(ctl.admit("low", 50, now), Err(ServeError::Shed { .. })));
        ctl.admit("normal", 50, now).unwrap();
        ctl.admit("high", 50, now).unwrap();
        // Above normal_watermark: Low and Normal are shed.
        assert!(ctl.admit("low", 75, now).is_err());
        assert!(ctl.admit("normal", 75, now).is_err());
        ctl.admit("high", 75, now).unwrap();
        // At capacity: everyone is shed.
        assert!(ctl.admit("high", 100, now).is_err());
        assert_eq!(ctl.stats().shed_overload, 4);
        assert_eq!(ctl.stats().shed_quota, 0);
    }

    #[test]
    fn overload_sheds_do_not_consume_quota_tokens() {
        let ctl = controller(AdmissionConfig {
            default_quota: Some(TenantQuota { rate_per_sec: 0, burst: 1 }),
            shard_capacity: 10,
            ..Default::default()
        });
        let now = Instant::now();
        // Shed by overload repeatedly…
        for _ in 0..5 {
            assert!(ctl.admit("t", 10, now).is_err());
        }
        // …the single burst token is still there.
        ctl.admit("t", 0, now).unwrap();
        assert!(ctl.admit("t", 0, now).is_err());
    }

    #[test]
    fn decisions_are_deterministic_for_identical_histories() {
        let run = || {
            let ctl = controller(AdmissionConfig {
                default_quota: Some(TenantQuota { rate_per_sec: 500, burst: 4 }),
                shard_capacity: 64,
                ..Default::default()
            });
            let t0 = Instant::now();
            let mut decisions = Vec::new();
            for i in 0..200u64 {
                let now = t0 + Duration::from_micros(i * 137);
                let outstanding = (i as usize * 7) % 80;
                decisions.push(ctl.admit("t", outstanding, now).is_ok());
            }
            decisions
        };
        assert_eq!(run(), run());
    }
}

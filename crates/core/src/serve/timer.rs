//! `cyberhd::serve::timer` — a hashed timing wheel over batch deadlines.
//!
//! The single-shard [`crate::serve::ServeEngine`] leaves deadline
//! enforcement to the caller: somebody has to remember to call
//! [`crate::serve::ServeEngine::poll`], and every poll scans the whole
//! lane map even when nothing is due.  The sharded engine replaces that
//! with a [`DeadlineWheel`]: when a submission takes a lane from empty to
//! non-empty it schedules one entry at `now + max_delay`, and the flusher
//! threads pop **only the entries whose deadline has passed** — O(due)
//! per tick instead of O(lanes).
//!
//! The wheel is *hashed*: an entry lands in slot `tick % slots`, where a
//! tick is one `granularity` of time since the wheel was built.  Entries
//! whose deadline is more than one wheel revolution away simply stay in
//! their slot until their tick comes round (each sweep compares absolute
//! deadlines, not slot membership).
//!
//! Firing is **at-least-as-late**: an entry never pops before its
//! deadline, and pops at the first sweep after it.  Duplicate or stale
//! entries are harmless by design — the consumer
//! ([`crate::serve::ServeEngine::poll_tenant`]) re-checks the lane's
//! actual oldest-pending age and just reports idle/due when the wheel
//! fired spuriously — so the wheel can stay lock-light instead of
//! supporting cancellation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One scheduled item: its absolute deadline in wheel ticks.
#[derive(Debug)]
struct Entry<T> {
    deadline_tick: u64,
    item: T,
}

/// A hashed timing wheel (see the [module docs](self)).
///
/// All methods take `&self`; slots are individually mutexed so schedulers
/// on different slots never contend, and sweeps serialize on a dedicated
/// sweep lock without blocking schedulers.
#[derive(Debug)]
pub struct DeadlineWheel<T> {
    slots: Vec<Mutex<Vec<Entry<T>>>>,
    granularity: Duration,
    epoch: Instant,
    /// The next tick [`DeadlineWheel::collect_expired`] will sweep (every
    /// lower tick has been swept).  Read by schedulers to clamp deadlines
    /// that already passed into the upcoming sweep instead of a full
    /// revolution away.
    cursor: AtomicU64,
    /// Serializes sweeps so two flusher threads cannot double-pop.
    sweep: Mutex<()>,
    /// Entries currently scheduled (observability and tests).
    len: AtomicUsize,
}

impl<T> DeadlineWheel<T> {
    /// Creates a wheel of `slots` buckets, each `granularity` of time
    /// wide, with its epoch at "now".
    ///
    /// `granularity` is the firing resolution: entries pop at most one
    /// granularity after their deadline (plus however long the caller
    /// waits between sweeps).  `slots × granularity` is the wheel period;
    /// longer deadlines still work, they just share slots with earlier
    /// revolutions.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `granularity` is zero.
    pub fn new(granularity: Duration, slots: usize) -> Self {
        assert!(slots > 0, "a wheel needs at least one slot");
        assert!(granularity > Duration::ZERO, "granularity must be non-zero");
        Self {
            slots: (0..slots).map(|_| Mutex::new(Vec::new())).collect(),
            granularity,
            epoch: Instant::now(),
            cursor: AtomicU64::new(0),
            sweep: Mutex::new(()),
            len: AtomicUsize::new(0),
        }
    }

    /// The wheel's firing resolution.
    pub fn granularity(&self) -> Duration {
        self.granularity
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently scheduled.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tick containing `instant` (ticks before the epoch clamp to 0).
    fn tick_of(&self, instant: Instant) -> u64 {
        let elapsed = instant.saturating_duration_since(self.epoch);
        (elapsed.as_nanos() / self.granularity.as_nanos()) as u64
    }

    /// Schedules `item` to pop at the first sweep at or after `deadline`.
    pub fn schedule(&self, deadline: Instant, item: T) {
        // Round *up*: firing at tick t means `epoch + t·granularity` has
        // passed, so an entry stored at the ceiling tick never pops early.
        let elapsed = deadline.saturating_duration_since(self.epoch).as_nanos();
        let gran = self.granularity.as_nanos();
        let mut tick = elapsed.div_ceil(gran) as u64;
        // A deadline that already slipped behind the sweep cursor would
        // otherwise wait a full revolution for its slot to come round
        // again; clamp it onto the next sweep instead.
        tick = tick.max(self.cursor.load(Ordering::Acquire));
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].lock().expect("wheel slot lock").push(Entry { deadline_tick: tick, item });
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops every entry whose deadline tick has been reached by `now`,
    /// in an unspecified order.  Entries scheduled for later revolutions
    /// of the same slots stay put.
    ///
    /// Sweeps serialize (a second concurrent caller pops nothing the
    /// first would); schedulers are only blocked per-slot.
    pub fn collect_expired(&self, now: Instant) -> Vec<T> {
        let _sweep = self.sweep.lock().expect("wheel sweep lock");
        let now_tick = self.tick_of(now);
        let from = self.cursor.load(Ordering::Acquire);
        if now_tick < from {
            return Vec::new();
        }
        let slots = self.slots.len() as u64;
        // Visit each slot at most once even when the sweep spans more
        // than one revolution (entries are filtered by absolute tick, so
        // one visit per slot covers every revolution at once).
        let span = (now_tick - from + 1).min(slots);
        let mut due = Vec::new();
        for offset in 0..span {
            let slot = ((from + offset) % slots) as usize;
            let mut entries = self.slots[slot].lock().expect("wheel slot lock");
            let mut i = 0;
            while i < entries.len() {
                if entries[i].deadline_tick <= now_tick {
                    due.push(entries.swap_remove(i).item);
                } else {
                    i += 1;
                }
            }
        }
        self.len.fetch_sub(due.len(), Ordering::Relaxed);
        // Publish before releasing the sweep lock so schedulers clamp
        // against the ticks this sweep already covered.
        self.cursor.store(now_tick + 1, Ordering::Release);
        due
    }

    /// How long until the next scheduled entry could fire, or `None` when
    /// the wheel is empty — a sleep hint for the sweeping thread.  The
    /// hint is conservative (never longer than the true next deadline
    /// plus one granularity).
    pub fn next_due_in(&self, now: Instant) -> Option<Duration> {
        if self.is_empty() {
            return None;
        }
        let now_tick = self.tick_of(now);
        let mut earliest: Option<u64> = None;
        for slot in &self.slots {
            for entry in slot.lock().expect("wheel slot lock").iter() {
                earliest =
                    Some(earliest.map_or(entry.deadline_tick, |e| e.min(entry.deadline_tick)));
            }
        }
        let tick = earliest?;
        if tick <= now_tick {
            return Some(Duration::ZERO);
        }
        let nanos = self.granularity.as_nanos().saturating_mul((tick - now_tick) as u128);
        Some(Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_fire_after_their_deadline_and_not_before() {
        let wheel = DeadlineWheel::new(Duration::from_millis(1), 16);
        let now = Instant::now();
        wheel.schedule(now + Duration::from_millis(5), "late");
        wheel.schedule(now, "immediate");
        assert_eq!(wheel.len(), 2);

        // Nothing due "now" except the immediate entry (its ceiling tick
        // is at most one granularity away; sweep one granularity later).
        let soon = now + Duration::from_millis(1);
        let popped = wheel.collect_expired(soon);
        assert_eq!(popped, vec!["immediate"]);
        assert_eq!(wheel.len(), 1);

        // The 5 ms entry survives sweeps before its deadline…
        assert!(wheel.collect_expired(now + Duration::from_millis(3)).is_empty());
        // …and pops once the deadline passes.
        let popped = wheel.collect_expired(now + Duration::from_millis(7));
        assert_eq!(popped, vec!["late"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn entries_beyond_one_revolution_wait_for_their_tick() {
        // 4 slots × 1 ms: a 10 ms deadline shares a slot with tick ~2 but
        // must not pop until 10 ms have passed.
        let wheel = DeadlineWheel::new(Duration::from_millis(1), 4);
        let now = Instant::now();
        wheel.schedule(now + Duration::from_millis(10), "far");
        wheel.schedule(now + Duration::from_millis(2), "near");
        let popped = wheel.collect_expired(now + Duration::from_millis(3));
        assert_eq!(popped, vec!["near"]);
        assert!(wheel.collect_expired(now + Duration::from_millis(8)).is_empty());
        assert_eq!(wheel.collect_expired(now + Duration::from_millis(11)), vec!["far"]);
    }

    #[test]
    fn one_sweep_covers_multiple_revolutions() {
        let wheel = DeadlineWheel::new(Duration::from_millis(1), 4);
        let now = Instant::now();
        for ms in [1u64, 3, 6, 9, 12] {
            wheel.schedule(now + Duration::from_millis(ms), ms);
        }
        // A single late sweep (several revolutions after the last
        // deadline) pops everything exactly once.
        let mut popped = wheel.collect_expired(now + Duration::from_millis(40));
        popped.sort_unstable();
        assert_eq!(popped, vec![1, 3, 6, 9, 12]);
        assert!(wheel.collect_expired(now + Duration::from_millis(41)).is_empty());
    }

    #[test]
    fn deadlines_behind_the_cursor_pop_on_the_next_sweep() {
        let wheel = DeadlineWheel::new(Duration::from_millis(1), 8);
        let now = Instant::now();
        // Advance the cursor well past tick 2.
        wheel.collect_expired(now + Duration::from_millis(6));
        // Scheduling "in the past" clamps onto the upcoming sweep instead
        // of waiting a full revolution.
        wheel.schedule(now + Duration::from_millis(2), "stale");
        assert_eq!(wheel.collect_expired(now + Duration::from_millis(7)), vec!["stale"]);
    }

    #[test]
    fn next_due_in_is_a_sane_sleep_hint() {
        let wheel: DeadlineWheel<u32> = DeadlineWheel::new(Duration::from_millis(1), 16);
        let now = Instant::now();
        assert_eq!(wheel.next_due_in(now), None);
        wheel.schedule(now + Duration::from_millis(5), 1);
        let hint = wheel.next_due_in(now).unwrap();
        assert!(hint >= Duration::from_millis(4) && hint <= Duration::from_millis(7), "{hint:?}");
        wheel.schedule(now, 2);
        let hint = wheel.next_due_in(now + Duration::from_millis(2)).unwrap();
        assert_eq!(hint, Duration::ZERO);
    }

    #[test]
    fn sweeps_are_exclusive_and_schedulers_parallel() {
        // Concurrency smoke: N threads scheduling + sweeping concurrently
        // neither lose nor duplicate entries.
        let wheel: std::sync::Arc<DeadlineWheel<usize>> =
            std::sync::Arc::new(DeadlineWheel::new(Duration::from_micros(100), 32));
        let now = Instant::now();
        let popped = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let wheel = std::sync::Arc::clone(&wheel);
                scope.spawn(move || {
                    for i in 0..250 {
                        wheel.schedule(now, t * 1000 + i);
                    }
                });
            }
            for _ in 0..2 {
                let wheel = std::sync::Arc::clone(&wheel);
                let popped = &popped;
                scope.spawn(move || {
                    for _ in 0..50 {
                        let due = wheel.collect_expired(Instant::now());
                        popped.lock().unwrap().extend(due);
                        std::thread::yield_now();
                    }
                });
            }
        });
        let mut all = popped.into_inner().unwrap();
        all.extend(wheel.collect_expired(Instant::now() + Duration::from_secs(1)));
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "every entry pops exactly once");
        assert!(wheel.is_empty());
    }
}

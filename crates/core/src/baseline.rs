//! The paper's HDC baseline: a static encoder with no dimension
//! regeneration.
//!
//! Fig. 3 and Fig. 4 of the paper compare CyberHD against "baselineHD", a
//! state-of-the-art HDC classifier whose encoder is generated once and never
//! adapted.  The baseline still uses adaptive (similarity-weighted)
//! retraining — the *only* difference from CyberHD is the missing
//! variance-driven dimension regeneration, so any accuracy gap between the
//! two isolates the contribution of the dynamic encoding.
//!
//! [`BaselineHd`] is a thin wrapper around [`crate::CyberHdTrainer`] that
//! forces `regeneration_rate = 0`; the paper evaluates it at the same
//! physical dimensionality as CyberHD (0.5k) and at CyberHD's effective
//! dimensionality (4k).

use crate::config::{CyberHdConfig, EncoderKind};
use crate::model::CyberHdModel;
use crate::trainer::CyberHdTrainer;
use crate::Result;

/// A trained baseline model is structurally identical to a CyberHD model —
/// only the training procedure differs.
pub type BaselineHdModel = CyberHdModel;

/// Trainer for the static-encoder HDC baseline.
///
/// # Example
///
/// ```
/// use cyberhd::BaselineHd;
///
/// # fn main() -> Result<(), cyberhd::CyberHdError> {
/// let features = vec![vec![0.0, 0.1], vec![0.9, 1.0], vec![0.05, 0.0], vec![1.0, 0.95]];
/// let labels = vec![0, 1, 0, 1];
/// let model = BaselineHd::new(2, 2, 256, 42)?
///     .retrain_epochs(5)
///     .fit(&features, &labels)?;
/// assert_eq!(model.predict(&[0.02, 0.04])?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BaselineHd {
    config: CyberHdConfig,
}

impl BaselineHd {
    /// Creates a baseline trainer with dimensionality `dimension`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CyberHdError::InvalidConfig`] for invalid sizes.
    pub fn new(
        input_features: usize,
        num_classes: usize,
        dimension: usize,
        seed: u64,
    ) -> Result<Self> {
        let config = CyberHdConfig::builder(input_features, num_classes)
            .dimension(dimension)
            .regeneration_rate(0.0)
            .retrain_epochs(20)
            .seed(seed)
            .build()?;
        Ok(Self { config })
    }

    /// Creates a baseline trainer from an existing configuration, forcing the
    /// regeneration rate to zero.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CyberHdError::InvalidConfig`] if the remaining
    /// options are invalid.
    pub fn from_config(config: CyberHdConfig) -> Result<Self> {
        let config = CyberHdConfig::builder(config.input_features, config.num_classes)
            .dimension(config.dimension)
            .learning_rate(config.learning_rate)
            .retrain_epochs(config.retrain_epochs)
            .regeneration_rate(0.0)
            .encoder(config.encoder)
            .rbf_sigma(config.rbf_sigma)
            .id_level_levels(config.id_level_levels)
            .seed(config.seed)
            .encode_threads(config.encode_threads)
            .build()?;
        Ok(Self { config })
    }

    /// Sets the number of retraining epochs (builder style).
    pub fn retrain_epochs(mut self, epochs: usize) -> Self {
        self.config.retrain_epochs = epochs;
        self
    }

    /// Sets the learning rate (builder style).
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.config.learning_rate = learning_rate;
        self
    }

    /// Selects the (static) encoder used by the baseline.
    pub fn encoder(mut self, encoder: EncoderKind) -> Self {
        self.config.encoder = encoder;
        self
    }

    /// The effective configuration (always has `regeneration_rate == 0`).
    pub fn config(&self) -> &CyberHdConfig {
        &self.config
    }

    /// Trains the baseline on `features` / `labels`.
    ///
    /// # Errors
    ///
    /// Same as [`CyberHdTrainer::fit`].
    pub fn fit(&self, features: &[Vec<f32>], labels: &[usize]) -> Result<BaselineHdModel> {
        CyberHdTrainer::new(self.config.clone())?.fit(features, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc::rng::HdcRng;

    fn blobs(seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = HdcRng::seed_from(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..3usize {
            for _ in 0..30 {
                let center = c as f64;
                xs.push(vec![
                    (center + rng.normal(0.0, 0.1)) as f32,
                    (1.0 - center * 0.5 + rng.normal(0.0, 0.1)) as f32,
                    (center * 0.25 + rng.normal(0.0, 0.1)) as f32,
                ]);
                ys.push(c);
            }
        }
        (xs, ys)
    }

    #[test]
    fn baseline_never_regenerates() {
        let (xs, ys) = blobs(1);
        let model = BaselineHd::new(3, 3, 128, 7).unwrap().retrain_epochs(4).fit(&xs, &ys).unwrap();
        assert_eq!(model.report().regeneration.rounds, 0);
        assert_eq!(model.effective_dimension(), 128);
        assert!(model.accuracy(&xs, &ys).unwrap() > 0.9);
    }

    #[test]
    fn from_config_forces_zero_regeneration() {
        let config =
            CyberHdConfig::builder(3, 3).dimension(64).regeneration_rate(0.3).build().unwrap();
        let baseline = BaselineHd::from_config(config).unwrap();
        assert_eq!(baseline.config().regeneration_rate, 0.0);
        assert_eq!(baseline.config().dimension, 64);
    }

    #[test]
    fn builder_style_setters_apply() {
        let baseline = BaselineHd::new(3, 2, 32, 0)
            .unwrap()
            .retrain_epochs(2)
            .learning_rate(0.1)
            .encoder(EncoderKind::Record);
        assert_eq!(baseline.config().retrain_epochs, 2);
        assert!((baseline.config().learning_rate - 0.1).abs() < 1e-9);
        assert_eq!(baseline.config().encoder, EncoderKind::Record);
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        assert!(BaselineHd::new(0, 2, 64, 0).is_err());
        assert!(BaselineHd::new(3, 1, 64, 0).is_err());
        assert!(BaselineHd::new(3, 2, 0, 0).is_err());
    }
}

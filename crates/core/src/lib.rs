//! # `cyberhd` — dynamic hyperdimensional learning for intrusion detection
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Late Breaking Results: Scalable and Efficient Hyperdimensional Computing
//! for Network Intrusion Detection"* (DAC 2023).  CyberHD is an HDC
//! classifier that reaches the accuracy of a much larger static HDC model at
//! a fraction of the physical dimensionality by **identifying and
//! regenerating insignificant dimensions** during retraining:
//!
//! 1. encode feature vectors with an RBF (random-Fourier-feature) encoder
//!    ([`hdc::RbfEncoder`]),
//! 2. train class hypervectors with **adaptive, similarity-weighted updates**
//!    ([`trainer`]),
//! 3. normalize the model, compute the **per-dimension variance across
//!    classes**, and drop the `R%` of dimensions with the lowest variance
//!    ([`regeneration`]),
//! 4. **regenerate** the dropped dimensions' encoder base vectors from a
//!    fresh Gaussian draw and retrain ([`trainer::CyberHdTrainer`]),
//! 5. optionally quantize the final model to 1–32-bit elements for
//!    deployment ([`quantized`]).
//!
//! The crate also ships the paper's HDC baseline (static encoder, no
//! regeneration — [`baseline::BaselineHd`]) and a single-pass online learner
//! ([`online::OnlineLearner`]) for streaming edge deployments.
//!
//! # Quick start
//!
//! ```
//! use cyberhd::{CyberHdConfig, CyberHdTrainer};
//!
//! # fn main() -> Result<(), cyberhd::CyberHdError> {
//! // A toy two-class problem: class 0 near the origin, class 1 offset.
//! let mut features = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..60 {
//!     let t = (i % 30) as f32 / 30.0;
//!     if i < 30 {
//!         features.push(vec![t * 0.1, 0.1 - t * 0.1, 0.0]);
//!         labels.push(0);
//!     } else {
//!         features.push(vec![1.0 + t * 0.1, 1.0, 0.9]);
//!         labels.push(1);
//!     }
//! }
//!
//! let config = CyberHdConfig::builder(3, 2)
//!     .dimension(256)
//!     .retrain_epochs(4)
//!     .regeneration_rate(0.1)
//!     .seed(7)
//!     .build()?;
//! let model = CyberHdTrainer::new(config)?.fit(&features, &labels)?;
//! assert_eq!(model.predict(&[0.05, 0.05, 0.0])?, 0);
//! assert_eq!(model.predict(&[1.05, 1.0, 0.9])?, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod detector;
pub mod durable;
pub(crate) mod inference;
pub mod model;
pub mod online;
pub mod openset;
pub mod quantized;
pub mod regeneration;
pub mod serve;
pub mod trainer;

pub use baseline::{BaselineHd, BaselineHdModel};
pub use config::{CyberHdConfig, CyberHdConfigBuilder, EncoderKind, TrainingBatch};
pub use detector::{
    DetectScratch, Detector, DetectorBuilder, DetectorInfo, OnlineDetector, ScoringBackend, Verdict,
};
pub use durable::{DurableConfig, DurableLane, RecoveryReport};
pub use model::{CyberHdModel, TrainingReport};
pub use online::OnlineLearner;
pub use openset::{OpenSetDetector, OpenSetPrediction};
pub use quantized::QuantizedModel;
pub use regeneration::{
    select_lowest_variance, DriftMonitor, DriftMonitorConfig, RegenerationPlan, RegenerationStats,
};
pub use serve::admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, Priority, TenantQuota,
};
pub use serve::shard::{ShardConfig, ShardedServeEngine};
pub use serve::timer::DeadlineWheel;
pub use serve::{
    AdaptiveConfig, AdaptiveLane, AdaptiveStats, DetectorRegistry, LanePoll, ServeConfig,
    ServeEngine, ServeError, ServeStats, Ticket,
};
pub use trainer::CyberHdTrainer;

use std::error::Error;
use std::fmt;

/// Errors produced by the `cyberhd` crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CyberHdError {
    /// An invalid configuration value was supplied.
    InvalidConfig(String),
    /// Training data was empty or inconsistent (feature/label length
    /// mismatch, wrong feature arity, label out of range).
    InvalidData(String),
    /// An error bubbled up from the HDC substrate.
    Hdc(hdc::HdcError),
    /// An error bubbled up from the evaluation utilities.
    Eval(eval::EvalError),
    /// An error bubbled up from the dataset / preprocessing layer.
    Data(nids_data::DataError),
    /// A detector artifact could not be saved or loaded (I/O failure,
    /// wrong magic/version, corrupted payload).
    Persist(String),
    /// Open-set calibration saw zero samples for this class, so no
    /// threshold can be derived for it.  (A silent `0.0` threshold would
    /// accept nearly everything as in-distribution for that class.)
    UncalibratedClass(usize),
}

impl fmt::Display for CyberHdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CyberHdError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            CyberHdError::InvalidData(what) => write!(f, "invalid training data: {what}"),
            CyberHdError::Hdc(e) => write!(f, "hdc error: {e}"),
            CyberHdError::Eval(e) => write!(f, "evaluation error: {e}"),
            CyberHdError::Data(e) => write!(f, "data error: {e}"),
            CyberHdError::Persist(what) => write!(f, "persistence error: {what}"),
            CyberHdError::UncalibratedClass(class) => write!(
                f,
                "open-set calibration: class {class} has no calibration samples \
                 (a silent 0.0 threshold would never reject)"
            ),
        }
    }
}

impl Error for CyberHdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CyberHdError::Hdc(e) => Some(e),
            CyberHdError::Eval(e) => Some(e),
            CyberHdError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hdc::HdcError> for CyberHdError {
    fn from(e: hdc::HdcError) -> Self {
        CyberHdError::Hdc(e)
    }
}

impl From<eval::EvalError> for CyberHdError {
    fn from(e: eval::EvalError) -> Self {
        CyberHdError::Eval(e)
    }
}

impl From<nids_data::DataError> for CyberHdError {
    fn from(e: nids_data::DataError) -> Self {
        CyberHdError::Data(e)
    }
}

impl From<hdc::codec::CodecError> for CyberHdError {
    fn from(e: hdc::codec::CodecError) -> Self {
        CyberHdError::Persist(e.to_string())
    }
}

/// Crate-local result alias.
pub type Result<T, E = CyberHdError> = std::result::Result<T, E>;

/// Validates that `features` and `labels` describe a consistent training set
/// for `input_features`-dimensional inputs and `num_classes` classes.
///
/// Shared by the CyberHD trainer, the baseline and the online learner.
///
/// # Errors
///
/// Returns [`CyberHdError::InvalidData`] describing the first inconsistency
/// found.
pub(crate) fn validate_dataset(
    features: &[Vec<f32>],
    labels: &[usize],
    input_features: usize,
    num_classes: usize,
) -> Result<()> {
    if features.is_empty() {
        return Err(CyberHdError::InvalidData("training set is empty".into()));
    }
    if features.len() != labels.len() {
        return Err(CyberHdError::InvalidData(format!(
            "{} feature vectors but {} labels",
            features.len(),
            labels.len()
        )));
    }
    if let Some((i, bad)) = features.iter().enumerate().find(|(_, f)| f.len() != input_features) {
        return Err(CyberHdError::InvalidData(format!(
            "sample {i} has {} features, expected {input_features}",
            bad.len()
        )));
    }
    if let Some((i, &bad)) = labels.iter().enumerate().find(|&(_, &l)| l >= num_classes) {
        return Err(CyberHdError::InvalidData(format!(
            "sample {i} has label {bad}, but the model was configured for {num_classes} classes"
        )));
    }
    Ok(())
}

/// [`validate_dataset`] for the zero-copy batch-view form: the view cannot
/// be ragged, so the arity check reduces to one width comparison.
///
/// # Errors
///
/// Returns [`CyberHdError::InvalidData`] describing the first inconsistency
/// found.
pub(crate) fn validate_dataset_view(
    features: hdc::BatchView<'_>,
    labels: &[usize],
    input_features: usize,
    num_classes: usize,
) -> Result<()> {
    if features.is_empty() {
        return Err(CyberHdError::InvalidData("training set is empty".into()));
    }
    if features.rows() != labels.len() {
        return Err(CyberHdError::InvalidData(format!(
            "{} feature rows but {} labels",
            features.rows(),
            labels.len()
        )));
    }
    if features.width() != input_features {
        return Err(CyberHdError::InvalidData(format!(
            "batch rows are {} features wide, expected {input_features}",
            features.width()
        )));
    }
    if let Some((i, &bad)) = labels.iter().enumerate().find(|&(_, &l)| l >= num_classes) {
        return Err(CyberHdError::InvalidData(format!(
            "sample {i} has label {bad}, but the model was configured for {num_classes} classes"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_convert_and_display() {
        let e: CyberHdError = hdc::HdcError::InvalidArgument("x".into()).into();
        assert!(e.to_string().contains("hdc error"));
        assert!(e.source().is_some());
        let e: CyberHdError = eval::EvalError::InvalidArgument("y".into()).into();
        assert!(e.to_string().contains("evaluation error"));
        let e = CyberHdError::InvalidConfig("dim".into());
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.source().is_none());
    }

    #[test]
    fn dataset_validation_catches_inconsistencies() {
        let ok_features = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let ok_labels = vec![0, 1];
        assert!(validate_dataset(&ok_features, &ok_labels, 2, 2).is_ok());

        assert!(validate_dataset(&[], &[], 2, 2).is_err());
        assert!(validate_dataset(&ok_features, &[0], 2, 2).is_err());
        assert!(validate_dataset(&ok_features, &ok_labels, 3, 2).is_err());
        assert!(validate_dataset(&ok_features, &[0, 5], 2, 2).is_err());
    }
}

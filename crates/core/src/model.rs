//! The trained CyberHD model and its training report.
//!
//! A [`CyberHdModel`] owns the (possibly regenerated) encoder, the trained
//! class hypervectors and the full training history.  It provides single and
//! batch prediction, evaluation against labelled data, access to the class
//! hypervectors and quantized export for deployment / robustness studies.

use crate::config::{CyberHdConfig, EncoderKind};
use crate::quantized::QuantizedModel;
use crate::regeneration::RegenerationStats;
use crate::{CyberHdError, Result};
use eval::metrics::ConfusionMatrix;
use hdc::codec::{CodecError, CodecResult, Reader, Writer};
use hdc::encoder::{
    Encoder, IdLevelEncoder, NGramEncoder, RbfEncoder, RecordEncoder, SymbolRecordEncoder,
};
use hdc::{AssociativeMemory, BatchView, BitWidth, Hypervector};
use serde::{Deserialize, Serialize};

/// Concrete encoder instance, dispatched by [`EncoderKind`].
///
/// The trainer needs concrete access to the RBF encoder for regeneration, so
/// a plain enum is preferred over a trait object here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyEncoder {
    /// RBF / random-Fourier-feature encoder.
    Rbf(RbfEncoder),
    /// Static ID–level encoder.
    IdLevel(IdLevelEncoder),
    /// Static record-based encoder.
    Record(RecordEncoder),
    /// Bind-permute-bundle n-gram sequence encoder.
    NGram(NGramEncoder),
    /// Symbolic record encoder for mixed categorical/numeric rows.
    SymbolRecord(SymbolRecordEncoder),
}

impl AnyEncoder {
    /// Builds the encoder selected by `config`.
    pub fn from_config(config: &CyberHdConfig) -> Result<Self> {
        Ok(match config.encoder {
            EncoderKind::Rbf => AnyEncoder::Rbf(RbfEncoder::with_sigma(
                config.input_features,
                config.dimension,
                config.rbf_sigma,
                config.seed,
            )?),
            EncoderKind::IdLevel => AnyEncoder::IdLevel(IdLevelEncoder::new(
                config.input_features,
                config.dimension,
                config.id_level_levels,
                config.seed,
            )?),
            EncoderKind::Record => AnyEncoder::Record(RecordEncoder::new(
                config.input_features,
                config.dimension,
                config.seed,
            )?),
            EncoderKind::NGram => AnyEncoder::NGram(NGramEncoder::new(
                config.input_features,
                config.symbol_alphabets[0],
                config.ngram_order,
                config.dimension,
                config.seed,
            )?),
            EncoderKind::SymbolRecord => AnyEncoder::SymbolRecord(SymbolRecordEncoder::new(
                &config.symbol_alphabets,
                config.dimension,
                config.id_level_levels,
                config.seed,
            )?),
        })
    }

    /// Which encoder family this is.
    pub fn kind(&self) -> EncoderKind {
        match self {
            AnyEncoder::Rbf(_) => EncoderKind::Rbf,
            AnyEncoder::IdLevel(_) => EncoderKind::IdLevel,
            AnyEncoder::Record(_) => EncoderKind::Record,
            AnyEncoder::NGram(_) => EncoderKind::NGram,
            AnyEncoder::SymbolRecord(_) => EncoderKind::SymbolRecord,
        }
    }

    /// Encodes one feature vector.
    ///
    /// # Errors
    ///
    /// Propagates the underlying encoder's errors (feature arity mismatch).
    pub fn encode(&self, features: &[f32]) -> Result<Hypervector> {
        let hv = match self {
            AnyEncoder::Rbf(e) => e.encode(features)?,
            AnyEncoder::IdLevel(e) => e.encode(features)?,
            AnyEncoder::Record(e) => e.encode(features)?,
            AnyEncoder::NGram(e) => e.encode(features)?,
            AnyEncoder::SymbolRecord(e) => e.encode(features)?,
        };
        Ok(hv)
    }

    /// Input feature arity.
    pub fn input_features(&self) -> usize {
        Encoder::input_features(self)
    }

    /// Output hypervector dimensionality.
    pub fn output_dim(&self) -> usize {
        Encoder::output_dim(self)
    }

    /// Mutable access to the RBF encoder, if that is what this is.
    pub fn as_rbf_mut(&mut self) -> Option<&mut RbfEncoder> {
        match self {
            AnyEncoder::Rbf(e) => Some(e),
            _ => None,
        }
    }

    /// Shared access to the RBF encoder, if that is what this is.
    pub fn as_rbf(&self) -> Option<&RbfEncoder> {
        match self {
            AnyEncoder::Rbf(e) => Some(e),
            _ => None,
        }
    }

    /// Persists the encoder (variant tag + payload) through the artifact
    /// codec, bit-exact.
    pub fn write_to(&self, w: &mut Writer) {
        match self {
            AnyEncoder::Rbf(e) => {
                w.u8(0);
                e.write_to(w);
            }
            AnyEncoder::IdLevel(e) => {
                w.u8(1);
                e.write_to(w);
            }
            AnyEncoder::Record(e) => {
                w.u8(2);
                e.write_to(w);
            }
            AnyEncoder::NGram(e) => {
                w.u8(3);
                e.write_to(w);
            }
            AnyEncoder::SymbolRecord(e) => {
                w.u8(4);
                e.write_to(w);
            }
        }
    }

    /// Reads an encoder persisted by [`AnyEncoder::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a truncated stream or an unknown variant
    /// tag.
    pub fn read_from(r: &mut Reader<'_>) -> CodecResult<Self> {
        match r.u8()? {
            0 => Ok(AnyEncoder::Rbf(RbfEncoder::read_from(r)?)),
            1 => Ok(AnyEncoder::IdLevel(IdLevelEncoder::read_from(r)?)),
            2 => Ok(AnyEncoder::Record(RecordEncoder::read_from(r)?)),
            3 => Ok(AnyEncoder::NGram(NGramEncoder::read_from(r)?)),
            4 => Ok(AnyEncoder::SymbolRecord(SymbolRecordEncoder::read_from(r)?)),
            tag => Err(CodecError::Invalid(format!("encoder tag {tag}"))),
        }
    }
}

/// [`AnyEncoder`] dispatches the whole [`Encoder`] trait to its variant, so
/// the batched inference engine reaches each encoder's cache-blocked
/// `encode_batch_into` kernel through the enum without dynamic dispatch.
impl Encoder for AnyEncoder {
    fn input_features(&self) -> usize {
        match self {
            AnyEncoder::Rbf(e) => e.input_features(),
            AnyEncoder::IdLevel(e) => e.input_features(),
            AnyEncoder::Record(e) => e.input_features(),
            AnyEncoder::NGram(e) => e.input_features(),
            AnyEncoder::SymbolRecord(e) => e.input_features(),
        }
    }

    fn output_dim(&self) -> usize {
        match self {
            AnyEncoder::Rbf(e) => e.output_dim(),
            AnyEncoder::IdLevel(e) => e.output_dim(),
            AnyEncoder::Record(e) => e.output_dim(),
            AnyEncoder::NGram(e) => e.output_dim(),
            AnyEncoder::SymbolRecord(e) => e.output_dim(),
        }
    }

    fn encode_into(&self, features: &[f32], out: &mut [f32]) -> hdc::Result<()> {
        match self {
            AnyEncoder::Rbf(e) => e.encode_into(features, out),
            AnyEncoder::IdLevel(e) => e.encode_into(features, out),
            AnyEncoder::Record(e) => e.encode_into(features, out),
            AnyEncoder::NGram(e) => e.encode_into(features, out),
            AnyEncoder::SymbolRecord(e) => e.encode_into(features, out),
        }
    }

    fn encode_batch_into(&self, batch: BatchView<'_>, out: &mut [f32]) -> hdc::Result<()> {
        match self {
            AnyEncoder::Rbf(e) => e.encode_batch_into(batch, out),
            AnyEncoder::IdLevel(e) => e.encode_batch_into(batch, out),
            AnyEncoder::Record(e) => e.encode_batch_into(batch, out),
            AnyEncoder::NGram(e) => e.encode_batch_into(batch, out),
            AnyEncoder::SymbolRecord(e) => e.encode_batch_into(batch, out),
        }
    }

    fn encode_signs_into(
        &self,
        batch: BatchView<'_>,
        words: &mut [u64],
        zero_rows: &mut [bool],
    ) -> hdc::Result<()> {
        match self {
            AnyEncoder::Rbf(e) => e.encode_signs_into(batch, words, zero_rows),
            AnyEncoder::IdLevel(e) => e.encode_signs_into(batch, words, zero_rows),
            AnyEncoder::Record(e) => e.encode_signs_into(batch, words, zero_rows),
            AnyEncoder::NGram(e) => e.encode_signs_into(batch, words, zero_rows),
            AnyEncoder::SymbolRecord(e) => e.encode_signs_into(batch, words, zero_rows),
        }
    }
}

/// History of one CyberHD training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Training-set accuracy measured after the initial accumulation pass
    /// and after every retraining epoch, in order.
    pub epoch_accuracy: Vec<f64>,
    /// Regeneration statistics accumulated across the run.
    pub regeneration: RegenerationStats,
    /// Number of samples the model was trained on.
    pub samples: usize,
    /// Physical hypervector dimensionality.
    pub physical_dimension: usize,
}

impl TrainingReport {
    /// Final training-set accuracy (after the last epoch), or `0.0` if no
    /// epoch was recorded.
    pub fn final_accuracy(&self) -> f64 {
        self.epoch_accuracy.last().copied().unwrap_or(0.0)
    }

    /// The paper's effective dimensionality
    /// `D* = physical D + Σ regenerated dimensions`.
    pub fn effective_dimension(&self) -> usize {
        self.regeneration.effective_dimension(self.physical_dimension)
    }
}

/// A trained CyberHD classifier.
#[derive(Debug, Clone)]
pub struct CyberHdModel {
    pub(crate) encoder: AnyEncoder,
    pub(crate) memory: AssociativeMemory,
    pub(crate) config: CyberHdConfig,
    pub(crate) report: TrainingReport,
}

impl CyberHdModel {
    /// Creates a model from its parts (used by the trainer and by the
    /// baseline wrapper).
    pub(crate) fn from_parts(
        encoder: AnyEncoder,
        memory: AssociativeMemory,
        config: CyberHdConfig,
        report: TrainingReport,
    ) -> Self {
        Self { encoder, memory, config, report }
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &CyberHdConfig {
        &self.config
    }

    /// The training history.
    pub fn report(&self) -> &TrainingReport {
        &self.report
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.memory.num_classes()
    }

    /// Physical hypervector dimensionality.
    pub fn dimension(&self) -> usize {
        self.memory.dim()
    }

    /// The paper's effective dimensionality `D*`.
    pub fn effective_dimension(&self) -> usize {
        self.report.effective_dimension()
    }

    /// Borrow of the trained class hypervectors.
    pub fn class_hypervectors(&self) -> &[Hypervector] {
        self.memory.classes()
    }

    /// Borrow of the (possibly regenerated) encoder.
    pub fn encoder(&self) -> &AnyEncoder {
        &self.encoder
    }

    /// Mutable borrow of the class-hypervector store.
    ///
    /// Exposed so fault-injection studies can perturb a deployed model
    /// in place; normal callers never need this.
    pub fn memory_mut(&mut self) -> &mut AssociativeMemory {
        &mut self.memory
    }

    /// Shared borrow of the class-hypervector store.
    pub fn memory(&self) -> &AssociativeMemory {
        &self.memory
    }

    /// Encodes a feature vector with the model's encoder.
    ///
    /// # Errors
    ///
    /// Returns an error if `features` does not match the configured arity.
    pub fn encode(&self, features: &[f32]) -> Result<Hypervector> {
        self.encoder.encode(features)
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `features` does not match the configured arity.
    pub fn predict(&self, features: &[f32]) -> Result<usize> {
        let encoded = self.encoder.encode(features)?;
        let (class, _similarity) = self.memory.nearest(&encoded)?;
        Ok(class)
    }

    /// Predicts the class of one feature vector and returns the cosine
    /// similarity to every class alongside the winner.
    ///
    /// The winner is derived from the score vector with a single argmax —
    /// the scores are computed exactly once (this method used to score
    /// every class twice, once for the vector and once more inside
    /// `nearest`).
    ///
    /// # Errors
    ///
    /// Returns an error if `features` does not match the configured arity.
    pub fn predict_with_scores(&self, features: &[f32]) -> Result<(usize, Vec<f32>)> {
        let encoded = self.encoder.encode(features)?;
        let scores = self.memory.similarities(&encoded)?;
        let (class, _similarity) =
            hdc::argmax(&scores).expect("memory always has at least one class");
        Ok((class, scores))
    }

    /// Predicts the classes of a zero-copy row-major batch view on the
    /// fused batched engine (the crate-private `inference` module): chunked
    /// zero-allocation encoding, class norms computed once per batch, and
    /// chunk fan-out across threads behind the `parallel` feature.
    ///
    /// This is the primary batch entry point; callers holding contiguous
    /// data (a preprocessed matrix, a capture buffer) pay **zero copies**.
    /// The legacy [`CyberHdModel::predict_batch`] wrapper flattens
    /// `&[Vec<f32>]` rows into this path.
    ///
    /// Predictions match mapping [`CyberHdModel::predict`] over the batch —
    /// exactly for the IdLevel/Record encoders, and up to the RBF batch
    /// kernel's 1e-6 score rounding for RBF models (the winner can differ
    /// only when the top two class scores are closer than that).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] if the view's row width does
    /// not match the configured feature arity.
    pub fn predict_batch_view(&self, batch: BatchView<'_>) -> Result<Vec<usize>> {
        Ok(crate::inference::predict_dense(&self.encoder, &self.memory, batch)?
            .into_iter()
            .map(|(class, _)| class)
            .collect())
    }

    /// [`CyberHdModel::predict_batch_view`] returning the winner's cosine
    /// similarity alongside each class — the scored form the open-set
    /// detector layer thresholds without a second pass.
    ///
    /// # Errors
    ///
    /// Same as [`CyberHdModel::predict_batch_view`].
    pub fn predict_batch_view_scored(&self, batch: BatchView<'_>) -> Result<Vec<(usize, f32)>> {
        crate::inference::predict_dense(&self.encoder, &self.memory, batch)
    }

    /// Predicts the classes of a batch of feature vectors.
    ///
    /// Legacy row-per-`Vec` form: rows are validated and flattened once,
    /// then scored through the zero-copy
    /// [`CyberHdModel::predict_batch_view`] engine.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] if any sample has the wrong
    /// feature arity.
    pub fn predict_batch(&self, batch: &[Vec<f32>]) -> Result<Vec<usize>> {
        let features = self.encoder.input_features();
        let data = crate::inference::flatten_rows(batch, features)?;
        self.predict_batch_view(BatchView::new(&data, features).expect("flattened rows"))
    }

    /// Evaluates the model on a labelled batch view, returning the
    /// confusion matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for mismatched input lengths
    /// and propagates prediction errors.
    pub fn evaluate_view(&self, batch: BatchView<'_>, labels: &[usize]) -> Result<ConfusionMatrix> {
        if batch.rows() != labels.len() {
            return Err(CyberHdError::InvalidData(format!(
                "{} feature rows but {} labels",
                batch.rows(),
                labels.len()
            )));
        }
        let predictions = self.predict_batch_view(batch)?;
        ConfusionMatrix::from_predictions(&predictions, labels, self.num_classes())
            .map_err(CyberHdError::from)
    }

    /// Evaluates the model on labelled data, returning the confusion matrix
    /// (legacy row-per-`Vec` form of [`CyberHdModel::evaluate_view`]).
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidData`] for mismatched input lengths and
    /// propagates prediction errors.
    pub fn evaluate(&self, features: &[Vec<f32>], labels: &[usize]) -> Result<ConfusionMatrix> {
        if features.len() != labels.len() {
            return Err(CyberHdError::InvalidData(format!(
                "{} feature vectors but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let predictions = self.predict_batch(features)?;
        ConfusionMatrix::from_predictions(&predictions, labels, self.num_classes())
            .map_err(CyberHdError::from)
    }

    /// Accuracy on a labelled batch view.
    ///
    /// # Errors
    ///
    /// Same as [`CyberHdModel::evaluate_view`].
    pub fn accuracy_view(&self, batch: BatchView<'_>, labels: &[usize]) -> Result<f64> {
        Ok(self.evaluate_view(batch, labels)?.accuracy())
    }

    /// Accuracy on labelled data (convenience wrapper around
    /// [`CyberHdModel::evaluate`]).
    ///
    /// # Errors
    ///
    /// Same as [`CyberHdModel::evaluate`].
    pub fn accuracy(&self, features: &[Vec<f32>], labels: &[usize]) -> Result<f64> {
        Ok(self.evaluate(features, labels)?.accuracy())
    }

    /// Exports a quantized copy of the model at the given element bitwidth.
    pub fn quantize(&self, width: BitWidth) -> QuantizedModel {
        QuantizedModel::from_model(self, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CyberHdConfig;

    fn tiny_config(encoder: EncoderKind) -> CyberHdConfig {
        CyberHdConfig::builder(3, 2)
            .dimension(64)
            .encoder(encoder)
            .regeneration_rate(if encoder == EncoderKind::Rbf { 0.1 } else { 0.0 })
            .seed(1)
            .build()
            .unwrap()
    }

    #[test]
    fn any_encoder_dispatches_all_kinds() {
        for kind in [EncoderKind::Rbf, EncoderKind::IdLevel, EncoderKind::Record] {
            let config = tiny_config(kind);
            let encoder = AnyEncoder::from_config(&config).unwrap();
            assert_eq!(encoder.kind(), kind);
            assert_eq!(encoder.input_features(), 3);
            assert_eq!(encoder.output_dim(), 64);
            let hv = encoder.encode(&[0.1, 0.2, 0.3]).unwrap();
            assert_eq!(hv.dim(), 64);
            assert_eq!(encoder.as_rbf().is_some(), kind == EncoderKind::Rbf);
        }
    }

    #[test]
    fn any_encoder_dispatches_the_symbolic_kinds() {
        let ngram_config = CyberHdConfig::builder(6, 2)
            .dimension(64)
            .encoder(EncoderKind::NGram)
            .ngram_order(2)
            .symbol_alphabets(vec![5])
            .regeneration_rate(0.0)
            .seed(2)
            .build()
            .unwrap();
        let encoder = AnyEncoder::from_config(&ngram_config).unwrap();
        assert_eq!(encoder.kind(), EncoderKind::NGram);
        assert_eq!(encoder.input_features(), 6);
        assert_eq!(encoder.output_dim(), 64);
        assert_eq!(encoder.encode(&[0.0, 1.0, 2.0, 3.0, 4.0, 0.0]).unwrap().dim(), 64);
        assert!(encoder.encode(&[0.0, 1.0, 2.0, 3.0, 4.0, 9.0]).is_err(), "symbol range");

        let record_config = CyberHdConfig::builder(3, 2)
            .dimension(64)
            .encoder(EncoderKind::SymbolRecord)
            .symbol_alphabets(vec![4, 0, 2])
            .regeneration_rate(0.0)
            .seed(2)
            .build()
            .unwrap();
        let encoder = AnyEncoder::from_config(&record_config).unwrap();
        assert_eq!(encoder.kind(), EncoderKind::SymbolRecord);
        assert_eq!(encoder.encode(&[3.0, 0.5, 1.0]).unwrap().dim(), 64);

        // Persistence round-trips through the tagged codec.
        for config in [&ngram_config, &record_config] {
            let original = AnyEncoder::from_config(config).unwrap();
            let mut w = Writer::new();
            original.write_to(&mut w);
            let bytes = w.into_bytes();
            let back = AnyEncoder::read_from(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back.kind(), original.kind());
            let mut again = Writer::new();
            back.write_to(&mut again);
            assert_eq!(again.into_bytes(), bytes);
        }
    }

    #[test]
    fn symbolic_configs_validate_their_alphabets() {
        let base =
            || CyberHdConfig::builder(6, 2).encoder(EncoderKind::NGram).regeneration_rate(0.0);
        assert!(base().symbol_alphabets(vec![5]).build().is_ok());
        assert!(base().build().is_err(), "missing alphabet");
        assert!(base().symbol_alphabets(vec![1]).build().is_err(), "degenerate alphabet");
        assert!(base().symbol_alphabets(vec![5, 5]).build().is_err(), "one shared entry only");
        assert!(base().symbol_alphabets(vec![5]).ngram_order(0).build().is_err());
        assert!(base().symbol_alphabets(vec![5]).ngram_order(7).build().is_err(), "order > len");
        assert!(
            base().symbol_alphabets(vec![5]).regeneration_rate(0.1).build().is_err(),
            "symbolic encoders cannot regenerate"
        );
        let record = || {
            CyberHdConfig::builder(3, 2).encoder(EncoderKind::SymbolRecord).regeneration_rate(0.0)
        };
        assert!(record().symbol_alphabets(vec![4, 0, 2]).build().is_ok());
        assert!(record().symbol_alphabets(vec![4, 0]).build().is_err(), "arity mismatch");
        assert!(!EncoderKind::NGram.supports_regeneration());
        assert!(!EncoderKind::SymbolRecord.supports_regeneration());
        assert!(EncoderKind::NGram.is_symbolic() && EncoderKind::SymbolRecord.is_symbolic());
        assert!(!EncoderKind::Rbf.is_symbolic());
    }

    #[test]
    fn any_encoder_rejects_wrong_arity() {
        let config = tiny_config(EncoderKind::Rbf);
        let encoder = AnyEncoder::from_config(&config).unwrap();
        assert!(encoder.encode(&[1.0]).is_err());
    }

    #[test]
    fn training_report_derives_effective_dimension() {
        let mut regeneration = RegenerationStats::new();
        regeneration.total_regenerated = 300;
        regeneration.rounds = 3;
        let report = TrainingReport {
            epoch_accuracy: vec![0.8, 0.9, 0.95],
            regeneration,
            samples: 1000,
            physical_dimension: 512,
        };
        assert_eq!(report.effective_dimension(), 812);
        assert!((report.final_accuracy() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_final_accuracy() {
        let report = TrainingReport {
            epoch_accuracy: vec![],
            regeneration: RegenerationStats::new(),
            samples: 0,
            physical_dimension: 8,
        };
        assert_eq!(report.final_accuracy(), 0.0);
        assert_eq!(report.effective_dimension(), 8);
    }
}

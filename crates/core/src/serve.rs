//! `cyberhd::serve` — micro-batching serving engine with a multi-tenant
//! detector registry and hot-swap.
//!
//! The fast paths of this repo ([`Detector::detect_batch`], the fused B1
//! kernel, the zero-copy [`hdc::BatchView`] engines) are only reachable
//! when the *caller* already holds a large batch.  Real deployments
//! receive flows **one at a time** from thousands of concurrent sources;
//! this module closes the gap with three pieces:
//!
//! * [`DetectorRegistry`] — tenant/stream id → sealed [`Detector`]
//!   artifact, with **atomic hot-swap** of versioned artifacts (loadable
//!   straight from [`hdc::codec`] bytes): in-flight micro-batches finish
//!   on the artifact they were admitted under, new submissions see the new
//!   one, and [`DetectorInfo`] admission checks reject swaps that would
//!   change the traffic contract mid-stream.
//! * [`ServeEngine`] — the micro-batcher.  [`ServeEngine::submit`] takes
//!   one **raw flow record**, preprocesses it allocation-free
//!   ([`nids_data::preprocess::Preprocessor::transform_record_into`] into
//!   a reusable [`hdc::BatchBuffer`] row) and returns a [`Ticket`];
//!   pending rows flush through the batched kernels when the
//!   `max_batch` watermark fills, when `max_delay` expires
//!   ([`ServeEngine::poll`]), or on demand.  A bounded queue pushes back
//!   ([`ServeError::Backpressure`]) instead of growing without limit.
//! * [`ServeStats`] — per-tenant observability: flows served, queue
//!   depth, batch-size histogram and flush-latency percentiles
//!   ([`eval::timing::LatencyHistogram`]).
//! * [`AdaptiveLane`] — the **drift-adaptive** per-tenant serving mode.
//!   Where the engine above serves a frozen artifact, an adaptive lane
//!   wraps a live [`OnlineDetector`]: submissions may carry ground truth
//!   ([`AdaptiveLane::submit_labelled`]) or receive it later through their
//!   ticket ([`AdaptiveLane::submit_feedback`]), prequential
//!   test-then-train accuracy is tracked in a sliding window, and when the
//!   [`crate::regeneration::DriftMonitor`] trips (windowed error-rate
//!   delta, or an open-set unknown-rate surge) the lane regenerates
//!   low-variance dimensions in place and republishes a sealed snapshot
//!   through the [`DetectorRegistry`] — so every frozen lane of the same
//!   tenant hot-swaps to the adapted model while in-flight micro-batches
//!   finish on their pinned generation.
//!
//! # Determinism contract
//!
//! Ticket verdicts are **bit-identical** to calling
//! [`Detector::detect_batch`] once over the same flows in submission
//! order, regardless of how arrivals interleave with flushes or where the
//! micro-batch boundaries fall.  This holds because every kernel on the
//! batch path processes rows independently (per-batch precomputation
//! depends only on the class memory) and the serve path runs the exact
//! same preprocess→encode→score expressions — pinned by `tests/serve.rs`
//! against a `detect_batch` oracle on all four dataset kinds.
//!
//! # Scaling out
//!
//! One [`ServeEngine`] is a **single shard**: one lane map, one lock, one
//! caller-driven [`ServeEngine::poll`].  The [`shard`] submodule composes
//! N of them into a [`shard::ShardedServeEngine`] that partitions tenants
//! by hash, drives flushes from a shared deadline wheel ([`timer`])
//! instead of caller polling, and sheds load deterministically under
//! overload ([`admission`], [`ServeError::Shed`]).  The determinism
//! contract below is shard-count-invariant: a tenant lives on exactly one
//! shard, so its lane machinery — and therefore its verdicts — are
//! identical whether it is served by one engine or one of sixteen.
//!
//! Adaptive lanes carry the streaming twin of that contract: events
//! (submissions and feedback) are applied **strictly in submission order**
//! through the serial [`crate::OnlineLearner`] rule, so verdicts *and* the
//! final model are bit-identical to a serial replay of the same event
//! sequence — regardless of where flush boundaries fall, how `poll` is
//! interleaved, or how many lanes run on other threads.  `tests/scenario.rs`
//! pins both contracts under seeded [`nids_data::drift::DriftStream`]
//! scenarios.
//!
//! # Example
//!
//! ```
//! use cyberhd::serve::{DetectorRegistry, ServeConfig, ServeEngine};
//! use cyberhd::Detector;
//! use nids_data::synth::SyntheticConfig;
//! use nids_data::DatasetKind;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(500, 7))?;
//! let detector = Detector::builder().dimension(128).retrain_epochs(1).train(&dataset)?;
//!
//! let registry = Arc::new(DetectorRegistry::new());
//! registry.register("edge-0", detector)?;
//! let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default())?;
//!
//! // Flows arrive one at a time; verdicts come back through tickets.
//! let tickets: Vec<_> = dataset.records()[..64]
//!     .iter()
//!     .map(|record| engine.submit("edge-0", record))
//!     .collect::<Result<_, _>>()?;
//! engine.flush("edge-0")?;
//! let verdict = engine.take(&tickets[0])?;
//! assert!(verdict.class < dataset.num_classes());
//! # Ok(())
//! # }
//! ```

pub mod admission;
pub mod shard;
pub mod timer;

use crate::detector::{Detector, DetectorInfo, OnlineDetector, Verdict};
use crate::regeneration::{DriftMonitor, DriftMonitorConfig};
use crate::CyberHdError;
use eval::timing::LatencyHistogram;
use hdc::rng::HdcRng;
use hdc::BatchBuffer;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Errors produced by the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The tenant id is not registered.
    UnknownTenant(String),
    /// The ticket was never issued by this engine, or its verdict was
    /// already taken.
    UnknownTicket,
    /// The tenant's bounded queue (pending flows plus uncollected
    /// verdicts) is full; the caller should drain tickets or shed load.
    Backpressure {
        /// Tenant whose queue is full.
        tenant: String,
        /// The configured queue capacity.
        capacity: usize,
        /// Queued work (pending flows plus uncollected verdicts) at the
        /// moment the submission was rejected.
        depth: usize,
        /// How long the caller should wait before retrying — the engine's
        /// `max_delay`, i.e. the latest point by which the queue is
        /// guaranteed to have been offered a flush.
        retry_hint: Duration,
    },
    /// The submission was **deterministically shed** by admission control
    /// (tenant quota exhausted, or the shard is over its overload
    /// watermark for this tenant's priority) before touching any queue.
    /// Unlike [`ServeError::Backpressure`] this is a policy decision, not
    /// a full buffer: draining tickets will not help, waiting will.
    Shed {
        /// Tenant whose submission was shed.
        tenant: String,
        /// How long the caller should wait before retrying (time until
        /// the next quota token, or one flush cadence under overload).
        retry_hint: Duration,
    },
    /// The submitted record failed schema validation (or another detector
    /// error); the flow was **not** enqueued.
    Rejected(CyberHdError),
    /// A hot-swap candidate failed the registry's admission checks.
    IncompatibleSwap(String),
    /// The tenant id is already registered (use [`DetectorRegistry::swap`]
    /// to replace an artifact).
    DuplicateTenant(String),
    /// The serve configuration is inconsistent.
    InvalidConfig(String),
    /// Ground truth arrived for a flow the adaptive lane never retained
    /// for feedback (the ticket was labelled at submit time) or whose
    /// feedback was already applied.
    FeedbackUnavailable(String),
    /// Ground truth arrived **too late**: the flow's record aged out of
    /// the bounded retention window (or the window is disabled).  Distinct
    /// from [`ServeError::FeedbackUnavailable`] so callers — and the WAL
    /// replay path — can tell an evicted flow from a never-retained one.
    FeedbackTooLate {
        /// Sequence number of the evicted flow.
        seq: u64,
        /// The configured retention window (`0` = late feedback disabled).
        retention: usize,
    },
    /// The durable lane's on-disk state (write-ahead log or checkpoint)
    /// could not be read, written, or reconciled with the live lane.
    Durability(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(tenant) => write!(f, "unknown tenant {tenant:?}"),
            ServeError::UnknownTicket => write!(f, "unknown or already-taken ticket"),
            ServeError::Backpressure { tenant, capacity, depth, retry_hint } => {
                write!(
                    f,
                    "tenant {tenant:?} queue is full ({depth}/{capacity} flows); drain tickets \
                     or retry in {retry_hint:?}"
                )
            }
            ServeError::Shed { tenant, retry_hint } => {
                write!(f, "tenant {tenant:?} submission shed by admission control; retry in {retry_hint:?}")
            }
            ServeError::Rejected(e) => write!(f, "flow rejected: {e}"),
            ServeError::IncompatibleSwap(what) => write!(f, "incompatible hot-swap: {what}"),
            ServeError::DuplicateTenant(tenant) => {
                write!(f, "tenant {tenant:?} is already registered; use swap to replace")
            }
            ServeError::InvalidConfig(what) => write!(f, "invalid serve configuration: {what}"),
            ServeError::FeedbackUnavailable(what) => {
                write!(f, "feedback unavailable: {what}")
            }
            ServeError::FeedbackTooLate { seq, retention } => {
                write!(
                    f,
                    "feedback too late: flow {seq} aged out of the {retention}-flow retention \
                     window"
                )
            }
            ServeError::Durability(what) => write!(f, "durability error: {what}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CyberHdError> for ServeError {
    fn from(e: CyberHdError) -> Self {
        ServeError::Rejected(e)
    }
}

/// Serving-layer result alias.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Watermarks of the micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush a tenant's pending flows as soon as this many are queued —
    /// the batched kernels' amortization knob.
    pub max_batch: usize,
    /// Flush a tenant's pending flows once its **oldest** one has waited
    /// this long, even if the batch is not full (checked by
    /// [`ServeEngine::poll`]) — the tail-latency knob.
    pub max_delay: Duration,
    /// Bound on one tenant's queued work: pending flows **plus**
    /// completed-but-uncollected verdicts.  Submissions beyond it fail
    /// with [`ServeError::Backpressure`] instead of growing the queue.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { max_batch: 64, max_delay: Duration::from_millis(2), queue_capacity: 4096 }
    }
}

impl ServeConfig {
    fn validate(&self) -> ServeResult<()> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be non-zero".into()));
        }
        if self.queue_capacity < self.max_batch {
            return Err(ServeError::InvalidConfig(format!(
                "queue_capacity ({}) must be at least max_batch ({})",
                self.queue_capacity, self.max_batch
            )));
        }
        Ok(())
    }
}

/// Source of **process-unique** lane ids, shared by every [`ServeEngine`]
/// lane and every [`AdaptiveLane`]: a ticket stamped by one lane can never
/// collect from any other lane — not a recreated lane of the same tenant,
/// not another engine's lane, and not an adaptive lane serving the same
/// tenant id.
static LANE_IDS: AtomicU64 = AtomicU64::new(0);

/// The next process-unique lane id.
fn next_lane_id() -> u64 {
    LANE_IDS.fetch_add(1, Ordering::Relaxed) + 1
}

/// A claim on the verdict of one submitted flow; redeem it with
/// [`ServeEngine::take`] (blocking until the flow's batch flushes is the
/// caller's choice of [`ServeEngine::take`] vs [`ServeEngine::try_take`]).
#[derive(Debug, Clone)]
pub struct Ticket {
    tenant: Arc<str>,
    /// Process-unique id of the lane that issued this ticket (see
    /// [`LANE_IDS`]).  Sequence numbers restart when a lane is recreated
    /// after eviction, so the lane identity is what stops a stale
    /// pre-eviction ticket from silently collecting a recycled sequence
    /// number's verdict.
    lane: u64,
    seq: u64,
}

impl Ticket {
    /// The tenant the flow was submitted to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Submission sequence number within the tenant (0-based, gap-free).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// One registered artifact: its per-tenant `version` (the human-facing
/// sequence: register → 1, each swap +1) and its registry-unique
/// `generation` (what the engine pins batches against — generations are
/// drawn from one monotonic counter, so a remove + re-register under the
/// same id can never alias an older artifact the way a reset version
/// counter would).
#[derive(Debug, Clone)]
struct TenantEntry {
    detector: Detector,
    version: u64,
    generation: u64,
}

/// Tenant/stream id → sealed [`Detector`] artifact, with atomic hot-swap.
///
/// Reads are one `RwLock` read plus an `Arc` bump (detectors are
/// Arc-shared), so routing stays off the scoring hot path's critical
/// section; a swap is one write-lock pointer replacement — **atomic** in
/// the sense that every micro-batch scores against exactly one artifact
/// version, never a half-swapped mixture.
#[derive(Debug, Default)]
pub struct DetectorRegistry {
    tenants: RwLock<HashMap<Arc<str>, TenantEntry>>,
    /// Source of registry-unique artifact generations.
    generations: std::sync::atomic::AtomicU64,
}

impl DetectorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next registry-unique artifact generation.
    fn next_generation(&self) -> u64 {
        self.generations.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1
    }

    /// Registers a new tenant at version 1.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateTenant`] if the id is taken.
    pub fn register(&self, tenant: &str, detector: Detector) -> ServeResult<()> {
        let generation = self.next_generation();
        let mut tenants = self.tenants.write().expect("registry lock");
        if tenants.contains_key(tenant) {
            return Err(ServeError::DuplicateTenant(tenant.into()));
        }
        tenants.insert(tenant.into(), TenantEntry { detector, version: 1, generation });
        Ok(())
    }

    /// Atomically replaces a tenant's artifact, returning the new version.
    ///
    /// Before the swap the candidate must pass the **admission check**:
    /// same raw-record schema (name and arity), same preprocessed input
    /// width and same class count as the live artifact — the properties
    /// in-flight traffic and downstream verdict consumers depend on.
    /// Encoder family, dimensionality, bitwidth and thresholds may all
    /// change freely (that is what hot-swapping is for).
    ///
    /// Micro-batches already admitted under the old artifact finish on it
    /// (they hold their own `Arc`); submissions routed after the swap see
    /// the new one.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownTenant`] for an unregistered id and
    /// [`ServeError::IncompatibleSwap`] when the admission check fails.
    pub fn swap(&self, tenant: &str, detector: Detector) -> ServeResult<u64> {
        let generation = self.next_generation();
        let mut tenants = self.tenants.write().expect("registry lock");
        let entry =
            tenants.get_mut(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.into()))?;
        check_admission(&entry.detector.info(), &detector.info())?;
        entry.detector = detector;
        entry.version += 1;
        entry.generation = generation;
        Ok(entry.version)
    }

    /// [`DetectorRegistry::swap`] from persisted artifact bytes
    /// ([`Detector::to_bytes`] / [`hdc::codec`]) — the deployment path
    /// where new versions arrive over the wire or from disk.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Rejected`] for malformed bytes, plus the
    /// [`DetectorRegistry::swap`] errors.
    pub fn swap_from_bytes(&self, tenant: &str, bytes: &[u8]) -> ServeResult<u64> {
        self.swap(tenant, Detector::from_bytes(bytes)?)
    }

    /// Removes a tenant, returning its artifact.
    pub fn remove(&self, tenant: &str) -> Option<Detector> {
        self.tenants.write().expect("registry lock").remove(tenant).map(|e| e.detector)
    }

    /// The tenant's current artifact and version (an `Arc` bump, no copy).
    pub fn current(&self, tenant: &str) -> Option<(Detector, u64)> {
        self.tenants
            .read()
            .expect("registry lock")
            .get(tenant)
            .map(|e| (e.detector.clone(), e.version))
    }

    /// The tenant's current version without touching the artifact.
    pub fn version(&self, tenant: &str) -> Option<u64> {
        self.tenants.read().expect("registry lock").get(tenant).map(|e| e.version)
    }

    /// The tenant's current generation — the cheap (no `Arc` clone) read
    /// the engine's per-submit pin check runs.
    fn generation(&self, tenant: &str) -> Option<u64> {
        self.tenants.read().expect("registry lock").get(tenant).map(|e| e.generation)
    }

    /// The tenant's current artifact and generation, for pinning a new
    /// micro-batch.
    fn pin(&self, tenant: &str) -> Option<(Detector, u64)> {
        self.tenants
            .read()
            .expect("registry lock")
            .get(tenant)
            .map(|e| (e.detector.clone(), e.generation))
    }

    /// Artifact metadata of a tenant's current version.
    pub fn info(&self, tenant: &str) -> Option<DetectorInfo> {
        self.tenants.read().expect("registry lock").get(tenant).map(|e| e.detector.info())
    }

    /// Registered tenant ids, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .tenants
            .read()
            .expect("registry lock")
            .keys()
            .map(|k| k.as_ref().to_string())
            .collect();
        ids.sort();
        ids
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.read().expect("registry lock").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The swap admission rule (see [`DetectorRegistry::swap`]).
fn check_admission(live: &DetectorInfo, candidate: &DetectorInfo) -> ServeResult<()> {
    if candidate.schema != live.schema || candidate.record_arity != live.record_arity {
        return Err(ServeError::IncompatibleSwap(format!(
            "schema {} ({} raw features) cannot replace {} ({} raw features)",
            candidate.schema, candidate.record_arity, live.schema, live.record_arity
        )));
    }
    if candidate.input_width != live.input_width {
        return Err(ServeError::IncompatibleSwap(format!(
            "preprocessed width {} cannot replace {}",
            candidate.input_width, live.input_width
        )));
    }
    if candidate.classes != live.classes {
        return Err(ServeError::IncompatibleSwap(format!(
            "{} classes cannot replace {} (verdict consumers assume a fixed label space)",
            candidate.classes, live.classes
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// One queued flow: its ticket sequence number and submit timestamp.
#[derive(Debug, Clone, Copy)]
struct PendingFlow {
    seq: u64,
    submitted: Instant,
}

/// A tenant's micro-batch lane: the reusable preprocessed-row buffer, the
/// pending tickets riding it, the artifact generation the rows were
/// admitted under, completed verdicts awaiting collection, and stats.
#[derive(Debug)]
struct Lane {
    /// Engine-unique lane id, stamped into every [`Ticket`] this lane
    /// issues.
    id: u64,
    /// Set (under the lane mutex) when the lane is removed from the
    /// engine's map: a submitter that raced the eviction and still holds
    /// the orphaned `Arc` re-resolves instead of enqueueing into a lane
    /// nothing will ever flush.
    evicted: bool,
    /// The lanes-map key, shared into every [`Ticket`] this lane issues
    /// (a refcount bump, not a fresh allocation per flow).
    tenant: Arc<str>,
    /// Artifact the pending rows were preprocessed by and will score on,
    /// plus its registry **generation**; `None` while the lane is empty.
    /// Pinning per batch is what makes a registry swap atomic from the
    /// lane's point of view, and generations (registry-unique, never
    /// reused) make the pin check immune to a remove + re-register under
    /// the same tenant id.
    pinned: Option<(Detector, u64)>,
    /// Preprocessed pending rows (reused across flushes — after warm-up
    /// the accumulate→flush cycle allocates nothing).
    buffer: BatchBuffer,
    pending: Vec<PendingFlow>,
    completed: HashMap<u64, Verdict>,
    next_seq: u64,
    stats: LaneStats,
}

/// Mutable per-tenant counters behind [`ServeStats`].
#[derive(Debug)]
struct LaneStats {
    flows_submitted: u64,
    flows_served: u64,
    rejected: u64,
    batches: u64,
    /// `batch_sizes[n]` counts flushes of exactly `n` flows
    /// (index 0 unused; sized `max_batch + 1`).
    batch_sizes: Vec<u64>,
    latency: LatencyHistogram,
}

impl LaneStats {
    fn new(max_batch: usize) -> Self {
        Self {
            flows_submitted: 0,
            flows_served: 0,
            rejected: 0,
            batches: 0,
            batch_sizes: vec![0; max_batch + 1],
            latency: LatencyHistogram::new(),
        }
    }
}

/// A point-in-time snapshot of one tenant's serving counters.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Tenant id.
    pub tenant: String,
    /// Version of the artifact new submissions are routed to.
    pub detector_version: u64,
    /// Flows accepted by [`ServeEngine::submit`].
    pub flows_submitted: u64,
    /// Flows scored through flushed micro-batches.
    pub flows_served: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Pending flows waiting for the next flush.
    pub queue_depth: usize,
    /// Completed verdicts not yet collected through their tickets.
    pub uncollected: usize,
    /// Micro-batches flushed.
    pub batches: u64,
    /// `(batch size, flush count)` pairs, non-zero entries only.
    pub batch_size_histogram: Vec<(usize, u64)>,
    /// Mean submit→verdict latency.
    pub mean_latency: Duration,
    /// Median submit→verdict latency.
    pub p50_latency: Duration,
    /// 99th-percentile submit→verdict latency.
    pub p99_latency: Duration,
    /// Worst observed submit→verdict latency.
    pub max_latency: Duration,
    /// The full submit→verdict latency histogram the percentiles above
    /// were read from — carried in the snapshot so stats from different
    /// lanes (or shards) can be folded together without losing percentile
    /// fidelity ([`ServeStats::merge`], [`LatencyHistogram::merge`]).
    pub latency: LatencyHistogram,
}

impl ServeStats {
    /// Mean flows per flushed micro-batch (`0.0` before the first flush).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.flows_served as f64 / self.batches as f64
    }

    /// Folds `other` into this snapshot — the cross-lane / cross-shard
    /// aggregation behind [`shard::ShardedServeEngine::fleet_stats`].
    ///
    /// Counters add, the batch-size and latency histograms merge
    /// bucket-wise, and the latency summary fields (mean/p50/p99/max) are
    /// recomputed from the merged histogram, so aggregated percentiles
    /// are exactly what a single lane observing the union of both latency
    /// streams would have reported.  `detector_version` is kept only when
    /// both sides agree (a fleet of mixed versions reports `0`).
    pub fn merge(&mut self, other: &ServeStats) {
        self.flows_submitted += other.flows_submitted;
        self.flows_served += other.flows_served;
        self.rejected += other.rejected;
        self.queue_depth += other.queue_depth;
        self.uncollected += other.uncollected;
        self.batches += other.batches;
        if self.detector_version != other.detector_version {
            self.detector_version = 0;
        }
        for &(size, count) in &other.batch_size_histogram {
            match self.batch_size_histogram.iter_mut().find(|(s, _)| *s == size) {
                Some((_, own)) => *own += count,
                None => self.batch_size_histogram.push((size, count)),
            }
        }
        self.batch_size_histogram.sort_unstable_by_key(|&(size, _)| size);
        self.latency.merge(&other.latency);
        self.mean_latency = self.latency.mean();
        self.p50_latency = self.latency.percentile(0.50);
        self.p99_latency = self.latency.percentile(0.99);
        self.max_latency = self.latency.max();
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: v{}, {} served / {} submitted ({} rejected), depth {} (+{} uncollected), {} \
             batches (mean {:.1}), latency mean {:?} p50 {:?} p99 {:?} max {:?}",
            self.tenant,
            self.detector_version,
            self.flows_served,
            self.flows_submitted,
            self.rejected,
            self.queue_depth,
            self.uncollected,
            self.batches,
            self.mean_batch_size(),
            self.mean_latency,
            self.p50_latency,
            self.p99_latency,
            self.max_latency,
        )
    }
}

/// The micro-batching serving engine (see the [module docs](self)).
///
/// All methods take `&self`: lanes sit behind per-tenant mutexes, so
/// concurrent sources can submit to different tenants fully in parallel
/// (and to the same tenant under one short critical section per flow).
#[derive(Debug)]
pub struct ServeEngine {
    registry: Arc<DetectorRegistry>,
    config: ServeConfig,
    lanes: RwLock<HashMap<Arc<str>, Arc<Mutex<Lane>>>>,
    /// Queued work across every lane: pending flows plus uncollected
    /// verdicts.  Maintained as a lock-free counter so admission control
    /// ([`admission::AdmissionController`]) can read a shard's occupancy
    /// without touching the lane map.
    outstanding: std::sync::atomic::AtomicUsize,
}

/// What [`ServeEngine::poll_tenant`] found — the deadline wheel's
/// per-lane verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePoll {
    /// The lane's oldest pending flow had waited at least `max_delay`;
    /// the batch was flushed and this many flows were scored.
    Flushed(usize),
    /// The lane has pending flows but the oldest is younger than
    /// `max_delay`; it becomes due after this long (reschedule hint).
    Due(Duration),
    /// Nothing pending (no lane, an evicted lane, or an empty one).
    Idle,
}

impl ServeEngine {
    /// Creates an engine routing through `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for inconsistent watermarks.
    pub fn new(registry: Arc<DetectorRegistry>, config: ServeConfig) -> ServeResult<Self> {
        config.validate()?;
        Ok(Self {
            registry,
            config,
            lanes: RwLock::new(HashMap::new()),
            outstanding: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// Queued work across every lane of this engine: pending flows plus
    /// completed-but-uncollected verdicts.  The overload signal admission
    /// control reads per submission — a relaxed atomic load, no locks.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The registry this engine routes through.
    pub fn registry(&self) -> &Arc<DetectorRegistry> {
        &self.registry
    }

    /// The engine's watermark configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The tenant's lane, created on first use.
    fn lane(&self, tenant: &str) -> ServeResult<Arc<Mutex<Lane>>> {
        if let Some(lane) = self.lanes.read().expect("lanes lock").get(tenant) {
            return Ok(Arc::clone(lane));
        }
        // Creating a lane requires the tenant to be registered; racing
        // creators converge on whichever entry lands first.
        let (detector, _) =
            self.registry.pin(tenant).ok_or_else(|| ServeError::UnknownTenant(tenant.into()))?;
        let width = detector.preprocessor().output_width();
        let mut lanes = self.lanes.write().expect("lanes lock");
        let key: Arc<str> = tenant.into();
        let lane = lanes.entry(Arc::clone(&key)).or_insert_with(|| {
            Arc::new(Mutex::new(Lane {
                id: next_lane_id(),
                evicted: false,
                tenant: key,
                pinned: None,
                buffer: BatchBuffer::with_width(width).expect("output width is non-zero"),
                pending: Vec::new(),
                completed: HashMap::new(),
                next_seq: 0,
                stats: LaneStats::new(self.config.max_batch),
            }))
        });
        Ok(Arc::clone(lane))
    }

    /// Submits one raw flow record for `tenant`, returning a [`Ticket`]
    /// for its verdict.
    ///
    /// The record is preprocessed immediately (allocation-free, into the
    /// lane's reusable row buffer) against the artifact the current
    /// micro-batch is pinned to; if the registry swapped since the batch
    /// started, the old batch is first flushed **on its old artifact** and
    /// this flow starts a new batch on the new one.  Reaching `max_batch`
    /// pending flows flushes inline.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownTenant`] — tenant not registered,
    /// * [`ServeError::Backpressure`] — bounded queue full (flow dropped),
    /// * [`ServeError::Rejected`] — record failed schema validation (flow
    ///   dropped, queue intact).
    pub fn submit(&self, tenant: &str, record: &[f32]) -> ServeResult<Ticket> {
        self.submit_counted(tenant, record).map(|(ticket, _)| ticket)
    }

    /// [`ServeEngine::submit`], additionally reporting how many flows are
    /// pending in the tenant's lane **after** this submission (`0` when
    /// the submission itself filled and flushed the batch).  A sharded
    /// engine uses the count to schedule exactly one deadline-wheel entry
    /// per in-flight batch: the flow that takes a lane from empty to
    /// non-empty (count 1) starts the batch's `max_delay` clock.
    ///
    /// # Errors
    ///
    /// As [`ServeEngine::submit`].
    pub fn submit_counted(&self, tenant: &str, record: &[f32]) -> ServeResult<(Ticket, usize)> {
        // Re-resolve if an eviction raced between looking the lane up and
        // locking it — enqueueing into an orphaned lane would strand the
        // flow (nothing ever flushes an evicted lane).
        loop {
            let lane = self.lane(tenant)?;
            let mut lane = lane.lock().expect("lane lock");
            if lane.evicted {
                continue;
            }
            let ticket = self.submit_locked(&mut lane, tenant, record)?;
            return Ok((ticket, lane.pending.len()));
        }
    }

    /// [`ServeEngine::submit`] against an already locked, live lane.
    fn submit_locked(&self, lane: &mut Lane, tenant: &str, record: &[f32]) -> ServeResult<Ticket> {
        // Route: a generation change (swap, or remove + re-register) seals
        // the in-flight batch on its pinned (old) artifact.  The steady
        // state reads only the generation — no artifact `Arc` is cloned
        // and nothing allocates until the lane needs a new pin.
        let generation = self
            .registry
            .generation(tenant)
            .ok_or_else(|| ServeError::UnknownTenant(tenant.into()))?;
        if lane.pinned.as_ref().is_some_and(|(_, pinned)| *pinned != generation) {
            flush_lane(lane);
        }

        let depth = lane.pending.len() + lane.completed.len();
        if depth >= self.config.queue_capacity {
            lane.stats.rejected += 1;
            return Err(ServeError::Backpressure {
                tenant: tenant.into(),
                capacity: self.config.queue_capacity,
                depth,
                retry_hint: self.config.max_delay,
            });
        }

        if lane.pinned.is_none() {
            // Re-read atomically with the artifact: a swap racing between
            // the generation read above and here just means this batch pins
            // the newer generation, which is equally consistent.
            let (current, generation) = self
                .registry
                .pin(tenant)
                .ok_or_else(|| ServeError::UnknownTenant(tenant.into()))?;
            let width = current.preprocessor().output_width();
            if lane.buffer.width() != width {
                // The admission check pins the width across swaps, but a
                // remove + re-register legally changes it; restart the
                // buffer rather than serving through a stale shape.
                lane.buffer = BatchBuffer::with_width(width).expect("output width is non-zero");
            }
            lane.pinned = Some((current, generation));
        }
        let (detector, _) = lane.pinned.as_ref().expect("pinned above");

        let row = lane.buffer.push_row();
        if let Err(e) = detector.preprocessor().transform_record_into(record, row) {
            lane.buffer.pop_row();
            return Err(ServeError::Rejected(CyberHdError::Data(e)));
        }
        let seq = lane.next_seq;
        lane.next_seq += 1;
        lane.pending.push(PendingFlow { seq, submitted: Instant::now() });
        lane.stats.flows_submitted += 1;
        self.outstanding.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

        if lane.pending.len() >= self.config.max_batch {
            flush_lane(lane);
        }
        Ok(Ticket { tenant: Arc::clone(&lane.tenant), lane: lane.id, seq })
    }

    /// Flushes `tenant`'s pending flows now, returning how many were
    /// scored.  A registered tenant with no serving state yet flushes
    /// zero flows (no lane is created).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownTenant`] for an unregistered tenant
    /// with no lane.
    pub fn flush(&self, tenant: &str) -> ServeResult<usize> {
        if let Some(lane) = self.existing_lane(tenant) {
            let mut lane = lane.lock().expect("lane lock");
            // An eviction racing this lookup orphaned the lane; scoring
            // its batch would bury the verdicts forever.
            if !lane.evicted {
                return Ok(flush_lane(&mut lane));
            }
        }
        if self.registry.generation(tenant).is_some() {
            Ok(0)
        } else {
            Err(ServeError::UnknownTenant(tenant.into()))
        }
    }

    /// Flushes every lane whose **oldest** pending flow has waited at
    /// least `max_delay`, returning the number of flows scored.  Callers
    /// drive this from their event loop (or a timer thread); between
    /// submissions it is the only thing that needs to run.
    ///
    /// Doubles as the engine's housekeeping pass: lanes whose tenant has
    /// been removed from the registry are evicted (see
    /// [`ServeEngine::evict`]) instead of lingering for the life of the
    /// engine.
    pub fn poll(&self) -> usize {
        let now = Instant::now();
        let lanes: Vec<(Arc<str>, Arc<Mutex<Lane>>)> = self
            .lanes
            .read()
            .expect("lanes lock")
            .iter()
            .map(|(key, lane)| (Arc::clone(key), Arc::clone(lane)))
            .collect();
        let mut served = 0usize;
        for (key, lane) in lanes {
            if self.registry.generation(&key).is_none() {
                self.evict_if_unregistered(&key);
                continue;
            }
            let mut lane = lane.lock().expect("lane lock");
            if lane.evicted {
                // An eviction raced the snapshot above: scoring the orphan
                // would bury its verdicts (no ticket can collect from an
                // evicted lane), so skip it — evict() already honoured the
                // "outstanding tickets fail" guarantee.
                continue;
            }
            let expired = lane.pending.first().is_some_and(|oldest| {
                now.duration_since(oldest.submitted) >= self.config.max_delay
            });
            if expired {
                served += flush_lane(&mut lane);
            }
        }
        served
    }

    /// [`ServeEngine::poll`] for a **single** tenant — the targeted form a
    /// deadline wheel drives when this tenant's batch deadline fires, so a
    /// timer tick touches one lane instead of scanning the whole map.
    ///
    /// Flushes the lane if its oldest pending flow has waited at least
    /// `max_delay`; otherwise reports how much of the wait remains
    /// ([`LanePoll::Due`]) so the caller can reschedule.  Like `poll`,
    /// doubles as housekeeping: a lane whose tenant left the registry is
    /// evicted and reported [`LanePoll::Idle`].
    pub fn poll_tenant(&self, tenant: &str) -> LanePoll {
        if self.registry.generation(tenant).is_none() {
            self.evict_if_unregistered(tenant);
            return LanePoll::Idle;
        }
        let Some(lane) = self.existing_lane(tenant) else {
            return LanePoll::Idle;
        };
        let mut lane = lane.lock().expect("lane lock");
        if lane.evicted {
            return LanePoll::Idle;
        }
        match lane.pending.first() {
            None => LanePoll::Idle,
            Some(oldest) => {
                let waited = oldest.submitted.elapsed();
                if waited >= self.config.max_delay {
                    LanePoll::Flushed(flush_lane(&mut lane))
                } else {
                    LanePoll::Due(self.config.max_delay - waited)
                }
            }
        }
    }

    /// Drops `tenant`'s lane — its reusable buffer, **pending flows and
    /// uncollected verdicts included**; outstanding tickets fail with
    /// [`ServeError::UnknownTenant`] (unregistered) or
    /// [`ServeError::UnknownTicket`] afterwards.  Call after
    /// [`DetectorRegistry::remove`] to release the tenant's serving state
    /// (or let the next [`ServeEngine::poll`] do it).  Returns whether a
    /// lane existed.
    pub fn evict(&self, tenant: &str) -> bool {
        let mut lanes = self.lanes.write().expect("lanes lock");
        match lanes.remove(tenant) {
            Some(lane) => {
                // Flag under the lane mutex (inside the map's write lock,
                // so no new lookup can hand the orphan out): a submitter
                // that already holds this Arc re-resolves instead of
                // enqueueing into a lane nothing will ever flush.
                let mut lane = lane.lock().expect("lane lock");
                lane.evicted = true;
                self.outstanding.fetch_sub(
                    lane.pending.len() + lane.completed.len(),
                    std::sync::atomic::Ordering::Relaxed,
                );
                true
            }
            None => false,
        }
    }

    /// [`ServeEngine::evict`] only if the tenant is (still) absent from
    /// the registry — the housekeeping form, re-checked under the map's
    /// write lock so a concurrent re-register + submit cannot have its
    /// live lane swept away.
    fn evict_if_unregistered(&self, tenant: &str) {
        let mut lanes = self.lanes.write().expect("lanes lock");
        if self.registry.generation(tenant).is_none() {
            if let Some(lane) = lanes.remove(tenant) {
                let mut lane = lane.lock().expect("lane lock");
                lane.evicted = true;
                self.outstanding.fetch_sub(
                    lane.pending.len() + lane.completed.len(),
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
        }
    }

    /// Flushes every lane unconditionally, fanning the per-tenant flushes
    /// out across worker threads ([`hdc::parallel::for_each_task`], behind
    /// the `parallel` feature) — batches of different tenants are
    /// independent, so the fan-out cannot affect any verdict.  Returns the
    /// number of flows scored.
    pub fn flush_all(&self) -> usize {
        let lanes = self.snapshot_lanes();
        let served = std::sync::atomic::AtomicUsize::new(0);
        let threads = hdc::parallel::engine_threads().min(lanes.len().max(1));
        hdc::parallel::for_each_task(lanes, threads, |lane| {
            let mut lane = lane.lock().expect("lane lock");
            if lane.evicted {
                // Same eviction race as poll(): never score an orphan.
                return;
            }
            let n = flush_lane(&mut lane);
            served.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        });
        served.into_inner()
    }

    /// The tenant's lane if one exists — the non-creating lookup the
    /// collect/flush paths use, so read-only calls never materialize
    /// serving state (and never resurrect an evicted lane).
    fn existing_lane(&self, tenant: &str) -> Option<Arc<Mutex<Lane>>> {
        self.lanes.read().expect("lanes lock").get(tenant).map(Arc::clone)
    }

    /// The error for an operation on a tenant with no lane: tickets of a
    /// registered tenant are simply unknown (nothing was ever queued, or
    /// the lane was evicted); an unregistered tenant is the bigger
    /// problem, reported as such.
    fn no_lane_error(&self, tenant: &str) -> ServeError {
        if self.registry.generation(tenant).is_some() {
            ServeError::UnknownTicket
        } else {
            ServeError::UnknownTenant(tenant.into())
        }
    }

    /// Non-blocking collect: the verdict if the ticket's batch has
    /// flushed, `None` if the flow is still pending.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownTicket`] for a foreign,
    /// already-collected or evicted ticket and
    /// [`ServeError::UnknownTenant`] when the tenant is not registered.
    pub fn try_take(&self, ticket: &Ticket) -> ServeResult<Option<Verdict>> {
        let lane =
            self.existing_lane(&ticket.tenant).ok_or_else(|| self.no_lane_error(&ticket.tenant))?;
        let mut lane = lane.lock().expect("lane lock");
        if lane.evicted || lane.id != ticket.lane {
            // Evicted lanes honour evict()'s "outstanding tickets fail"
            // guarantee even when the collect raced the eviction; and
            // sequence numbers restart in a recreated lane, so a ticket
            // from a previous lane must not collect a recycled seq.
            return Err(ServeError::UnknownTicket);
        }
        if let Some(verdict) = lane.completed.remove(&ticket.seq) {
            self.outstanding.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(Some(verdict));
        }
        if lane.pending.iter().any(|p| p.seq == ticket.seq) {
            return Ok(None);
        }
        Err(ServeError::UnknownTicket)
    }

    /// Collects a ticket's verdict, flushing its batch first if the flow
    /// is still pending (the synchronous caller's "I need this one now").
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownTicket`] for a foreign,
    /// already-collected or evicted ticket and
    /// [`ServeError::UnknownTenant`] when the tenant is not registered.
    pub fn take(&self, ticket: &Ticket) -> ServeResult<Verdict> {
        let lane =
            self.existing_lane(&ticket.tenant).ok_or_else(|| self.no_lane_error(&ticket.tenant))?;
        let mut lane = lane.lock().expect("lane lock");
        if lane.evicted || lane.id != ticket.lane {
            return Err(ServeError::UnknownTicket);
        }
        if let Some(verdict) = lane.completed.remove(&ticket.seq) {
            self.outstanding.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(verdict);
        }
        if lane.pending.iter().any(|p| p.seq == ticket.seq) {
            flush_lane(&mut lane);
            let verdict = lane.completed.remove(&ticket.seq).ok_or(ServeError::UnknownTicket)?;
            self.outstanding.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(verdict);
        }
        Err(ServeError::UnknownTicket)
    }

    /// A snapshot of `tenant`'s serving counters, or `None` before its
    /// first submission.
    pub fn stats(&self, tenant: &str) -> Option<ServeStats> {
        let lane = self.lanes.read().expect("lanes lock").get(tenant).map(Arc::clone)?;
        let version = self.registry.version(tenant).unwrap_or(0);
        let lane = lane.lock().expect("lane lock");
        let stats = &lane.stats;
        Some(ServeStats {
            tenant: tenant.to_string(),
            detector_version: version,
            flows_submitted: stats.flows_submitted,
            flows_served: stats.flows_served,
            rejected: stats.rejected,
            queue_depth: lane.pending.len(),
            uncollected: lane.completed.len(),
            batches: stats.batches,
            batch_size_histogram: stats
                .batch_sizes
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(size, &count)| (size, count))
                .collect(),
            mean_latency: stats.latency.mean(),
            p50_latency: stats.latency.percentile(0.50),
            p99_latency: stats.latency.percentile(0.99),
            max_latency: stats.latency.max(),
            latency: stats.latency.clone(),
        })
    }

    /// Every lane currently known to the engine.
    fn snapshot_lanes(&self) -> Vec<Arc<Mutex<Lane>>> {
        self.lanes.read().expect("lanes lock").values().map(Arc::clone).collect()
    }

    /// Tenant ids with serving state on this engine (the stats fan-out
    /// key set — distinct from [`DetectorRegistry::tenants`], which lists
    /// registrations whether or not they ever submitted).
    fn lane_keys(&self) -> Vec<Arc<str>> {
        self.lanes.read().expect("lanes lock").keys().map(Arc::clone).collect()
    }
}

/// Scores a lane's pending micro-batch on its pinned artifact and files
/// the verdicts under their tickets.  Returns the number of flows scored.
///
/// Infallible by construction: rows were validated at submit time, the
/// buffer width matches the pinned artifact, and scoring a well-shaped
/// view cannot fail.
fn flush_lane(lane: &mut Lane) -> usize {
    if lane.pending.is_empty() {
        // Unpin even with nothing to score: a rejected first flow can
        // leave an empty lane pinned, and a stale pin surviving this
        // flush would let post-swap submissions skip the re-pin (and the
        // buffer-width restart) and score on the superseded artifact.
        lane.pinned = None;
        return 0;
    }
    let (detector, _) = lane.pinned.as_ref().expect("non-empty lanes are pinned");
    let verdicts = detector
        .detect_preprocessed(lane.buffer.view())
        .expect("pending rows were validated at submit time");
    debug_assert_eq!(verdicts.len(), lane.pending.len());
    let now = Instant::now();
    let size = lane.pending.len();
    for (flow, verdict) in lane.pending.drain(..).zip(verdicts) {
        lane.completed.insert(flow.seq, verdict);
        lane.stats.latency.record(now.duration_since(flow.submitted));
    }
    lane.buffer.clear();
    lane.pinned = None;
    lane.stats.flows_served += size as u64;
    lane.stats.batches += 1;
    // Sizes are capped at max_batch by the submit-time flush; guard
    // anyway so a future policy change cannot index out of bounds.
    let bucket = size.min(lane.stats.batch_sizes.len() - 1);
    lane.stats.batch_sizes[bucket] += 1;
    size
}

// ---------------------------------------------------------------------
// Adaptive lanes
// ---------------------------------------------------------------------

/// Watermarks and adaptation policy of an [`AdaptiveLane`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Flush the lane's queued events once this many are pending.
    pub max_batch: usize,
    /// Flush once the **oldest** queued event has waited this long
    /// (checked by [`AdaptiveLane::poll`]).
    pub max_delay: Duration,
    /// Bound on queued events plus completed-but-uncollected verdicts;
    /// submissions beyond it fail with [`ServeError::Backpressure`].
    pub queue_capacity: usize,
    /// Drift-detection thresholds (see
    /// [`crate::regeneration::DriftMonitor`]).
    pub monitor: DriftMonitorConfig,
    /// How many recent **unlabelled** flows the lane retains (their raw
    /// records) so late ground truth can still be applied through
    /// [`AdaptiveLane::submit_feedback`]; `0` disables late feedback.
    pub retention: usize,
    /// Regeneration rate used when the monitor trips; `None` uses the
    /// learner's training-time configuration.
    pub regeneration_rate: Option<f32>,
    /// Regeneration rounds run per adaptation.
    pub regeneration_rounds: usize,
    /// Automatically publish a sealed snapshot to the registry after every
    /// adaptation (no-op for lanes created without a registry).
    ///
    /// For a lane created from an **open-set** artifact the published
    /// snapshot carries freshly recalibrated per-class thresholds: the
    /// adaptation recalibrates them from the lane's in-distribution
    /// reservoir against the regenerated memory (see
    /// [`AdaptiveConfig::reservoir_capacity`]), so
    /// [`DetectorRegistry::info`] keeps reporting `open_set: true` after a
    /// republish instead of the artifact silently dropping to closed-set.
    /// Closed-set lanes publish closed-set snapshots, as before.
    pub auto_publish: bool,
    /// How many recent in-distribution flows (accepted and labelled —
    /// ground truth certifies membership, so the model's own novelty
    /// flag does not gate entry and cannot truncate the similarity
    /// distribution the recalibration quantile is taken over) the lane
    /// samples into its recalibration reservoir via seeded reservoir
    /// sampling; `0` disables recalibration (adapted snapshots then keep
    /// the last thresholds verbatim).  The reservoir is a pure function
    /// of the applied event sequence, so replay and crash recovery
    /// reproduce it bit for bit.
    pub reservoir_capacity: usize,
    /// Seed of the reservoir's per-candidate replacement draws.
    pub reservoir_seed: u64,
    /// Own-class similarity quantile used when recalibrating thresholds
    /// from the reservoir (same scale as `DetectorBuilder::open_set`).
    pub recalibration_quantile: f64,
    /// Opt-in burst mode: apply each flushed micro-batch through the
    /// frozen-snapshot mini-batch rule
    /// ([`crate::OnlineLearner::observe_batch_view`]) instead of the
    /// serial test-then-train rule.  High-volume label streams cost one
    /// batched encode + one deferred update per flush, with the weaker,
    /// documented contract: verdicts and the final model are
    /// **bit-identical to a batched replay at the same flush boundaries**
    /// (not to a serial replay — samples within a batch do not see each
    /// other's updates).  Drift trips are honoured at batch boundaries.
    pub batched_feedback: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_capacity: 4096,
            monitor: DriftMonitorConfig::default(),
            retention: 1024,
            regeneration_rate: None,
            regeneration_rounds: 1,
            auto_publish: true,
            reservoir_capacity: 256,
            reservoir_seed: 0x5EED_CA1B,
            recalibration_quantile: 0.05,
            batched_feedback: false,
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> ServeResult<()> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be non-zero".into()));
        }
        if self.queue_capacity < self.max_batch {
            return Err(ServeError::InvalidConfig(format!(
                "queue_capacity ({}) must be at least max_batch ({})",
                self.queue_capacity, self.max_batch
            )));
        }
        if self.regeneration_rounds == 0 {
            return Err(ServeError::InvalidConfig("regeneration_rounds must be non-zero".into()));
        }
        if !(0.0..=1.0).contains(&self.recalibration_quantile)
            || !self.recalibration_quantile.is_finite()
        {
            return Err(ServeError::InvalidConfig(format!(
                "recalibration_quantile must lie in [0, 1], got {}",
                self.recalibration_quantile
            )));
        }
        self.monitor
            .validate()
            .map_err(|e| ServeError::InvalidConfig(format!("drift monitor: {e}")))
    }
}

/// One queued adaptive event.  Events are applied strictly in submission
/// order at flush time — the whole determinism story of the adaptive lane
/// rests on this queue being FIFO.
#[derive(Debug)]
enum AdaptiveEvent {
    /// A served flow: predict (and, when labelled, test-then-train).
    Flow { seq: u64, record: Vec<f32>, label: Option<usize>, submitted: Instant },
    /// Late ground truth for a retained flow: train-only.
    Feedback { record: Vec<f32>, label: usize, submitted: Instant },
}

impl AdaptiveEvent {
    fn submitted(&self) -> Instant {
        match self {
            AdaptiveEvent::Flow { submitted, .. } | AdaptiveEvent::Feedback { submitted, .. } => {
                *submitted
            }
        }
    }
}

/// Mutable state behind an [`AdaptiveLane`]'s mutex.
#[derive(Debug)]
struct AdaptiveInner {
    online: OnlineDetector,
    /// Open-set thresholds, kept as the **drift signal** (novelty flags
    /// feeding the monitor's unknown-rate surge).  Between trips they stay
    /// fixed — a surge in flows scoring below them is exactly the signal
    /// being watched for; a successful adaptation recalibrates them from
    /// the in-distribution reservoir against the regenerated memory, so
    /// both the lane's novelty flags and the republished snapshot track
    /// the adapted model.
    thresholds: Option<Vec<f32>>,
    /// Seeded reservoir sample of recent labelled flows — the
    /// recalibration set (ground truth certifies in-distribution
    /// membership; the model's novelty flag does not gate entry).
    /// Updated only inside the event application paths, so its contents
    /// are a pure function of the applied event sequence.
    reservoir: Vec<(Vec<f32>, usize)>,
    /// Eligible candidates the reservoir has seen (the Algorithm-R index;
    /// with `reservoir_seed` it fully determines every replacement draw).
    reservoir_candidates: u64,
    queue: VecDeque<AdaptiveEvent>,
    /// Raw records of recent unlabelled flows, awaiting possible feedback.
    retained: HashMap<u64, Vec<f32>>,
    /// FIFO of retained sequence numbers (eviction order).
    retained_order: VecDeque<u64>,
    /// Highest sequence number evicted from the retention window by aging
    /// (not by feedback), so [`AdaptiveLane::submit_feedback`] can report
    /// [`ServeError::FeedbackTooLate`] instead of a generic unavailability.
    /// Eviction is FIFO in submission order, so one watermark suffices.
    evicted_up_to: Option<u64>,
    completed: HashMap<u64, Verdict>,
    next_seq: u64,
    monitor: DriftMonitor,
    /// Set by an adaptation; consumed at the end of the flush that caused
    /// it (publication stays off the per-event hot path).
    pending_publish: bool,
    stats: AdaptiveLaneStats,
}

/// Mutable counters behind [`AdaptiveStats`].
#[derive(Debug)]
struct AdaptiveLaneStats {
    flows_submitted: u64,
    flows_served: u64,
    feedback_submitted: u64,
    feedback_applied: u64,
    rejected: u64,
    batches: u64,
    adaptations: u64,
    regenerated_dimensions: u64,
    adaptation_failures: u64,
    recalibrations: u64,
    publishes: u64,
    publish_failures: u64,
    last_published_version: Option<u64>,
    /// Submit→verdict latency of served flows.
    latency: LatencyHistogram,
    /// Reseal + registry-swap latency of publications.
    publish_latency: LatencyHistogram,
}

impl AdaptiveLaneStats {
    fn new() -> Self {
        Self {
            flows_submitted: 0,
            flows_served: 0,
            feedback_submitted: 0,
            feedback_applied: 0,
            rejected: 0,
            batches: 0,
            adaptations: 0,
            regenerated_dimensions: 0,
            adaptation_failures: 0,
            recalibrations: 0,
            publishes: 0,
            publish_failures: 0,
            last_published_version: None,
            latency: LatencyHistogram::new(),
            publish_latency: LatencyHistogram::new(),
        }
    }
}

/// A point-in-time snapshot of one adaptive lane's serving and adaptation
/// counters.
#[derive(Debug, Clone)]
pub struct AdaptiveStats {
    /// Tenant id.
    pub tenant: String,
    /// Flows accepted for serving (labelled and unlabelled submits).
    pub flows_submitted: u64,
    /// Flows whose verdicts have been computed.
    pub flows_served: u64,
    /// Late-feedback events accepted.
    pub feedback_submitted: u64,
    /// Late-feedback events applied to the model.
    pub feedback_applied: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Events waiting for the next flush.
    pub queue_depth: usize,
    /// Completed verdicts not yet collected through their tickets.
    pub uncollected: usize,
    /// Unlabelled flows currently retained for late feedback.
    pub retained: usize,
    /// Flushes executed.
    pub batches: u64,
    /// Labelled samples the live model has learned from.
    pub samples_learned: usize,
    /// Cumulative prequential (test-then-train) accuracy of the lane.
    pub prequential_accuracy: f64,
    /// Prequential accuracy over the monitor's sliding window.
    pub window_accuracy: f64,
    /// Error rate over the monitor's sliding window.
    pub window_error: f64,
    /// Novel-flag rate over the monitor's sliding window.
    pub unknown_rate: f64,
    /// The monitor's frozen baseline error, once armed.
    pub baseline_error: Option<f64>,
    /// Times the drift monitor tripped.
    pub monitor_trips: usize,
    /// Adaptations (regeneration runs) executed.
    pub adaptations: u64,
    /// Total dimensions regenerated across all adaptations.
    pub regenerated_dimensions: u64,
    /// Adaptations that failed (e.g. a non-regenerable encoder).
    pub adaptation_failures: u64,
    /// Open-set threshold recalibrations run from the reservoir (at most
    /// one per successful adaptation of an open-set lane).
    pub recalibrations: u64,
    /// In-distribution flows currently held in the recalibration
    /// reservoir.
    pub reservoir_size: usize,
    /// The live model's effective dimensionality (`D* = D + Σ regenerated`).
    pub effective_dimension: usize,
    /// Sealed snapshots published to the registry.
    pub publishes: u64,
    /// Publications refused by the registry.
    pub publish_failures: u64,
    /// Registry version of the last successful publication.
    pub last_published_version: Option<u64>,
    /// Mean submit→verdict latency.
    pub mean_latency: Duration,
    /// Median submit→verdict latency.
    pub p50_latency: Duration,
    /// 99th-percentile submit→verdict latency.
    pub p99_latency: Duration,
    /// Median reseal + registry-swap latency.
    pub p50_publish_latency: Duration,
    /// Worst observed reseal + registry-swap latency.
    pub max_publish_latency: Duration,
}

impl fmt::Display for AdaptiveStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} served / {} submitted (+{} feedback), window acc {:.3} (cum {:.3}, unknown \
             {:.3}), {} trips -> {} adaptations ({} dims), {} publishes{}, latency p50 {:?} p99 \
             {:?}",
            self.tenant,
            self.flows_served,
            self.flows_submitted,
            self.feedback_applied,
            self.window_accuracy,
            self.prequential_accuracy,
            self.unknown_rate,
            self.monitor_trips,
            self.adaptations,
            self.regenerated_dimensions,
            self.publishes,
            match self.last_published_version {
                Some(version) => format!(" (registry v{version})"),
                None => String::new(),
            },
            self.p50_latency,
            self.p99_latency,
        )
    }
}

/// A drift-adaptive per-tenant serving lane (see the [module docs](self)).
///
/// Where [`ServeEngine`] serves a frozen artifact, an `AdaptiveLane` wraps
/// a live [`OnlineDetector`] that keeps learning from ground truth:
///
/// * [`AdaptiveLane::submit`] serves an unlabelled flow (predict only) and
///   retains its record so [`AdaptiveLane::submit_feedback`] can apply
///   late ground truth through the flow's [`Ticket`];
/// * [`AdaptiveLane::submit_labelled`] serves a flow whose ground truth is
///   already known — the verdict is the prediction made *before* the
///   test-then-train update;
/// * every labelled observation feeds the
///   [`crate::regeneration::DriftMonitor`]; when it trips, the lane
///   regenerates low-variance dimensions in place and (when created with
///   [`AdaptiveLane::with_registry`]) publishes a sealed snapshot through
///   [`DetectorRegistry::swap`] — frozen lanes of the same tenant pick the
///   adapted artifact up atomically, in-flight micro-batches finishing on
///   their pinned generation.
///
/// # Determinism
///
/// Events are applied strictly in submission order through the serial
/// [`crate::OnlineLearner`] rule, so the lane's verdicts and final model
/// are **bit-identical** to a serial replay of the same event sequence,
/// regardless of flush boundaries, `poll` interleavings or concurrent
/// lanes on other threads (pinned by `tests/scenario.rs`).
///
/// # Example
///
/// ```
/// use cyberhd::serve::{AdaptiveConfig, AdaptiveLane};
/// use cyberhd::Detector;
/// use nids_data::synth::SyntheticConfig;
/// use nids_data::DatasetKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dataset = DatasetKind::NslKdd.generate(&SyntheticConfig::new(400, 7))?;
/// let detector = Detector::builder().dimension(128).retrain_epochs(1).train(&dataset)?;
/// let lane = AdaptiveLane::new("edge-0", detector, AdaptiveConfig::default())?;
///
/// // A labelled flow: the verdict is the prediction before the update.
/// let ticket = lane.submit_labelled(&dataset.records()[0], dataset.labels()[0])?;
/// lane.flush()?;
/// let verdict = lane.take(&ticket)?;
/// assert!(verdict.class < dataset.num_classes());
/// assert_eq!(lane.stats().samples_learned, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdaptiveLane {
    tenant: Arc<str>,
    /// Process-unique lane id stamped into tickets.
    id: u64,
    config: AdaptiveConfig,
    /// Number of trained classes (label validation happens at submit so
    /// flushes are infallible).
    classes: usize,
    registry: Option<Arc<DetectorRegistry>>,
    inner: Mutex<AdaptiveInner>,
}

impl AdaptiveLane {
    /// Creates an adaptive lane for `tenant` from a sealed artifact,
    /// without a registry (adaptations stay lane-local; publish manually
    /// via [`AdaptiveLane::seal_snapshot`] if needed).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for inconsistent watermarks
    /// or monitor thresholds, and for artifacts that cannot continue
    /// learning (quantized detectors).
    pub fn new(tenant: &str, detector: Detector, config: AdaptiveConfig) -> ServeResult<Self> {
        Self::build(tenant, detector, config, None)
    }

    /// [`AdaptiveLane::new`] wired to a registry: every adaptation
    /// republishes a sealed snapshot under `tenant` (swap when registered,
    /// register at version 1 otherwise), so the frozen serving path picks
    /// the adapted model up atomically.
    ///
    /// # Errors
    ///
    /// Same as [`AdaptiveLane::new`].
    pub fn with_registry(
        tenant: &str,
        detector: Detector,
        config: AdaptiveConfig,
        registry: Arc<DetectorRegistry>,
    ) -> ServeResult<Self> {
        Self::build(tenant, detector, config, Some(registry))
    }

    fn build(
        tenant: &str,
        detector: Detector,
        config: AdaptiveConfig,
        registry: Option<Arc<DetectorRegistry>>,
    ) -> ServeResult<Self> {
        config.validate()?;
        let monitor = DriftMonitor::new(config.monitor)
            .map_err(|e| ServeError::InvalidConfig(format!("drift monitor: {e}")))?;
        let classes = detector.num_classes();
        let thresholds = detector.thresholds().map(<[f32]>::to_vec);
        let online = detector.into_online().map_err(|e| {
            ServeError::InvalidConfig(format!("adaptive lanes need a dense artifact: {e}"))
        })?;
        Ok(Self {
            tenant: tenant.into(),
            id: next_lane_id(),
            config,
            classes,
            registry,
            inner: Mutex::new(AdaptiveInner {
                online,
                thresholds,
                reservoir: Vec::new(),
                reservoir_candidates: 0,
                queue: VecDeque::new(),
                retained: HashMap::new(),
                retained_order: VecDeque::new(),
                evicted_up_to: None,
                completed: HashMap::new(),
                next_seq: 0,
                monitor,
                pending_publish: false,
                stats: AdaptiveLaneStats::new(),
            }),
        })
    }

    /// The tenant this lane serves.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The lane's watermark and adaptation configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Submits one unlabelled raw flow, returning a [`Ticket`] for its
    /// verdict.  The record is retained (up to
    /// [`AdaptiveConfig::retention`] flows) so ground truth can be applied
    /// later through [`AdaptiveLane::submit_feedback`].
    ///
    /// # Errors
    ///
    /// * [`ServeError::Rejected`] — record fails schema validation,
    /// * [`ServeError::Backpressure`] — bounded queue full.
    pub fn submit(&self, record: &[f32]) -> ServeResult<Ticket> {
        self.submit_event(record, None)
    }

    /// Submits one raw flow **with ground truth attached**: the flow is
    /// served (the verdict is the prediction made *before* the update) and
    /// then immediately learned from — the prequential test-then-train
    /// step of the paper's streaming deployment.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Rejected`] — record fails schema validation or the
    ///   label is out of range,
    /// * [`ServeError::Backpressure`] — bounded queue full.
    pub fn submit_labelled(&self, record: &[f32], label: usize) -> ServeResult<Ticket> {
        self.submit_event(record, Some(label))
    }

    fn submit_event(&self, record: &[f32], label: Option<usize>) -> ServeResult<Ticket> {
        let mut inner = self.inner.lock().expect("adaptive lane lock");
        // Validate up front so flushes are infallible: transform_record
        // can only fail schema validation, and observe only label range.
        inner
            .online
            .preprocessor()
            .schema()
            .validate_record(record)
            .map_err(|e| ServeError::Rejected(CyberHdError::Data(e)))?;
        if let Some(label) = label {
            if label >= self.classes {
                return Err(ServeError::Rejected(CyberHdError::InvalidData(format!(
                    "label {label} out of range for {} classes",
                    self.classes
                ))));
            }
        }
        let depth = inner.queue.len() + inner.completed.len();
        if depth >= self.config.queue_capacity {
            inner.stats.rejected += 1;
            return Err(ServeError::Backpressure {
                tenant: self.tenant.as_ref().into(),
                capacity: self.config.queue_capacity,
                depth,
                retry_hint: self.config.max_delay,
            });
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if label.is_none() && self.config.retention > 0 {
            retain(&mut inner, seq, record.to_vec(), self.config.retention);
        }
        inner.queue.push_back(AdaptiveEvent::Flow {
            seq,
            record: record.to_vec(),
            label,
            submitted: Instant::now(),
        });
        inner.stats.flows_submitted += 1;
        if inner.queue.len() >= self.config.max_batch {
            self.flush_locked(&mut inner);
        }
        Ok(Ticket { tenant: Arc::clone(&self.tenant), lane: self.id, seq })
    }

    /// Applies late ground truth to a previously submitted (unlabelled)
    /// flow: the retained record is re-scored against the **current**
    /// model (test-then-train, feeding the drift monitor) and then learned
    /// from, in submission order with every other queued event.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownTicket`] — foreign ticket (or a sequence
    ///   number this lane never issued),
    /// * [`ServeError::Rejected`] — label out of range,
    /// * [`ServeError::FeedbackTooLate`] — the record aged out of the
    ///   retention window before the ground truth arrived (or the window
    ///   is disabled),
    /// * [`ServeError::FeedbackUnavailable`] — the flow was labelled at
    ///   submit time or feedback was already applied,
    /// * [`ServeError::Backpressure`] — bounded queue full (the record
    ///   stays retained; retry after draining).
    pub fn submit_feedback(&self, ticket: &Ticket, label: usize) -> ServeResult<()> {
        let mut inner = self.inner.lock().expect("adaptive lane lock");
        if ticket.lane != self.id || ticket.tenant.as_ref() != self.tenant.as_ref() {
            return Err(ServeError::UnknownTicket);
        }
        if label >= self.classes {
            return Err(ServeError::Rejected(CyberHdError::InvalidData(format!(
                "label {label} out of range for {} classes",
                self.classes
            ))));
        }
        if !inner.retained.contains_key(&ticket.seq) {
            return Err(self.classify_feedback_miss(&inner, ticket.seq));
        }
        let depth = inner.queue.len() + inner.completed.len();
        if depth >= self.config.queue_capacity {
            inner.stats.rejected += 1;
            return Err(ServeError::Backpressure {
                tenant: self.tenant.as_ref().into(),
                capacity: self.config.queue_capacity,
                depth,
                retry_hint: self.config.max_delay,
            });
        }
        let record = inner.retained.remove(&ticket.seq).expect("checked above");
        inner.retained_order.retain(|&seq| seq != ticket.seq);
        inner.queue.push_back(AdaptiveEvent::Feedback { record, label, submitted: Instant::now() });
        inner.stats.feedback_submitted += 1;
        if inner.queue.len() >= self.config.max_batch {
            self.flush_locked(&mut inner);
        }
        Ok(())
    }

    /// Explains why a feedback target is not in the retention map: too
    /// late (aged out / window disabled), unavailable (labelled at submit
    /// or already applied), or a sequence number this lane never issued.
    ///
    /// Aging eviction is FIFO in submission order, so every sequence at or
    /// below the eviction watermark is reported as too late — including
    /// the (indistinguishable without per-flow bookkeeping) case where its
    /// feedback had already been applied before the watermark passed it.
    fn classify_feedback_miss(&self, inner: &AdaptiveInner, seq: u64) -> ServeError {
        if seq >= inner.next_seq {
            // The lane id matched but the sequence was never issued — a
            // forged or cross-restart ticket.
            return ServeError::UnknownTicket;
        }
        if self.config.retention == 0 {
            return ServeError::FeedbackTooLate { seq, retention: 0 };
        }
        if inner.evicted_up_to.is_some_and(|watermark| seq <= watermark) {
            return ServeError::FeedbackTooLate { seq, retention: self.config.retention };
        }
        ServeError::FeedbackUnavailable(format!(
            "flow {seq} of tenant {:?} is not retained (labelled at submit time, or feedback \
             was already applied)",
            self.tenant
        ))
    }

    // ------------------------------------------------------------------
    // Durable-lane support (crate-internal)
    // ------------------------------------------------------------------

    /// Re-issues a ticket for `seq` — the durable lane's replay path needs
    /// handles for flows whose original tickets died with the process.
    pub(crate) fn ticket_for(&self, seq: u64) -> Ticket {
        Ticket { tenant: Arc::clone(&self.tenant), lane: self.id, seq }
    }

    /// `true` when [`AdaptiveLane::poll`] would flush now (the oldest
    /// queued event has expired) — lets the durable wrapper sync its log
    /// *before* the flush applies events, without flushing eagerly.
    pub(crate) fn poll_due(&self) -> bool {
        let inner = self.inner.lock().expect("adaptive lane lock");
        inner
            .queue
            .front()
            .is_some_and(|event| event.submitted().elapsed() >= self.config.max_delay)
    }

    /// Drains every completed-but-uncollected verdict, sorted by sequence
    /// number — the durable lane's replay loop collects verdicts this way
    /// so a long tail replay can never hit its own backpressure bound.
    pub(crate) fn drain_completed(&self) -> Vec<(u64, Verdict)> {
        let mut inner = self.inner.lock().expect("adaptive lane lock");
        let mut verdicts: Vec<(u64, Verdict)> = inner.completed.drain().collect();
        verdicts.sort_unstable_by_key(|&(seq, _)| seq);
        verdicts
    }

    /// The lane's current open-set thresholds (`None` for a closed-set
    /// lane) — the durable wrapper frames them into its recalibration
    /// audit records so operators can diff threshold drift offline, and
    /// the crash matrix compares them bit for bit across recovery.
    pub fn thresholds_snapshot(&self) -> Option<Vec<f32>> {
        let inner = self.inner.lock().expect("adaptive lane lock");
        inner.thresholds.clone()
    }

    /// The recalibration reservoir's current entries and candidate
    /// counter — both are a deterministic function of the applied event
    /// sequence, so recovery tests compare them bit for bit against an
    /// uncrashed timeline.
    pub fn reservoir_snapshot(&self) -> (Vec<(Vec<f32>, usize)>, u64) {
        let inner = self.inner.lock().expect("adaptive lane lock");
        (inner.reservoir.clone(), inner.reservoir_candidates)
    }

    /// Captures everything a checkpoint must persist for recovery to be
    /// bit-identical: the sealed model bytes, the drift-signal thresholds,
    /// the monitor state, the prequential counters, the retention window
    /// (records and eviction watermark), the recalibration reservoir (and
    /// its candidate counter) and the deterministic lane counters.
    /// Queued events are deliberately **not** captured — the
    /// caller flushes before checkpointing, so the queue is empty and the
    /// WAL tail covers anything submitted afterwards.
    pub(crate) fn checkpoint_state(&self) -> LaneCheckpoint {
        let inner = self.inner.lock().expect("adaptive lane lock");
        LaneCheckpoint {
            tenant: self.tenant.as_ref().into(),
            detector_bytes: inner.online.seal_snapshot().to_bytes(),
            thresholds: inner.thresholds.clone(),
            monitor: inner.monitor.clone(),
            next_seq: inner.next_seq,
            retained: inner
                .retained_order
                .iter()
                .filter_map(|seq| inner.retained.get(seq).map(|r| (*seq, r.clone())))
                .collect(),
            evicted_up_to: inner.evicted_up_to,
            reservoir: inner.reservoir.clone(),
            reservoir_candidates: inner.reservoir_candidates,
            seen: inner.online.samples_seen(),
            prequential_correct: inner.online.learner().prequential_correct(),
            counters: [
                inner.stats.flows_submitted,
                inner.stats.flows_served,
                inner.stats.feedback_submitted,
                inner.stats.feedback_applied,
                inner.stats.batches,
                inner.stats.adaptations,
                inner.stats.regenerated_dimensions,
                inner.stats.adaptation_failures,
                inner.stats.recalibrations,
            ],
        }
    }

    /// Rebuilds a lane from a [`LaneCheckpoint`] — the recovery path.  The
    /// restored lane is bit-identical to the lane that wrote the
    /// checkpoint: model bytes, monitor state, prequential counters,
    /// retention window and sequence numbering all resume exactly where
    /// they stopped (wall-clock latency histograms restart, as do the
    /// registry-dependent publish counters).
    pub(crate) fn restore(
        config: AdaptiveConfig,
        registry: Option<Arc<DetectorRegistry>>,
        state: LaneCheckpoint,
    ) -> ServeResult<Self> {
        config.validate()?;
        let detector = Detector::from_bytes(&state.detector_bytes)
            .map_err(|e| ServeError::Durability(format!("checkpointed model: {e}")))?;
        let classes = detector.num_classes();
        let mut online = detector.into_online().map_err(|e| {
            ServeError::InvalidConfig(format!("adaptive lanes need a dense artifact: {e}"))
        })?;
        online.restore_prequential(state.seen, state.prequential_correct);
        if let Some(thresholds) = &state.thresholds {
            if thresholds.len() != classes {
                return Err(ServeError::Durability(format!(
                    "checkpoint holds {} thresholds for {} classes",
                    thresholds.len(),
                    classes
                )));
            }
        }
        let flows_retained = state.retained.len() as u64;
        if flows_retained > config.retention as u64 {
            return Err(ServeError::Durability(format!(
                "checkpoint retains {flows_retained} flows but the window holds {}",
                config.retention
            )));
        }
        let mut retained = HashMap::with_capacity(state.retained.len());
        let mut retained_order = VecDeque::with_capacity(state.retained.len());
        for (seq, record) in state.retained {
            if seq >= state.next_seq {
                return Err(ServeError::Durability(format!(
                    "checkpoint retains flow {seq} beyond its next sequence {}",
                    state.next_seq
                )));
            }
            if retained.insert(seq, record).is_some() {
                return Err(ServeError::Durability(format!("checkpoint retains flow {seq} twice")));
            }
            retained_order.push_back(seq);
        }
        if state.reservoir.len() > config.reservoir_capacity {
            return Err(ServeError::Durability(format!(
                "checkpoint holds {} reservoir entries but the reservoir holds {}",
                state.reservoir.len(),
                config.reservoir_capacity
            )));
        }
        if (state.reservoir.len() as u64) > state.reservoir_candidates {
            return Err(ServeError::Durability(format!(
                "checkpoint holds {} reservoir entries from {} candidates",
                state.reservoir.len(),
                state.reservoir_candidates
            )));
        }
        if let Some(&(_, bad)) = state.reservoir.iter().find(|&&(_, label)| label >= classes) {
            return Err(ServeError::Durability(format!(
                "checkpoint reservoir label {bad} out of range for {classes} classes"
            )));
        }
        let mut stats = AdaptiveLaneStats::new();
        let [submitted, served, fb_submitted, fb_applied, batches, adaptations, regen, failures, recalibrations] =
            state.counters;
        stats.flows_submitted = submitted;
        stats.flows_served = served;
        stats.feedback_submitted = fb_submitted;
        stats.feedback_applied = fb_applied;
        stats.batches = batches;
        stats.adaptations = adaptations;
        stats.regenerated_dimensions = regen;
        stats.adaptation_failures = failures;
        stats.recalibrations = recalibrations;
        Ok(Self {
            tenant: state.tenant.as_str().into(),
            id: next_lane_id(),
            config,
            classes,
            registry,
            inner: Mutex::new(AdaptiveInner {
                online,
                thresholds: state.thresholds,
                reservoir: state.reservoir,
                reservoir_candidates: state.reservoir_candidates,
                queue: VecDeque::new(),
                retained,
                retained_order,
                evicted_up_to: state.evicted_up_to,
                completed: HashMap::new(),
                next_seq: state.next_seq,
                monitor: state.monitor,
                pending_publish: false,
                stats,
            }),
        })
    }

    /// Flushes every queued event now, returning how many **flows** were
    /// served (feedback events are applied but serve no verdict).
    ///
    /// # Errors
    ///
    /// Currently infallible (events are validated at submit time); the
    /// `Result` keeps the signature parallel to [`ServeEngine::flush`].
    pub fn flush(&self) -> ServeResult<usize> {
        let mut inner = self.inner.lock().expect("adaptive lane lock");
        Ok(self.flush_locked(&mut inner))
    }

    /// Flushes if the **oldest** queued event has waited at least
    /// [`AdaptiveConfig::max_delay`]; returns the number of flows served.
    pub fn poll(&self) -> usize {
        let mut inner = self.inner.lock().expect("adaptive lane lock");
        let expired = inner
            .queue
            .front()
            .is_some_and(|event| event.submitted().elapsed() >= self.config.max_delay);
        if expired {
            self.flush_locked(&mut inner)
        } else {
            0
        }
    }

    /// Applies the queued events strictly in submission order — through
    /// the serial streaming rule, or (for
    /// [`AdaptiveConfig::batched_feedback`] lanes) through the
    /// frozen-snapshot mini-batch rule — files verdicts, feeds the drift
    /// monitor and adapts when it trips.  Publication (reseal + registry
    /// swap) runs once at the end, off the per-event path.
    fn flush_locked(&self, inner: &mut AdaptiveInner) -> usize {
        if inner.queue.is_empty() {
            return 0;
        }
        let served = if self.config.batched_feedback {
            self.flush_batched(inner)
        } else {
            self.flush_serial(inner)
        };
        inner.stats.flows_served += served as u64;
        inner.stats.batches += 1;
        if inner.pending_publish {
            inner.pending_publish = false;
            // Failures are recorded in publish_failures; serving goes on
            // with the lane-local adapted model either way.
            let _ = self.publish_now(inner);
        }
        served
    }

    /// The serial event application: each event is scored and learned from
    /// in turn, so the lane is bit-identical to a serial replay.  The
    /// monitor trips **inline**, at the tripping event.
    fn flush_serial(&self, inner: &mut AdaptiveInner) -> usize {
        let mut served = 0usize;
        while let Some(event) = inner.queue.pop_front() {
            match event {
                AdaptiveEvent::Flow { seq, record, label, submitted } => {
                    let (class, similarity) = match label {
                        Some(label) => inner
                            .online
                            .observe_scored(&record, label)
                            .expect("record and label validated at submit time"),
                        None => inner
                            .online
                            .predict_scored(&record)
                            .expect("record validated at submit time"),
                    };
                    let novel = inner.thresholds.as_ref().is_some_and(|t| similarity < t[class]);
                    let tripped = match label {
                        Some(label) => inner.monitor.record_labelled(class == label, novel),
                        None => inner.monitor.record_unlabelled(novel),
                    };
                    if let Some(label) = label {
                        self.reservoir_note(inner, &record, label);
                    }
                    inner.completed.insert(seq, Verdict { class, similarity, novel });
                    inner.stats.latency.record(submitted.elapsed());
                    served += 1;
                    if tripped {
                        self.adapt_locked(inner);
                    }
                }
                AdaptiveEvent::Feedback { record, label, .. } => {
                    let (class, similarity) = inner
                        .online
                        .observe_scored(&record, label)
                        .expect("record and label validated at submit time");
                    let novel = inner.thresholds.as_ref().is_some_and(|t| similarity < t[class]);
                    let tripped = inner.monitor.record_labelled(class == label, novel);
                    self.reservoir_note(inner, &record, label);
                    inner.stats.feedback_applied += 1;
                    if tripped {
                        self.adapt_locked(inner);
                    }
                }
            }
        }
        served
    }

    /// The batched event application: every queued event is scored against
    /// the **frozen pre-batch model**, the labelled events are learned
    /// from through one deferred mini-batch update
    /// ([`crate::OnlineLearner::observe_batch_view`]), and monitor trips
    /// are honoured **at the batch boundary** — the weaker documented
    /// contract of [`AdaptiveConfig::batched_feedback`]: bit-identical to
    /// a batched replay at the same flush boundaries.
    fn flush_batched(&self, inner: &mut AdaptiveInner) -> usize {
        let events: Vec<AdaptiveEvent> = inner.queue.drain(..).collect();
        // Score unlabelled flows first: predictions are pure, and the
        // labelled events' deferred update lands only after this loop, so
        // every score in the batch sees the same frozen model.
        let mut unlabelled_scores = VecDeque::new();
        let mut records = Vec::new();
        let mut labels = Vec::new();
        for event in &events {
            match event {
                AdaptiveEvent::Flow { record, label: None, .. } => unlabelled_scores.push_back(
                    inner.online.predict_scored(record).expect("record validated at submit time"),
                ),
                AdaptiveEvent::Flow { record, label: Some(label), .. }
                | AdaptiveEvent::Feedback { record, label, .. } => {
                    records.push(record.clone());
                    labels.push(*label);
                }
            }
        }
        let mut labelled_scores: VecDeque<(usize, f32)> = if records.is_empty() {
            VecDeque::new()
        } else {
            inner
                .online
                .observe_batch_scored(&records, &labels)
                .expect("records and labels validated at submit time")
                .into()
        };
        // Walk the events in submission order: verdicts, monitor feed and
        // reservoir updates happen exactly as in the serial path, only on
        // frozen-snapshot scores; trips are tallied and honoured once the
        // whole batch is applied.
        let mut served = 0usize;
        let mut trips = 0usize;
        for event in events {
            match event {
                AdaptiveEvent::Flow { seq, record, label, submitted } => {
                    let (class, similarity) = match label {
                        Some(_) => labelled_scores.pop_front().expect("one score per label"),
                        None => unlabelled_scores.pop_front().expect("one score per flow"),
                    };
                    let novel = inner.thresholds.as_ref().is_some_and(|t| similarity < t[class]);
                    let tripped = match label {
                        Some(label) => inner.monitor.record_labelled(class == label, novel),
                        None => inner.monitor.record_unlabelled(novel),
                    };
                    if let Some(label) = label {
                        self.reservoir_note(inner, &record, label);
                    }
                    inner.completed.insert(seq, Verdict { class, similarity, novel });
                    inner.stats.latency.record(submitted.elapsed());
                    served += 1;
                    trips += usize::from(tripped);
                }
                AdaptiveEvent::Feedback { record, label, .. } => {
                    let (class, similarity) =
                        labelled_scores.pop_front().expect("one score per label");
                    let novel = inner.thresholds.as_ref().is_some_and(|t| similarity < t[class]);
                    let tripped = inner.monitor.record_labelled(class == label, novel);
                    self.reservoir_note(inner, &record, label);
                    inner.stats.feedback_applied += 1;
                    trips += usize::from(tripped);
                }
            }
        }
        for _ in 0..trips {
            self.adapt_locked(inner);
        }
        served
    }

    /// Offers one in-distribution `(record, label)` to the recalibration
    /// reservoir (Algorithm R).  Every replacement draw is a pure function
    /// of `(reservoir_seed, candidate index)`, so the reservoir contents
    /// after any event prefix are reproducible without persisting RNG
    /// state — replay and crash recovery land on bit-identical reservoirs.
    fn reservoir_note(&self, inner: &mut AdaptiveInner, record: &[f32], label: usize) {
        let capacity = self.config.reservoir_capacity;
        if capacity == 0 {
            return;
        }
        let candidate = inner.reservoir_candidates;
        inner.reservoir_candidates += 1;
        if inner.reservoir.len() < capacity {
            inner.reservoir.push((record.to_vec(), label));
            return;
        }
        let mut rng = HdcRng::seed_from(
            self.config.reservoir_seed ^ candidate.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let slot = rng.index(candidate as usize + 1);
        if slot < capacity {
            inner.reservoir[slot] = (record.to_vec(), label);
        }
    }

    /// One adaptation: regenerate low-variance dimensions in place.  Runs
    /// inline at the event that tripped the monitor, so the outcome is a
    /// pure function of the event sequence (flush boundaries cannot move
    /// it).
    fn adapt_locked(&self, inner: &mut AdaptiveInner) {
        let mut regenerated = 0usize;
        for _ in 0..self.config.regeneration_rounds {
            let result = match self.config.regeneration_rate {
                Some(rate) => inner.online.regenerate_at(rate),
                None => inner.online.regenerate(),
            };
            match result {
                Ok(dims) => regenerated += dims,
                Err(_) => {
                    // A non-regenerable encoder: the lane keeps learning
                    // through the adaptive rule alone.
                    inner.stats.adaptation_failures += 1;
                    return;
                }
            }
        }
        inner.stats.adaptations += 1;
        inner.stats.regenerated_dimensions += regenerated as u64;
        self.recalibrate_locked(inner);
        if self.config.auto_publish && self.registry.is_some() {
            inner.pending_publish = true;
        }
    }

    /// Recalibrates the open-set thresholds from the in-distribution
    /// reservoir against the freshly regenerated memory.  Runs inline in
    /// the adaptation (registry-independent), so the lane's post-trip
    /// novelty flags — not just the published snapshot — are a pure
    /// function of the event sequence.  A closed-set lane, a disabled
    /// reservoir or an empty reservoir keeps the previous thresholds.
    fn recalibrate_locked(&self, inner: &mut AdaptiveInner) {
        if inner.thresholds.is_none() || inner.reservoir.is_empty() {
            return;
        }
        let (records, labels): (Vec<Vec<f32>>, Vec<usize>) =
            inner.reservoir.iter().cloned().unzip();
        let thresholds = inner
            .online
            .recalibrate_thresholds(&records, &labels, self.config.recalibration_quantile)
            .expect("reservoir records and labels were validated at submit time");
        inner.thresholds = Some(thresholds);
        inner.stats.recalibrations += 1;
    }

    /// Seals a snapshot and hands it to the registry (swap, or register at
    /// version 1 for an unknown tenant), recording the reseal+swap latency
    /// — the one publication path behind both the automatic post-adaptation
    /// publish and the manual [`AdaptiveLane::publish`].  Every registry
    /// refusal increments `publish_failures`.
    ///
    /// An **open-set** lane publishes an open-set snapshot: its current
    /// per-class thresholds — recalibrated from the reservoir at every
    /// successful adaptation — are attached to the resealed model via
    /// [`Detector::with_thresholds`], so [`DetectorRegistry::info`] keeps
    /// reporting `open_set: true` after a drift-triggered republish.  A
    /// closed-set lane publishes closed-set, as before.
    fn publish_now(&self, inner: &mut AdaptiveInner) -> ServeResult<u64> {
        let Some(registry) = self.registry.as_ref() else {
            return Err(ServeError::InvalidConfig(
                "this adaptive lane was created without a registry".into(),
            ));
        };
        let start = Instant::now();
        let sealed = inner.online.seal_snapshot();
        let sealed = match &inner.thresholds {
            Some(thresholds) => sealed
                .with_thresholds(thresholds.clone())
                .expect("snapshots are dense and threshold counts match the class count"),
            None => sealed,
        };
        let result = match registry.swap(&self.tenant, sealed.clone()) {
            Err(ServeError::UnknownTenant(_)) => registry.register(&self.tenant, sealed).map(|_| 1),
            swapped => swapped,
        };
        match result {
            Ok(version) => {
                inner.stats.publish_latency.record(start.elapsed());
                inner.stats.publishes += 1;
                inner.stats.last_published_version = Some(version);
                Ok(version)
            }
            Err(e) => {
                inner.stats.publish_failures += 1;
                Err(e)
            }
        }
    }

    /// Publishes a sealed snapshot to the registry now, returning the new
    /// registry version — the manual form of the automatic post-adaptation
    /// publication.  An open-set lane publishes with its current
    /// (reservoir-recalibrated) thresholds attached; a closed-set lane
    /// publishes closed-set.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a lane created without a
    /// registry and propagates [`DetectorRegistry::swap`] /
    /// [`DetectorRegistry::register`] errors (counted in
    /// [`AdaptiveStats::publish_failures`]).
    pub fn publish(&self) -> ServeResult<u64> {
        let mut inner = self.inner.lock().expect("adaptive lane lock");
        self.publish_now(&mut inner)
    }

    /// Non-blocking collect: the verdict if the ticket's flow has been
    /// served, `None` while it is still queued.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownTicket`] for a foreign or
    /// already-collected ticket.
    pub fn try_take(&self, ticket: &Ticket) -> ServeResult<Option<Verdict>> {
        let mut inner = self.inner.lock().expect("adaptive lane lock");
        if ticket.lane != self.id || ticket.tenant.as_ref() != self.tenant.as_ref() {
            return Err(ServeError::UnknownTicket);
        }
        if let Some(verdict) = inner.completed.remove(&ticket.seq) {
            return Ok(Some(verdict));
        }
        let pending = inner
            .queue
            .iter()
            .any(|event| matches!(event, AdaptiveEvent::Flow { seq, .. } if *seq == ticket.seq));
        if pending {
            return Ok(None);
        }
        Err(ServeError::UnknownTicket)
    }

    /// Collects a ticket's verdict, flushing first if the flow is still
    /// queued.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownTicket`] for a foreign or
    /// already-collected ticket.
    pub fn take(&self, ticket: &Ticket) -> ServeResult<Verdict> {
        let mut inner = self.inner.lock().expect("adaptive lane lock");
        if ticket.lane != self.id || ticket.tenant.as_ref() != self.tenant.as_ref() {
            return Err(ServeError::UnknownTicket);
        }
        if let Some(verdict) = inner.completed.remove(&ticket.seq) {
            return Ok(verdict);
        }
        let pending = inner
            .queue
            .iter()
            .any(|event| matches!(event, AdaptiveEvent::Flow { seq, .. } if *seq == ticket.seq));
        if pending {
            self.flush_locked(&mut inner);
            return inner.completed.remove(&ticket.seq).ok_or(ServeError::UnknownTicket);
        }
        Err(ServeError::UnknownTicket)
    }

    /// Cumulative prequential (test-then-train) accuracy of the lane's
    /// labelled stream.
    pub fn prequential_accuracy(&self) -> f64 {
        self.inner.lock().expect("adaptive lane lock").online.prequential_accuracy()
    }

    /// Seals a snapshot of the current model (the lane keeps adapting).
    pub fn seal_snapshot(&self) -> Detector {
        self.inner.lock().expect("adaptive lane lock").online.seal_snapshot()
    }

    /// A point-in-time snapshot of the lane's counters.
    pub fn stats(&self) -> AdaptiveStats {
        let inner = self.inner.lock().expect("adaptive lane lock");
        let stats = &inner.stats;
        AdaptiveStats {
            tenant: self.tenant.as_ref().into(),
            flows_submitted: stats.flows_submitted,
            flows_served: stats.flows_served,
            feedback_submitted: stats.feedback_submitted,
            feedback_applied: stats.feedback_applied,
            rejected: stats.rejected,
            queue_depth: inner.queue.len(),
            uncollected: inner.completed.len(),
            retained: inner.retained.len(),
            batches: stats.batches,
            samples_learned: inner.online.samples_seen(),
            prequential_accuracy: inner.online.prequential_accuracy(),
            window_accuracy: inner.monitor.window_accuracy(),
            window_error: inner.monitor.window_error(),
            unknown_rate: inner.monitor.unknown_rate(),
            baseline_error: inner.monitor.baseline_error(),
            monitor_trips: inner.monitor.trips(),
            adaptations: stats.adaptations,
            regenerated_dimensions: stats.regenerated_dimensions,
            adaptation_failures: stats.adaptation_failures,
            recalibrations: stats.recalibrations,
            reservoir_size: inner.reservoir.len(),
            effective_dimension: inner.online.learner().effective_dimension(),
            publishes: stats.publishes,
            publish_failures: stats.publish_failures,
            last_published_version: stats.last_published_version,
            mean_latency: stats.latency.mean(),
            p50_latency: stats.latency.percentile(0.50),
            p99_latency: stats.latency.percentile(0.99),
            p50_publish_latency: stats.publish_latency.percentile(0.50),
            max_publish_latency: stats.publish_latency.max(),
        }
    }
}

/// Retains `record` under `seq`, evicting the oldest retained flow when
/// the window is full (recording it in the too-late watermark).
fn retain(inner: &mut AdaptiveInner, seq: u64, record: Vec<f32>, retention: usize) {
    if inner.retained.len() >= retention {
        if let Some(oldest) = inner.retained_order.pop_front() {
            inner.retained.remove(&oldest);
            inner.evicted_up_to = Some(inner.evicted_up_to.map_or(oldest, |w| w.max(oldest)));
        }
    }
    inner.retained.insert(seq, record);
    inner.retained_order.push_back(seq);
}

/// Everything an [`AdaptiveLane`] needs persisted for bit-identical
/// recovery (see [`AdaptiveLane::checkpoint_state`] /
/// [`AdaptiveLane::restore`]).  The durable lane serializes this through
/// [`hdc::codec`]; the queue is never part of it — checkpoints are taken
/// at flush boundaries, where the queue is empty.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LaneCheckpoint {
    /// Tenant id.
    pub(crate) tenant: String,
    /// Sealed [`Detector::to_bytes`] snapshot of the live model (encoder
    /// seed and regeneration counter included, so post-recovery
    /// regenerations draw the exact streams the uncrashed lane would).
    pub(crate) detector_bytes: Vec<u8>,
    /// Open-set drift-signal thresholds (dropped from the sealed snapshot
    /// by design, so they ride the checkpoint separately).
    pub(crate) thresholds: Option<Vec<f32>>,
    /// Drift-monitor windows, baseline, cooldown and trip count.
    pub(crate) monitor: DriftMonitor,
    /// Next sequence number the lane will issue.
    pub(crate) next_seq: u64,
    /// Retention window in FIFO (eviction) order.
    pub(crate) retained: Vec<(u64, Vec<f32>)>,
    /// Aging-eviction watermark (see [`AdaptiveInner::evicted_up_to`]).
    pub(crate) evicted_up_to: Option<u64>,
    /// Recalibration reservoir `(record, label)` entries in slot order.
    pub(crate) reservoir: Vec<(Vec<f32>, usize)>,
    /// Eligible candidates the reservoir has seen (the Algorithm-R index).
    pub(crate) reservoir_candidates: u64,
    /// Prequential sample count ([`OnlineDetector::samples_seen`]).
    pub(crate) seen: usize,
    /// Prequential correct-before-update count.
    pub(crate) prequential_correct: usize,
    /// Deterministic lane counters, in the fixed order consumed by
    /// [`AdaptiveLane::restore`]: flows_submitted, flows_served,
    /// feedback_submitted, feedback_applied, batches, adaptations,
    /// regenerated_dimensions, adaptation_failures, recalibrations.
    pub(crate) counters: [u64; 9],
}

#[cfg(test)]
mod tests {
    use super::*;
    use nids_data::synth::SyntheticConfig;
    use nids_data::DatasetKind;

    fn dataset(samples: usize, seed: u64) -> nids_data::Dataset {
        DatasetKind::NslKdd
            .generate(&SyntheticConfig::new(samples, seed).difficulty(1.2))
            .expect("synthetic generation")
    }

    fn detector(data: &nids_data::Dataset, seed: u64) -> Detector {
        Detector::builder().dimension(128).retrain_epochs(1).seed(seed).train(data).unwrap()
    }

    fn engine_with(data: &nids_data::Dataset, config: ServeConfig) -> ServeEngine {
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector(data, 5)).unwrap();
        ServeEngine::new(registry, config).unwrap()
    }

    #[test]
    fn config_watermarks_are_validated() {
        let registry = Arc::new(DetectorRegistry::new());
        let bad = ServeConfig { max_batch: 0, ..ServeConfig::default() };
        assert!(matches!(
            ServeEngine::new(Arc::clone(&registry), bad),
            Err(ServeError::InvalidConfig(_))
        ));
        let bad = ServeConfig { max_batch: 64, queue_capacity: 8, ..ServeConfig::default() };
        assert!(matches!(ServeEngine::new(registry, bad), Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn submit_flush_take_round_trip_matches_detect() {
        let data = dataset(300, 3);
        let engine = engine_with(&data, ServeConfig::default());
        let oracle = engine.registry().current("t0").unwrap().0;
        let records: Vec<Vec<f32>> = data.records()[..10].to_vec();
        let expected = oracle.detect_batch(&records).unwrap();

        let tickets: Vec<Ticket> =
            records.iter().map(|r| engine.submit("t0", r).unwrap()).collect();
        assert_eq!(engine.stats("t0").unwrap().queue_depth, 10);
        assert!(engine.try_take(&tickets[0]).unwrap().is_none(), "still pending");
        assert_eq!(engine.flush("t0").unwrap(), 10);
        for (ticket, want) in tickets.iter().zip(&expected) {
            assert_eq!(engine.try_take(ticket).unwrap(), Some(*want));
        }
        // Second collect of the same ticket fails.
        assert!(matches!(engine.try_take(&tickets[0]), Err(ServeError::UnknownTicket)));
        let stats = engine.stats("t0").unwrap();
        assert_eq!(stats.flows_served, 10);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_size_histogram, vec![(10, 1)]);
        assert_eq!(stats.uncollected, 0);
        assert!(stats.p99_latency >= stats.p50_latency);
    }

    #[test]
    fn max_batch_watermark_flushes_inline_and_take_forces_a_flush() {
        let data = dataset(300, 7);
        let config = ServeConfig { max_batch: 4, ..ServeConfig::default() };
        let engine = engine_with(&data, config);
        let mut tickets = Vec::new();
        for record in &data.records()[..9] {
            tickets.push(engine.submit("t0", record).unwrap());
        }
        let stats = engine.stats("t0").unwrap();
        assert_eq!(stats.batches, 2, "two full batches flushed inline");
        assert_eq!(stats.queue_depth, 1);
        assert_eq!(stats.batch_size_histogram, vec![(4, 2)]);
        // Taking the straggler forces its batch out.
        let verdict = engine.take(&tickets[8]).unwrap();
        let oracle = engine.registry().current("t0").unwrap().0;
        assert_eq!(verdict, oracle.detect_batch(&data.records()[8..9]).unwrap()[0]);
        assert_eq!(engine.stats("t0").unwrap().queue_depth, 0);
    }

    #[test]
    fn poll_honours_the_max_delay_watermark() {
        let data = dataset(300, 9);
        let config = ServeConfig { max_delay: Duration::from_millis(1), ..ServeConfig::default() };
        let engine = engine_with(&data, config);
        let ticket = engine.submit("t0", &data.records()[0]).unwrap();
        assert_eq!(engine.poll(), 0, "not yet expired");
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(engine.poll(), 1);
        assert!(engine.try_take(&ticket).unwrap().is_some());
    }

    #[test]
    fn unknown_tenants_and_foreign_tickets_are_rejected() {
        let data = dataset(300, 11);
        let engine = engine_with(&data, ServeConfig::default());
        assert!(matches!(
            engine.submit("nope", &data.records()[0]),
            Err(ServeError::UnknownTenant(_))
        ));
        assert!(matches!(engine.flush("nope"), Err(ServeError::UnknownTenant(_))));
        let foreign = Ticket { tenant: "t0".into(), lane: 0, seq: 999 };
        engine.submit("t0", &data.records()[0]).unwrap();
        assert!(matches!(engine.take(&foreign), Err(ServeError::UnknownTicket)));
    }

    #[test]
    fn malformed_records_are_rejected_without_corrupting_the_lane() {
        let data = dataset(300, 13);
        let engine = engine_with(&data, ServeConfig::default());
        let good = engine.submit("t0", &data.records()[0]).unwrap();
        // Wrong arity: rejected, lane intact.
        assert!(matches!(
            engine.submit("t0", &[0.0, 1.0]),
            Err(ServeError::Rejected(CyberHdError::Data(_)))
        ));
        let oracle = engine.registry().current("t0").unwrap().0;
        assert_eq!(
            engine.take(&good).unwrap(),
            oracle.detect_batch(&data.records()[..1]).unwrap()[0]
        );
    }

    #[test]
    fn registry_admission_checks_gate_swaps() {
        let nsl = dataset(300, 15);
        let registry = DetectorRegistry::new();
        registry.register("edge", detector(&nsl, 1)).unwrap();
        assert!(matches!(
            registry.register("edge", detector(&nsl, 2)),
            Err(ServeError::DuplicateTenant(_))
        ));
        assert_eq!(registry.tenants(), vec!["edge".to_string()]);
        assert_eq!(registry.len(), 1);

        // Same shape, new weights: admitted, version bumps.
        assert_eq!(registry.swap("edge", detector(&nsl, 2)).unwrap(), 2);
        assert_eq!(registry.current("edge").unwrap().1, 2);

        // Different schema: refused.
        let unsw =
            DatasetKind::UnswNb15.generate(&SyntheticConfig::new(300, 15).difficulty(1.2)).unwrap();
        assert!(matches!(
            registry.swap("edge", detector(&unsw, 3)),
            Err(ServeError::IncompatibleSwap(_))
        ));
        assert!(matches!(
            registry.swap("ghost", detector(&nsl, 3)),
            Err(ServeError::UnknownTenant(_))
        ));

        // Byte-loaded artifacts swap through the codec path.
        let v3 = detector(&nsl, 4);
        assert_eq!(registry.swap_from_bytes("edge", &v3.to_bytes()).unwrap(), 3);
        assert!(matches!(
            registry.swap_from_bytes("edge", b"garbage"),
            Err(ServeError::Rejected(_))
        ));
        assert!(registry.remove("edge").is_some());
        assert!(registry.is_empty());
    }

    #[test]
    fn remove_and_reregister_cannot_alias_the_old_artifact() {
        let data = dataset(300, 17);
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector(&data, 1)).unwrap();
        let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default()).unwrap();

        // Pin a batch on the original artifact, then remove + re-register
        // under the same id (version restarts at 1, but generations are
        // registry-unique, so the lane must notice).
        let old_ticket = engine.submit("t0", &data.records()[0]).unwrap();
        registry.remove("t0").unwrap();
        let replacement = detector(&data, 2);
        registry.register("t0", replacement.clone()).unwrap();

        let new_ticket = engine.submit("t0", &data.records()[1]).unwrap();
        engine.flush("t0").unwrap();
        // The in-flight flow finished on the removed artifact; the one
        // admitted after the re-register scored on the replacement.
        assert!(engine.take(&old_ticket).is_ok());
        assert_eq!(
            engine.take(&new_ticket).unwrap(),
            replacement.detect_batch(&data.records()[1..2]).unwrap()[0],
            "post-re-register submissions must score on the replacement artifact"
        );
    }

    #[test]
    fn removed_tenants_lanes_are_evicted() {
        let data = dataset(300, 19);
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector(&data, 1)).unwrap();
        let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default()).unwrap();
        let ticket = engine.submit("t0", &data.records()[0]).unwrap();

        registry.remove("t0").unwrap();
        // Housekeeping drops the orphaned lane (pending flow included).
        engine.poll();
        assert!(!engine.evict("t0"), "poll already evicted the lane");
        assert!(engine.stats("t0").is_none());
        assert!(matches!(engine.take(&ticket), Err(ServeError::UnknownTenant(_))));
        assert!(matches!(
            engine.submit("t0", &data.records()[0]),
            Err(ServeError::UnknownTenant(_))
        ));

        // Explicit eviction works without a poll, too.
        registry.register("t0", detector(&data, 2)).unwrap();
        engine.submit("t0", &data.records()[0]).unwrap();
        assert!(engine.evict("t0"));
        assert!(engine.stats("t0").is_none());
    }

    #[test]
    fn stale_tickets_cannot_collect_a_recreated_lanes_recycled_seq() {
        let data = dataset(300, 29);
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector(&data, 1)).unwrap();
        let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default()).unwrap();

        // Ticket A (seq 0) from the original lane, never collected.
        let stale = engine.submit("t0", &data.records()[0]).unwrap();
        registry.remove("t0").unwrap();
        engine.evict("t0");

        // Recreated lane reissues seq 0 to a different flow.
        registry.register("t0", detector(&data, 2)).unwrap();
        let fresh = engine.submit("t0", &data.records()[1]).unwrap();
        assert_eq!(fresh.seq(), stale.seq(), "the recreated lane recycles sequence numbers");
        engine.flush("t0").unwrap();

        // The stale ticket must not collect (and thereby consume) the
        // fresh flow's verdict.
        assert!(matches!(engine.take(&stale), Err(ServeError::UnknownTicket)));
        assert!(engine.take(&fresh).is_ok());
    }

    #[test]
    fn stale_pin_from_a_rejected_first_flow_does_not_survive_a_swap() {
        let data = dataset(300, 23);
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector(&data, 1)).unwrap();
        let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default()).unwrap();

        // A rejected first flow pins the lane but leaves it empty...
        assert!(engine.submit("t0", &[1.0, 2.0]).is_err());
        // ...then the registry swaps.  The next valid submission must pin
        // (and score on) the new artifact, not the superseded pin.
        let v2 = detector(&data, 2);
        registry.swap("t0", v2.clone()).unwrap();
        let ticket = engine.submit("t0", &data.records()[0]).unwrap();
        assert_eq!(
            engine.take(&ticket).unwrap(),
            v2.detect_batch(&data.records()[..1]).unwrap()[0],
            "post-swap submissions must score on the swapped-in artifact"
        );
    }

    #[test]
    fn collect_and_flush_paths_never_create_lanes() {
        let data = dataset(300, 27);
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("t0", detector(&data, 1)).unwrap();
        let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default()).unwrap();

        // Registered tenant, nothing ever submitted: collects fail fast,
        // flush is a no-op, and none of them materialize serving state.
        let phantom = Ticket { tenant: "t0".into(), lane: 0, seq: 0 };
        assert!(matches!(engine.try_take(&phantom), Err(ServeError::UnknownTicket)));
        assert!(matches!(engine.take(&phantom), Err(ServeError::UnknownTicket)));
        assert_eq!(engine.flush("t0").unwrap(), 0);
        assert!(engine.stats("t0").is_none(), "read-only paths must not create a lane");
    }

    #[test]
    fn error_display_and_sources_are_informative() {
        let e = ServeError::Backpressure {
            tenant: "t".into(),
            capacity: 8,
            depth: 8,
            retry_hint: Duration::from_millis(2),
        };
        assert!(e.to_string().contains("full"));
        assert!(e.to_string().contains("8/8"));
        assert!(e.source().is_none());
        let e = ServeError::Shed { tenant: "t".into(), retry_hint: Duration::from_millis(1) };
        assert!(e.to_string().contains("shed"));
        assert!(e.source().is_none());
        let e = ServeError::Rejected(CyberHdError::InvalidData("x".into()));
        assert!(e.source().is_some());
        assert!(ServeError::UnknownTicket.to_string().contains("ticket"));
        assert!(ServeError::IncompatibleSwap("w".into()).to_string().contains("hot-swap"));
        assert!(ServeError::DuplicateTenant("d".into()).to_string().contains("registered"));
        assert!(ServeError::UnknownTenant("u".into()).to_string().contains("tenant"));
        assert!(ServeError::FeedbackUnavailable("f".into()).to_string().contains("feedback"));
    }

    // -----------------------------------------------------------------
    // Adaptive lanes
    // -----------------------------------------------------------------

    /// A monitor tuned to trip quickly in unit-sized streams.
    fn touchy_monitor() -> DriftMonitorConfig {
        DriftMonitorConfig {
            window: 16,
            min_observations: 8,
            error_delta: 0.25,
            unknown_surge: 2.0,
            cooldown: 8,
        }
    }

    #[test]
    fn adaptive_config_is_validated() {
        let data = dataset(300, 3);
        let detector = detector(&data, 5);
        for bad in [
            AdaptiveConfig { max_batch: 0, ..AdaptiveConfig::default() },
            AdaptiveConfig { max_batch: 64, queue_capacity: 8, ..AdaptiveConfig::default() },
            AdaptiveConfig { regeneration_rounds: 0, ..AdaptiveConfig::default() },
            AdaptiveConfig {
                monitor: DriftMonitorConfig { window: 0, ..DriftMonitorConfig::default() },
                ..AdaptiveConfig::default()
            },
        ] {
            assert!(matches!(
                AdaptiveLane::new("t0", detector.clone(), bad),
                Err(ServeError::InvalidConfig(_))
            ));
        }
        // Quantized artifacts cannot keep learning.
        let quantized = Detector::builder()
            .dimension(128)
            .retrain_epochs(1)
            .quantize(hdc::BitWidth::B1)
            .train(&data)
            .unwrap();
        assert!(matches!(
            AdaptiveLane::new("t0", quantized, AdaptiveConfig::default()),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn adaptive_lane_matches_a_serial_online_replay() {
        let data = dataset(400, 31);
        let detector = detector(&data, 9);
        let lane = AdaptiveLane::new(
            "t0",
            detector.clone(),
            AdaptiveConfig { max_batch: 7, ..AdaptiveConfig::default() },
        )
        .unwrap();
        let mut oracle = detector.into_online().unwrap();

        let mut tickets = Vec::new();
        for (i, (record, &label)) in data.records().iter().zip(data.labels()).take(60).enumerate() {
            if i % 3 == 0 {
                tickets.push((lane.submit(record).unwrap(), None::<usize>, record));
            } else {
                tickets.push((lane.submit_labelled(record, label).unwrap(), Some(label), record));
            }
            if i % 11 == 0 {
                lane.flush().unwrap();
            }
        }
        lane.flush().unwrap();

        for (ticket, label, record) in &tickets {
            let verdict = lane.take(ticket).unwrap();
            let (class, similarity) = match label {
                Some(label) => oracle.observe_scored(record, *label).unwrap(),
                None => oracle.predict_scored(record).unwrap(),
            };
            assert_eq!(verdict.class, class);
            assert_eq!(verdict.similarity.to_bits(), similarity.to_bits());
            assert!(!verdict.novel, "no thresholds on a closed-set lane");
        }
        let stats = lane.stats();
        assert_eq!(stats.flows_served, 60);
        assert_eq!(stats.samples_learned, oracle.samples_seen());
        assert_eq!(stats.prequential_accuracy, oracle.prequential_accuracy());
        assert_eq!(stats.uncollected, 0);
        // The lane's model is the oracle's model, bit for bit.
        assert_eq!(
            lane.seal_snapshot().to_bytes(),
            oracle.seal_snapshot().to_bytes(),
            "interleaved flushes must not change the model a serial replay produces"
        );
    }

    #[test]
    fn adaptive_feedback_applies_late_ground_truth_in_order() {
        let data = dataset(300, 37);
        let lane = AdaptiveLane::new("t0", detector(&data, 3), AdaptiveConfig::default()).unwrap();

        let labelled = lane.submit_labelled(&data.records()[0], data.labels()[0]).unwrap();
        let unlabelled = lane.submit(&data.records()[1]).unwrap();
        lane.flush().unwrap();
        assert_eq!(lane.stats().samples_learned, 1, "unlabelled flows do not train");

        // Late ground truth arrives through the ticket.
        lane.submit_feedback(&unlabelled, data.labels()[1]).unwrap();
        lane.flush().unwrap();
        let stats = lane.stats();
        assert_eq!(stats.samples_learned, 2);
        assert_eq!(stats.feedback_submitted, 1);
        assert_eq!(stats.feedback_applied, 1);

        // Applying it twice fails; so does feedback for a labelled submit,
        // a foreign ticket, or an out-of-range label.
        assert!(matches!(
            lane.submit_feedback(&unlabelled, data.labels()[1]),
            Err(ServeError::FeedbackUnavailable(_))
        ));
        assert!(matches!(
            lane.submit_feedback(&labelled, data.labels()[0]),
            Err(ServeError::FeedbackUnavailable(_))
        ));
        let foreign = Ticket { tenant: "t0".into(), lane: lane.id + 1, seq: 0 };
        assert!(matches!(lane.submit_feedback(&foreign, 0), Err(ServeError::UnknownTicket)));
        let fresh = lane.submit(&data.records()[2]).unwrap();
        assert!(matches!(lane.submit_feedback(&fresh, 999), Err(ServeError::Rejected(_))));
        // Verdicts still collectable.
        assert!(lane.take(&labelled).is_ok());
        assert!(lane.take(&unlabelled).is_ok());
    }

    #[test]
    fn adaptive_retention_window_ages_flows_out() {
        let data = dataset(300, 41);
        let config = AdaptiveConfig { retention: 2, ..AdaptiveConfig::default() };
        let lane = AdaptiveLane::new("t0", detector(&data, 3), config).unwrap();
        let first = lane.submit(&data.records()[0]).unwrap();
        lane.submit(&data.records()[1]).unwrap();
        lane.submit(&data.records()[2]).unwrap();
        // The first flow aged out of the 2-flow retention window — a
        // distinct, WAL-replayable error, not generic unavailability.
        assert!(matches!(
            lane.submit_feedback(&first, 0),
            Err(ServeError::FeedbackTooLate { seq: 0, retention: 2 })
        ));
        assert_eq!(lane.stats().retained, 2);

        // retention = 0 disables late feedback entirely.
        let no_feedback = AdaptiveLane::new(
            "t1",
            detector(&data, 3),
            AdaptiveConfig { retention: 0, ..AdaptiveConfig::default() },
        )
        .unwrap();
        let ticket = no_feedback.submit(&data.records()[0]).unwrap();
        assert!(matches!(
            no_feedback.submit_feedback(&ticket, 0),
            Err(ServeError::FeedbackTooLate { retention: 0, .. })
        ));
        // A sequence the lane never issued stays UnknownTicket even with
        // the retention window empty.
        let forged = no_feedback.ticket_for(999);
        assert!(matches!(no_feedback.submit_feedback(&forged, 0), Err(ServeError::UnknownTicket)));
    }

    #[test]
    fn adaptive_checkpoint_restore_is_bit_identical() {
        let data = dataset(400, 47);
        let config = AdaptiveConfig {
            max_batch: 8,
            retention: 16,
            monitor: DriftMonitorConfig {
                window: 32,
                min_observations: 16,
                cooldown: 16,
                ..DriftMonitorConfig::default()
            },
            ..AdaptiveConfig::default()
        };
        let lane = AdaptiveLane::new("t0", detector(&data, 3), config).unwrap();
        let oracle = AdaptiveLane::new("t0", detector(&data, 3), config).unwrap();

        // Mixed traffic: labelled, unlabelled (some fed back), enough to
        // evict from the retention window and (likely) trip the monitor.
        let mut tickets = Vec::new();
        for (i, record) in data.records()[..120].iter().enumerate() {
            if i % 3 == 0 {
                lane.submit_labelled(record, data.labels()[i]).unwrap();
                oracle.submit_labelled(record, data.labels()[i]).unwrap();
            } else {
                tickets.push((i, lane.submit(record).unwrap(), oracle.submit(record).unwrap()));
            }
            if i % 7 == 0 {
                if let Some((j, t_lane, t_oracle)) = tickets.pop() {
                    let _ = lane.submit_feedback(&t_lane, data.labels()[j]);
                    let _ = oracle.submit_feedback(&t_oracle, data.labels()[j]);
                }
            }
        }
        lane.flush().unwrap();
        oracle.flush().unwrap();
        lane.drain_completed();
        oracle.drain_completed();

        // Checkpoint the first lane and restore a fresh one from it.
        let state = lane.checkpoint_state();
        let restored = AdaptiveLane::restore(config, None, state.clone()).unwrap();
        assert_eq!(restored.checkpoint_state(), state, "restore must round-trip the checkpoint");

        // The restored lane and the never-checkpointed oracle must agree
        // bit-for-bit on everything that follows.
        for (i, record) in data.records()[120..240].iter().enumerate() {
            let label = data.labels()[120 + i];
            let (a, b) = if i % 2 == 0 {
                (restored.submit_labelled(record, label), oracle.submit_labelled(record, label))
            } else {
                (restored.submit(record), oracle.submit(record))
            };
            assert_eq!(a.unwrap().seq(), b.unwrap().seq(), "sequence numbering must resume");
        }
        restored.flush().unwrap();
        oracle.flush().unwrap();
        assert_eq!(
            restored.drain_completed(),
            oracle.drain_completed(),
            "post-restore verdicts must match the uncrashed lane"
        );
        assert_eq!(
            restored.seal_snapshot().to_bytes(),
            oracle.seal_snapshot().to_bytes(),
            "post-restore model must be bit-identical to the uncrashed lane"
        );
        let (r, o) = (restored.stats(), oracle.stats());
        assert_eq!(r.samples_learned, o.samples_learned);
        assert_eq!(r.prequential_accuracy, o.prequential_accuracy);
        assert_eq!(r.monitor_trips, o.monitor_trips);
        assert_eq!(r.adaptations, o.adaptations);
        assert_eq!(r.flows_submitted, o.flows_submitted);
    }

    #[test]
    fn adaptive_backpressure_and_rejection_leave_the_lane_sound() {
        let data = dataset(300, 43);
        let config =
            AdaptiveConfig { max_batch: 4, queue_capacity: 4, ..AdaptiveConfig::default() };
        let lane = AdaptiveLane::new("t0", detector(&data, 3), config).unwrap();
        // Malformed records and out-of-range labels are rejected up front.
        assert!(matches!(lane.submit(&[1.0, 2.0]), Err(ServeError::Rejected(_))));
        assert!(matches!(
            lane.submit_labelled(&data.records()[0], 999),
            Err(ServeError::Rejected(_))
        ));
        // Four submissions fill the queue (the fourth auto-flushes into
        // four uncollected verdicts, which still occupy it).
        let tickets: Vec<Ticket> =
            data.records()[..4].iter().map(|r| lane.submit(r).unwrap()).collect();
        assert!(matches!(
            lane.submit(&data.records()[4]),
            Err(ServeError::Backpressure { capacity: 4, .. })
        ));
        let stats = lane.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.uncollected, 4);
        // Draining frees capacity again.
        assert!(lane.take(&tickets[0]).is_ok());
        assert!(lane.submit(&data.records()[4]).is_ok());
    }

    #[test]
    fn adaptive_poll_honours_max_delay() {
        let data = dataset(300, 47);
        let config =
            AdaptiveConfig { max_delay: Duration::from_millis(1), ..AdaptiveConfig::default() };
        let lane = AdaptiveLane::new("t0", detector(&data, 3), config).unwrap();
        let ticket = lane.submit(&data.records()[0]).unwrap();
        assert_eq!(lane.poll(), 0, "not yet expired");
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(lane.poll(), 1);
        assert!(lane.try_take(&ticket).unwrap().is_some());
        // try_take semantics: pending -> None, collected -> UnknownTicket.
        let pending = lane.submit(&data.records()[1]).unwrap();
        assert!(lane.try_take(&pending).unwrap().is_none());
        assert!(matches!(lane.try_take(&ticket), Err(ServeError::UnknownTicket)));
    }

    #[test]
    fn adaptive_drift_trip_regenerates_and_republishes() {
        let data = dataset(600, 53);
        let v1 = Detector::builder()
            .dimension(128)
            .retrain_epochs(2)
            .regeneration_rate(0.1)
            .seed(7)
            .train(&data)
            .unwrap();
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("edge", v1.clone()).unwrap();
        let config =
            AdaptiveConfig { monitor: touchy_monitor(), max_batch: 8, ..AdaptiveConfig::default() };
        let lane = AdaptiveLane::with_registry("edge", v1, config, Arc::clone(&registry)).unwrap();

        // Calm phase: true labels freeze a low baseline error.
        for (record, &label) in data.records().iter().zip(data.labels()).take(40) {
            lane.submit_labelled(record, label).unwrap();
        }
        lane.flush().unwrap();
        assert_eq!(lane.stats().monitor_trips, 0, "stationary traffic must not trip");

        // Abrupt shift: the label semantics rotate, so the frozen-baseline
        // window error surges and the monitor trips.
        let classes = data.num_classes();
        for (record, &label) in data.records().iter().zip(data.labels()).skip(40).take(120) {
            lane.submit_labelled(record, (label + 1) % classes).unwrap();
        }
        lane.flush().unwrap();

        let stats = lane.stats();
        assert!(stats.monitor_trips >= 1, "rotated labels must trip the monitor: {stats}");
        assert!(stats.adaptations >= 1);
        assert!(stats.regenerated_dimensions >= 1);
        assert!(
            stats.effective_dimension > 128,
            "regeneration grows the effective dimension: {}",
            stats.effective_dimension
        );
        assert!(stats.publishes >= 1, "auto-publish must fire after an adaptation");
        assert_eq!(stats.publish_failures, 0);
        let version = registry.version("edge").unwrap();
        assert!(version >= 2, "the registry must have received a swap, got v{version}");
        assert_eq!(stats.last_published_version, Some(version));
        assert!(stats.max_publish_latency >= stats.p50_publish_latency);

        // Auto-publications snapshot the model *at publish time*; the lane
        // has kept learning since.  A manual publish hands the registry the
        // current model, bit for bit.
        let republished = lane.publish().unwrap();
        assert_eq!(republished, version + 1);
        let (published, _) = registry.current("edge").unwrap();
        assert_eq!(published.to_bytes(), lane.seal_snapshot().to_bytes());
    }

    #[test]
    fn adaptive_open_set_republish_recalibrates_thresholds() {
        let data = dataset(600, 67);
        let v1 = Detector::builder()
            .dimension(128)
            .retrain_epochs(2)
            .regeneration_rate(0.1)
            .open_set(0.05)
            .seed(7)
            .train(&data)
            .unwrap();
        let initial = v1.thresholds().unwrap().to_vec();
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("edge", v1.clone()).unwrap();
        let config =
            AdaptiveConfig { monitor: touchy_monitor(), max_batch: 8, ..AdaptiveConfig::default() };
        let lane = AdaptiveLane::with_registry("edge", v1, config, Arc::clone(&registry)).unwrap();

        // Calm phase, then rotated labels: the error surge trips the
        // monitor and each adaptation must recalibrate before publishing.
        for (record, &label) in data.records().iter().zip(data.labels()).take(40) {
            lane.submit_labelled(record, label).unwrap();
        }
        lane.flush().unwrap();
        let classes = data.num_classes();
        for (record, &label) in data.records().iter().zip(data.labels()).skip(40).take(120) {
            lane.submit_labelled(record, (label + 1) % classes).unwrap();
        }
        lane.flush().unwrap();

        let stats = lane.stats();
        assert!(stats.monitor_trips >= 1, "rotated labels must trip the monitor: {stats}");
        assert!(stats.recalibrations >= 1, "open-set adaptations must recalibrate: {stats}");
        assert!(stats.reservoir_size > 0, "labelled flows must populate the reservoir: {stats}");
        let thresholds = lane.thresholds_snapshot().expect("the lane must stay open-set");
        assert_ne!(thresholds, initial, "recalibration must refresh the thresholds");
        // The republished snapshot carries the recalibrated thresholds —
        // the bug this PR fixes was publish dropping them entirely.
        let (published, version) = registry.current("edge").unwrap();
        assert!(version >= 2, "the adaptation must have republished, got v{version}");
        assert_eq!(
            published.thresholds(),
            Some(thresholds.as_slice()),
            "the published snapshot must carry the lane's recalibrated thresholds"
        );
        assert!(registry.info("edge").unwrap().open_set);
    }

    #[test]
    fn batched_lanes_match_a_batched_replay_at_the_same_boundaries() {
        let data = dataset(360, 71);
        let artifact = Detector::builder()
            .dimension(128)
            .retrain_epochs(1)
            .regeneration_rate(0.1)
            .open_set(0.05)
            .seed(9)
            .train(&data)
            .unwrap();
        let thresholds = artifact.thresholds().unwrap().to_vec();
        let batch = 9usize;
        let config = AdaptiveConfig {
            max_batch: batch,
            queue_capacity: 512,
            batched_feedback: true,
            ..AdaptiveConfig::default()
        };
        let lane = AdaptiveLane::new("t0", artifact.clone(), config).unwrap();
        let mut oracle = artifact.into_online().unwrap();

        // The documented contract: bit-identical to a batched replay at
        // the same flush boundaries.  The lane auto-flushes every
        // `batch` submissions, so the oracle applies the same chunks —
        // every score in a chunk against the frozen pre-chunk model, the
        // labelled records learned through one deferred batch update.
        let mut expected = Vec::new();
        for chunk in data.records().chunks(batch) {
            let base = expected.len();
            let mut scores = Vec::new();
            let mut records = Vec::new();
            let mut labels = Vec::new();
            for (i, record) in chunk.iter().enumerate() {
                if (base + i) % 2 == 0 {
                    lane.submit_labelled(record, data.labels()[base + i]).unwrap();
                    records.push(record.clone());
                    labels.push(data.labels()[base + i]);
                    scores.push(None);
                } else {
                    lane.submit(record).unwrap();
                    scores.push(Some(oracle.predict_scored(record).unwrap()));
                }
            }
            let mut learned = std::collections::VecDeque::from(
                oracle.observe_batch_scored(&records, &labels).unwrap(),
            );
            for score in scores {
                let (class, similarity) =
                    score.unwrap_or_else(|| learned.pop_front().expect("one score per label"));
                let novel = similarity < thresholds[class];
                expected.push(Verdict { class, similarity, novel });
            }
        }
        let verdicts: Vec<Verdict> =
            lane.drain_completed().into_iter().map(|(_, verdict)| verdict).collect();
        assert_eq!(verdicts.len(), expected.len());
        for (seq, (got, want)) in verdicts.iter().zip(&expected).enumerate() {
            assert_eq!(got.class, want.class, "flow {seq}");
            assert_eq!(got.similarity.to_bits(), want.similarity.to_bits(), "flow {seq}");
            assert_eq!(got.novel, want.novel, "flow {seq}");
        }
        assert_eq!(
            lane.seal_snapshot().to_bytes(),
            oracle.seal_snapshot().to_bytes(),
            "the lane's final model must match the batched replay bit for bit"
        );
    }

    #[test]
    fn reservoir_is_identical_across_flush_modes_and_bounded_by_capacity() {
        let data = dataset(300, 73);
        let artifact = Detector::builder()
            .dimension(96)
            .retrain_epochs(1)
            .regeneration_rate(0.1)
            .open_set(0.05)
            .seed(11)
            .train(&data)
            .unwrap();
        let base = AdaptiveConfig {
            reservoir_capacity: 16,
            queue_capacity: 512,
            ..AdaptiveConfig::default()
        };
        // The reservoir is a pure function of the labelled event sequence:
        // flush cadence and batched vs serial application must not move a
        // single entry.
        let serial = AdaptiveLane::new("t0", artifact.clone(), base).unwrap();
        let chunky =
            AdaptiveLane::new("t0", artifact.clone(), AdaptiveConfig { max_batch: 5, ..base })
                .unwrap();
        let batched = AdaptiveLane::new(
            "t0",
            artifact,
            AdaptiveConfig { max_batch: 7, batched_feedback: true, ..base },
        )
        .unwrap();
        for lane in [&serial, &chunky, &batched] {
            for (record, &label) in data.records().iter().zip(data.labels()).take(120) {
                lane.submit_labelled(record, label).unwrap();
            }
            lane.flush().unwrap();
        }
        let (entries, candidates) = serial.reservoir_snapshot();
        assert_eq!(entries.len(), 16, "the reservoir must cap at its configured capacity");
        assert_eq!(candidates, 120, "every labelled event is a candidate");
        assert_eq!(serial.reservoir_snapshot(), chunky.reservoir_snapshot());
        assert_eq!(serial.reservoir_snapshot(), batched.reservoir_snapshot());
        assert_eq!(serial.stats().reservoir_size, 16);
    }

    #[test]
    fn engine_and_adaptive_tickets_for_the_same_tenant_cannot_cross_collect() {
        let data = dataset(300, 61);
        let artifact = detector(&data, 3);
        let registry = Arc::new(DetectorRegistry::new());
        registry.register("edge", artifact.clone()).unwrap();
        let engine = ServeEngine::new(Arc::clone(&registry), ServeConfig::default()).unwrap();
        let lane = AdaptiveLane::with_registry(
            "edge",
            artifact,
            AdaptiveConfig::default(),
            Arc::clone(&registry),
        )
        .unwrap();

        // Same tenant, same sequence number (both start at 0) — lane ids
        // come from one process-global counter, so neither side can
        // collect (and thereby consume) the other's verdict.
        let engine_ticket = engine.submit("edge", &data.records()[0]).unwrap();
        let lane_ticket = lane.submit(&data.records()[1]).unwrap();
        assert_eq!(engine_ticket.seq(), lane_ticket.seq());
        engine.flush("edge").unwrap();
        lane.flush().unwrap();

        assert!(matches!(lane.take(&engine_ticket), Err(ServeError::UnknownTicket)));
        assert!(matches!(lane.try_take(&engine_ticket), Err(ServeError::UnknownTicket)));
        assert!(matches!(lane.submit_feedback(&engine_ticket, 0), Err(ServeError::UnknownTicket)));
        assert!(matches!(engine.take(&lane_ticket), Err(ServeError::UnknownTicket)));
        // The rightful owners still collect.
        assert!(engine.take(&engine_ticket).is_ok());
        assert!(lane.take(&lane_ticket).is_ok());
    }

    #[test]
    fn adaptive_publish_registers_unknown_tenants() {
        let data = dataset(300, 59);
        let registry = Arc::new(DetectorRegistry::new());
        let lane = AdaptiveLane::with_registry(
            "fresh",
            detector(&data, 3),
            AdaptiveConfig::default(),
            Arc::clone(&registry),
        )
        .unwrap();
        assert_eq!(lane.publish().unwrap(), 1, "publish registers an unknown tenant");
        assert_eq!(lane.publish().unwrap(), 2, "and swaps once registered");
        assert_eq!(registry.version("fresh"), Some(2));
        // A lane without a registry refuses to publish.
        let lonely =
            AdaptiveLane::new("t0", detector(&data, 3), AdaptiveConfig::default()).unwrap();
        assert!(matches!(lonely.publish(), Err(ServeError::InvalidConfig(_))));
    }
}

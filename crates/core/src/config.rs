//! Configuration of the CyberHD learner.
//!
//! [`CyberHdConfig`] collects every knob of the training pipeline — physical
//! dimensionality, learning rate, number of retraining epochs, regeneration
//! rate, encoder choice and RNG seed — behind a validating builder, so a
//! misconfigured experiment fails loudly at construction time rather than
//! producing silently wrong numbers.

use crate::{CyberHdError, Result};
use serde::{Deserialize, Serialize};

/// Which encoder maps features into hyperspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EncoderKind {
    /// RBF / random-Fourier-feature encoder (the paper's choice for
    /// cyber-security data; required for dimension regeneration).
    Rbf,
    /// Static ID–level encoder (no regeneration support).
    IdLevel,
    /// Static record-based (linear random projection) encoder
    /// (no regeneration support).
    Record,
    /// Bind-permute-bundle n-gram sequence encoder over a symbol alphabet
    /// (the workload-zoo language-ID path; no regeneration support).
    NGram,
    /// Symbolic record encoder for mixed categorical/numeric tabular rows
    /// (no regeneration support).
    SymbolRecord,
}

impl EncoderKind {
    /// Whether this encoder supports per-dimension regeneration.
    pub fn supports_regeneration(self) -> bool {
        matches!(self, EncoderKind::Rbf)
    }

    /// Whether this encoder consumes symbol indices (categorical features
    /// kept as raw indices by `Normalization::Symbolic`) rather than dense
    /// numeric vectors.
    pub fn is_symbolic(self) -> bool {
        matches!(self, EncoderKind::NGram | EncoderKind::SymbolRecord)
    }
}

/// Mini-batch shape of the training engine.
///
/// The trainer scores every sample of a mini-batch against a frozen snapshot
/// of the class memory, accumulates the adaptive deltas in parallel over row
/// chunks and applies the merged deltas once per batch.  Results are
/// **deterministic for a fixed seed at every thread count** (chunk
/// boundaries and the merge order never depend on `threads`).
///
/// * `size == 1` reproduces the classic serial adaptive rule **bit for
///   bit** — every sample sees the model updated by its predecessors.
/// * Larger sizes trade update freshness for parallelism and locality:
///   samples within a batch are scored against the same snapshot
///   (OnlineHD-style mini-batch training), which typically costs a little
///   per-epoch accuracy on small corpora and nothing measurable at NIDS
///   scale, while letting `fit` scale across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainingBatch {
    /// Samples per mini-batch (must be at least 1).
    pub size: usize,
    /// Worker threads for the mini-batch fan-out; `0` uses the engine
    /// default (`hdc::parallel::engine_threads`, honouring
    /// `CYBERHD_THREADS`).
    pub threads: usize,
}

impl TrainingBatch {
    /// The bit-exact serial rule: one sample per batch.
    pub const SERIAL: TrainingBatch = TrainingBatch { size: 1, threads: 0 };

    /// A mini-batch of `size` samples with the default thread fan-out.
    pub fn of(size: usize) -> Self {
        Self { size, threads: 0 }
    }
}

impl Default for TrainingBatch {
    fn default() -> Self {
        Self::SERIAL
    }
}

/// Fully validated CyberHD training configuration.
///
/// Construct it through [`CyberHdConfig::builder`]; all fields are public for
/// reading so experiment harnesses can log them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CyberHdConfig {
    /// Number of input features per sample (after preprocessing).
    pub input_features: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Physical hypervector dimensionality `D`.
    pub dimension: usize,
    /// Learning rate `η` of the adaptive update.
    pub learning_rate: f32,
    /// Number of retraining epochs after the initial accumulation pass.
    pub retrain_epochs: usize,
    /// Fraction `R ∈ [0, 1)` of dimensions dropped and regenerated after each
    /// retraining epoch. Zero disables regeneration (baseline behaviour).
    pub regeneration_rate: f32,
    /// Encoder used to map features into hyperspace.
    pub encoder: EncoderKind,
    /// Gaussian bandwidth of the RBF encoder (ignored by other encoders).
    pub rbf_sigma: f32,
    /// Number of quantization levels of the ID–level encoder, also used as
    /// the numeric-column level count of the symbol-record encoder (ignored
    /// by other encoders).
    pub id_level_levels: usize,
    /// N-gram order of the [`EncoderKind::NGram`] encoder (ignored by other
    /// encoders).
    pub ngram_order: usize,
    /// Per-column symbol alphabet sizes of the symbolic encoders: for
    /// [`EncoderKind::NGram`] exactly one entry (the shared alphabet of
    /// every sequence position); for [`EncoderKind::SymbolRecord`] one
    /// entry per input feature (`0` marks a numeric column).  Empty for the
    /// numeric encoders.
    pub symbol_alphabets: Vec<usize>,
    /// RNG seed governing base-vector generation, shuffling and
    /// regeneration.
    pub seed: u64,
    /// Number of worker threads used for batch encoding (1 = sequential).
    pub encode_threads: usize,
    /// Mini-batch shape of the training engine (size 1 = bit-exact serial
    /// rule; larger sizes enable the parallel mini-batch path).
    pub batch: TrainingBatch,
}

impl CyberHdConfig {
    /// Starts building a configuration for `input_features`-dimensional
    /// samples and `num_classes` classes.
    pub fn builder(input_features: usize, num_classes: usize) -> CyberHdConfigBuilder {
        CyberHdConfigBuilder::new(input_features, num_classes)
    }

    /// The configuration used by the paper's headline CyberHD results:
    /// physical dimensionality 512 ("0.5k"), 20% regeneration rate and 20
    /// retraining epochs.
    pub fn paper_default(input_features: usize, num_classes: usize) -> Result<Self> {
        Self::builder(input_features, num_classes)
            .dimension(512)
            .learning_rate(0.035)
            .retrain_epochs(20)
            .regeneration_rate(0.2)
            .build()
    }
}

/// Builder for [`CyberHdConfig`].
#[derive(Debug, Clone)]
pub struct CyberHdConfigBuilder {
    input_features: usize,
    num_classes: usize,
    dimension: usize,
    learning_rate: f32,
    retrain_epochs: usize,
    regeneration_rate: f32,
    encoder: EncoderKind,
    rbf_sigma: f32,
    id_level_levels: usize,
    ngram_order: usize,
    symbol_alphabets: Vec<usize>,
    seed: u64,
    encode_threads: usize,
    batch: TrainingBatch,
}

impl CyberHdConfigBuilder {
    fn new(input_features: usize, num_classes: usize) -> Self {
        Self {
            input_features,
            num_classes,
            dimension: 512,
            learning_rate: 0.035,
            retrain_epochs: 10,
            regeneration_rate: 0.1,
            encoder: EncoderKind::Rbf,
            rbf_sigma: 1.0,
            id_level_levels: 32,
            ngram_order: 3,
            symbol_alphabets: Vec::new(),
            seed: 0x5EED,
            encode_threads: 1,
            batch: TrainingBatch::SERIAL,
        }
    }

    /// Sets the physical hypervector dimensionality `D`.
    pub fn dimension(mut self, dimension: usize) -> Self {
        self.dimension = dimension;
        self
    }

    /// Sets the learning rate `η` of the adaptive update.
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.learning_rate = learning_rate;
        self
    }

    /// Sets the number of retraining epochs.
    pub fn retrain_epochs(mut self, retrain_epochs: usize) -> Self {
        self.retrain_epochs = retrain_epochs;
        self
    }

    /// Sets the regeneration rate `R` (fraction of dimensions dropped per
    /// retraining epoch). Zero disables regeneration.
    pub fn regeneration_rate(mut self, regeneration_rate: f32) -> Self {
        self.regeneration_rate = regeneration_rate;
        self
    }

    /// Selects the encoder.
    pub fn encoder(mut self, encoder: EncoderKind) -> Self {
        self.encoder = encoder;
        self
    }

    /// Sets the Gaussian bandwidth of the RBF encoder.
    pub fn rbf_sigma(mut self, rbf_sigma: f32) -> Self {
        self.rbf_sigma = rbf_sigma;
        self
    }

    /// Sets the number of quantization levels of the ID–level encoder
    /// (also the numeric-column level count of the symbol-record encoder).
    pub fn id_level_levels(mut self, id_level_levels: usize) -> Self {
        self.id_level_levels = id_level_levels;
        self
    }

    /// Sets the n-gram order of the [`EncoderKind::NGram`] encoder.
    pub fn ngram_order(mut self, ngram_order: usize) -> Self {
        self.ngram_order = ngram_order;
        self
    }

    /// Sets the per-column symbol alphabet sizes of the symbolic encoders
    /// (see [`CyberHdConfig::symbol_alphabets`]).
    pub fn symbol_alphabets(mut self, symbol_alphabets: Vec<usize>) -> Self {
        self.symbol_alphabets = symbol_alphabets;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads used for batch encoding.
    pub fn encode_threads(mut self, encode_threads: usize) -> Self {
        self.encode_threads = encode_threads;
        self
    }

    /// Sets the full mini-batch shape of the training engine.
    pub fn training_batch(mut self, batch: TrainingBatch) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the training mini-batch size, keeping the default thread
    /// fan-out (`1` = the bit-exact serial adaptive rule).
    pub fn batch_size(mut self, size: usize) -> Self {
        self.batch.size = size;
        self
    }

    /// Sets the worker-thread count of the training mini-batch fan-out
    /// (`0` = engine default).
    pub fn train_threads(mut self, threads: usize) -> Self {
        self.batch.threads = threads;
        self
    }

    /// Validates the accumulated options and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CyberHdError::InvalidConfig`] when any option is outside its
    /// valid range (zero sizes, non-finite or non-positive learning rate,
    /// regeneration rate outside `[0, 1)`, regeneration requested with an
    /// encoder that cannot regenerate, …).
    pub fn build(self) -> Result<CyberHdConfig> {
        if self.input_features == 0 {
            return Err(CyberHdError::InvalidConfig("input_features must be non-zero".into()));
        }
        if self.num_classes < 2 {
            return Err(CyberHdError::InvalidConfig("num_classes must be at least 2".into()));
        }
        if self.dimension == 0 {
            return Err(CyberHdError::InvalidConfig("dimension must be non-zero".into()));
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(CyberHdError::InvalidConfig(format!(
                "learning_rate must be positive and finite, got {}",
                self.learning_rate
            )));
        }
        if !(0.0..1.0).contains(&self.regeneration_rate) || !self.regeneration_rate.is_finite() {
            return Err(CyberHdError::InvalidConfig(format!(
                "regeneration_rate must lie in [0, 1), got {}",
                self.regeneration_rate
            )));
        }
        if self.regeneration_rate > 0.0 && !self.encoder.supports_regeneration() {
            return Err(CyberHdError::InvalidConfig(format!(
                "encoder {:?} does not support dimension regeneration; \
                 use EncoderKind::Rbf or set regeneration_rate to 0",
                self.encoder
            )));
        }
        if !(self.rbf_sigma.is_finite() && self.rbf_sigma > 0.0) {
            return Err(CyberHdError::InvalidConfig(format!(
                "rbf_sigma must be positive and finite, got {}",
                self.rbf_sigma
            )));
        }
        if self.id_level_levels < 2 {
            return Err(CyberHdError::InvalidConfig("id_level_levels must be at least 2".into()));
        }
        if self.encode_threads == 0 {
            return Err(CyberHdError::InvalidConfig("encode_threads must be non-zero".into()));
        }
        if self.batch.size == 0 {
            return Err(CyberHdError::InvalidConfig(
                "training batch size must be at least 1".into(),
            ));
        }
        match self.encoder {
            EncoderKind::NGram => {
                if self.ngram_order == 0 || self.ngram_order > self.input_features {
                    return Err(CyberHdError::InvalidConfig(format!(
                        "ngram_order must lie in [1, {}] (the sequence length), got {}",
                        self.input_features, self.ngram_order
                    )));
                }
                if self.symbol_alphabets.len() != 1 || self.symbol_alphabets[0] < 2 {
                    return Err(CyberHdError::InvalidConfig(format!(
                        "the NGram encoder needs exactly one shared alphabet size of at \
                         least 2 in symbol_alphabets, got {:?}",
                        self.symbol_alphabets
                    )));
                }
            }
            EncoderKind::SymbolRecord if self.symbol_alphabets.len() != self.input_features => {
                return Err(CyberHdError::InvalidConfig(format!(
                    "the SymbolRecord encoder needs one alphabet size per input \
                     feature ({} entries), got {}",
                    self.input_features,
                    self.symbol_alphabets.len()
                )));
            }
            _ => {}
        }
        Ok(CyberHdConfig {
            input_features: self.input_features,
            num_classes: self.num_classes,
            dimension: self.dimension,
            learning_rate: self.learning_rate,
            retrain_epochs: self.retrain_epochs,
            regeneration_rate: self.regeneration_rate,
            encoder: self.encoder,
            rbf_sigma: self.rbf_sigma,
            id_level_levels: self.id_level_levels,
            ngram_order: self.ngram_order,
            symbol_alphabets: self.symbol_alphabets,
            seed: self.seed,
            encode_threads: self.encode_threads,
            batch: self.batch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let config = CyberHdConfig::builder(41, 5).build().unwrap();
        assert_eq!(config.input_features, 41);
        assert_eq!(config.num_classes, 5);
        assert_eq!(config.dimension, 512);
        assert!(config.regeneration_rate > 0.0);
        assert_eq!(config.encoder, EncoderKind::Rbf);
    }

    #[test]
    fn paper_default_matches_headline_configuration() {
        let config = CyberHdConfig::paper_default(78, 7).unwrap();
        assert_eq!(config.dimension, 512);
        assert_eq!(config.retrain_epochs, 20);
        assert!((config.regeneration_rate - 0.2).abs() < 1e-6);
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        assert!(CyberHdConfig::builder(0, 2).build().is_err());
        assert!(CyberHdConfig::builder(4, 1).build().is_err());
        assert!(CyberHdConfig::builder(4, 2).dimension(0).build().is_err());
        assert!(CyberHdConfig::builder(4, 2).encode_threads(0).build().is_err());
        assert!(CyberHdConfig::builder(4, 2).batch_size(0).build().is_err());
    }

    #[test]
    fn training_batch_knob_round_trips() {
        // Default is the bit-exact serial rule.
        let config = CyberHdConfig::builder(4, 2).build().unwrap();
        assert_eq!(config.batch, TrainingBatch::SERIAL);
        assert_eq!(config.batch, TrainingBatch::default());
        // Mini-batch with explicit threads.
        let config = CyberHdConfig::builder(4, 2)
            .training_batch(TrainingBatch { size: 128, threads: 4 })
            .build()
            .unwrap();
        assert_eq!(config.batch.size, 128);
        assert_eq!(config.batch.threads, 4);
        // Convenience setters compose.
        let config = CyberHdConfig::builder(4, 2).batch_size(64).train_threads(2).build().unwrap();
        assert_eq!(config.batch, TrainingBatch { size: 64, threads: 2 });
        assert_eq!(TrainingBatch::of(256), TrainingBatch { size: 256, threads: 0 });
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(CyberHdConfig::builder(4, 2).learning_rate(0.0).build().is_err());
        assert!(CyberHdConfig::builder(4, 2).learning_rate(f32::NAN).build().is_err());
        assert!(CyberHdConfig::builder(4, 2).regeneration_rate(1.0).build().is_err());
        assert!(CyberHdConfig::builder(4, 2).regeneration_rate(-0.1).build().is_err());
        assert!(CyberHdConfig::builder(4, 2).rbf_sigma(-1.0).build().is_err());
        assert!(CyberHdConfig::builder(4, 2).id_level_levels(1).build().is_err());
    }

    #[test]
    fn static_encoders_cannot_regenerate() {
        let err = CyberHdConfig::builder(4, 2)
            .encoder(EncoderKind::IdLevel)
            .regeneration_rate(0.1)
            .build();
        assert!(matches!(err, Err(CyberHdError::InvalidConfig(_))));
        // …but they are fine with regeneration disabled.
        assert!(CyberHdConfig::builder(4, 2)
            .encoder(EncoderKind::Record)
            .regeneration_rate(0.0)
            .build()
            .is_ok());
        assert!(EncoderKind::Rbf.supports_regeneration());
        assert!(!EncoderKind::IdLevel.supports_regeneration());
        assert!(!EncoderKind::Record.supports_regeneration());
    }
}

//! # `hw-model` — first-order CPU and FPGA cost models
//!
//! Table I of the CyberHD paper reports the *energy efficiency* of HDC
//! training across element bitwidths on an Intel i9-12900 CPU and a Xilinx
//! Alveo U50 FPGA, normalized to the 1-bit CPU configuration.  We do not have
//! that hardware, so this crate substitutes first-order analytical models that
//! capture the two effects the table hinges on:
//!
//! * a **CPU** has a fixed number of wide arithmetic units running at a high
//!   clock; element bitwidths below the native word size gain (almost) no
//!   throughput, so the cheapest configuration is the one with the fewest
//!   *elements* — high bitwidth and low (effective) dimensionality;
//! * an **FPGA** builds exactly as many narrow lanes as fit its LUT/DSP
//!   budget at a modest clock and low power, so throughput grows as elements
//!   get narrower — until the growing effective dimensionality of very low
//!   bitwidths eats the gain, producing the mid-bitwidth efficiency peak the
//!   paper reports.
//!
//! The models work on an [`HdcWorkload`] op count, so they are independent of
//! which classifier produced the numbers; the `table1` experiment binary
//! feeds them the accuracy-matched effective dimensionalities it measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod fpga;
pub mod workload;

pub use cpu::CpuModel;
pub use fpga::FpgaModel;
pub use workload::HdcWorkload;

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced by the `hw-model` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwModelError {
    /// A model or workload parameter was invalid (zero sizes, unsupported
    /// bitwidth, non-positive frequency, …).
    InvalidParameter(String),
}

impl fmt::Display for HwModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwModelError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for HwModelError {}

/// Crate-local result alias.
pub type Result<T, E = HwModelError> = std::result::Result<T, E>;

/// A latency/energy estimate for one workload on one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Wall-clock latency in seconds.
    pub latency_s: f64,
    /// Energy in joules (dynamic + static over the latency window).
    pub energy_j: f64,
}

impl CostEstimate {
    /// Energy efficiency expressed as work per joule, using the workload's
    /// total op count as the unit of work.
    pub fn ops_per_joule(&self, ops: f64) -> f64 {
        if self.energy_j <= 0.0 {
            return 0.0;
        }
        ops / self.energy_j
    }

    /// Ratio `other.energy / self.energy` — how many times more energy
    /// efficient `self` is than `other` at the *same* amount of useful work
    /// (e.g. one training run at matched accuracy).
    pub fn efficiency_over(&self, other: &CostEstimate) -> f64 {
        if self.energy_j <= 0.0 {
            return f64::INFINITY;
        }
        other.energy_j / self.energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = HwModelError::InvalidParameter("frequency".into());
        assert!(e.to_string().contains("frequency"));
    }

    #[test]
    fn cost_estimate_ratios() {
        let a = CostEstimate { latency_s: 1.0, energy_j: 2.0 };
        let b = CostEstimate { latency_s: 1.0, energy_j: 8.0 };
        assert!((a.efficiency_over(&b) - 4.0).abs() < 1e-12);
        assert!((b.efficiency_over(&a) - 0.25).abs() < 1e-12);
        assert!((a.ops_per_joule(10.0) - 5.0).abs() < 1e-12);
        let zero = CostEstimate { latency_s: 0.0, energy_j: 0.0 };
        assert_eq!(zero.ops_per_joule(10.0), 0.0);
        assert!(zero.efficiency_over(&a).is_infinite());
    }
}

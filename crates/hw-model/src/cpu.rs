//! First-order CPU cost model (an i9-12900-class desktop part).
//!
//! The model prices an HDC workload with three ingredients:
//!
//! * **throughput** — `cores × SIMD lanes × frequency` element ops per
//!   second, where the number of SIMD lanes depends on the element width:
//!   native widths (32/16/8 bit) pack `simd_width / bits` lanes, but
//!   sub-byte elements gain nothing over 8-bit (general-purpose ISAs have no
//!   2-/4-bit arithmetic), and 1-bit only gets a modest XNOR/popcount boost;
//! * **dynamic energy per op** — roughly constant per element op for narrow
//!   data and slightly higher for 32-bit (wider datapaths and more cache
//!   traffic);
//! * **static power** — the package burns its idle share for as long as the
//!   workload runs, which penalizes configurations that execute more
//!   elements.

use crate::workload::HdcWorkload;
use crate::{CostEstimate, HwModelError, Result};
use serde::{Deserialize, Serialize};

/// Analytical CPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Number of physical cores used by the (parallelized) HDC kernels.
    pub cores: u32,
    /// Sustained all-core frequency in hertz.
    pub frequency_hz: f64,
    /// SIMD register width in bits (256 = AVX2).
    pub simd_width_bits: u32,
    /// Dynamic energy per 8-bit element op, in picojoules.
    pub energy_per_op_pj: f64,
    /// Static (package idle + uncore) power in watts.
    pub static_power_w: f64,
}

impl Default for CpuModel {
    /// An Intel i9-12900-class configuration: 16 cores at a 4 GHz sustained
    /// all-core clock with AVX2 and a ~25 W uncore/static share.
    fn default() -> Self {
        Self {
            cores: 16,
            frequency_hz: 4.0e9,
            simd_width_bits: 256,
            energy_per_op_pj: 2.0,
            static_power_w: 25.0,
        }
    }
}

impl CpuModel {
    /// Creates a model, validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::InvalidParameter`] for non-positive sizes.
    pub fn new(
        cores: u32,
        frequency_hz: f64,
        simd_width_bits: u32,
        energy_per_op_pj: f64,
        static_power_w: f64,
    ) -> Result<Self> {
        if cores == 0 || simd_width_bits == 0 {
            return Err(HwModelError::InvalidParameter(
                "cores and SIMD width must be non-zero".into(),
            ));
        }
        if !(frequency_hz > 0.0 && frequency_hz.is_finite()) {
            return Err(HwModelError::InvalidParameter(format!(
                "frequency must be positive, got {frequency_hz}"
            )));
        }
        if !(energy_per_op_pj > 0.0 && energy_per_op_pj.is_finite())
            || !(static_power_w >= 0.0 && static_power_w.is_finite())
        {
            return Err(HwModelError::InvalidParameter("invalid energy/power parameters".into()));
        }
        Ok(Self { cores, frequency_hz, simd_width_bits, energy_per_op_pj, static_power_w })
    }

    /// *Effective* sustained element lanes per core at a given bitwidth.
    ///
    /// HDC encode/train/query kernels are memory- and gather-bound on a CPU,
    /// so real sustained throughput per element is nearly flat across
    /// bitwidths: 32-bit data loses a little to cache pressure, sub-byte data
    /// gains almost nothing because commodity ISAs have no 2-/4-bit
    /// arithmetic and bit-packed 1-bit kernels pay pack/unpack overhead for
    /// their popcount advantage.  The element-count reduction from a smaller
    /// *effective dimensionality* — not the bitwidth — is what actually
    /// speeds up a CPU, which is exactly what Table I's CPU row shows.
    pub fn lanes(&self, bits: u32) -> f64 {
        let scale = f64::from(self.simd_width_bits) / 256.0;
        let base = match bits {
            32 => 8.0,
            16 => 9.0,
            8 => 10.0,
            4 | 2 => 10.0, // no sub-byte arithmetic on commodity CPUs
            1 => 10.5,     // XNOR/popcount minus packing overhead
            _ => 10.0,
        };
        base * scale
    }

    /// Element ops per second at a given bitwidth.
    pub fn ops_per_second(&self, bits: u32) -> f64 {
        f64::from(self.cores) * self.frequency_hz * self.lanes(bits)
    }

    /// Dynamic energy per element op (joules) at a given bitwidth.
    pub fn energy_per_op_j(&self, bits: u32) -> f64 {
        let pj = match bits {
            32 => self.energy_per_op_pj * 1.2,
            16 => self.energy_per_op_pj * 1.1,
            8 => self.energy_per_op_pj,
            4 | 2 => self.energy_per_op_pj, // stored sub-byte, computed as bytes
            1 => self.energy_per_op_pj * 0.95,
            _ => self.energy_per_op_pj,
        };
        pj * 1e-12
    }

    /// Latency and energy of one full training run.
    pub fn training_cost(&self, workload: &HdcWorkload) -> CostEstimate {
        self.cost(workload.training_ops(), workload.bits)
    }

    /// Latency and energy of classifying `samples` queries.
    pub fn inference_cost(&self, workload: &HdcWorkload, samples: usize) -> CostEstimate {
        self.cost(workload.inference_ops(samples), workload.bits)
    }

    fn cost(&self, ops: u64, bits: u32) -> CostEstimate {
        let ops = ops as f64;
        let latency_s = ops / self.ops_per_second(bits);
        let energy_j = ops * self.energy_per_op_j(bits) + latency_s * self.static_power_w;
        CostEstimate { latency_s, energy_j }
    }

    /// A single-core variant of the default model whose SIMD width matches
    /// a named `hdc::kernel` dispatch path (`"scalar"`, `"neon"`, `"avx2"`,
    /// `"avx512"`; unknown names fall back to AVX2's 256 bits).
    ///
    /// This is the roofline the kernel benchmarks compare against: one core
    /// at the default sustained clock, with the register width the selected
    /// ISA actually exposes (the scalar path still gets 64 bits — it chews
    /// a `u64` word per popcount step and autovectorizes a few f32 lanes).
    pub fn single_core_for_isa(isa: &str) -> Self {
        let simd_width_bits = match isa {
            "scalar" => 64,
            "neon" => 128,
            // "avx512" and its vpopcnt-upgraded variant.
            s if s.starts_with("avx512") => 512,
            _ => 256, // "avx2" and unknown dispatch names
        };
        Self { cores: 1, simd_width_bits, ..Self::default() }
    }

    /// Fraction of the model's roofline a measured kernel throughput
    /// achieves: `measured_ops_per_second / ops_per_second(bits)`.
    ///
    /// Values near `1.0` mean the kernel saturates the modeled issue rate;
    /// values above `1.0` mean the first-order model underestimates the host
    /// (e.g. multiple issue ports per cycle).  Returns `0.0` for
    /// non-positive or non-finite measurements.
    pub fn utilization(&self, bits: u32, measured_ops_per_second: f64) -> f64 {
        if !(measured_ops_per_second > 0.0 && measured_ops_per_second.is_finite()) {
            return 0.0;
        }
        measured_ops_per_second / self.ops_per_second(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(dimension: usize, bits: u32) -> HdcWorkload {
        HdcWorkload::new(dimension, bits, 5, 100, 10_000, 20).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(CpuModel::new(0, 1e9, 256, 2.0, 10.0).is_err());
        assert!(CpuModel::new(8, 0.0, 256, 2.0, 10.0).is_err());
        assert!(CpuModel::new(8, 1e9, 256, 0.0, 10.0).is_err());
        assert!(CpuModel::new(8, 1e9, 256, 2.0, -1.0).is_err());
        assert!(CpuModel::new(8, 1e9, 256, 2.0, 10.0).is_ok());
    }

    #[test]
    fn narrow_widths_do_not_speed_up_a_cpu_much() {
        let cpu = CpuModel::default();
        // 4-bit and 2-bit fall back to byte lanes.
        assert_eq!(cpu.lanes(4), cpu.lanes(8));
        assert_eq!(cpu.lanes(2), cpu.lanes(8));
        // 32-bit has the fewest lanes, 1-bit the most.
        assert!(cpu.lanes(32) < cpu.lanes(8));
        assert!(cpu.lanes(1) > cpu.lanes(8));
    }

    #[test]
    fn latency_scales_with_ops_and_inverse_throughput() {
        let cpu = CpuModel::default();
        let small = cpu.training_cost(&workload(1_000, 8));
        let large = cpu.training_cost(&workload(2_000, 8));
        assert!((large.latency_s / small.latency_s - 2.0).abs() < 1e-9);
        assert!(large.energy_j > small.energy_j);
    }

    #[test]
    fn high_bitwidth_with_matched_accuracy_is_more_efficient_on_cpu() {
        // Table I's CPU row: with the paper's effective dimensionalities the
        // 32-bit configuration beats the 1-bit one because it runs 7x fewer
        // elements and sub-byte arithmetic brings no CPU speedup.
        let cpu = CpuModel::default();
        let cost_32 = cpu.training_cost(&workload(1_200, 32));
        let cost_1 = cpu.training_cost(&workload(8_800, 1));
        let ratio = cost_32.efficiency_over(&cost_1);
        assert!(
            ratio > 1.5 && ratio < 12.0,
            "32-bit CPU should be a few times more energy efficient, got {ratio}"
        );
    }

    #[test]
    fn single_core_isa_models_scale_with_register_width() {
        let scalar = CpuModel::single_core_for_isa("scalar");
        let neon = CpuModel::single_core_for_isa("neon");
        let avx2 = CpuModel::single_core_for_isa("avx2");
        let avx512 = CpuModel::single_core_for_isa("avx512");
        let unknown = CpuModel::single_core_for_isa("riscv-vector");
        for m in [&scalar, &neon, &avx2, &avx512, &unknown] {
            assert_eq!(m.cores, 1);
        }
        assert_eq!(scalar.simd_width_bits, 64);
        assert_eq!(neon.simd_width_bits, 128);
        assert_eq!(avx2.simd_width_bits, 256);
        assert_eq!(avx512.simd_width_bits, 512);
        assert_eq!(CpuModel::single_core_for_isa("avx512vpopcnt").simd_width_bits, 512);
        assert_eq!(unknown.simd_width_bits, avx2.simd_width_bits);
        // Wider registers raise the roofline at every bitwidth.
        assert!(avx512.ops_per_second(32) > avx2.ops_per_second(32));
        assert!(avx2.ops_per_second(1) > scalar.ops_per_second(1));
    }

    #[test]
    fn utilization_is_measured_over_roofline() {
        let m = CpuModel::single_core_for_isa("avx2");
        let roof = m.ops_per_second(32);
        assert!((m.utilization(32, roof) - 1.0).abs() < 1e-12);
        assert!((m.utilization(32, roof / 2.0) - 0.5).abs() < 1e-12);
        assert_eq!(m.utilization(32, 0.0), 0.0);
        assert_eq!(m.utilization(32, f64::NAN), 0.0);
        assert_eq!(m.utilization(32, -1.0), 0.0);
    }

    #[test]
    fn inference_cost_scales_with_query_count() {
        let cpu = CpuModel::default();
        let w = workload(1_000, 8);
        let one = cpu.inference_cost(&w, 1_000);
        let ten = cpu.inference_cost(&w, 10_000);
        assert!((ten.latency_s / one.latency_s - 10.0).abs() < 1e-9);
    }
}

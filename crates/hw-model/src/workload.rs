//! HDC workload descriptions (op and memory counts).
//!
//! The cost models only need to know *how much work* a training or inference
//! run performs; [`HdcWorkload`] derives element-operation counts from the
//! HDC hyper-parameters.  One "element op" is a multiply–accumulate (or, at
//! 1 bit, an XNOR + popcount step) on a single hypervector element — the unit
//! both the CPU and FPGA models price.

use crate::{HwModelError, Result};
use serde::{Deserialize, Serialize};

/// An HDC training/inference workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HdcWorkload {
    /// Hypervector dimensionality (physical or effective, whichever the
    /// experiment is pricing).
    pub dimension: usize,
    /// Element bitwidth.
    pub bits: u32,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of input features per sample (after preprocessing).
    pub input_features: usize,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of retraining epochs (the initial pass is counted separately).
    pub retrain_epochs: usize,
}

impl HdcWorkload {
    /// Creates a workload, validating every field.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::InvalidParameter`] for zero sizes or an
    /// unsupported bitwidth.
    pub fn new(
        dimension: usize,
        bits: u32,
        num_classes: usize,
        input_features: usize,
        train_samples: usize,
        retrain_epochs: usize,
    ) -> Result<Self> {
        if dimension == 0 || num_classes == 0 || input_features == 0 || train_samples == 0 {
            return Err(HwModelError::InvalidParameter(
                "dimension, num_classes, input_features and train_samples must be non-zero".into(),
            ));
        }
        if ![1, 2, 4, 8, 16, 32].contains(&bits) {
            return Err(HwModelError::InvalidParameter(format!("unsupported bitwidth {bits}")));
        }
        Ok(Self { dimension, bits, num_classes, input_features, train_samples, retrain_epochs })
    }

    /// Element ops to encode one sample: `dimension × input_features` MACs
    /// (the RBF projection) plus `dimension` activations.
    pub fn encode_ops_per_sample(&self) -> u64 {
        self.dimension as u64 * (self.input_features as u64 + 1)
    }

    /// Element ops for one similarity search: `dimension × num_classes` MACs.
    pub fn similarity_ops_per_sample(&self) -> u64 {
        self.dimension as u64 * self.num_classes as u64
    }

    /// Element ops for one adaptive model update (two scaled bundle-adds).
    pub fn update_ops_per_sample(&self) -> u64 {
        2 * self.dimension as u64
    }

    /// Total element ops for a full training run: one encoding pass plus
    /// `1 + retrain_epochs` adaptive passes (similarity + update per sample).
    pub fn training_ops(&self) -> u64 {
        let encode = self.encode_ops_per_sample() * self.train_samples as u64;
        let passes = (self.retrain_epochs as u64 + 1) * self.train_samples as u64;
        let adapt = passes * (self.similarity_ops_per_sample() + self.update_ops_per_sample());
        encode + adapt
    }

    /// Total element ops to classify `samples` queries (encode + similarity).
    pub fn inference_ops(&self, samples: usize) -> u64 {
        samples as u64 * (self.encode_ops_per_sample() + self.similarity_ops_per_sample())
    }

    /// Size of the class-hypervector model in bits.
    pub fn model_bits(&self) -> u64 {
        self.dimension as u64 * self.num_classes as u64 * u64::from(self.bits)
    }

    /// Returns a copy of the workload with a different dimensionality
    /// (used when sweeping effective dimensionality per bitwidth).
    pub fn with_dimension(mut self, dimension: usize) -> Self {
        self.dimension = dimension;
        self
    }

    /// Returns a copy of the workload with a different bitwidth.
    pub fn with_bits(mut self, bits: u32) -> Self {
        self.bits = bits;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> HdcWorkload {
        HdcWorkload::new(1000, 8, 5, 100, 10_000, 20).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(HdcWorkload::new(0, 8, 5, 100, 10, 1).is_err());
        assert!(HdcWorkload::new(100, 3, 5, 100, 10, 1).is_err());
        assert!(HdcWorkload::new(100, 8, 0, 100, 10, 1).is_err());
        assert!(HdcWorkload::new(100, 8, 5, 0, 10, 1).is_err());
        assert!(HdcWorkload::new(100, 8, 5, 100, 0, 1).is_err());
        assert!(HdcWorkload::new(100, 8, 5, 100, 10, 0).is_ok());
    }

    #[test]
    fn op_counts_scale_with_their_drivers() {
        let w = workload();
        assert_eq!(w.encode_ops_per_sample(), 1000 * 101);
        assert_eq!(w.similarity_ops_per_sample(), 1000 * 5);
        assert_eq!(w.update_ops_per_sample(), 2000);
        // Doubling the dimension doubles every op count.
        let w2 = w.with_dimension(2000);
        assert_eq!(w2.training_ops(), 2 * w.training_ops());
        assert_eq!(w2.inference_ops(7), 2 * w.inference_ops(7));
    }

    #[test]
    fn training_ops_formula_is_consistent() {
        let w = workload();
        let expected = 1000u64 * 101 * 10_000 + 21 * 10_000 * (5000 + 2000);
        assert_eq!(w.training_ops(), expected);
    }

    #[test]
    fn model_bits_track_bitwidth() {
        let w = workload();
        assert_eq!(w.model_bits(), 1000 * 5 * 8);
        assert_eq!(w.with_bits(1).model_bits(), 1000 * 5);
        assert_eq!(w.with_bits(1).bits, 1);
    }
}

//! First-order FPGA accelerator model (an Alveo-U50-class card).
//!
//! The CyberHD accelerator instantiates as many parallel element lanes
//! (multiply–accumulate, or XNOR/popcount at 1 bit) as fit the device's
//! LUT/DSP budget and clocks them at a modest 200 MHz under a < 20 W power
//! envelope.  Two effects shape the lane count:
//!
//! * wide arithmetic is expensive — a 32-bit MAC burns an order of magnitude
//!   more LUT/DSP resources than an 8-bit one, so narrowing the elements
//!   multiplies the lane count;
//! * below ~4 bits the per-lane cost is dominated by the fixed accumulate /
//!   control / routing overhead and by HBM bandwidth, so the lane count
//!   saturates instead of growing another 4×.
//!
//! Those two effects are what produce the paper's Table I shape: FPGA
//! efficiency rises steeply from 32 → 8 bits and then flattens/droops as the
//! accuracy-matched effective dimensionality keeps growing while the lane
//! count no longer does.

use crate::workload::HdcWorkload;
use crate::{CostEstimate, HwModelError, Result};
use serde::{Deserialize, Serialize};

/// Analytical FPGA accelerator model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaModel {
    /// LUT budget available to the accelerator datapath (after
    /// platform/shell overhead).
    pub lut_budget: u64,
    /// Clock frequency in hertz (the paper's accelerator runs at 200 MHz).
    pub frequency_hz: f64,
    /// Total board power while the accelerator is busy, in watts
    /// (the paper reports < 20 W on the Alveo U50).
    pub busy_power_w: f64,
}

impl Default for FpgaModel {
    /// An Alveo-U50-class budget: ~600 k usable LUTs at 200 MHz under 18 W.
    fn default() -> Self {
        Self { lut_budget: 600_000, frequency_hz: 200.0e6, busy_power_w: 18.0 }
    }
}

impl FpgaModel {
    /// Creates a model, validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HwModelError::InvalidParameter`] for non-positive values.
    pub fn new(lut_budget: u64, frequency_hz: f64, busy_power_w: f64) -> Result<Self> {
        if lut_budget == 0 {
            return Err(HwModelError::InvalidParameter("lut_budget must be non-zero".into()));
        }
        if !(frequency_hz > 0.0 && frequency_hz.is_finite()) {
            return Err(HwModelError::InvalidParameter(format!(
                "frequency must be positive, got {frequency_hz}"
            )));
        }
        if !(busy_power_w > 0.0 && busy_power_w.is_finite()) {
            return Err(HwModelError::InvalidParameter(format!(
                "busy power must be positive, got {busy_power_w}"
            )));
        }
        Ok(Self { lut_budget, frequency_hz, busy_power_w })
    }

    /// LUT cost of one element lane at the given bitwidth.
    ///
    /// Wide multipliers scale superlinearly with width; very narrow lanes are
    /// dominated by fixed accumulate/control overhead.
    pub fn luts_per_lane(&self, bits: u32) -> u64 {
        match bits {
            32 => 120,
            16 => 46,
            8 => 19,
            4 => 13,
            2 => 11,
            _ => 10, // 1 bit: XNOR + popcount + accumulate overhead
        }
    }

    /// Number of parallel element lanes at the given bitwidth.
    pub fn lanes(&self, bits: u32) -> u64 {
        (self.lut_budget / self.luts_per_lane(bits)).max(1)
    }

    /// Element ops per second at the given bitwidth.
    pub fn ops_per_second(&self, bits: u32) -> f64 {
        self.lanes(bits) as f64 * self.frequency_hz
    }

    /// Latency and energy of one full training run.
    pub fn training_cost(&self, workload: &HdcWorkload) -> CostEstimate {
        self.cost(workload.training_ops(), workload.bits)
    }

    /// Latency and energy of classifying `samples` queries.
    pub fn inference_cost(&self, workload: &HdcWorkload, samples: usize) -> CostEstimate {
        self.cost(workload.inference_ops(samples), workload.bits)
    }

    fn cost(&self, ops: u64, bits: u32) -> CostEstimate {
        let latency_s = ops as f64 / self.ops_per_second(bits);
        let energy_j = self.busy_power_w * latency_s;
        CostEstimate { latency_s, energy_j }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;

    /// The paper's accuracy-matched effective dimensionalities per bitwidth
    /// (Table I, "Effective D" row).
    const PAPER_EFFECTIVE_D: [(u32, usize); 6] =
        [(32, 1200), (16, 2100), (8, 3600), (4, 5600), (2, 7500), (1, 8800)];

    fn workload(dimension: usize, bits: u32) -> HdcWorkload {
        HdcWorkload::new(dimension, bits, 5, 100, 10_000, 20).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(FpgaModel::new(0, 2e8, 18.0).is_err());
        assert!(FpgaModel::new(1000, 0.0, 18.0).is_err());
        assert!(FpgaModel::new(1000, 2e8, 0.0).is_err());
        assert!(FpgaModel::new(1000, 2e8, 18.0).is_ok());
    }

    #[test]
    fn narrower_elements_get_more_lanes_with_diminishing_returns() {
        let fpga = FpgaModel::default();
        let lanes: Vec<u64> = [32, 16, 8, 4, 2, 1].iter().map(|&b| fpga.lanes(b)).collect();
        // Monotone non-decreasing as elements narrow.
        assert!(lanes.windows(2).all(|w| w[1] >= w[0]), "{lanes:?}");
        // Strong gain from 32 -> 8 bits, weak gain from 4 -> 1 bits.
        assert!(lanes[2] as f64 / lanes[0] as f64 > 4.0);
        assert!((lanes[5] as f64 / lanes[3] as f64) < 2.0);
    }

    #[test]
    fn fpga_stays_inside_its_power_envelope() {
        let fpga = FpgaModel::default();
        assert!(fpga.busy_power_w < 20.0, "the paper reports < 20 W at 200 MHz");
        assert!((fpga.frequency_hz - 200.0e6).abs() < 1.0);
    }

    #[test]
    fn fpga_beats_cpu_at_matched_width_and_dimension() {
        let fpga = FpgaModel::default();
        let cpu = CpuModel::default();
        for bits in [32, 16, 8, 4, 2, 1] {
            let w = workload(2000, bits);
            let fpga_cost = fpga.training_cost(&w);
            let cpu_cost = cpu.training_cost(&w);
            assert!(
                fpga_cost.efficiency_over(&cpu_cost) > 1.0,
                "FPGA should be more energy efficient at {bits} bits"
            );
        }
    }

    #[test]
    fn table1_shape_cpu_prefers_wide_fpga_peaks_mid_width() {
        // Reproduce the *shape* of Table I with the paper's effective
        // dimensionalities: normalize everything to the 1-bit CPU config.
        let fpga = FpgaModel::default();
        let cpu = CpuModel::default();
        let reference = cpu.training_cost(&workload(8_800, 1));

        let mut cpu_eff = Vec::new();
        let mut fpga_eff = Vec::new();
        for &(bits, dim) in &PAPER_EFFECTIVE_D {
            let w = workload(dim, bits);
            cpu_eff.push((bits, cpu.training_cost(&w).efficiency_over(&reference)));
            fpga_eff.push((bits, fpga.training_cost(&w).efficiency_over(&reference)));
        }
        // CPU: efficiency decreases monotonically as bitwidth shrinks, 32-bit
        // is several times better than 1-bit.
        assert!(cpu_eff.windows(2).all(|w| w[0].1 >= w[1].1 * 0.95), "{cpu_eff:?}");
        assert!(cpu_eff[0].1 > 3.0, "{cpu_eff:?}");
        assert!((cpu_eff[5].1 - 1.0).abs() < 1e-9);
        // FPGA: always far better than the CPU reference, with a peak at an
        // intermediate bitwidth (8 or 4 bits), not at 32 and not at 1.
        assert!(fpga_eff.iter().all(|&(_, e)| e > 5.0), "{fpga_eff:?}");
        let (peak_bits, peak) =
            fpga_eff.iter().cloned().fold((0, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
        assert!(peak_bits == 8 || peak_bits == 4, "peak at {peak_bits} bits ({peak:.1}x)");
        assert!(peak > fpga_eff[0].1, "peak should beat the 32-bit point");
        assert!(peak > fpga_eff[5].1, "peak should beat the 1-bit point");
    }

    #[test]
    fn inference_cost_scales_with_query_count() {
        let fpga = FpgaModel::default();
        let w = workload(1_000, 8);
        let one = fpga.inference_cost(&w, 1_000);
        let ten = fpga.inference_cost(&w, 10_000);
        assert!((ten.energy_j / one.energy_j - 10.0).abs() < 1e-9);
    }
}

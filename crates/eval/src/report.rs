//! Text tables and named series for the experiment binaries.
//!
//! Every experiment binary (`fig3`, `fig4`, `table1`, `fig5`, `ablation`)
//! prints its results as plain-text tables so a reader can compare them
//! directly against the paper's figures.  [`Table`] is a tiny column-aligned
//! table builder; [`Series`] is a named sequence of `(x, y)` points used for
//! the figure-style outputs (one series per model, one point per dataset or
//! error rate).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use eval::Table;
///
/// let mut table = Table::new(vec!["model".into(), "accuracy".into()]);
/// table.add_row(vec!["CyberHD".into(), "98.1%".into()]);
/// table.add_row(vec!["SVM".into(), "96.3%".into()]);
/// let rendered = table.to_string();
/// assert!(rendered.contains("CyberHD"));
/// assert!(rendered.contains("accuracy"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// Rows shorter than the header are padded with empty cells; longer rows
    /// are kept as-is (their extra cells simply have no header).
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable cells.
    pub fn add_display_row<T: fmt::Display>(&mut self, row: &[T]) {
        self.add_row(row.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Borrow of the data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn column_widths(&self) -> Vec<usize> {
        let columns = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                write!(f, "| {cell:<width$} ")?;
            }
            writeln!(f, "|")
        };
        render_row(f, &self.headers)?;
        for (i, width) in widths.iter().enumerate() {
            let dash = "-".repeat(*width);
            if i == 0 {
                write!(f, "|-{dash}-")?;
            } else {
                write!(f, "+-{dash}-")?;
            }
        }
        writeln!(f, "|")?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// A named sequence of `(label, value)` points — one line of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Name of the series (e.g. a model name).
    pub name: String,
    /// Ordered points: a category label and its value.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.points.push((label.into(), value));
    }

    /// Mean of the point values; `0.0` for an empty series.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Value at a given label, if present.
    pub fn value_at(&self, label: &str) -> Option<f64> {
        self.points.iter().find(|(l, _)| l == label).map(|(_, v)| *v)
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.name)?;
        for (label, value) in &self.points {
            write!(f, "  {label}={value:.4}")?;
        }
        Ok(())
    }
}

/// Renders a group of series that share the same x-labels as one table whose
/// first column holds the series names.
///
/// Series missing a label get an empty cell; the label order is taken from
/// `labels`.
pub fn series_table(title_column: &str, labels: &[String], series: &[Series]) -> Table {
    let mut headers = vec![title_column.to_string()];
    headers.extend(labels.iter().cloned());
    let mut table = Table::new(headers);
    for s in series {
        let mut row = vec![s.name.clone()];
        for label in labels {
            row.push(s.value_at(label).map(|v| format!("{v:.4}")).unwrap_or_default());
        }
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_headers_and_rows_aligned() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_row(vec!["a-very-long-name".into(), "2".into()]);
        let rendered = t.to_string();
        assert!(rendered.contains("a-very-long-name"));
        assert!(rendered.lines().count() >= 4);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn short_rows_render_with_empty_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.add_row(vec!["only-one".into()]);
        let rendered = t.to_string();
        assert!(rendered.contains("only-one"));
    }

    #[test]
    fn display_rows_accept_any_display_type() {
        let mut t = Table::new(vec!["x".into(), "y".into()]);
        t.add_display_row(&[1.5, 2.25]);
        assert_eq!(t.rows()[0], vec!["1.5".to_string(), "2.25".to_string()]);
    }

    #[test]
    fn series_accumulates_points_and_statistics() {
        let mut s = Series::new("CyberHD");
        s.push("NSL-KDD", 0.98);
        s.push("UNSW-NB15", 0.94);
        assert_eq!(s.points.len(), 2);
        assert!((s.mean() - 0.96).abs() < 1e-9);
        assert_eq!(s.value_at("NSL-KDD"), Some(0.98));
        assert_eq!(s.value_at("missing"), None);
        assert!(s.to_string().contains("CyberHD"));
    }

    #[test]
    fn empty_series_mean_is_zero() {
        assert_eq!(Series::new("empty").mean(), 0.0);
    }

    #[test]
    fn series_table_collates_by_label() {
        let mut a = Series::new("DNN");
        a.push("NSL-KDD", 0.99);
        let mut b = Series::new("SVM");
        b.push("NSL-KDD", 0.97);
        b.push("UNSW-NB15", 0.90);
        let labels = vec!["NSL-KDD".to_string(), "UNSW-NB15".to_string()];
        let table = series_table("model", &labels, &[a, b]);
        assert_eq!(table.num_rows(), 2);
        let rendered = table.to_string();
        assert!(rendered.contains("DNN"));
        assert!(rendered.contains("0.9000"));
    }
}

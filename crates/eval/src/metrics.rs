//! Classification metrics.
//!
//! The paper reports plain accuracy (Fig. 3) and accuracy *loss* under fault
//! injection (Fig. 5).  Because intrusion-detection datasets are heavily
//! imbalanced, this module also provides per-class precision / recall / F1
//! and macro averages so that downstream users can look past raw accuracy.

use crate::{EvalError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A `k × k` confusion matrix where rows are true labels and columns are
/// predicted labels.
///
/// # Example
///
/// ```
/// use eval::ConfusionMatrix;
///
/// # fn main() -> Result<(), eval::EvalError> {
/// let cm = ConfusionMatrix::from_predictions(&[0, 1, 2, 2], &[0, 1, 2, 1], 3)?;
/// assert_eq!(cm.count(1, 2), 1, "one sample with label 1 was predicted as 2");
/// assert!((cm.accuracy() - 0.75).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    num_classes: usize,
    /// Row-major counts: `counts[label * num_classes + prediction]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `num_classes` classes.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidArgument`] if `num_classes` is zero.
    pub fn new(num_classes: usize) -> Result<Self> {
        if num_classes == 0 {
            return Err(EvalError::InvalidArgument("num_classes must be non-zero".into()));
        }
        Ok(Self { num_classes, counts: vec![0; num_classes * num_classes] })
    }

    /// Builds a matrix from parallel prediction/label slices.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::LengthMismatch`] if the slices differ in length,
    /// or [`EvalError::ClassOutOfRange`] if any entry is `>= num_classes`.
    pub fn from_predictions(
        predictions: &[usize],
        labels: &[usize],
        num_classes: usize,
    ) -> Result<Self> {
        if predictions.len() != labels.len() {
            return Err(EvalError::LengthMismatch {
                predictions: predictions.len(),
                labels: labels.len(),
            });
        }
        let mut cm = Self::new(num_classes)?;
        for (&p, &l) in predictions.iter().zip(labels) {
            cm.record(l, p)?;
        }
        Ok(cm)
    }

    /// Records one observation with true label `label` predicted as
    /// `prediction`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::ClassOutOfRange`] if either index is out of
    /// range.
    pub fn record(&mut self, label: usize, prediction: usize) -> Result<()> {
        if label >= self.num_classes {
            return Err(EvalError::ClassOutOfRange { class: label, num_classes: self.num_classes });
        }
        if prediction >= self.num_classes {
            return Err(EvalError::ClassOutOfRange {
                class: prediction,
                num_classes: self.num_classes,
            });
        }
        self.counts[label * self.num_classes + prediction] += 1;
        Ok(())
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Count of samples with true label `label` predicted as `prediction`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, label: usize, prediction: usize) -> u64 {
        assert!(label < self.num_classes && prediction < self.num_classes, "class out of range");
        self.counts[label * self.num_classes + prediction]
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of correctly classified samples (trace of the matrix).
    pub fn correct(&self) -> u64 {
        (0..self.num_classes).map(|c| self.count(c, c)).sum()
    }

    /// Overall accuracy in `[0, 1]`; `0.0` for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.correct() as f64 / total as f64
    }

    /// Number of samples whose true label is `class`.
    pub fn support(&self, class: usize) -> u64 {
        (0..self.num_classes).map(|p| self.count(class, p)).sum()
    }

    /// Precision of `class`: TP / (TP + FP). Zero when the class was never
    /// predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class) as f64;
        let predicted: u64 = (0..self.num_classes).map(|l| self.count(l, class)).sum();
        if predicted == 0 {
            return 0.0;
        }
        tp / predicted as f64
    }

    /// Recall of `class`: TP / (TP + FN). Zero when the class has no support.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class) as f64;
        let support = self.support(class);
        if support == 0 {
            return 0.0;
        }
        tp / support as f64
    }

    /// F1 score of `class` (harmonic mean of precision and recall).
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Macro-averaged F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        (0..self.num_classes).map(|c| self.f1(c)).sum::<f64>() / self.num_classes as f64
    }

    /// Macro-averaged recall (a.k.a. balanced accuracy for single-label
    /// classification).
    pub fn macro_recall(&self) -> f64 {
        (0..self.num_classes).map(|c| self.recall(c)).sum::<f64>() / self.num_classes as f64
    }

    /// Merges another matrix of the same shape into this one.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidArgument`] if the shapes differ.
    pub fn merge(&mut self, other: &Self) -> Result<()> {
        if self.num_classes != other.num_classes {
            return Err(EvalError::InvalidArgument(format!(
                "cannot merge confusion matrices of {} and {} classes",
                self.num_classes, other.num_classes
            )));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        Ok(())
    }

    /// Produces a full per-class report.
    pub fn report(&self) -> ClassificationReport {
        ClassificationReport {
            accuracy: self.accuracy(),
            macro_f1: self.macro_f1(),
            macro_recall: self.macro_recall(),
            per_class: (0..self.num_classes)
                .map(|c| ClassMetrics {
                    class: c,
                    precision: self.precision(c),
                    recall: self.recall(c),
                    f1: self.f1(c),
                    support: self.support(c),
                })
                .collect(),
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "confusion matrix ({} classes, rows = truth):", self.num_classes)?;
        for l in 0..self.num_classes {
            for p in 0..self.num_classes {
                write!(f, "{:>8}", self.count(l, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Per-class precision / recall / F1 together with the class support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Class index.
    pub class: usize,
    /// Precision (TP / predicted positives).
    pub precision: f64,
    /// Recall (TP / actual positives).
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// Number of samples whose true label is this class.
    pub support: u64,
}

/// Aggregate classification report derived from a [`ConfusionMatrix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Overall accuracy.
    pub accuracy: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
    /// Macro-averaged recall.
    pub macro_recall: f64,
    /// Per-class metrics, ordered by class index.
    pub per_class: Vec<ClassMetrics>,
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accuracy {:.2}%  macro-F1 {:.3}  macro-recall {:.3}",
            self.accuracy * 100.0,
            self.macro_f1,
            self.macro_recall
        )?;
        for m in &self.per_class {
            writeln!(
                f,
                "  class {:>2}: precision {:.3}  recall {:.3}  f1 {:.3}  support {}",
                m.class, m.precision, m.recall, m.f1, m.support
            )?;
        }
        Ok(())
    }
}

/// Convenience helper: accuracy of `predictions` against `labels`.
///
/// # Errors
///
/// Returns [`EvalError::LengthMismatch`] if the slices differ in length or
/// [`EvalError::InvalidArgument`] if both are empty.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> Result<f64> {
    if predictions.len() != labels.len() {
        return Err(EvalError::LengthMismatch {
            predictions: predictions.len(),
            labels: labels.len(),
        });
    }
    if predictions.is_empty() {
        return Err(EvalError::InvalidArgument("cannot compute accuracy of zero samples".into()));
    }
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    Ok(correct as f64 / predictions.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> ConfusionMatrix {
        // labels:      0 0 0 1 1 2
        // predictions: 0 0 1 1 1 0
        ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 1, 0], &[0, 0, 0, 1, 1, 2], 3).unwrap()
    }

    #[test]
    fn construction_validates_arguments() {
        assert!(ConfusionMatrix::new(0).is_err());
        assert!(ConfusionMatrix::from_predictions(&[0], &[0, 1], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[5], &[0], 2).is_err());
    }

    #[test]
    fn counts_and_accuracy() {
        let cm = example();
        assert_eq!(cm.total(), 6);
        assert_eq!(cm.correct(), 4);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-9);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(2, 0), 1);
        assert_eq!(cm.support(0), 3);
        assert_eq!(cm.support(2), 1);
    }

    #[test]
    fn precision_recall_f1() {
        let cm = example();
        // class 0: TP=2, predicted as 0 three times, support 3.
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((cm.f1(0) - 2.0 / 3.0).abs() < 1e-9);
        // class 1: TP=2, predicted as 1 three times, support 2.
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-9);
        assert!((cm.recall(1) - 1.0).abs() < 1e-9);
        // class 2: never predicted -> precision 0, recall 0, f1 0.
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
    }

    #[test]
    fn macro_averages_cover_all_classes() {
        let cm = example();
        let expected_recall = (2.0 / 3.0 + 1.0 + 0.0) / 3.0;
        assert!((cm.macro_recall() - expected_recall).abs() < 1e-9);
        assert!(cm.macro_f1() > 0.0 && cm.macro_f1() < 1.0);
    }

    #[test]
    fn empty_matrix_has_zero_accuracy() {
        let cm = ConfusionMatrix::new(4).unwrap();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn record_checks_bounds() {
        let mut cm = ConfusionMatrix::new(2).unwrap();
        assert!(cm.record(0, 1).is_ok());
        assert!(matches!(cm.record(2, 0), Err(EvalError::ClassOutOfRange { .. })));
        assert!(matches!(cm.record(0, 2), Err(EvalError::ClassOutOfRange { .. })));
    }

    #[test]
    fn merge_adds_counts_and_checks_shape() {
        let mut a = example();
        let b = example();
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 12);
        let other = ConfusionMatrix::new(2).unwrap();
        assert!(a.merge(&other).is_err());
    }

    #[test]
    fn report_round_trips_through_display() {
        let cm = example();
        let report = cm.report();
        assert_eq!(report.per_class.len(), 3);
        let rendered = report.to_string();
        assert!(rendered.contains("accuracy"));
        assert!(rendered.contains("class  2"));
        let matrix_rendered = cm.to_string();
        assert!(matrix_rendered.contains("confusion matrix"));
    }

    #[test]
    fn accuracy_helper_matches_matrix() {
        let predictions = [0, 0, 1, 1, 1, 0];
        let labels = [0, 0, 0, 1, 1, 2];
        let quick = accuracy(&predictions, &labels).unwrap();
        assert!((quick - example().accuracy()).abs() < 1e-12);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[0], &[]).is_err());
    }

    #[test]
    fn perfect_predictions_have_unit_metrics() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 2], &[0, 1, 2], 3).unwrap();
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(cm.macro_recall(), 1.0);
    }
}

//! # `eval` — metrics, timing and reporting
//!
//! Shared evaluation utilities for the CyberHD reproduction:
//!
//! * [`metrics`] — classification metrics (accuracy, per-class precision /
//!   recall / F1, macro averages, confusion matrices) used by Fig. 3 and the
//!   robustness study of Fig. 5;
//! * [`timing`] — wall-clock measurement helpers used by the training /
//!   inference efficiency comparison of Fig. 4;
//! * [`report`] — small text-table and series builders so every experiment
//!   binary prints its results in the same layout as the paper's tables and
//!   figures.
//!
//! # Example
//!
//! ```
//! use eval::ConfusionMatrix;
//!
//! # fn main() -> Result<(), eval::EvalError> {
//! let predictions = [0, 1, 1, 0];
//! let labels = [0, 1, 0, 0];
//! let cm = ConfusionMatrix::from_predictions(&predictions, &labels, 2)?;
//! assert!((cm.accuracy() - 0.75).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detection;
pub mod metrics;
pub mod report;
pub mod timing;

pub use detection::{DetectionCounts, RocCurve};
pub use metrics::{ClassificationReport, ConfusionMatrix};
pub use report::{Series, Table};
pub use timing::{Stopwatch, ThroughputReport};

use std::error::Error;
use std::fmt;

/// Errors produced by the `eval` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// Prediction and label slices have different lengths.
    LengthMismatch {
        /// Number of predictions supplied.
        predictions: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// A class index exceeded the configured number of classes.
    ClassOutOfRange {
        /// The offending class index.
        class: usize,
        /// Number of classes the structure was built for.
        num_classes: usize,
    },
    /// An argument was invalid (zero classes, empty input where data is
    /// required, …).
    InvalidArgument(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::LengthMismatch { predictions, labels } => write!(
                f,
                "prediction/label length mismatch: {predictions} predictions vs {labels} labels"
            ),
            EvalError::ClassOutOfRange { class, num_classes } => {
                write!(f, "class {class} out of range for {num_classes} classes")
            }
            EvalError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for EvalError {}

/// Crate-local result alias.
pub type Result<T, E = EvalError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = EvalError::LengthMismatch { predictions: 3, labels: 5 };
        assert!(e.to_string().contains("3"));
        let e = EvalError::ClassOutOfRange { class: 9, num_classes: 4 };
        assert!(e.to_string().contains("9"));
        let e = EvalError::InvalidArgument("x".into());
        assert!(e.to_string().contains("x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalError>();
    }
}

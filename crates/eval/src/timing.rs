//! Wall-clock timing helpers for the efficiency comparison (Fig. 4).
//!
//! The paper compares *training time* and *inference latency* across models
//! on identical sample budgets.  [`Stopwatch`] measures a single phase;
//! [`ThroughputReport`] couples a duration with a sample count so the
//! experiment binaries can print seconds, samples/second and per-sample
//! latency in one consistent format.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// A simple start/stop wall-clock stopwatch.
///
/// # Example
///
/// ```
/// use eval::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let _work: u64 = (0..10_000u64).sum();
/// let elapsed = sw.elapsed();
/// assert!(elapsed.as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Self { started: Instant::now() }
    }

    /// Elapsed time since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in seconds as an `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Measures the wall-clock time of `f` and returns `(result, duration)`.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let sw = Self::start();
        let result = f();
        (result, sw.elapsed())
    }
}

/// A duration paired with the number of samples processed during it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Total wall-clock seconds of the measured phase.
    pub seconds: f64,
    /// Number of samples processed.
    pub samples: usize,
}

impl ThroughputReport {
    /// Creates a report from a duration and a sample count.
    pub fn new(duration: Duration, samples: usize) -> Self {
        Self { seconds: duration.as_secs_f64(), samples }
    }

    /// Times one batched phase over `samples` inputs and returns its result
    /// together with the report — the one-line form every experiment
    /// harness uses around the batched inference engine.
    ///
    /// # Example
    ///
    /// ```
    /// use eval::ThroughputReport;
    ///
    /// let (sum, report) = ThroughputReport::measure(1000, || (0..1000u64).sum::<u64>());
    /// assert!(sum > 0);
    /// assert_eq!(report.samples, 1000);
    /// ```
    pub fn measure<T>(samples: usize, f: impl FnOnce() -> T) -> (T, Self) {
        let (result, duration) = Stopwatch::time(f);
        (result, Self::new(duration, samples))
    }

    /// Samples processed per second; `0.0` when no time elapsed.
    pub fn samples_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.samples as f64 / self.seconds
    }

    /// Mean latency per sample in seconds; `0.0` when no samples were
    /// processed.
    pub fn latency_per_sample(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.seconds / self.samples as f64
    }

    /// Speed-up of `self` relative to `other` (how many times faster this
    /// report processed one sample).
    ///
    /// Returns `f64::INFINITY` when `other` took no measurable time per
    /// sample... the conventional way round: a *larger* return value means
    /// `self` is faster.
    pub fn speedup_over(&self, other: &Self) -> f64 {
        let own = self.latency_per_sample();
        let theirs = other.latency_per_sample();
        if own <= 0.0 {
            return f64::INFINITY;
        }
        theirs / own
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} s for {} samples ({:.1} samples/s, {:.3} ms/sample)",
            self.seconds,
            self.samples,
            self.samples_per_second(),
            self.latency_per_sample() * 1e3
        )
    }
}

/// Number of linear buckets before the histogram switches to geometric
/// spacing (values below this resolve exactly).
const LINEAR_BUCKETS: u64 = 16;

/// Sub-buckets per power of two in the geometric range (2³ = 8 gives
/// ~12.5% worst-case value resolution).
const SUB_BUCKET_BITS: u32 = 3;

/// Total bucket count: 16 exact buckets + 8 sub-buckets for each of the
/// remaining 60 octaves of a `u64` nanosecond value.
const TOTAL_BUCKETS: usize = LINEAR_BUCKETS as usize + 60 * (1 << SUB_BUCKET_BITS);

/// A bounded-memory latency histogram with percentile queries — the
/// serving layer's p50/p99 flush-latency tracker.
///
/// Durations are recorded as nanoseconds into log-spaced buckets (exact
/// below 16 ns, then 8 sub-buckets per power of two, ≈12.5% worst-case
/// resolution), so memory stays a few KiB no matter how many flows are
/// recorded and recording is a couple of shifts — cheap enough for a
/// per-request hot path.  Percentiles report the **upper bound** of the
/// bucket containing the requested rank (a conservative estimate).
///
/// # Example
///
/// ```
/// use eval::timing::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=100u64 {
///     h.record(Duration::from_millis(ms));
/// }
/// let p99 = h.percentile(0.99);
/// assert!(p99 >= Duration::from_millis(99));
/// assert!(p99 < Duration::from_millis(120));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    total_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { counts: vec![0; TOTAL_BUCKETS], count: 0, total_ns: 0, max_ns: 0 }
    }

    /// Bucket index of a nanosecond value.
    fn bucket_of(ns: u64) -> usize {
        if ns < LINEAR_BUCKETS {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros() as usize; // >= 4 here
        let sub = ((ns >> (msb as u32 - SUB_BUCKET_BITS)) & ((1 << SUB_BUCKET_BITS) - 1)) as usize;
        LINEAR_BUCKETS as usize + (msb - 4) * (1 << SUB_BUCKET_BITS) + sub
    }

    /// Largest nanosecond value that maps into `bucket` (inclusive).
    fn bucket_upper_bound(bucket: usize) -> u64 {
        if bucket < LINEAR_BUCKETS as usize {
            return bucket as u64;
        }
        let geometric = bucket - LINEAR_BUCKETS as usize;
        let msb = geometric / (1 << SUB_BUCKET_BITS) + 4;
        let sub = (geometric % (1 << SUB_BUCKET_BITS)) as u128;
        // The bucket covers [base + sub*step, base + (sub+1)*step); the
        // top bucket's exclusive end is 2^64, so the bound is computed in
        // u128 and clamped instead of overflowing.
        let base = 1u128 << msb;
        let step = base >> SUB_BUCKET_BITS;
        u64::try_from(base + (sub + 1) * step - 1).unwrap_or(u64::MAX)
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.counts[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded latencies ([`Duration::ZERO`] when
    /// empty); the mean is tracked outside the buckets, so it carries no
    /// bucketing error.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.total_ns / self.count as u128) as u64)
    }

    /// Exact maximum recorded latency ([`Duration::ZERO`] when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The latency at quantile `q` in `[0, 1]` (e.g. `0.99` for p99):
    /// the upper bound of the bucket holding the `ceil(q · count)`-th
    /// smallest observation, capped at the exact maximum.
    ///
    /// Returns [`Duration::ZERO`] for an empty histogram.
    pub fn percentile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_nanos(Self::bucket_upper_bound(bucket).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Folds another histogram into this one (per-tenant → fleet-wide
    /// aggregation).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Geometric mean of a slice of strictly positive values.
///
/// Used to aggregate per-dataset speed-ups the same way the paper reports
/// "on average N× faster".  Returns `None` for an empty slice or any
/// non-positive entry.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonzero_time() {
        let (value, duration) = Stopwatch::time(|| (0..100_000u64).sum::<u64>());
        assert!(value > 0);
        assert!(duration.as_nanos() > 0);
    }

    #[test]
    fn throughput_math_is_consistent() {
        let report = ThroughputReport { seconds: 2.0, samples: 1000 };
        assert!((report.samples_per_second() - 500.0).abs() < 1e-9);
        assert!((report.latency_per_sample() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let empty = ThroughputReport { seconds: 0.0, samples: 0 };
        assert_eq!(empty.samples_per_second(), 0.0);
        assert_eq!(empty.latency_per_sample(), 0.0);
    }

    #[test]
    fn speedup_is_ratio_of_latencies() {
        let fast = ThroughputReport { seconds: 1.0, samples: 1000 };
        let slow = ThroughputReport { seconds: 4.0, samples: 1000 };
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-9);
        let zero = ThroughputReport { seconds: 0.0, samples: 10 };
        assert!(zero.speedup_over(&slow).is_infinite());
    }

    #[test]
    fn display_contains_all_quantities() {
        let report = ThroughputReport { seconds: 0.5, samples: 100 };
        let s = report.to_string();
        assert!(s.contains("100 samples"));
        assert!(s.contains("samples/s"));
    }

    #[test]
    fn latency_histogram_percentiles_bracket_the_true_values() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        // Buckets are conservative (upper bound) but never more than
        // ~12.5% above the true quantile, and never below it.
        for (q, true_us) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (1.0, 1000)] {
            let got = h.percentile(q).as_nanos() as u64;
            let truth = true_us * 1000;
            assert!(got >= truth, "p{q}: {got} < {truth}");
            assert!(got <= truth + truth / 7, "p{q}: {got} too far above {truth}");
        }
        assert_eq!(h.max(), Duration::from_millis(1));
        let mean = h.mean().as_nanos() as u64;
        assert!((mean as i64 - 500_500).unsigned_abs() < 1000, "exact mean, got {mean}");
    }

    #[test]
    fn latency_histogram_survives_the_top_bucket() {
        // A clock anomaly (or Duration::MAX misuse) lands in the very last
        // bucket; its upper bound saturates instead of overflowing.
        let mut h = LatencyHistogram::new();
        h.record(Duration::MAX);
        assert_eq!(h.percentile(1.0), h.max());
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn latency_histogram_small_values_are_exact_and_merge_adds() {
        let mut a = LatencyHistogram::new();
        for ns in [0u64, 1, 7, 15] {
            a.record(Duration::from_nanos(ns));
        }
        // Sub-16ns values resolve exactly.
        assert_eq!(a.percentile(0.25), Duration::from_nanos(0));
        assert_eq!(a.percentile(1.0), Duration::from_nanos(15));

        let mut b = LatencyHistogram::new();
        b.record(Duration::from_secs(2));
        b.merge(&a);
        assert_eq!(b.count(), 5);
        assert_eq!(b.max(), Duration::from_secs(2));
        assert!(b.percentile(0.5) <= Duration::from_nanos(15));
        let p_max = b.percentile(1.0);
        assert!(p_max >= Duration::from_secs(2) && p_max <= Duration::from_millis(2300));
    }

    #[test]
    fn latency_histogram_empty_behaviour_is_total() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        for q in [0.0, 0.5, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(h.percentile(q), Duration::ZERO, "empty histogram, q={q}");
        }
        // Merging an empty histogram is a no-op in both directions.
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(3));
        let before = a.percentile(1.0);
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.percentile(1.0), before);
        let mut b = LatencyHistogram::new();
        b.merge(&a);
        assert_eq!(b.count(), 1);
        assert_eq!(b.max(), a.max());
    }

    #[test]
    fn latency_histogram_bucket_boundaries_hold_at_powers_of_two() {
        // Every value below LINEAR_BUCKETS resolves exactly; above that,
        // a single recorded value v reports a p100 in [v, v * (1 + 2^-3)]
        // (8 sub-buckets per octave => <= 12.5% overshoot), capped at the
        // exact max.  Exercise the exact boundary values on both sides of
        // several octaves.
        for ns in [1u64, 15, 16, 17, 31, 32, 127, 128, 129, 1 << 20, (1 << 20) + 1, (1 << 40) - 1] {
            let mut h = LatencyHistogram::new();
            h.record(Duration::from_nanos(ns));
            let got = h.percentile(1.0).as_nanos() as u64;
            assert_eq!(got, ns, "a single observation is capped at the exact max");
            if ns < 16 {
                continue;
            }
            // Two observations of the same value: the percentile comes from
            // the bucket bound, which must bracket the value from above
            // within the documented 12.5%.
            let mut h = LatencyHistogram::new();
            h.record(Duration::from_nanos(ns));
            h.record(Duration::from_nanos(ns * 2));
            let p50 = h.percentile(0.5).as_nanos() as u64;
            assert!(p50 >= ns, "p50 {p50} below the true value {ns}");
            assert!(p50 <= ns + ns / 8, "p50 {p50} overshoots {ns} by more than 12.5%");
        }
    }

    #[test]
    fn latency_histogram_p50_p99_on_known_distributions() {
        // Constant distribution: every quantile is the constant.
        let mut constant = LatencyHistogram::new();
        for _ in 0..1000 {
            constant.record(Duration::from_micros(250));
        }
        assert_eq!(constant.percentile(0.5), Duration::from_micros(250));
        assert_eq!(constant.percentile(0.99), Duration::from_micros(250));
        assert_eq!(constant.mean(), Duration::from_micros(250));

        // Bimodal 99:1 distribution: p50 sits on the fast mode, p99 on the
        // boundary rank of the fast mode, p100 on the slow tail.
        let mut bimodal = LatencyHistogram::new();
        for i in 0..1000u64 {
            let latency =
                if i % 100 == 0 { Duration::from_millis(10) } else { Duration::from_micros(100) };
            bimodal.record(latency);
        }
        let p50 = bimodal.percentile(0.5);
        assert!(p50 >= Duration::from_micros(100) && p50 < Duration::from_micros(120), "{p50:?}");
        let p99 = bimodal.percentile(0.99);
        assert!(p99 < Duration::from_millis(1), "rank 990 is a fast flow, got {p99:?}");
        assert_eq!(bimodal.percentile(1.0), Duration::from_millis(10));

        // Uniform 1..=1000 us: quantiles are conservative (upper bucket
        // bound) but never below the true rank value and never more than
        // 12.5% above it.
        let mut uniform = LatencyHistogram::new();
        for us in 1..=1000u64 {
            uniform.record(Duration::from_micros(us));
        }
        for (q, true_us) in [(0.5, 500u64), (0.99, 990)] {
            let got = uniform.percentile(q).as_nanos() as u64;
            let truth = true_us * 1000;
            assert!(got >= truth && got <= truth + truth / 8, "q={q}: {got} vs {truth}");
        }
    }

    #[test]
    fn merged_histograms_equal_a_single_histogram_of_the_union() {
        // The cross-shard aggregation contract: merging per-shard
        // histograms must be indistinguishable from one histogram that
        // observed every latency itself — bucket counts, count, mean,
        // max and every percentile.
        let shard_a: Vec<u64> = (1..=500).map(|us| us * 1000).collect(); // 1..=500 us
        let shard_b: Vec<u64> = (501..=1000).map(|us| us * 1000).collect(); // 501..=1000 us
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for &ns in &shard_a {
            a.record(Duration::from_nanos(ns));
            union.record(Duration::from_nanos(ns));
        }
        for &ns in &shard_b {
            b.record(Duration::from_nanos(ns));
            union.record(Duration::from_nanos(ns));
        }
        a.merge(&b);
        assert_eq!(a.count(), union.count());
        assert_eq!(a.mean(), union.mean());
        assert_eq!(a.max(), union.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(q), union.percentile(q), "q={q}");
        }
    }

    #[test]
    fn merge_preserves_exact_bucket_boundaries() {
        // Values that straddle the linear→geometric switch (16 ns) and
        // octave boundaries must land in the same buckets whether they
        // were recorded directly or arrived via merge: record each
        // boundary value into its own histogram, merge them all, and
        // compare against direct recording.
        let boundary_ns = [15u64, 16, 17, 31, 32, 33, 127, 128, 129, (1 << 20) - 1, 1 << 20];
        let mut merged = LatencyHistogram::new();
        let mut direct = LatencyHistogram::new();
        for &ns in &boundary_ns {
            let mut single = LatencyHistogram::new();
            single.record(Duration::from_nanos(ns));
            merged.merge(&single);
            direct.record(Duration::from_nanos(ns));
        }
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.max(), direct.max());
        for (i, _) in boundary_ns.iter().enumerate() {
            let q = (i + 1) as f64 / boundary_ns.len() as f64;
            assert_eq!(merged.percentile(q), direct.percentile(q), "rank {}", i + 1);
        }
        // Below the linear cutoff merged values stay exact.
        assert_eq!(merged.percentile(1.0 / boundary_ns.len() as f64), Duration::from_nanos(15));
    }

    #[test]
    fn merge_is_commutative_and_associative_on_percentiles() {
        let mk = |values: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &us in values {
                h.record(Duration::from_micros(us));
            }
            h
        };
        let (x, y, z) = (mk(&[1, 10, 100]), mk(&[5, 50, 500]), mk(&[2, 20, 200, 2000]));
        // (x + y) + z
        let mut left = x.clone();
        left.merge(&y);
        left.merge(&z);
        // x + (z + y)
        let mut right_inner = z.clone();
        right_inner.merge(&y);
        let mut right = x.clone();
        right.merge(&right_inner);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.mean(), right.mean());
        assert_eq!(left.max(), right.max());
        for q in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            assert_eq!(left.percentile(q), right.percentile(q), "q={q}");
        }
    }

    #[test]
    fn geometric_mean_behaves() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-9);
        let g = geometric_mean(&[3.0, 3.0, 3.0]).unwrap();
        assert!((g - 3.0).abs() < 1e-9);
    }
}

//! Wall-clock timing helpers for the efficiency comparison (Fig. 4).
//!
//! The paper compares *training time* and *inference latency* across models
//! on identical sample budgets.  [`Stopwatch`] measures a single phase;
//! [`ThroughputReport`] couples a duration with a sample count so the
//! experiment binaries can print seconds, samples/second and per-sample
//! latency in one consistent format.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};

/// A simple start/stop wall-clock stopwatch.
///
/// # Example
///
/// ```
/// use eval::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let _work: u64 = (0..10_000u64).sum();
/// let elapsed = sw.elapsed();
/// assert!(elapsed.as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Self { started: Instant::now() }
    }

    /// Elapsed time since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed time in seconds as an `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Measures the wall-clock time of `f` and returns `(result, duration)`.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let sw = Self::start();
        let result = f();
        (result, sw.elapsed())
    }
}

/// A duration paired with the number of samples processed during it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Total wall-clock seconds of the measured phase.
    pub seconds: f64,
    /// Number of samples processed.
    pub samples: usize,
}

impl ThroughputReport {
    /// Creates a report from a duration and a sample count.
    pub fn new(duration: Duration, samples: usize) -> Self {
        Self { seconds: duration.as_secs_f64(), samples }
    }

    /// Times one batched phase over `samples` inputs and returns its result
    /// together with the report — the one-line form every experiment
    /// harness uses around the batched inference engine.
    ///
    /// # Example
    ///
    /// ```
    /// use eval::ThroughputReport;
    ///
    /// let (sum, report) = ThroughputReport::measure(1000, || (0..1000u64).sum::<u64>());
    /// assert!(sum > 0);
    /// assert_eq!(report.samples, 1000);
    /// ```
    pub fn measure<T>(samples: usize, f: impl FnOnce() -> T) -> (T, Self) {
        let (result, duration) = Stopwatch::time(f);
        (result, Self::new(duration, samples))
    }

    /// Samples processed per second; `0.0` when no time elapsed.
    pub fn samples_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.samples as f64 / self.seconds
    }

    /// Mean latency per sample in seconds; `0.0` when no samples were
    /// processed.
    pub fn latency_per_sample(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.seconds / self.samples as f64
    }

    /// Speed-up of `self` relative to `other` (how many times faster this
    /// report processed one sample).
    ///
    /// Returns `f64::INFINITY` when `other` took no measurable time per
    /// sample... the conventional way round: a *larger* return value means
    /// `self` is faster.
    pub fn speedup_over(&self, other: &Self) -> f64 {
        let own = self.latency_per_sample();
        let theirs = other.latency_per_sample();
        if own <= 0.0 {
            return f64::INFINITY;
        }
        theirs / own
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} s for {} samples ({:.1} samples/s, {:.3} ms/sample)",
            self.seconds,
            self.samples,
            self.samples_per_second(),
            self.latency_per_sample() * 1e3
        )
    }
}

/// Geometric mean of a slice of strictly positive values.
///
/// Used to aggregate per-dataset speed-ups the same way the paper reports
/// "on average N× faster".  Returns `None` for an empty slice or any
/// non-positive entry.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonzero_time() {
        let (value, duration) = Stopwatch::time(|| (0..100_000u64).sum::<u64>());
        assert!(value > 0);
        assert!(duration.as_nanos() > 0);
    }

    #[test]
    fn throughput_math_is_consistent() {
        let report = ThroughputReport { seconds: 2.0, samples: 1000 };
        assert!((report.samples_per_second() - 500.0).abs() < 1e-9);
        assert!((report.latency_per_sample() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let empty = ThroughputReport { seconds: 0.0, samples: 0 };
        assert_eq!(empty.samples_per_second(), 0.0);
        assert_eq!(empty.latency_per_sample(), 0.0);
    }

    #[test]
    fn speedup_is_ratio_of_latencies() {
        let fast = ThroughputReport { seconds: 1.0, samples: 1000 };
        let slow = ThroughputReport { seconds: 4.0, samples: 1000 };
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-9);
        let zero = ThroughputReport { seconds: 0.0, samples: 10 };
        assert!(zero.speedup_over(&slow).is_infinite());
    }

    #[test]
    fn display_contains_all_quantities() {
        let report = ThroughputReport { seconds: 0.5, samples: 100 };
        let s = report.to_string();
        assert!(s.contains("100 samples"));
        assert!(s.contains("samples/s"));
    }

    #[test]
    fn geometric_mean_behaves() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-9);
        let g = geometric_mean(&[3.0, 3.0, 3.0]).unwrap();
        assert!((g - 3.0).abs() < 1e-9);
    }
}
